//! Baseline (allowlist) file: lets existing debt be burned down
//! incrementally while CI fails on any *new* violation.
//!
//! Fingerprints are content-addressed, not line-addressed: FNV-1a over
//! `rule | path | normalized source line | occurrence index`. Inserting
//! or deleting unrelated lines therefore does not invalidate entries;
//! only changing the flagged code (or adding another identical offender
//! to the same file) does.
//!
//! File format (line-oriented, diff-friendly):
//!
//! ```text
//! # pprl-analyze baseline v1
//! <16-hex-fingerprint> <rule> <path> -- <justification>
//! ```

use crate::findings::Finding;
use std::collections::HashMap;

/// One accepted pre-existing violation.
#[derive(Debug, Clone)]
pub struct BaselineEntry {
    pub fingerprint: String,
    pub rule: String,
    pub file: String,
    pub justification: String,
}

/// The parsed baseline file.
#[derive(Debug, Default)]
pub struct Baseline {
    pub entries: Vec<BaselineEntry>,
}

/// FNV-1a 64-bit hash.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Computes the content fingerprint for a finding.
pub fn fingerprint(rule: &str, file: &str, snippet: &str, occurrence: usize) -> String {
    let key = format!("{rule}|{file}|{snippet}|{occurrence}");
    format!("{:016x}", fnv1a64(key.as_bytes()))
}

/// Assigns fingerprints to a batch of findings. Occurrence indices are
/// per `(rule, file, snippet)` triple in file order, so two identical
/// offending lines in one file get distinct fingerprints.
pub fn assign_fingerprints(findings: &mut [Finding]) {
    let mut seen: HashMap<(String, String, String), usize> = HashMap::new();
    for f in findings.iter_mut() {
        let key = (f.rule.to_string(), f.file.clone(), f.snippet.clone());
        let occ = seen.entry(key).or_insert(0);
        f.fingerprint = fingerprint(f.rule, &f.file, &f.snippet, *occ);
        *occ += 1;
    }
}

impl Baseline {
    /// Parses baseline text. Unknown or malformed lines are errors — a
    /// silently ignored baseline entry would un-suppress a finding.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            // <fp> <rule> <path> -- <justification>
            let (head, justification) = match line.split_once(" -- ") {
                Some((h, j)) => (h.trim(), j.trim().to_string()),
                None => (line, String::new()),
            };
            let mut parts = head.split_whitespace();
            let (fp, rule, file) = match (parts.next(), parts.next(), parts.next()) {
                (Some(a), Some(b), Some(c)) => (a, b, c),
                _ => {
                    return Err(format!(
                        "baseline line {}: expected `<fingerprint> <rule> <path> -- <why>`",
                        lineno + 1
                    ))
                }
            };
            if fp.len() != 16 || !fp.chars().all(|c| c.is_ascii_hexdigit()) {
                return Err(format!(
                    "baseline line {}: bad fingerprint {:?}",
                    lineno + 1,
                    fp
                ));
            }
            entries.push(BaselineEntry {
                fingerprint: fp.to_string(),
                rule: rule.to_string(),
                file: file.to_string(),
                justification,
            });
        }
        Ok(Baseline { entries })
    }

    /// Serializes to the canonical text format, sorted for stable diffs.
    pub fn serialize(&self) -> String {
        let mut lines: Vec<String> = self
            .entries
            .iter()
            .map(|e| {
                let why = if e.justification.is_empty() {
                    "TODO: justify or fix".to_string()
                } else {
                    e.justification.clone()
                };
                format!("{} {} {} -- {}", e.fingerprint, e.rule, e.file, why)
            })
            .collect();
        lines.sort();
        let mut out = String::from(
            "# pprl-analyze baseline v1\n\
             # One accepted pre-existing violation per line:\n\
             #   <fingerprint> <rule> <path> -- <justification>\n\
             # Remove lines as sites are fixed; never add lines for new code.\n",
        );
        for l in lines {
            out.push_str(&l);
            out.push('\n');
        }
        out
    }

    /// Marks findings whose fingerprints appear in the baseline.
    /// Returns fingerprints present in the baseline but no longer
    /// produced (stale entries that should be pruned).
    pub fn apply(&self, findings: &mut [Finding]) -> Vec<String> {
        let mut known: HashMap<&str, bool> = self
            .entries
            .iter()
            .map(|e| (e.fingerprint.as_str(), false))
            .collect();
        for f in findings.iter_mut() {
            if let Some(hit) = known.get_mut(f.fingerprint.as_str()) {
                f.baselined = true;
                *hit = true;
            }
        }
        known
            .into_iter()
            .filter(|(_, hit)| !hit)
            .map(|(fp, _)| fp.to_string())
            .collect()
    }

    /// Builds a baseline accepting every given finding (used by
    /// `--update-baseline`), carrying over justifications from `prior`
    /// where fingerprints match.
    pub fn from_findings(findings: &[Finding], prior: Option<&Baseline>) -> Baseline {
        let prior_just: HashMap<&str, &str> = prior
            .map(|b| {
                b.entries
                    .iter()
                    .map(|e| (e.fingerprint.as_str(), e.justification.as_str()))
                    .collect()
            })
            .unwrap_or_default();
        let entries = findings
            .iter()
            .filter(|f| !f.waived)
            .map(|f| BaselineEntry {
                fingerprint: f.fingerprint.clone(),
                rule: f.rule.to_string(),
                file: f.file.clone(),
                justification: prior_just
                    .get(f.fingerprint.as_str())
                    .map(|s| s.to_string())
                    .unwrap_or_default(),
            })
            .collect();
        Baseline { entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::findings::Severity;

    fn finding(file: &str, snippet: &str) -> Finding {
        Finding {
            rule: "P001",
            family: "panic-path",
            severity: Severity::Error,
            file: file.into(),
            line: 1,
            message: "m".into(),
            snippet: snippet.into(),
            fingerprint: String::new(),
            baselined: false,
            waived: false,
        }
    }

    #[test]
    fn identical_snippets_get_distinct_fingerprints() {
        let mut fs = vec![finding("a.rs", "x.unwrap()"), finding("a.rs", "x.unwrap()")];
        assign_fingerprints(&mut fs);
        assert_ne!(fs[0].fingerprint, fs[1].fingerprint);
    }

    #[test]
    fn roundtrip_and_apply() {
        let mut fs = vec![finding("a.rs", "x.unwrap()"), finding("b.rs", "y[0]")];
        assign_fingerprints(&mut fs);
        let base = Baseline::from_findings(&fs, None);
        let text = base.serialize();
        let parsed = Baseline::parse(&text).unwrap();
        assert_eq!(parsed.entries.len(), 2);
        let stale = parsed.apply(&mut fs);
        assert!(stale.is_empty());
        assert!(fs.iter().all(|f| f.baselined));
    }

    #[test]
    fn stale_entries_are_reported() {
        let text = "0123456789abcdef P001 gone.rs -- was fixed\n";
        let parsed = Baseline::parse(text).unwrap();
        let mut fs: Vec<Finding> = Vec::new();
        let stale = parsed.apply(&mut fs);
        assert_eq!(stale, vec!["0123456789abcdef".to_string()]);
    }

    #[test]
    fn malformed_lines_error() {
        assert!(Baseline::parse("zz P001 a.rs -- x\n").is_err());
        assert!(Baseline::parse("0123456789abcdef\n").is_err());
    }

    #[test]
    fn justifications_carry_over() {
        let mut fs = vec![finding("a.rs", "x.unwrap()")];
        assign_fingerprints(&mut fs);
        let mut base = Baseline::from_findings(&fs, None);
        base.entries[0].justification = "known-safe: invariant".into();
        let again = Baseline::from_findings(&fs, Some(&base));
        assert_eq!(again.entries[0].justification, "known-safe: invariant");
    }
}
