//! Analyzer configuration: `pprl-analyze.toml`.
//!
//! Parsed with a deliberately small TOML-subset reader (sections, string
//! values, string arrays) so the analyzer stays dependency-free. The
//! grammar it accepts is exactly what the checked-in config uses:
//!
//! ```toml
//! [scan]
//! roots = ["src", "crates"]
//!
//! [secret]
//! types = ["PrivateKey"]
//! idents = ["private_key"]
//!
//! [panic]
//! paths = ["crates/crypto", "crates/smc"]
//!
//! [[ct]]
//! file = "crates/bignum/src/modpow.rs"
//! functions = ["pow"]
//! secret = ["exp"]
//!
//! [taint]
//! paths = ["crates/bignum/src/modpow.rs"]
//! types = ["PrivateKey"]
//!
//! [deps]
//! "crates/bignum" = ["rand", "serde"]
//! ```

/// One timing-sensitive target: functions in `file` whose bodies must not
/// branch on the listed secret identifiers.
#[derive(Debug, Clone, Default)]
pub struct CtTarget {
    /// Path suffix of the file the functions live in.
    pub file: String,
    /// Function names to analyze.
    pub functions: Vec<String>,
    /// Identifiers considered secret-derived inside those functions.
    pub secret: Vec<String>,
}

/// Full analyzer configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Directories (relative to the workspace root) to scan.
    pub roots: Vec<String>,
    /// Type names that are secret wherever they appear (in addition to
    /// types carrying a `pprl:secret` marker comment).
    pub secret_types: Vec<String>,
    /// Variable/field identifiers treated as secret in format-macro args.
    pub secret_idents: Vec<String>,
    /// Path prefixes whose non-test code must be panic-free.
    pub panic_paths: Vec<String>,
    /// Timing-sensitive functions for the constant-time rule.
    pub ct: Vec<CtTarget>,
    /// Dependency allowlists: crate dir -> permitted external deps.
    pub deps_allow: Vec<(String, Vec<String>)>,
    /// Path suffixes whose functions run the secret-taint dataflow pass.
    pub taint_paths: Vec<String>,
    /// Type names whose values seed taint (key material) — independent of
    /// `secret_types`, since a taint source may legitimately derive Debug.
    pub taint_types: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            roots: vec!["src".into(), "crates".into()],
            secret_types: Vec::new(),
            secret_idents: Vec::new(),
            panic_paths: Vec::new(),
            ct: Vec::new(),
            deps_allow: Vec::new(),
            taint_paths: Vec::new(),
            taint_types: Vec::new(),
        }
    }
}

impl Config {
    /// Parses the TOML subset described in the module docs.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config {
            roots: Vec::new(),
            ..Config::default()
        };
        let mut section = String::new();

        for (lineno, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
                section = format!("[[{}]]", name.trim());
                if name.trim() == "ct" {
                    cfg.ct.push(CtTarget::default());
                }
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                section = name.trim().to_string();
                continue;
            }
            let eq = line
                .find('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", lineno + 1))?;
            let key = unquote(line[..eq].trim());
            let value = line[eq + 1..].trim();
            let err = |what: &str| format!("line {}: {}", lineno + 1, what);

            match section.as_str() {
                "scan" if key == "roots" => {
                    cfg.roots = parse_list(value).ok_or_else(|| err("bad roots list"))?;
                }
                "secret" => match key.as_str() {
                    "types" => {
                        cfg.secret_types =
                            parse_list(value).ok_or_else(|| err("bad types list"))?;
                    }
                    "idents" => {
                        cfg.secret_idents =
                            parse_list(value).ok_or_else(|| err("bad idents list"))?;
                    }
                    _ => {}
                },
                "panic" if key == "paths" => {
                    cfg.panic_paths = parse_list(value).ok_or_else(|| err("bad paths list"))?;
                }
                "taint" => match key.as_str() {
                    "paths" => {
                        cfg.taint_paths =
                            parse_list(value).ok_or_else(|| err("bad taint paths list"))?;
                    }
                    "types" => {
                        cfg.taint_types =
                            parse_list(value).ok_or_else(|| err("bad taint types list"))?;
                    }
                    _ => {}
                },
                "[[ct]]" => {
                    let target = cfg
                        .ct
                        .last_mut()
                        .ok_or_else(|| err("ct key outside [[ct]]"))?;
                    match key.as_str() {
                        "file" => {
                            target.file =
                                parse_string(value).ok_or_else(|| err("bad file string"))?;
                        }
                        "functions" => {
                            target.functions =
                                parse_list(value).ok_or_else(|| err("bad functions list"))?;
                        }
                        "secret" => {
                            target.secret =
                                parse_list(value).ok_or_else(|| err("bad secret list"))?;
                        }
                        _ => {}
                    }
                }
                "deps" => {
                    let allow = parse_list(value).ok_or_else(|| err("bad deps list"))?;
                    cfg.deps_allow.push((key, allow));
                }
                _ => {}
            }
        }
        if cfg.roots.is_empty() {
            cfg.roots = vec!["src".into(), "crates".into()];
        }
        Ok(cfg)
    }
}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (idx, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..idx],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

fn unquote(s: &str) -> String {
    let t = s.trim();
    if t.len() >= 2 && t.starts_with('"') && t.ends_with('"') {
        t[1..t.len() - 1].to_string()
    } else {
        t.to_string()
    }
}

fn parse_string(value: &str) -> Option<String> {
    let t = value.trim();
    if t.len() >= 2 && t.starts_with('"') && t.ends_with('"') {
        Some(t[1..t.len() - 1].to_string())
    } else {
        None
    }
}

fn parse_list(value: &str) -> Option<Vec<String>> {
    let t = value.trim();
    let inner = t.strip_prefix('[')?.strip_suffix(']')?;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let p = part.trim();
        if p.is_empty() {
            continue;
        }
        out.push(parse_string(p)?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_sections() {
        let cfg = Config::parse(
            r#"
# comment
[scan]
roots = ["src", "crates"]

[secret]
types = ["PrivateKey", "Keypair"]
idents = ["private_key"]

[panic]
paths = ["crates/crypto"]  # trailing comment

[[ct]]
file = "a/modpow.rs"
functions = ["pow", "mod_pow"]
secret = ["exp"]

[[ct]]
file = "b/paillier.rs"
functions = ["decrypt"]
secret = ["m"]

[taint]
paths = ["a/modpow.rs", "b/paillier.rs"]
types = ["PrivateKey", "RandomizerPool"]

[deps]
"crates/bignum" = ["rand", "serde"]
"#,
        )
        .unwrap();
        assert_eq!(cfg.roots, vec!["src", "crates"]);
        assert_eq!(cfg.secret_types, vec!["PrivateKey", "Keypair"]);
        assert_eq!(cfg.panic_paths, vec!["crates/crypto"]);
        assert_eq!(cfg.ct.len(), 2);
        assert_eq!(cfg.ct[0].functions, vec!["pow", "mod_pow"]);
        assert_eq!(cfg.ct[1].file, "b/paillier.rs");
        assert_eq!(cfg.deps_allow.len(), 1);
        assert_eq!(cfg.deps_allow[0].0, "crates/bignum");
        assert_eq!(cfg.taint_paths, vec!["a/modpow.rs", "b/paillier.rs"]);
        assert_eq!(cfg.taint_types, vec!["PrivateKey", "RandomizerPool"]);
    }

    #[test]
    fn empty_config_gets_defaults() {
        let cfg = Config::parse("").unwrap();
        assert_eq!(cfg.roots, vec!["src", "crates"]);
        assert!(cfg.secret_types.is_empty());
    }

    #[test]
    fn bad_list_is_an_error() {
        assert!(Config::parse("[secret]\ntypes = [unquoted]").is_err());
    }
}
