//! Diagnostic model and rendering (human and machine-readable).

/// How bad a finding is. Both severities fail CI when not baselined;
/// the distinction drives display ordering and lets downstream tooling
/// triage const-time warnings separately from hard leak errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Error,
    Warning,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One diagnostic produced by a lint rule.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule code, e.g. `P001`.
    pub rule: &'static str,
    /// Rule family, e.g. `panic-path` — the name waivers use.
    pub family: &'static str,
    pub severity: Severity,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    pub message: String,
    /// Whitespace-normalized source line (fingerprint input).
    pub snippet: String,
    /// Content fingerprint (filled in by [`crate::baseline`]).
    pub fingerprint: String,
    /// Suppressed by the checked-in baseline file.
    pub baselined: bool,
    /// Suppressed by an inline `pprl:allow(...)` waiver.
    pub waived: bool,
}

impl Finding {
    /// True when the finding should fail the run.
    pub fn is_new(&self) -> bool {
        !self.baselined && !self.waived
    }
}

/// Summary counts for a finished run.
#[derive(Debug, Default, Clone, Copy)]
pub struct Summary {
    pub total: usize,
    pub new: usize,
    pub baselined: usize,
    pub waived: usize,
}

pub fn summarize(findings: &[Finding]) -> Summary {
    let mut s = Summary {
        total: findings.len(),
        ..Summary::default()
    };
    for f in findings {
        if f.waived {
            s.waived += 1;
        } else if f.baselined {
            s.baselined += 1;
        } else {
            s.new += 1;
        }
    }
    s
}

/// Renders findings for terminals: `file:line: severity[RULE] message`.
pub fn render_human(findings: &[Finding], verbose: bool) -> String {
    let mut out = String::new();
    for f in findings {
        if !verbose && !f.is_new() {
            continue;
        }
        let tag = if f.waived {
            " (waived)"
        } else if f.baselined {
            " (baseline)"
        } else {
            ""
        };
        out.push_str(&format!(
            "{}:{}: {}[{}/{}] {}{}\n",
            f.file,
            f.line,
            f.severity.as_str(),
            f.family,
            f.rule,
            f.message,
            tag
        ));
    }
    let s = summarize(findings);
    out.push_str(&format!(
        "pprl-analyze: {} finding(s): {} new, {} baselined, {} waived\n",
        s.total, s.new, s.baselined, s.waived
    ));
    out
}

/// Renders findings as a JSON document (hand-rolled: no serde).
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"family\": \"{}\", \"severity\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\", \"fingerprint\": \"{}\", \"baselined\": {}, \"waived\": {}}}{}\n",
            f.rule,
            f.family,
            f.severity.as_str(),
            json_escape(&f.file),
            f.line,
            json_escape(&f.message),
            f.fingerprint,
            f.baselined,
            f.waived,
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    let s = summarize(findings);
    out.push_str(&format!(
        "  ],\n  \"summary\": {{\"total\": {}, \"new\": {}, \"baselined\": {}, \"waived\": {}}}\n}}\n",
        s.total, s.new, s.baselined, s.waived
    ));
    out
}

/// Escapes a string for JSON embedding.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(new: bool) -> Finding {
        Finding {
            rule: "P001",
            family: "panic-path",
            severity: Severity::Error,
            file: "a.rs".into(),
            line: 3,
            message: "msg \"quoted\"".into(),
            snippet: "x.unwrap()".into(),
            fingerprint: "abcd".into(),
            baselined: !new,
            waived: false,
        }
    }

    #[test]
    fn summary_counts() {
        let s = summarize(&[finding(true), finding(false)]);
        assert_eq!((s.total, s.new, s.baselined, s.waived), (2, 1, 1, 0));
    }

    #[test]
    fn json_escapes_quotes() {
        let j = render_json(&[finding(true)]);
        assert!(j.contains("msg \\\"quoted\\\""));
        assert!(j.contains("\"new\": 1"));
    }

    #[test]
    fn human_hides_baselined_unless_verbose() {
        let out = render_human(&[finding(false)], false);
        assert!(!out.contains("a.rs:3"));
        let out = render_human(&[finding(false)], true);
        assert!(out.contains("(baseline)"));
    }
}
