//! A small, dependency-free Rust lexer.
//!
//! The analyzer cannot use `syn` (the workspace is built in offline
//! sandboxes with no registry access), so it works from a token stream
//! with line information instead of a full AST. The lexer understands
//! everything that would otherwise break naive text matching: nested
//! block comments, raw/byte/C strings, char literals vs. lifetimes, and
//! multi-character operators.

/// Token classification — just enough structure for the lint rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (rules check the text against keyword lists).
    Ident,
    /// `'a` — distinguished from char literals.
    Lifetime,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`, `c"…"`).
    Str,
    /// Character literal (`'x'`, `'\n'`).
    Char,
    /// Numeric literal.
    Num,
    /// Operator / punctuation (multi-char operators are one token).
    Punct,
    /// `(`, `[`, or `{` — delimiter text is the single open character.
    Open,
    /// `)`, `]`, or `}`.
    Close,
}

/// A lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

/// A comment (line or block) with the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

/// Token stream plus the comments that were stripped from it.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Multi-character operators, longest first so matching is greedy.
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "..", "<<",
    ">>", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens and comments. Never fails: unterminated
/// constructs are closed at end of input (the analyzer must degrade
/// gracefully on code mid-edit).
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    macro_rules! bump_lines {
        ($s:expr) => {
            line += $s.chars().filter(|&c| c == '\n').count() as u32
        };
    }

    while i < chars.len() {
        let c = chars[i];

        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }

        // Line comment.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i + 2;
            let mut j = start;
            while j < chars.len() && chars[j] != '\n' {
                j += 1;
            }
            out.comments.push(Comment {
                line,
                text: chars[start..j].iter().collect(),
            });
            i = j;
            continue;
        }

        // Block comment (nested).
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let start_line = line;
            let mut depth = 1;
            let mut j = i + 2;
            while j < chars.len() && depth > 0 {
                if chars[j] == '/' && chars.get(j + 1) == Some(&'*') {
                    depth += 1;
                    j += 2;
                } else if chars[j] == '*' && chars.get(j + 1) == Some(&'/') {
                    depth -= 1;
                    j += 2;
                } else {
                    if chars[j] == '\n' {
                        line += 1;
                    }
                    j += 1;
                }
            }
            let text: String = chars[i + 2..j.min(chars.len()).saturating_sub(2).max(i + 2)]
                .iter()
                .collect();
            out.comments.push(Comment {
                line: start_line,
                text,
            });
            i = j;
            continue;
        }

        // String literals, including prefixed (b, r, c, br, cr) and raw forms.
        if let Some((consumed, text)) = try_lex_string(&chars, i) {
            out.tokens.push(Token {
                kind: TokKind::Str,
                text: text.clone(),
                line,
            });
            bump_lines!(text);
            i += consumed;
            continue;
        }

        // Lifetime vs char literal.
        if c == '\'' {
            let next = chars.get(i + 1).copied();
            let after = chars.get(i + 2).copied();
            let is_lifetime = match (next, after) {
                (Some(n), Some(a)) => is_ident_start(n) && a != '\'',
                (Some(n), None) => is_ident_start(n),
                _ => false,
            };
            if is_lifetime {
                let mut j = i + 1;
                while j < chars.len() && is_ident_continue(chars[j]) {
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: TokKind::Lifetime,
                    text: chars[i..j].iter().collect(),
                    line,
                });
                i = j;
            } else {
                // Char literal: consume to the closing quote, honoring escapes.
                let mut j = i + 1;
                while j < chars.len() {
                    match chars[j] {
                        '\\' => j += 2,
                        '\'' => {
                            j += 1;
                            break;
                        }
                        _ => j += 1,
                    }
                }
                out.tokens.push(Token {
                    kind: TokKind::Char,
                    text: chars[i..j.min(chars.len())].iter().collect(),
                    line,
                });
                i = j;
            }
            continue;
        }

        // Identifier / keyword.
        if is_ident_start(c) {
            let mut j = i + 1;
            while j < chars.len() && is_ident_continue(chars[j]) {
                j += 1;
            }
            out.tokens.push(Token {
                kind: TokKind::Ident,
                text: chars[i..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }

        // Number.
        if c.is_ascii_digit() {
            let mut j = i + 1;
            let mut seen_dot = false;
            while j < chars.len() {
                let d = chars[j];
                if d.is_alphanumeric() || d == '_' {
                    // Exponent sign: 1e-3, 2.5E+10.
                    if (d == 'e' || d == 'E')
                        && matches!(chars.get(j + 1), Some('+') | Some('-'))
                        && matches!(chars.get(j + 2), Some(x) if x.is_ascii_digit())
                    {
                        j += 2;
                    }
                    j += 1;
                } else if d == '.'
                    && !seen_dot
                    && matches!(chars.get(j + 1), Some(x) if x.is_ascii_digit())
                {
                    seen_dot = true;
                    j += 1;
                } else {
                    break;
                }
            }
            out.tokens.push(Token {
                kind: TokKind::Num,
                text: chars[i..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }

        // Delimiters.
        if matches!(c, '(' | '[' | '{') {
            out.tokens.push(Token {
                kind: TokKind::Open,
                text: c.to_string(),
                line,
            });
            i += 1;
            continue;
        }
        if matches!(c, ')' | ']' | '}') {
            out.tokens.push(Token {
                kind: TokKind::Close,
                text: c.to_string(),
                line,
            });
            i += 1;
            continue;
        }

        // Multi-char operators, greedy.
        let mut matched = false;
        for op in MULTI_PUNCT {
            let oplen = op.len();
            if i + oplen <= chars.len() {
                let candidate: String = chars[i..i + oplen].iter().collect();
                if candidate == *op {
                    out.tokens.push(Token {
                        kind: TokKind::Punct,
                        text: candidate,
                        line,
                    });
                    i += oplen;
                    matched = true;
                    break;
                }
            }
        }
        if matched {
            continue;
        }

        out.tokens.push(Token {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }

    out
}

/// Attempts to lex a string literal at `chars[at..]`, including prefixed
/// and raw forms. Returns `(chars consumed, literal text)` on success.
fn try_lex_string(chars: &[char], at: usize) -> Option<(usize, String)> {
    let mut j = at;
    // Optional 1–2 letter prefix drawn from {b, r, c}.
    let mut prefix = String::new();
    while j < chars.len() && prefix.len() < 2 && matches!(chars[j], 'b' | 'r' | 'c') {
        prefix.push(chars[j]);
        j += 1;
    }
    let raw = prefix.contains('r');
    // Raw strings allow `#` padding between the prefix and the quote.
    let mut hashes = 0usize;
    if raw {
        while j < chars.len() && chars[j] == '#' {
            hashes += 1;
            j += 1;
        }
    }
    if j >= chars.len() || chars[j] != '"' {
        return None;
    }
    // A bare identifier like `result` starts with `r` but is not a string;
    // the check above (next char must be `"`) already excludes it.
    j += 1;
    if raw {
        // Scan for `"` followed by `hashes` hash marks.
        while j < chars.len() {
            if chars[j] == '"' {
                let mut k = j + 1;
                let mut n = 0;
                while n < hashes && k < chars.len() && chars[k] == '#' {
                    n += 1;
                    k += 1;
                }
                if n == hashes {
                    let text: String = chars[at..k].iter().collect();
                    return Some((k - at, text));
                }
            }
            j += 1;
        }
    } else {
        while j < chars.len() {
            match chars[j] {
                '\\' => j += 2,
                '"' => {
                    let text: String = chars[at..j + 1].iter().collect();
                    return Some((j + 1 - at, text));
                }
                _ => j += 1,
            }
        }
    }
    // Unterminated: consume the rest.
    let text: String = chars[at..].iter().collect();
    Some((chars.len() - at, text))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("let x = a.unwrap();");
        assert_eq!(toks[0], (TokKind::Ident, "let".into()));
        assert_eq!(toks[3], (TokKind::Ident, "a".into()));
        assert_eq!(toks[4], (TokKind::Punct, ".".into()));
        assert_eq!(toks[5], (TokKind::Ident, "unwrap".into()));
    }

    #[test]
    fn multi_char_ops_are_single_tokens() {
        let toks = kinds("a && b || c == d != e .. f ..= g");
        let puncts: Vec<String> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Punct)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(puncts, vec!["&&", "||", "==", "!=", "..", "..="]);
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let toks = kinds("&'a str; 'x'; '\\n'");
        assert_eq!(toks[1], (TokKind::Lifetime, "'a".into()));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Char && t == "'x'"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Char && t == "'\\n'"));
    }

    #[test]
    fn strings_with_brackets_do_not_confuse_tokens() {
        let toks = kinds(r#"let s = "a[0].unwrap()"; t[1]"#);
        // The bracket/unwrap inside the string must not surface as tokens.
        let unwraps = toks
            .iter()
            .filter(|(k, t)| *k == TokKind::Ident && t == "unwrap")
            .count();
        assert_eq!(unwraps, 0);
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Open && t == "["));
    }

    #[test]
    fn raw_and_byte_strings() {
        let toks = kinds(r##"let a = r#"x "quoted" y"#; let b = b"bytes";"##);
        let strs = toks.iter().filter(|(k, _)| *k == TokKind::Str).count();
        assert_eq!(strs, 2);
    }

    #[test]
    fn nested_block_comments_and_line_comments() {
        let l = lex("a /* x /* y */ z */ b // tail\nc");
        let idents: Vec<&str> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, vec!["a", "b", "c"]);
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[1].text.contains("tail"));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let l = lex("a\nb\n\nc");
        let lines: Vec<u32> = l.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn numbers_with_suffixes_and_ranges() {
        let toks = kinds("0..n 1.5f64 0xFF_u8 1e-3");
        assert!(toks.contains(&(TokKind::Num, "0".into())));
        assert!(toks.contains(&(TokKind::Punct, "..".into())));
        assert!(toks.contains(&(TokKind::Num, "1.5f64".into())));
        assert!(toks.contains(&(TokKind::Num, "0xFF_u8".into())));
        assert!(toks.contains(&(TokKind::Num, "1e-3".into())));
    }
}
