//! `pprl-analyze` — workspace-wide crypto-hygiene static analysis.
//!
//! Four lint families guard the PPRL codebase:
//!
//! * **secret-leak** — secret-marked types (Paillier private keys and
//!   friends) must never reach Debug/Display/Serialize, format-macro
//!   output, or the public field surface.
//! * **panic-path** — protocol crates must not `unwrap`/`expect`/
//!   `panic!`/index their way into an abort: a mid-session panic is a
//!   remote DoS and a timing side channel.
//! * **const-time** — designated timing-sensitive functions (modpow,
//!   Montgomery ops, Paillier decrypt) must not branch or short-circuit
//!   on secret-derived values.
//! * **secret-taint** — an intra-procedural dataflow pass seeds taint
//!   from key-material types and `pprl:secret` markers, follows it
//!   through assignments and callee summaries, and flags
//!   secret-dependent branches, array indexes, loop bounds, and early
//!   returns (T001–T004).
//!
//! The analyzer is deliberately **dependency-free** (hand-rolled lexer,
//! TOML-subset config reader, JSON emitter) so it builds and runs even
//! where the registry is unreachable, and so it can never itself violate
//! the dependency policy it enforces (`deps` family, D001).
//!
//! Existing debt is captured in a checked-in baseline keyed by content
//! fingerprints; CI fails only on *new* violations. Individual sites are
//! waived inline with `// pprl:allow(family): justification`.

pub mod baseline;
pub mod config;
pub mod findings;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod scan;

pub use baseline::Baseline;
pub use config::Config;
pub use findings::{render_human, render_json, summarize, Finding, Severity, Summary};
pub use scan::{run_analysis, FileCtx};
