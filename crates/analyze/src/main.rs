//! CLI for the pprl-analyze static analyzer.
//!
//! ```text
//! pprl-analyze [analyze] [--root DIR] [--config FILE] [--baseline FILE]
//!              [--json] [--verbose] [--update-baseline]
//! pprl-analyze deps [--root DIR] [--config FILE]
//! ```
//!
//! Exit codes: 0 = clean (no new findings), 1 = new findings or stale
//! baseline entries, 2 = usage/config error.

use pprl_analyze::baseline::Baseline;
use pprl_analyze::config::Config;
use pprl_analyze::findings::{render_human, render_json, summarize};
use pprl_analyze::rules::deps;
use pprl_analyze::scan::run_analysis;
use std::path::PathBuf;
use std::process::ExitCode;

struct Opts {
    command: String,
    root: PathBuf,
    config: PathBuf,
    baseline: PathBuf,
    json: bool,
    verbose: bool,
    update_baseline: bool,
}

fn usage() -> &'static str {
    "usage: pprl-analyze [analyze|deps] [--root DIR] [--config FILE] \
     [--baseline FILE] [--json] [--verbose] [--update-baseline]"
}

fn parse_args(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        command: "analyze".to_string(),
        root: PathBuf::from("."),
        config: PathBuf::new(),
        baseline: PathBuf::new(),
        json: false,
        verbose: false,
        update_baseline: false,
    };
    let mut it = args.iter().peekable();
    let mut first = true;
    while let Some(a) = it.next() {
        match a.as_str() {
            "analyze" | "deps" if first => opts.command = a.clone(),
            "--root" => {
                opts.root = PathBuf::from(
                    it.next().ok_or("--root needs a value")?,
                )
            }
            "--config" => {
                opts.config = PathBuf::from(
                    it.next().ok_or("--config needs a value")?,
                )
            }
            "--baseline" => {
                opts.baseline = PathBuf::from(
                    it.next().ok_or("--baseline needs a value")?,
                )
            }
            "--json" => opts.json = true,
            "--verbose" | "-v" => opts.verbose = true,
            "--update-baseline" => opts.update_baseline = true,
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
        first = false;
    }
    if opts.config.as_os_str().is_empty() {
        opts.config = opts.root.join("pprl-analyze.toml");
    }
    if opts.baseline.as_os_str().is_empty() {
        opts.baseline = opts.root.join("analyze-baseline.txt");
    }
    Ok(opts)
}

fn load_config(opts: &Opts) -> Result<Config, String> {
    match std::fs::read_to_string(&opts.config) {
        Ok(text) => Config::parse(&text)
            .map_err(|e| format!("{}: {}", opts.config.display(), e)),
        Err(_) => Ok(Config::default()),
    }
}

fn run_analyze(opts: &Opts) -> Result<ExitCode, String> {
    let config = load_config(opts)?;
    let mut findings = run_analysis(&opts.root, &config);

    let prior = match std::fs::read_to_string(&opts.baseline) {
        Ok(text) => Some(
            Baseline::parse(&text)
                .map_err(|e| format!("{}: {}", opts.baseline.display(), e))?,
        ),
        Err(_) => None,
    };

    if opts.update_baseline {
        let base = Baseline::from_findings(&findings, prior.as_ref());
        std::fs::write(&opts.baseline, base.serialize())
            .map_err(|e| format!("write {}: {}", opts.baseline.display(), e))?;
        eprintln!(
            "pprl-analyze: wrote {} entries to {}",
            base.entries.len(),
            opts.baseline.display()
        );
        return Ok(ExitCode::SUCCESS);
    }

    let stale = prior
        .as_ref()
        .map(|b| b.apply(&mut findings))
        .unwrap_or_default();

    if opts.json {
        print!("{}", render_json(&findings));
    } else {
        print!("{}", render_human(&findings, opts.verbose));
        for fp in &stale {
            eprintln!(
                "pprl-analyze: stale baseline entry {fp} — the site was fixed; \
                 remove the line from {}",
                opts.baseline.display()
            );
        }
    }

    let summary = summarize(&findings);
    if summary.new > 0 || !stale.is_empty() {
        Ok(ExitCode::FAILURE)
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

fn run_deps(opts: &Opts) -> Result<ExitCode, String> {
    let config = load_config(opts)?;
    let findings = deps::check_workspace(&opts.root, &config);
    if opts.json {
        print!("{}", render_json(&findings));
    } else {
        print!("{}", render_human(&findings, opts.verbose));
    }
    if findings.iter().any(|f| f.is_new()) {
        Ok(ExitCode::FAILURE)
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let result = match opts.command.as_str() {
        "deps" => run_deps(&opts),
        _ => run_analyze(&opts),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("pprl-analyze: {msg}");
            ExitCode::from(2)
        }
    }
}
