//! A lightweight intra-procedural statement parser over the token stream.
//!
//! The taint pass needs more structure than flat token scans: which
//! `if`/`match`/loop a statement sits under, what a `let` binds, what an
//! expression reads. This module recovers exactly that — function
//! definitions with parameters and a statement tree — without a full AST.
//! Expressions stay as token *spans* (half-open index ranges into
//! [`FileCtx::tokens`]); the taint rules scan spans for identifiers.
//!
//! The parser is deliberately forgiving: it must never panic or loop on
//! any `.rs` file in the workspace, including macro-heavy or mid-edit
//! code. Anything it cannot classify becomes an opaque expression
//! statement, which the taint pass treats conservatively.

use crate::lexer::{TokKind, Token};
use crate::rules::NON_INDEX_KEYWORDS;
use crate::scan::{match_delim, FileCtx};

/// Half-open token index range `[start, end)` into the file's tokens.
pub type Span = (usize, usize);

/// One parameter: the names it binds (patterns may bind several) and the
/// span of its type annotation.
#[derive(Debug, Clone)]
pub struct Param {
    pub names: Vec<String>,
    pub ty: Span,
}

/// A parsed function definition.
#[derive(Debug)]
pub struct FnDef {
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Enclosing `impl` block's type name, if any.
    pub self_type: Option<String>,
    /// Whether the parameter list starts with a `self` receiver.
    pub has_self: bool,
    pub params: Vec<Param>,
    pub body: Vec<Stmt>,
    /// Token span of the whole body (inside the braces).
    pub body_span: Span,
}

/// A statement in the recovered tree. Expression details stay as spans.
#[derive(Debug)]
pub enum Stmt {
    Let {
        line: u32,
        bindings: Vec<String>,
        ty: Option<Span>,
        init: Option<Span>,
    },
    /// An expression statement; `target` is set for assignments
    /// (`x = …`, `x += …`) to the assigned identifier.
    Expr {
        line: u32,
        target: Option<String>,
        value: Span,
    },
    If {
        line: u32,
        cond: Span,
        /// Names bound by `if let PAT = …`.
        pat_bindings: Vec<String>,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
    },
    While {
        line: u32,
        cond: Span,
        pat_bindings: Vec<String>,
        body: Vec<Stmt>,
    },
    For {
        line: u32,
        bindings: Vec<String>,
        iter: Span,
        body: Vec<Stmt>,
    },
    Loop {
        body: Vec<Stmt>,
    },
    Match {
        line: u32,
        scrutinee: Span,
        arms: Vec<Arm>,
    },
    Return {
        line: u32,
        value: Option<Span>,
    },
    Block {
        body: Vec<Stmt>,
    },
}

/// One `match` arm: its pattern span, the names the pattern binds, and
/// the arm body.
#[derive(Debug)]
pub struct Arm {
    pub pat: Span,
    pub bindings: Vec<String>,
    pub body: Vec<Stmt>,
}

/// Is this token an identifier that can *bind* a new name in a pattern?
/// Lowercase/underscore-initial, not a keyword, not `self`.
fn is_binding_ident(t: &Token) -> bool {
    t.kind == TokKind::Ident
        && t.text != "self"
        && t.text != "_"
        && !NON_INDEX_KEYWORDS.contains(&t.text.as_str())
        && t.text
            .chars()
            .next()
            .is_some_and(|c| c.is_lowercase() || c == '_')
}

/// Net angle-bracket depth change contributed by one punct token.
fn angle_delta(t: &Token) -> i32 {
    if t.kind != TokKind::Punct {
        return 0;
    }
    match t.text.as_str() {
        "<" => 1,
        "<<" => 2,
        ">" => -1,
        ">>" => -2,
        "->" | "=>" | "<=" | ">=" | "<<=" | ">>=" => 0,
        _ => 0,
    }
}

/// Parses every function definition in the file (skipping excluded and
/// attribute tokens).
pub fn parse_fns(ctx: &FileCtx) -> Vec<FnDef> {
    let toks = &ctx.tokens;
    let impls = impl_regions(ctx);
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if ctx.excluded[i] || ctx.in_attr[i] || t.kind != TokKind::Ident || t.text != "fn" {
            i += 1;
            continue;
        }
        match parse_fn(ctx, i, &impls) {
            Some((def, next)) => {
                // Nested fns inside this body are found by continuing the
                // outer scan *inside* the body rather than skipping it —
                // but re-parsing closures as fns is avoided because only
                // literal `fn` tokens start a definition.
                out.push(def);
                i = next;
            }
            None => i += 1,
        }
    }
    out
}

/// `(open_brace, close_brace, type_name)` for each `impl` block.
fn impl_regions(ctx: &FileCtx) -> Vec<(usize, usize, String)> {
    let toks = &ctx.tokens;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind == TokKind::Ident && toks[i].text == "impl" && !ctx.in_attr[i] {
            // Find the block open `{` at angle-depth 0.
            let mut j = i + 1;
            let mut open = None;
            while j < toks.len() {
                match toks[j].kind {
                    TokKind::Open if toks[j].text == "{" => {
                        open = Some(j);
                        break;
                    }
                    // `impl Trait for Type where …` — hop over group args.
                    TokKind::Open => j = match_delim(toks, j),
                    TokKind::Punct if toks[j].text == ";" => break,
                    _ => {}
                }
                j += 1;
            }
            if let Some(open) = open {
                let close = match_delim(toks, open);
                if let Some(name) = impl_type_name(toks, i + 1, open) {
                    out.push((open, close, name));
                }
                // Do not skip the body: nested impls are rare but legal.
            }
        }
        i += 1;
    }
    out
}

/// The implemented type's name from an `impl` header span:
/// `impl Foo`, `impl<T> Foo<T>`, `impl Trait for Foo`.
fn impl_type_name(toks: &[Token], start: usize, end: usize) -> Option<String> {
    // If there is a `for` at angle-depth 0, the type follows it.
    let mut depth = 0i32;
    let mut type_start = start;
    for (k, t) in toks.iter().enumerate().take(end).skip(start) {
        depth += angle_delta(t);
        if depth <= 0 && t.kind == TokKind::Ident && t.text == "for" {
            type_start = k + 1;
        }
    }
    // First path ident after leading generics: skip `<…>` then take the
    // last ident of the leading `a::b::Name` path.
    let mut depth = 0i32;
    let mut name = None;
    for t in toks.iter().take(end).skip(type_start) {
        let d = angle_delta(t);
        if depth == 0 && d > 0 && name.is_some() {
            break; // generics after the name: `Foo<T>`
        }
        depth += d;
        if depth > 0 {
            continue;
        }
        match t.kind {
            TokKind::Ident if t.text != "where" && t.text != "dyn" => {
                name = Some(t.text.clone());
            }
            TokKind::Punct if t.text == "::" || t.text == "&" || t.text == "<" => {}
            TokKind::Ident => break,
            _ if name.is_some() => break,
            _ => {}
        }
    }
    name
}

/// Parses one `fn` starting at token `at` (the `fn` keyword). Returns the
/// definition and the index just past the signature (so the caller keeps
/// scanning inside the body for nested fns).
fn parse_fn(ctx: &FileCtx, at: usize, impls: &[(usize, usize, String)]) -> Option<(FnDef, usize)> {
    let toks = &ctx.tokens;
    let name_tok = toks.get(at + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    let name = name_tok.text.clone();
    let line = toks[at].line;

    // Parameter list: the first `(` after the name (skipping generics).
    let mut j = at + 2;
    while j < toks.len() {
        match toks[j].kind {
            TokKind::Open if toks[j].text == "(" => break,
            TokKind::Open => j = match_delim(toks, j),
            TokKind::Punct if toks[j].text == ";" || toks[j].text == "{" => return None,
            _ => {}
        }
        j += 1;
    }
    if j >= toks.len() {
        return None;
    }
    let params_open = j;
    let params_close = match_delim(toks, params_open);
    let (has_self, params) = parse_params(toks, params_open + 1, params_close);

    // Body: first `{` after the params (skipping the return type and any
    // `where` clause groups). A `;` first means a trait method signature.
    let mut k = params_close + 1;
    let mut body_open = None;
    while k < toks.len() {
        match toks[k].kind {
            TokKind::Open if toks[k].text == "{" => {
                body_open = Some(k);
                break;
            }
            TokKind::Open => k = match_delim(toks, k),
            TokKind::Punct if toks[k].text == ";" => break,
            _ => {}
        }
        k += 1;
    }
    let body_open = body_open?;
    let body_close = match_delim(toks, body_open);

    let self_type = impls
        .iter()
        .filter(|&&(open, close, _)| open < at && at < close)
        .map(|(_, _, n)| n.clone())
        .next_back(); // innermost enclosing impl

    let body = parse_stmts(ctx, body_open + 1, body_close);
    Some((
        FnDef {
            name,
            line,
            self_type,
            has_self,
            params,
            body,
            body_span: (body_open + 1, body_close),
        },
        body_open + 1,
    ))
}

/// Splits a parameter list at top-level commas; extracts binding names
/// (idents before the top-level `:`) and the type span after it.
fn parse_params(toks: &[Token], start: usize, end: usize) -> (bool, Vec<Param>) {
    let mut has_self = false;
    let mut params = Vec::new();
    for (seg_start, seg_end) in split_top_level(toks, start, end, ",") {
        if seg_start >= seg_end {
            continue;
        }
        // Find top-level `:` (not `::`).
        let mut colon = None;
        let mut j = seg_start;
        while j < seg_end {
            match toks[j].kind {
                TokKind::Open => j = match_delim(toks, j),
                TokKind::Punct if toks[j].text == ":" => {
                    colon = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        match colon {
            None => {
                // Receiver: `self`, `&self`, `&mut self`, `&'a self`.
                if toks[seg_start..seg_end]
                    .iter()
                    .any(|t| t.kind == TokKind::Ident && t.text == "self")
                {
                    has_self = true;
                }
            }
            Some(colon) => {
                let mut names = Vec::new();
                for t in &toks[seg_start..colon] {
                    if is_binding_ident(t) {
                        names.push(t.text.clone());
                    }
                }
                // `self: Arc<Self>` style receivers.
                if toks[seg_start..colon]
                    .iter()
                    .any(|t| t.kind == TokKind::Ident && t.text == "self")
                {
                    has_self = true;
                }
                params.push(Param {
                    names,
                    ty: (colon + 1, seg_end),
                });
            }
        }
    }
    (has_self, params)
}

/// Splits `[start, end)` at top-level occurrences of `sep`, hopping over
/// delimiter groups. Returns the sub-spans (separators excluded).
fn split_top_level(toks: &[Token], start: usize, end: usize, sep: &str) -> Vec<Span> {
    let mut out = Vec::new();
    let mut seg = start;
    let mut j = start;
    while j < end {
        match toks[j].kind {
            TokKind::Open => {
                j = match_delim(toks, j);
            }
            TokKind::Punct if toks[j].text == sep => {
                out.push((seg, j));
                seg = j + 1;
            }
            _ => {}
        }
        j += 1;
    }
    out.push((seg, end));
    out
}

/// Assignment operators that split an expression statement into
/// `target op value`.
const ASSIGN_OPS: &[&str] = &[
    "=", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<=", ">>=",
];

/// Parses the statements in `[start, end)`.
pub fn parse_stmts(ctx: &FileCtx, start: usize, end: usize) -> Vec<Stmt> {
    let mut out = Vec::new();
    let mut i = start;
    while i < end {
        let before = i;
        if let Some(stmt) = parse_stmt(ctx, &mut i, end) {
            out.push(stmt);
        }
        if i <= before {
            i = before + 1; // always make progress
        }
    }
    out
}

/// Parses one statement starting at `*i`; advances `*i` past it.
fn parse_stmt(ctx: &FileCtx, i: &mut usize, end: usize) -> Option<Stmt> {
    let toks = &ctx.tokens;
    // Skip semicolons, attributes, and stray closers.
    while *i < end {
        let t = &toks[*i];
        if t.kind == TokKind::Punct && t.text == ";" {
            *i += 1;
        } else if t.kind == TokKind::Punct && t.text == "#" {
            // `#[attr]` on a statement.
            if toks
                .get(*i + 1)
                .is_some_and(|t| t.kind == TokKind::Open && t.text == "[")
            {
                *i = match_delim(toks, *i + 1) + 1;
            } else {
                *i += 1;
            }
        } else if t.kind == TokKind::Close {
            *i += 1;
        } else {
            break;
        }
    }
    if *i >= end {
        return None;
    }
    let at = *i;
    let t = &toks[at];
    let line = t.line;

    if t.kind == TokKind::Ident {
        match t.text.as_str() {
            "let" => return parse_let(ctx, i, end),
            "if" => return parse_if(ctx, i, end),
            "while" => return parse_while(ctx, i, end),
            "for" => return parse_for(ctx, i, end),
            "loop" => {
                let open = find_block_open(toks, at + 1, end)?;
                let close = match_delim(toks, open);
                *i = close + 1;
                return Some(Stmt::Loop {
                    body: parse_stmts(ctx, open + 1, close.min(end)),
                });
            }
            "match" => return parse_match(ctx, i, end),
            "return" | "break" => {
                let is_return = t.text == "return";
                let vstart = at + 1;
                let vend = scan_expr_end(toks, vstart, end);
                *i = vend + 1;
                if !is_return {
                    return Some(Stmt::Expr {
                        line,
                        target: None,
                        value: (vstart, vend),
                    });
                }
                return Some(Stmt::Return {
                    line,
                    value: (vstart < vend).then_some((vstart, vend)),
                });
            }
            "unsafe" => {
                if let Some(open) = find_block_open(toks, at + 1, end) {
                    if open == at + 1 {
                        let close = match_delim(toks, open);
                        *i = close + 1;
                        return Some(Stmt::Block {
                            body: parse_stmts(ctx, open + 1, close.min(end)),
                        });
                    }
                }
            }
            // Nested items: parse their bodies as opaque blocks so the
            // statement walk does not mis-nest.
            "fn" | "struct" | "enum" | "impl" | "mod" | "trait" | "use" | "const" | "static"
            | "type" | "macro_rules" => {
                let stop = scan_item_end(toks, at, end);
                *i = stop;
                return None;
            }
            _ => {}
        }
    }
    if t.kind == TokKind::Open && t.text == "{" {
        let close = match_delim(toks, at);
        *i = close + 1;
        return Some(Stmt::Block {
            body: parse_stmts(ctx, at + 1, close.min(end)),
        });
    }

    // Expression statement (possibly an assignment).
    let vend = scan_expr_end(toks, at, end);
    *i = vend + 1;
    let mut target = None;
    let mut op_at = None;
    let mut j = at;
    while j < vend {
        match toks[j].kind {
            TokKind::Open => j = match_delim(toks, j),
            TokKind::Punct if ASSIGN_OPS.contains(&toks[j].text.as_str()) => {
                op_at = Some(j);
                break;
            }
            _ => {}
        }
        j += 1;
    }
    let vspan = if let Some(op) = op_at {
        target = toks[at..op]
            .iter()
            .find(|t| t.kind == TokKind::Ident && !NON_INDEX_KEYWORDS.contains(&t.text.as_str()))
            .map(|t| t.text.clone());
        (op + 1, vend)
    } else {
        (at, vend)
    };
    Some(Stmt::Expr {
        line,
        target,
        value: vspan,
    })
}

/// `let [mut] PAT [: TY] [= INIT];` — when INIT itself starts with a
/// control construct (`if`/`match`/`loop`/`unsafe`/`{`), the construct is
/// *also* parsed as a trailing nested statement so branch findings fire
/// inside `let x = if secret { … }`.
fn parse_let(ctx: &FileCtx, i: &mut usize, end: usize) -> Option<Stmt> {
    let toks = &ctx.tokens;
    let at = *i;
    let line = toks[at].line;
    let stop = scan_expr_end(toks, at, end);

    // Top-level `=` (skip `==`, `=>`; those are distinct tokens already).
    let mut eq = None;
    let mut colon = None;
    let mut j = at + 1;
    while j < stop {
        match toks[j].kind {
            TokKind::Open => j = match_delim(toks, j),
            TokKind::Punct if toks[j].text == "=" => {
                eq = Some(j);
                break;
            }
            TokKind::Punct if toks[j].text == ":" && colon.is_none() => colon = Some(j),
            _ => {}
        }
        j += 1;
    }

    let pat_end = colon.or(eq).unwrap_or(stop);
    let mut bindings = Vec::new();
    let mut j = at + 1;
    while j < pat_end {
        let t = &toks[j];
        // Skip path prefixes (`Some`, `Enum::Variant`) — uppercase or
        // `::`-joined segments are matchers, not binders.
        if is_binding_ident(t) && toks.get(j + 1).map(|n| n.text.as_str()) != Some("::") {
            bindings.push(t.text.clone());
        }
        j += 1;
    }

    let ty = match (colon, eq) {
        (Some(c), Some(e)) => Some((c + 1, e)),
        (Some(c), None) => Some((c + 1, stop)),
        _ => None,
    };
    let init = eq.map(|e| (e + 1, stop));
    *i = stop + 1;
    Some(Stmt::Let {
        line,
        bindings,
        ty,
        init,
    })
}

fn parse_if(ctx: &FileCtx, i: &mut usize, end: usize) -> Option<Stmt> {
    let toks = &ctx.tokens;
    let at = *i;
    let line = toks[at].line;
    let open = find_block_open(toks, at + 1, end)?;
    let (cond, pat_bindings) = cond_and_bindings(toks, at + 1, open);
    let close = match_delim(toks, open);
    let then_body = parse_stmts(ctx, open + 1, close.min(end));
    let mut else_body = Vec::new();
    let mut next = close + 1;
    if toks
        .get(next)
        .is_some_and(|t| t.kind == TokKind::Ident && t.text == "else")
    {
        if toks
            .get(next + 1)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text == "if")
        {
            // `else if …` — parse as a nested If inside the else body.
            let mut k = next + 1;
            if let Some(stmt) = parse_if(ctx, &mut k, end) {
                else_body.push(stmt);
            }
            next = k;
        } else if let Some(eopen) = find_block_open(toks, next + 1, end) {
            let eclose = match_delim(toks, eopen);
            else_body = parse_stmts(ctx, eopen + 1, eclose.min(end));
            next = eclose + 1;
        }
    }
    *i = next;
    Some(Stmt::If {
        line,
        cond,
        pat_bindings,
        then_body,
        else_body,
    })
}

fn parse_while(ctx: &FileCtx, i: &mut usize, end: usize) -> Option<Stmt> {
    let toks = &ctx.tokens;
    let at = *i;
    let line = toks[at].line;
    let open = find_block_open(toks, at + 1, end)?;
    let (cond, pat_bindings) = cond_and_bindings(toks, at + 1, open);
    let close = match_delim(toks, open);
    *i = close + 1;
    Some(Stmt::While {
        line,
        cond,
        pat_bindings,
        body: parse_stmts(ctx, open + 1, close.min(end)),
    })
}

fn parse_for(ctx: &FileCtx, i: &mut usize, end: usize) -> Option<Stmt> {
    let toks = &ctx.tokens;
    let at = *i;
    let line = toks[at].line;
    let open = find_block_open(toks, at + 1, end)?;
    // `for PAT in ITER {` — find top-level `in`.
    let mut in_at = None;
    let mut j = at + 1;
    while j < open {
        match toks[j].kind {
            TokKind::Open => j = match_delim(toks, j),
            TokKind::Ident if toks[j].text == "in" => {
                in_at = Some(j);
                break;
            }
            _ => {}
        }
        j += 1;
    }
    let in_at = in_at?;
    let bindings = toks[at + 1..in_at]
        .iter()
        .filter(|t| is_binding_ident(t))
        .map(|t| t.text.clone())
        .collect();
    let close = match_delim(toks, open);
    *i = close + 1;
    Some(Stmt::For {
        line,
        bindings,
        iter: (in_at + 1, open),
        body: parse_stmts(ctx, open + 1, close.min(end)),
    })
}

fn parse_match(ctx: &FileCtx, i: &mut usize, end: usize) -> Option<Stmt> {
    let toks = &ctx.tokens;
    let at = *i;
    let line = toks[at].line;
    let open = find_block_open(toks, at + 1, end)?;
    let close = match_delim(toks, open);
    let scrutinee = (at + 1, open);
    let mut arms = Vec::new();

    // Arms: `PAT [if GUARD] => BODY ,` — split at top-level `=>`.
    let mut j = open + 1;
    let mut pat_start = j;
    while j < close {
        match toks[j].kind {
            TokKind::Open => j = match_delim(toks, j),
            TokKind::Punct if toks[j].text == "=>" => {
                let pat = (pat_start, j);
                let bindings = toks[pat.0..pat.1]
                    .iter()
                    .filter(|t| is_binding_ident(t))
                    .filter(|t| !matches!(t.text.as_str(), "if"))
                    .map(|t| t.text.clone())
                    .collect();
                // Body: a block, or an expression ending at top-level `,`.
                let bstart = j + 1;
                let bend = if toks
                    .get(bstart)
                    .is_some_and(|t| t.kind == TokKind::Open && t.text == "{")
                {
                    match_delim(toks, bstart) + 1
                } else {
                    let mut k = bstart;
                    while k < close {
                        match toks[k].kind {
                            TokKind::Open => k = match_delim(toks, k),
                            TokKind::Punct if toks[k].text == "," => break,
                            _ => {}
                        }
                        k += 1;
                    }
                    k
                };
                arms.push(Arm {
                    pat,
                    bindings,
                    body: parse_stmts(ctx, bstart, bend.min(close)),
                });
                j = bend;
                pat_start = j + 1;
            }
            _ => {}
        }
        j += 1;
    }
    *i = close + 1;
    Some(Stmt::Match {
        line,
        scrutinee,
        arms,
    })
}

/// The condition span before a block open, plus any `let PAT =` bindings
/// (`if let` / `while let`).
fn cond_and_bindings(toks: &[Token], start: usize, open: usize) -> (Span, Vec<String>) {
    let mut bindings = Vec::new();
    if toks
        .get(start)
        .is_some_and(|t| t.kind == TokKind::Ident && t.text == "let")
    {
        // Bindings between `let` and the first `=` — groups are scanned
        // through, not hopped, because tuple/struct patterns bind inside
        // them (`Some(v)`, `(a, b)`). Patterns cannot contain a bare `=`,
        // so the first one always ends the pattern.
        for j in start + 1..open {
            match toks[j].kind {
                TokKind::Punct if toks[j].text == "=" => break,
                TokKind::Ident
                    if is_binding_ident(&toks[j])
                        && toks.get(j + 1).map(|n| n.text.as_str()) != Some("::") =>
                {
                    bindings.push(toks[j].text.clone());
                }
                _ => {}
            }
        }
    }
    ((start, open), bindings)
}

/// First `{` at expression top level in `[from, end)` — hops over other
/// delimiter groups (call args, closures) so struct-literal braces inside
/// parens never match. Gives up at `;`.
fn find_block_open(toks: &[Token], from: usize, end: usize) -> Option<usize> {
    let mut j = from;
    while j < end {
        match toks[j].kind {
            TokKind::Open if toks[j].text == "{" => return Some(j),
            TokKind::Open => j = match_delim(toks, j),
            TokKind::Punct if toks[j].text == ";" => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

/// End of an expression statement starting at `from`: the index of the
/// top-level `;`, or `end` if none (tail expression).
fn scan_expr_end(toks: &[Token], from: usize, end: usize) -> usize {
    let mut j = from;
    while j < end {
        match toks[j].kind {
            TokKind::Open => j = match_delim(toks, j),
            TokKind::Close => return j,
            TokKind::Punct if toks[j].text == ";" => return j,
            _ => {}
        }
        j += 1;
    }
    end
}

/// Skips a nested item (fn/struct/impl/…): through the first top-level
/// `{`-block or to the `;`.
fn scan_item_end(toks: &[Token], from: usize, end: usize) -> usize {
    let mut j = from;
    while j < end {
        match toks[j].kind {
            TokKind::Open if toks[j].text == "{" => return match_delim(toks, j) + 1,
            TokKind::Open => j = match_delim(toks, j),
            TokKind::Punct if toks[j].text == ";" => return j + 1,
            _ => {}
        }
        j += 1;
    }
    end
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Vec<FnDef> {
        let ctx = FileCtx::build("test.rs".into(), src);
        parse_fns(&ctx)
    }

    #[test]
    fn params_and_self_type() {
        let fns = parse(
            "impl Key {\n    pub fn dec(&self, table: &[u64], k: u64) -> u64 { 0 }\n}\nfn free(x: u32) {}",
        );
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name, "dec");
        assert!(fns[0].has_self);
        assert_eq!(fns[0].self_type.as_deref(), Some("Key"));
        assert_eq!(fns[0].params.len(), 2);
        assert_eq!(fns[0].params[0].names, vec!["table"]);
        assert_eq!(fns[0].params[1].names, vec!["k"]);
        assert_eq!(fns[1].name, "free");
        assert!(!fns[1].has_self);
        assert!(fns[1].self_type.is_none());
    }

    #[test]
    fn generic_fn_and_trait_impl_type() {
        let fns = parse(
            "impl<T: Clone> Iterator for Wrap<T> {\n    fn next<R: Rng>(&mut self, rng: &mut R) -> Option<T> { None }\n}",
        );
        assert_eq!(fns[0].self_type.as_deref(), Some("Wrap"));
        assert_eq!(fns[0].params[0].names, vec!["rng"]);
    }

    #[test]
    fn let_if_while_for_match_return() {
        let fns = parse(
            "fn f(k: u64) -> u64 {\n\
             let mut acc = 0u64;\n\
             if k > 0 { acc += 1; } else { acc += 2; }\n\
             while acc < 9 { acc += 1; }\n\
             for i in 0..k { acc += i; }\n\
             match acc { 0 => return 0, n => acc = n, }\n\
             return acc;\n\
             }",
        );
        let body = &fns[0].body;
        assert!(matches!(body[0], Stmt::Let { ref bindings, .. } if bindings == &["acc"]));
        let Stmt::If {
            then_body,
            else_body,
            ..
        } = &body[1]
        else {
            panic!("expected if: {:?}", body[1]);
        };
        assert_eq!(then_body.len(), 1);
        assert_eq!(else_body.len(), 1);
        assert!(matches!(body[2], Stmt::While { .. }));
        let Stmt::For { bindings, .. } = &body[3] else {
            panic!("expected for");
        };
        assert_eq!(bindings, &["i"]);
        let Stmt::Match { arms, .. } = &body[4] else {
            panic!("expected match");
        };
        assert_eq!(arms.len(), 2);
        assert!(matches!(arms[0].body[0], Stmt::Return { .. }));
        assert_eq!(arms[1].bindings, vec!["n"]);
        assert!(matches!(body[5], Stmt::Return { value: Some(_), .. }));
    }

    #[test]
    fn if_let_bindings_and_else_if() {
        let fns = parse(
            "fn f(o: Option<u64>) {\n\
             if let Some(v) = o { use_it(v); } else if o.is_none() { other(); }\n\
             }",
        );
        let Stmt::If {
            pat_bindings,
            else_body,
            ..
        } = &fns[0].body[0]
        else {
            panic!("expected if");
        };
        assert_eq!(pat_bindings, &["v"]);
        assert!(matches!(else_body[0], Stmt::If { .. }), "else-if nests");
    }

    #[test]
    fn assignment_targets() {
        let fns = parse("fn f() { x = 1; y += z[0]; call(a); }");
        let b = &fns[0].body;
        assert!(matches!(&b[0], Stmt::Expr { target: Some(t), .. } if t == "x"));
        assert!(matches!(&b[1], Stmt::Expr { target: Some(t), .. } if t == "y"));
        assert!(matches!(&b[2], Stmt::Expr { target: None, .. }));
    }

    #[test]
    fn let_bindings_skip_path_matchers() {
        let fns = parse("fn f() { let Some(v) = thing else { return; }; let (a, b) = pair; }");
        let Stmt::Let { bindings, .. } = &fns[0].body[0] else {
            panic!("expected let");
        };
        assert_eq!(bindings, &["v"], "Some is a matcher, not a binder");
    }

    #[test]
    fn struct_literal_in_call_args_does_not_eat_if_block() {
        let fns = parse("fn f(k: u64) { if check(Config { v: 1 }) { go(); } }");
        let Stmt::If { then_body, .. } = &fns[0].body[0] else {
            panic!("expected if, got {:?}", fns[0].body);
        };
        assert_eq!(then_body.len(), 1);
    }

    #[test]
    fn nested_fn_is_its_own_def() {
        let fns = parse("fn outer() { fn inner(s: u64) -> u64 { s } inner(1); }");
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[1].name, "inner");
    }

    #[test]
    fn test_code_is_skipped() {
        let fns = parse("#[cfg(test)]\nmod t { fn hidden() {} }\nfn visible() {}");
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "visible");
    }

    #[test]
    fn malformed_input_does_not_panic() {
        for src in [
            "fn f( {",
            "fn f(x: u64 { if { }",
            "impl { fn g() }",
            "fn f() { match x { ",
            "fn f() { let = ; }",
        ] {
            let _ = parse(src); // must terminate without panic
        }
    }
}
