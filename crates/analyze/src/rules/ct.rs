//! Rule family `const-time` (C001–C003).
//!
//! Timing-sensitive functions (modular exponentiation, Montgomery
//! arithmetic, Paillier decryption) are listed in `[[ct]]` config blocks
//! together with the identifiers that carry secret-derived data inside
//! them. Within those function bodies:
//!
//! * C001 — `if` / `while` / `match` whose condition reads a secret.
//! * C002 — early `return` (data-dependent control flow shortens the
//!   observable runtime).
//! * C003 — comparison or short-circuit operator applied to a secret
//!   outside an already-flagged condition.
//!
//! These are warnings: constant-time violations need human judgement
//! (some branches are on public loop bounds), so each real site is
//! either fixed or waived with a written justification.

use super::emit;
use crate::config::{Config, CtTarget};
use crate::findings::Severity;
use crate::lexer::TokKind;
use crate::scan::{match_delim, FileCtx};

const FAMILY: &str = "const-time";

const CMP_OPS: &[&str] = &["==", "!=", "<", ">", "<=", ">=", "&&", "||"];

pub fn check(ctx: &FileCtx, config: &Config, findings: &mut Vec<crate::findings::Finding>) {
    for target in &config.ct {
        if !ctx.path.ends_with(target.file.as_str()) {
            continue;
        }
        check_target(ctx, target, findings);
    }
}

fn check_target(ctx: &FileCtx, target: &CtTarget, findings: &mut Vec<crate::findings::Finding>) {
    let toks = &ctx.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Ident
            && t.text == "fn"
            && !ctx.excluded[i]
            && !ctx.in_attr[i]
            && toks.get(i + 1).is_some_and(|n| {
                n.kind == TokKind::Ident && target.functions.iter().any(|f| f == &n.text)
            })
        {
            // Find the body `{ … }`, skipping the signature.
            let mut j = i + 2;
            let mut body_open = None;
            while j < toks.len() {
                match toks[j].kind {
                    TokKind::Open if toks[j].text == "{" => {
                        body_open = Some(j);
                        break;
                    }
                    TokKind::Open => j = match_delim(toks, j),
                    TokKind::Punct if toks[j].text == ";" => break,
                    _ => {}
                }
                j += 1;
            }
            if let Some(open) = body_open {
                let close = match_delim(toks, open);
                check_body(ctx, target, open + 1, close, findings);
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
}

fn is_secret(target: &CtTarget, text: &str) -> bool {
    target.secret.iter().any(|s| s == text)
}

fn check_body(
    ctx: &FileCtx,
    target: &CtTarget,
    from: usize,
    to: usize,
    findings: &mut Vec<crate::findings::Finding>,
) {
    let toks = &ctx.tokens;
    // Lines already flagged by C001 — C003 skips them so one secret
    // branch does not double-report as both a branch and a comparison.
    let mut branch_lines: Vec<u32> = Vec::new();

    let mut i = from;
    while i < to {
        let t = &toks[i];

        // C001: branch whose condition mentions a secret identifier.
        if t.kind == TokKind::Ident && matches!(t.text.as_str(), "if" | "while" | "match") {
            // Condition spans from the keyword to the body `{` at the
            // same bracket depth (skipping struct-literal-free Rust
            // condition position: any nested `(`/`[` group is stepped
            // over whole).
            let mut j = i + 1;
            let mut secret_hit: Option<u32> = None;
            while j < to {
                match toks[j].kind {
                    TokKind::Open if toks[j].text == "{" => break,
                    TokKind::Open => {
                        let close = match_delim(toks, j);
                        for u in &toks[j..=close.min(to - 1)] {
                            if u.kind == TokKind::Ident && is_secret(target, &u.text) {
                                secret_hit.get_or_insert(u.line);
                            }
                        }
                        j = close;
                    }
                    TokKind::Ident if is_secret(target, &toks[j].text) => {
                        secret_hit.get_or_insert(toks[j].line);
                    }
                    _ => {}
                }
                j += 1;
            }
            if let Some(line) = secret_hit {
                branch_lines.push(t.line);
                branch_lines.push(line);
                emit(
                    ctx,
                    findings,
                    "C001",
                    FAMILY,
                    Severity::Warning,
                    t.line,
                    format!(
                        "`{}` condition depends on secret data in `{}` — \
                         restructure as constant-time select",
                        t.text,
                        fn_label(target)
                    ),
                );
            }
        }

        // C002: early return inside a timing-sensitive body.
        if t.kind == TokKind::Ident && t.text == "return" {
            emit(
                ctx,
                findings,
                "C002",
                FAMILY,
                Severity::Warning,
                t.line,
                format!(
                    "early `return` in `{}` makes runtime data-dependent",
                    fn_label(target)
                ),
            );
        }

        // C003: comparison/short-circuit operator touching a secret on
        // a line not already flagged as a secret branch.
        if t.kind == TokKind::Punct && CMP_OPS.contains(&t.text.as_str()) {
            let near_secret = neighbors(toks, i, to)
                .any(|u| u.kind == TokKind::Ident && is_secret(target, &u.text));
            if near_secret && !branch_lines.contains(&t.line) {
                emit(
                    ctx,
                    findings,
                    "C003",
                    FAMILY,
                    Severity::Warning,
                    t.line,
                    format!(
                        "comparison on secret data in `{}` — result is \
                         branch-predictable; use a constant-time compare",
                        fn_label(target)
                    ),
                );
            }
        }

        i += 1;
    }
}

/// Tokens within a short window either side of `i` (same expression,
/// approximately) — enough to tell `x == secret` from unrelated ops.
fn neighbors(
    toks: &[crate::lexer::Token],
    i: usize,
    to: usize,
) -> impl Iterator<Item = &crate::lexer::Token> {
    let lo = i.saturating_sub(3);
    let hi = (i + 4).min(to);
    toks[lo..hi].iter()
}

fn fn_label(target: &CtTarget) -> String {
    target.functions.join("/")
}
