//! Rule family `deps` (D001): stdlib-only / allowlist dependency policy.
//!
//! Core crates (`bignum`, `crypto`) must not silently grow external
//! dependencies — each crate dir listed under `[deps]` in the config may
//! only depend on workspace-internal `pprl-*` crates plus its explicit
//! allowlist. This is a cargo-deny-shaped check that works offline: it
//! reads each crate's `Cargo.toml` `[dependencies]` section directly.

use crate::config::Config;
use crate::findings::{Finding, Severity};
use std::path::Path;

const FAMILY: &str = "deps";

/// Checks dependency allowlists. Produces plain findings (no waiver or
/// baseline context — policy violations here must be fixed in config).
pub fn check_workspace(root: &Path, config: &Config) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (crate_dir, allow) in &config.deps_allow {
        let manifest = root.join(crate_dir).join("Cargo.toml");
        let Ok(text) = std::fs::read_to_string(&manifest) else {
            findings.push(Finding {
                rule: "D001",
                family: FAMILY,
                severity: Severity::Error,
                file: format!("{crate_dir}/Cargo.toml"),
                line: 1,
                message: "crate listed in [deps] policy but Cargo.toml not readable".to_string(),
                snippet: String::new(),
                fingerprint: String::new(),
                baselined: false,
                waived: false,
            });
            continue;
        };
        for (line_no, dep) in dependencies(&text) {
            let internal = dep.starts_with("pprl");
            if !internal && !allow.iter().any(|a| a == &dep) {
                findings.push(Finding {
                    rule: "D001",
                    family: FAMILY,
                    severity: Severity::Error,
                    file: format!("{crate_dir}/Cargo.toml"),
                    line: line_no,
                    message: format!(
                        "dependency `{dep}` is not on the allowlist for {crate_dir} \
                         (allowed: {})",
                        if allow.is_empty() {
                            "workspace pprl-* crates only".to_string()
                        } else {
                            allow.join(", ")
                        }
                    ),
                    snippet: String::new(),
                    fingerprint: String::new(),
                    baselined: false,
                    waived: false,
                });
            }
        }
    }
    findings
}

/// Extracts `(line, name)` for each key in `[dependencies]` /
/// `[dev-dependencies]`-style sections of a manifest. Dotted keys like
/// `serde.workspace = true` reduce to their first segment.
fn dependencies(manifest: &str) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    let mut in_deps = false;
    for (idx, raw) in manifest.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            // Only the real [dependencies] table is policy-relevant:
            // dev-dependencies never ship in the built artifact.
            in_deps = line == "[dependencies]";
            continue;
        }
        if !in_deps || line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some(eq) = line.find('=') else { continue };
        let key = line[..eq].trim().trim_matches('"');
        let name = key.split('.').next().unwrap_or(key).trim();
        if !name.is_empty() {
            out.push((idx as u32 + 1, name.to_string()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_dependency_names() {
        let deps = dependencies(
            "[package]\nname = \"x\"\n\n[dependencies]\nrand = \"0.8\"\nserde.workspace = true\npprl-bignum = { path = \"../bignum\" }\n\n[dev-dependencies]\nproptest = \"1\"\n",
        );
        let names: Vec<&str> = deps.iter().map(|(_, n)| n.as_str()).collect();
        assert_eq!(names, vec!["rand", "serde", "pprl-bignum"]);
    }

    #[test]
    fn dev_dependencies_are_ignored() {
        let deps = dependencies("[dev-dependencies]\ncriterion = \"0.5\"\n");
        assert!(deps.is_empty());
    }
}
