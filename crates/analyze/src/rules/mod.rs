//! The lint rule families.
//!
//! | family       | codes      | what it catches                                  |
//! |--------------|------------|--------------------------------------------------|
//! | `secret-leak`| S001–S004  | secret types escaping via Debug/Display/Serialize,|
//! |              |            | format-macro args, or public fields              |
//! | `panic-path` | P001–P004  | unwrap/expect/panic-family/slice-indexing in     |
//! |              |            | non-test protocol code                           |
//! | `const-time` | C001–C003  | secret-dependent branches, early returns, and    |
//! |              |            | short-circuit comparisons in timing-sensitive fns|
//! | `secret-taint`| T001–T004 | dataflow-derived secret-dependent branches, array|
//! |              |            | indexes, loop bounds, and early returns          |
//! | `deps`       | D001       | external dependencies outside the allowlist      |

pub mod ct;
pub mod deps;
pub mod panic;
pub mod secret;
pub mod taint;

use crate::findings::{Finding, Severity};
use crate::scan::FileCtx;

/// Shared constructor: builds a finding, resolving snippet and waiver
/// state from the file context.
pub(crate) fn emit(
    ctx: &FileCtx,
    findings: &mut Vec<Finding>,
    rule: &'static str,
    family: &'static str,
    severity: Severity,
    line: u32,
    message: String,
) {
    // One finding per (rule, line) per file keeps duplicate token hits
    // (e.g. chained indexing) from flooding the report.
    if findings
        .iter()
        .any(|f| f.rule == rule && f.file == ctx.path && f.line == line)
    {
        return;
    }
    let waived = ctx.waiver_for(line, family).is_some() || ctx.waiver_for(line, rule).is_some();
    findings.push(Finding {
        rule,
        family,
        severity,
        file: ctx.path.clone(),
        line,
        message,
        snippet: ctx.line_text(line),
        fingerprint: String::new(),
        baselined: false,
        waived,
    });
}

/// Rust keywords that can directly precede `[` without the bracket being
/// an indexing operation (pattern/type/expression-head positions).
pub(crate) const NON_INDEX_KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "static", "struct", "super", "trait", "true", "type", "unsafe",
    "use", "where", "while", "yield",
];
