//! Rule family `panic-path` (P001–P004).
//!
//! Protocol code must not abort mid-session: a panic in the middle of an
//! SMC exchange leaks timing information, strands the peer, and turns a
//! malformed message into a denial of service. Within the configured
//! path prefixes (non-test code only):
//!
//! * P001 — `.unwrap()`
//! * P002 — `.expect(…)`
//! * P003 — `panic!` / `unreachable!` / `todo!` / `unimplemented!`
//! * P004 — slice/array indexing `x[i]` (use `get`/`get_mut` + `?`)

use super::{emit, NON_INDEX_KEYWORDS};
use crate::config::Config;
use crate::findings::Severity;
use crate::lexer::TokKind;
use crate::scan::FileCtx;

const FAMILY: &str = "panic-path";

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

pub fn check(ctx: &FileCtx, config: &Config, findings: &mut Vec<crate::findings::Finding>) {
    if !config.panic_paths.iter().any(|p| ctx.path.starts_with(p.as_str())) {
        return;
    }
    let toks = &ctx.tokens;

    for i in 0..toks.len() {
        if ctx.excluded[i] || ctx.in_attr[i] {
            continue;
        }
        let t = &toks[i];

        // P001/P002: `.unwrap(` / `.expect(`.
        if t.kind == TokKind::Punct && t.text == "." {
            if let Some(m) = toks.get(i + 1).filter(|m| m.kind == TokKind::Ident) {
                let is_call = toks
                    .get(i + 2)
                    .is_some_and(|o| o.kind == TokKind::Open && o.text == "(");
                if is_call && m.text == "unwrap" {
                    emit(
                        ctx,
                        findings,
                        "P001",
                        FAMILY,
                        Severity::Error,
                        m.line,
                        "`.unwrap()` on a protocol path — propagate a typed error instead"
                            .to_string(),
                    );
                } else if is_call && m.text == "expect" {
                    emit(
                        ctx,
                        findings,
                        "P002",
                        FAMILY,
                        Severity::Error,
                        m.line,
                        "`.expect(..)` on a protocol path — propagate a typed error instead"
                            .to_string(),
                    );
                }
            }
        }

        // P003: panic-family macro invocation.
        if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && toks
                .get(i + 1)
                .is_some_and(|n| n.kind == TokKind::Punct && n.text == "!")
        {
            emit(
                ctx,
                findings,
                "P003",
                FAMILY,
                Severity::Error,
                t.line,
                format!("`{}!` aborts the session — return an error variant instead", t.text),
            );
        }

        // P004: indexing. A `[` directly after an expression tail
        // (identifier that is not a keyword, `)`, or `]`) is an index
        // operation; after keywords, `=`/`,`/`(` etc. it is an array or
        // slice-pattern literal.
        if t.kind == TokKind::Open && t.text == "[" && i > 0 {
            let p = &toks[i - 1];
            let indexes = match p.kind {
                TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&p.text.as_str()),
                TokKind::Close => p.text == ")" || p.text == "]",
                _ => false,
            };
            if indexes {
                emit(
                    ctx,
                    findings,
                    "P004",
                    FAMILY,
                    Severity::Error,
                    t.line,
                    "slice indexing can panic on out-of-range — use `.get(..)` and handle `None`"
                        .to_string(),
                );
            }
        }
    }
}
