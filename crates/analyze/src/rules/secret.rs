//! Rule family `secret-leak` (S001–S004).
//!
//! A type is *secret* when its name is in the config `[secret] types`
//! list or it carries a `pprl:secret` marker comment. Secret material
//! must never reach an output channel:
//!
//! * S001 — secret type derives `Debug` or `Serialize`.
//! * S002 — manual `impl Debug/Display/Serialize for Secret` (a
//!   redacting impl is waived with `pprl:allow(secret-leak): …`).
//! * S003 — a secret type or secret identifier appears in the arguments
//!   (or inline format captures) of a format/log macro.
//! * S004 — a secret struct exposes a `pub` field (`pub(crate)` and
//!   narrower are allowed: they do not escape the workspace API).

use super::emit;
use crate::config::Config;
use crate::findings::Severity;
use crate::lexer::TokKind;
use crate::scan::{match_delim, FileCtx};
use std::collections::HashSet;

const FAMILY: &str = "secret-leak";

/// Traits whose impl/derive moves a value onto an output channel.
const LEAK_TRAITS: &[&str] = &["Debug", "Display", "Serialize"];

/// Macros that format their arguments somewhere observable.
const FMT_MACROS: &[&str] = &[
    "format", "print", "println", "eprint", "eprintln", "write", "writeln", "format_args",
    "panic", "todo", "unimplemented", "assert", "assert_eq", "assert_ne", "debug_assert",
    "debug_assert_eq", "debug_assert_ne", "trace", "debug", "info", "warn", "error", "log",
];

pub fn check(
    ctx: &FileCtx,
    config: &Config,
    secret_types: &HashSet<String>,
    findings: &mut Vec<crate::findings::Finding>,
) {
    if secret_types.is_empty() && config.secret_idents.is_empty() {
        return;
    }
    let toks = &ctx.tokens;

    for i in 0..toks.len() {
        if ctx.excluded[i] {
            continue;
        }
        let t = &toks[i];

        // S001: #[derive(…Debug/Serialize…)] on a secret type.
        if t.kind == TokKind::Ident && t.text == "derive" && ctx.in_attr[i] {
            if let Some(open) = toks
                .get(i + 1)
                .filter(|n| n.kind == TokKind::Open && n.text == "(")
                .map(|_| i + 1)
            {
                let close = match_delim(toks, open);
                let derived: Vec<&str> = toks[open + 1..close]
                    .iter()
                    .filter(|d| d.kind == TokKind::Ident)
                    .map(|d| d.text.as_str())
                    .collect();
                let leaking: Vec<&str> = derived
                    .iter()
                    .copied()
                    .filter(|d| LEAK_TRAITS.contains(d))
                    .collect();
                if !leaking.is_empty() {
                    if let Some(name) = item_name_after(ctx, close + 1) {
                        if secret_types.contains(&name) {
                            emit(
                                ctx,
                                findings,
                                "S001",
                                FAMILY,
                                Severity::Error,
                                t.line,
                                format!(
                                    "secret type `{}` derives {} — remove the derive or \
                                     provide a redacting impl",
                                    name,
                                    leaking.join("/")
                                ),
                            );
                        }
                    }
                }
            }
        }

        // S002: manual leak-trait impl for a secret type.
        if t.kind == TokKind::Ident && t.text == "impl" && !ctx.in_attr[i] {
            let mut trait_hit: Option<&str> = None;
            let mut for_at: Option<usize> = None;
            let mut j = i + 1;
            while j < toks.len() && j < i + 40 {
                let u = &toks[j];
                if u.kind == TokKind::Open && u.text == "{" {
                    break;
                }
                if u.kind == TokKind::Punct && u.text == ";" {
                    break;
                }
                if u.kind == TokKind::Ident {
                    if u.text == "for" && for_at.is_none() {
                        for_at = Some(j);
                    } else if for_at.is_none() && LEAK_TRAITS.contains(&u.text.as_str()) {
                        trait_hit = Some(LEAK_TRAITS
                            [LEAK_TRAITS.iter().position(|x| *x == u.text).unwrap_or(0)]);
                    }
                }
                j += 1;
            }
            if let (Some(trait_name), Some(fa)) = (trait_hit, for_at) {
                // The implementing type: last path segment before `{`/`<`/where.
                let mut type_name: Option<String> = None;
                let mut k = fa + 1;
                while k < toks.len() && k < fa + 10 {
                    let u = &toks[k];
                    if u.kind == TokKind::Ident {
                        if u.text == "where" {
                            break;
                        }
                        type_name = Some(u.text.clone());
                    } else if (u.kind == TokKind::Open && u.text == "{")
                        || (u.kind == TokKind::Punct && u.text != "::")
                    {
                        break;
                    }
                    k += 1;
                }
                if let Some(name) = type_name {
                    if secret_types.contains(&name) {
                        emit(
                            ctx,
                            findings,
                            "S002",
                            FAMILY,
                            Severity::Error,
                            t.line,
                            format!(
                                "manual `{trait_name}` impl for secret type `{name}` — \
                                 redact fields, then waive with pprl:allow(secret-leak)"
                            ),
                        );
                    }
                }
            }
        }

        // S003: secret in format-macro arguments.
        if t.kind == TokKind::Ident
            && FMT_MACROS.contains(&t.text.as_str())
            && !ctx.in_attr[i]
            && toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Punct && n.text == "!")
        {
            if let Some(open) = toks
                .get(i + 2)
                .filter(|n| n.kind == TokKind::Open)
                .map(|_| i + 2)
            {
                let close = match_delim(toks, open);
                for a in &toks[open + 1..close] {
                    let hit = match a.kind {
                        TokKind::Ident => {
                            secret_types.contains(&a.text)
                                || config.secret_idents.contains(&a.text)
                        }
                        // Inline captures: "{sk:?}" inside the literal.
                        TokKind::Str => str_captures_secret(&a.text, secret_types, config),
                        _ => false,
                    };
                    if hit {
                        emit(
                            ctx,
                            findings,
                            "S003",
                            FAMILY,
                            Severity::Error,
                            a.line,
                            format!(
                                "secret value reaches `{}!` output — remove it from the \
                                 format arguments",
                                t.text
                            ),
                        );
                    }
                }
            }
        }

        // S004: pub field inside a secret struct body.
        if t.kind == TokKind::Ident && t.text == "struct" && !ctx.in_attr[i] {
            let Some(name_tok) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) else {
                continue;
            };
            if !secret_types.contains(&name_tok.text) {
                continue;
            }
            // Find the record body `{ … }` (skip tuple structs / `;`).
            let mut j = i + 2;
            let mut body: Option<usize> = None;
            while j < toks.len() && j < i + 30 {
                match toks[j].kind {
                    TokKind::Open if toks[j].text == "{" => {
                        body = Some(j);
                        break;
                    }
                    TokKind::Punct if toks[j].text == ";" => break,
                    TokKind::Open => {
                        j = match_delim(toks, j);
                    }
                    _ => {}
                }
                j += 1;
            }
            if let Some(open) = body {
                let close = match_delim(toks, open);
                let mut k = open + 1;
                while k < close {
                    let u = &toks[k];
                    if u.kind == TokKind::Open {
                        k = match_delim(toks, k) + 1;
                        continue;
                    }
                    if u.kind == TokKind::Ident
                        && u.text == "pub"
                        && !toks
                            .get(k + 1)
                            .is_some_and(|n| n.kind == TokKind::Open && n.text == "(")
                    {
                        emit(
                            ctx,
                            findings,
                            "S004",
                            FAMILY,
                            Severity::Error,
                            u.line,
                            format!(
                                "secret type `{}` exposes a pub field — narrow to \
                                 pub(crate) or an accessor",
                                name_tok.text
                            ),
                        );
                    }
                    k += 1;
                }
            }
        }
    }
}

/// First `struct`/`enum` name within a short window after a derive
/// attribute (skipping stacked attributes and visibility modifiers).
fn item_name_after(ctx: &FileCtx, from: usize) -> Option<String> {
    let toks = &ctx.tokens;
    let mut j = from;
    let limit = (from + 40).min(toks.len());
    while j < limit {
        let t = &toks[j];
        if t.kind == TokKind::Ident && (t.text == "struct" || t.text == "enum") {
            return toks
                .get(j + 1)
                .filter(|n| n.kind == TokKind::Ident)
                .map(|n| n.text.clone());
        }
        j += 1;
    }
    None
}

/// Does a format-string literal capture a secret via `{ident…}`?
fn str_captures_secret(lit: &str, secret_types: &HashSet<String>, config: &Config) -> bool {
    let mut chars = lit.chars().peekable();
    while let Some(c) = chars.next() {
        if c != '{' {
            continue;
        }
        if chars.peek() == Some(&'{') {
            chars.next(); // escaped `{{`
            continue;
        }
        let mut ident = String::new();
        for d in chars.by_ref() {
            if d.is_alphanumeric() || d == '_' {
                ident.push(d);
            } else {
                break;
            }
        }
        if !ident.is_empty()
            && (secret_types.contains(&ident) || config.secret_idents.contains(&ident))
        {
            return true;
        }
    }
    false
}
