//! `secret-taint` (T001–T004): intra-procedural secret-taint dataflow.
//!
//! Where the `const-time` family checks a hand-listed set of functions
//! against a hand-listed set of identifiers, this pass *derives* what is
//! secret and follows it through assignments and calls:
//!
//! * **Sources** — parameters (or `self`) typed with a configured taint
//!   type, `let` bindings under a bare `// pprl:secret` marker, and any
//!   expression mentioning a taint type (constructors). A
//!   `// pprl:secret(a, b)` marker above a function seeds those params
//!   when *its* body is checked — "this body must be constant-time in
//!   `a`/`b`" — but does not make the function a source for callers:
//!   calling it on clean arguments still returns clean data.
//! * **Propagation** — `let` initializers, assignments, `if let`/`while
//!   let`/`for`/`match` bindings, `&mut` arguments of tainted calls, and
//!   callee summaries: an in-workspace function is summarized as
//!   *source* (returns tainted with clean arguments) and/or *propagating*
//!   (returns tainted when its arguments are). Unknown callees are
//!   treated as propagating; known-clean callees stop taint at the call.
//! * **Sinks** — T001 secret-dependent `if`/`match`, T002 secret-indexed
//!   array access, T003 secret-dependent loop bound, T004 `return` under
//!   a secret-dependent branch.
//!
//! A waived branch (`pprl:allow(secret-taint)`) does not escalate its
//! body's context taint: waiving the branch waives the early returns
//! that are control-dependent on it.

use crate::config::Config;
use crate::findings::{Finding, Severity};
use crate::lexer::TokKind;
use crate::parser::{parse_fns, FnDef, Span, Stmt};
use crate::rules::{emit, NON_INDEX_KEYWORDS};
use crate::scan::{match_delim, FileCtx};
use std::collections::{HashMap, HashSet};

pub(crate) const FAMILY: &str = "secret-taint";
const RULES: &[&str] = &["T001", "T002", "T003", "T004"];

/// What calling a function does to taint, derived by simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct FnSummary {
    /// Returns tainted data even with clean arguments.
    source: bool,
    /// Returns tainted data when any argument is tainted.
    propagates: bool,
}

/// Call summaries, namespaced by how the call site can address the
/// function. Keeping them separate is what stops `Vec::new()` from
/// resolving to some unrelated in-workspace `fn new` — a qualified call
/// must match its `Type::name` key (or a free function), and a method
/// call only matches methods.
#[derive(Debug, Default, PartialEq, Eq)]
struct Summaries {
    /// Free functions, keyed by bare name.
    free: HashMap<String, FnSummary>,
    /// `impl` methods, merged across impls by method name.
    methods: HashMap<String, FnSummary>,
    /// `impl` methods keyed `Type::name` (exact resolution).
    qualified: HashMap<String, FnSummary>,
}

/// `// pprl:secret` markers in a file: line plus the names listed in the
/// optional `(a, b)` argument list (empty = bare marker).
fn secret_markers(ctx: &FileCtx) -> Vec<(u32, Vec<String>)> {
    let mut out = Vec::new();
    for c in &ctx.comments {
        if let Some(at) = c.text.find("pprl:secret") {
            let rest = &c.text[at + "pprl:secret".len()..];
            let names = match rest.strip_prefix('(').and_then(|r| r.split_once(')')) {
                Some((inner, _)) => inner
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect(),
                None => Vec::new(),
            };
            out.push((c.line, names));
        }
    }
    out
}

/// Runs the taint pass over every file matching `taint_paths`, using
/// summaries computed from the whole workspace (so cross-file in-crate
/// calls resolve).
pub fn check_workspace(files: &[FileCtx], config: &Config, findings: &mut Vec<Finding>) {
    if config.taint_paths.is_empty() {
        return;
    }
    let mut types: HashSet<String> = config.taint_types.iter().cloned().collect();
    for f in files {
        types.extend(f.marker_secret_types());
    }

    let parsed: Vec<Vec<FnDef>> = files.iter().map(parse_fns).collect();
    let markers: Vec<Vec<(u32, Vec<String>)>> = files.iter().map(secret_markers).collect();

    // Global summary fixpoint: three rounds handle call chains of depth
    // three, which covers the workspace (deeper chains degrade to the
    // conservative "unknown = propagating" default, never to unsound).
    let mut summaries = Summaries::default();
    for _round in 0..3 {
        let mut next = Summaries::default();
        for (fi, fns) in parsed.iter().enumerate() {
            for def in fns {
                let sum = summarize_fn(&files[fi], def, &types, &summaries, &markers[fi]);
                match &def.self_type {
                    Some(st) => {
                        or_merge(&mut next.qualified, format!("{st}::{}", def.name), sum);
                        or_merge(&mut next.methods, def.name.clone(), sum);
                    }
                    None => or_merge(&mut next.free, def.name.clone(), sum),
                }
            }
        }
        let stable = next == summaries;
        summaries = next;
        if stable {
            break;
        }
    }

    for (fi, fns) in parsed.iter().enumerate() {
        let f = &files[fi];
        if !config.taint_paths.iter().any(|p| f.path.ends_with(p)) {
            continue;
        }
        for def in fns {
            let mut taints = type_seeds(f, def, &types);
            taints.extend(marker_seeds(def, &markers[fi]));
            let mut ev = Eval {
                ctx: f,
                types: &types,
                summaries: &summaries,
                markers: &markers[fi],
                taints,
            };
            ev.fixpoint(def);
            ev.report(def, false, findings);
        }
    }
}

fn or_merge(map: &mut HashMap<String, FnSummary>, key: String, sum: FnSummary) {
    let e = map.entry(key).or_default();
    e.source |= sum.source;
    e.propagates |= sum.propagates || sum.source;
}

/// Two simulations per function: seeds-only (does it *originate* taint?)
/// and everything-tainted (does it *pass taint through*?).
fn summarize_fn(
    ctx: &FileCtx,
    def: &FnDef,
    types: &HashSet<String>,
    summaries: &Summaries,
    markers: &[(u32, Vec<String>)],
) -> FnSummary {
    let seeds = type_seeds(ctx, def, types);
    let mut ev = Eval {
        ctx,
        types,
        summaries,
        markers,
        taints: seeds.clone(),
    };
    ev.fixpoint(def);
    let source = ev.return_tainted(&def.body);

    let mut all = seeds;
    all.insert("self".to_string());
    for p in &def.params {
        all.extend(p.names.iter().cloned());
    }
    let mut ev = Eval {
        ctx,
        types,
        summaries,
        markers,
        taints: all,
    };
    ev.fixpoint(def);
    let propagates = ev.return_tainted(&def.body);
    FnSummary { source, propagates }
}

/// Intrinsic taint seeds for one function: secret-typed `self` and
/// secret-typed parameters. These make the function a *source* — its
/// return carries secret data no matter what callers pass in.
fn type_seeds(ctx: &FileCtx, def: &FnDef, types: &HashSet<String>) -> HashSet<String> {
    let mut taints = HashSet::new();
    if def.has_self && def.self_type.as_ref().is_some_and(|s| types.contains(s)) {
        taints.insert("self".to_string());
    }
    for p in &def.params {
        if span_has_type(ctx, p.ty, types) {
            taints.extend(p.names.iter().cloned());
        }
    }
    taints
}

/// Parameter names listed in a `pprl:secret(…)` marker within three lines
/// above the `fn`. These seed the *body* check ("this body must be
/// constant-time in these params") but do not make the function a source:
/// calling it on clean arguments still returns clean data.
fn marker_seeds(def: &FnDef, markers: &[(u32, Vec<String>)]) -> HashSet<String> {
    let mut taints = HashSet::new();
    for (ml, names) in markers {
        if !names.is_empty() && *ml < def.line && def.line - *ml <= 3 {
            taints.extend(names.iter().cloned());
        }
    }
    taints
}

fn span_has_type(ctx: &FileCtx, span: Span, types: &HashSet<String>) -> bool {
    ctx.tokens[span.0.min(ctx.tokens.len())..span.1.min(ctx.tokens.len())]
        .iter()
        .any(|t| t.kind == TokKind::Ident && types.contains(&t.text))
}

fn span_has_range(ctx: &FileCtx, span: Span) -> bool {
    ctx.tokens[span.0.min(ctx.tokens.len())..span.1.min(ctx.tokens.len())]
        .iter()
        .any(|t| t.kind == TokKind::Punct && (t.text == ".." || t.text == "..="))
}

/// Per-function taint evaluation state.
struct Eval<'a> {
    ctx: &'a FileCtx,
    types: &'a HashSet<String>,
    summaries: &'a Summaries,
    markers: &'a [(u32, Vec<String>)],
    taints: HashSet<String>,
}

impl Eval<'_> {
    /// Runs [`Eval::flow`] until the taint set stops growing.
    fn fixpoint(&mut self, def: &FnDef) {
        for _ in 0..8 {
            let before = self.taints.len();
            self.flow(&def.body, false);
            if self.taints.len() == before {
                break;
            }
        }
    }

    /// One propagation pass over a statement list. `ctx_tainted` is the
    /// control context: true inside branches taken on secret data.
    fn flow(&mut self, stmts: &[Stmt], ctx_tainted: bool) {
        for s in stmts {
            match s {
                Stmt::Let {
                    line,
                    bindings,
                    ty,
                    init,
                } => {
                    let mut tainted = ctx_tainted || self.bare_marker_above(*line);
                    if let Some(ty) = ty {
                        tainted |= span_has_type(self.ctx, *ty, self.types);
                    }
                    if let Some(init) = init {
                        if self.expr_tainted(*init) {
                            tainted = true;
                            self.mark_mut_args(*init);
                        }
                    }
                    if tainted {
                        self.taints.extend(bindings.iter().cloned());
                    }
                }
                Stmt::Expr { target, value, .. } => {
                    let vt = self.expr_tainted(*value);
                    if vt {
                        self.mark_mut_args(*value);
                    }
                    if vt || ctx_tainted {
                        if let Some(t) = target {
                            self.taints.insert(t.clone());
                        }
                    }
                }
                Stmt::If {
                    line,
                    cond,
                    pat_bindings,
                    then_body,
                    else_body,
                } => {
                    let ct = self.expr_tainted(*cond);
                    if ct || ctx_tainted {
                        self.taints.extend(pat_bindings.iter().cloned());
                    }
                    let inner = ctx_tainted || (ct && !self.waived(*line));
                    self.flow(then_body, inner);
                    self.flow(else_body, inner);
                }
                Stmt::While {
                    line,
                    cond,
                    pat_bindings,
                    body,
                } => {
                    let ct = self.expr_tainted(*cond);
                    if ct || ctx_tainted {
                        self.taints.extend(pat_bindings.iter().cloned());
                    }
                    let inner = ctx_tainted || (ct && !self.waived(*line));
                    self.flow(body, inner);
                }
                Stmt::For {
                    bindings,
                    iter,
                    body,
                    ..
                } => {
                    if self.expr_tainted(*iter) || ctx_tainted {
                        self.taints.extend(bindings.iter().cloned());
                    }
                    self.flow(body, ctx_tainted);
                }
                Stmt::Match {
                    line,
                    scrutinee,
                    arms,
                } => {
                    let st = self.expr_tainted(*scrutinee);
                    let inner = ctx_tainted || (st && !self.waived(*line));
                    for arm in arms {
                        if st || ctx_tainted {
                            self.taints.extend(arm.bindings.iter().cloned());
                        }
                        self.flow(&arm.body, inner);
                    }
                }
                Stmt::Return { .. } => {}
                Stmt::Loop { body } | Stmt::Block { body } => self.flow(body, ctx_tainted),
            }
        }
    }

    /// Emits findings using the converged taint set.
    fn report(&self, def: &FnDef, _outer: bool, findings: &mut Vec<Finding>) {
        self.walk_report(&def.body, false, findings);
        self.scan_indexing(def, findings);
    }

    fn walk_report(&self, stmts: &[Stmt], ctx_tainted: bool, findings: &mut Vec<Finding>) {
        for s in stmts {
            match s {
                Stmt::If {
                    line,
                    cond,
                    then_body,
                    else_body,
                    ..
                } => {
                    let ct = self.expr_tainted(*cond);
                    if ct {
                        self.emit_t(findings, "T001", *line, "branch condition depends on secret-tainted data");
                    }
                    let inner = ctx_tainted || (ct && !self.waived(*line));
                    self.walk_report(then_body, inner, findings);
                    self.walk_report(else_body, inner, findings);
                }
                Stmt::Match {
                    line,
                    scrutinee,
                    arms,
                } => {
                    let st = self.expr_tainted(*scrutinee);
                    if st {
                        self.emit_t(findings, "T001", *line, "match scrutinee depends on secret-tainted data");
                    }
                    let inner = ctx_tainted || (st && !self.waived(*line));
                    for arm in arms {
                        self.walk_report(&arm.body, inner, findings);
                    }
                }
                Stmt::While { line, cond, body, .. } => {
                    let ct = self.expr_tainted(*cond);
                    if ct {
                        self.emit_t(findings, "T003", *line, "loop condition depends on secret-tainted data");
                    }
                    let inner = ctx_tainted || (ct && !self.waived(*line));
                    self.walk_report(body, inner, findings);
                }
                Stmt::For { line, iter, body, .. } => {
                    if self.expr_tainted(*iter) && span_has_range(self.ctx, *iter) {
                        self.emit_t(findings, "T003", *line, "loop bound derived from secret-tainted data");
                    }
                    self.walk_report(body, ctx_tainted, findings);
                }
                Stmt::Return { line, .. } => {
                    if ctx_tainted {
                        self.emit_t(findings, "T004", *line, "early return under a secret-dependent branch");
                    }
                }
                Stmt::Loop { body } | Stmt::Block { body } => {
                    self.walk_report(body, ctx_tainted, findings);
                }
                Stmt::Let { .. } | Stmt::Expr { .. } => {}
            }
        }
    }

    /// T002: flat scan of the body for `…[tainted]` indexing.
    fn scan_indexing(&self, def: &FnDef, findings: &mut Vec<Finding>) {
        let toks = &self.ctx.tokens;
        let (start, end) = def.body_span;
        for i in start..end.min(toks.len()) {
            let t = &toks[i];
            if t.kind != TokKind::Open
                || t.text != "["
                || i == 0
                || self.ctx.excluded[i]
                || self.ctx.in_attr[i]
            {
                continue;
            }
            let prev = &toks[i - 1];
            let is_index = (prev.kind == TokKind::Ident
                && !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()))
                || (prev.kind == TokKind::Close && (prev.text == ")" || prev.text == "]"));
            if !is_index {
                continue;
            }
            let close = match_delim(toks, i);
            if self.expr_tainted((i + 1, close)) {
                self.emit_t(findings, "T002", t.line, "array index depends on secret-tainted data");
            }
        }
    }

    fn emit_t(
        &self,
        findings: &mut Vec<Finding>,
        rule: &'static str,
        line: u32,
        msg: &str,
    ) {
        emit(
            self.ctx,
            findings,
            rule,
            FAMILY,
            Severity::Warning,
            line,
            msg.to_string(),
        );
    }

    /// Is any identifier (or secret-type mention, or source call) in the
    /// span tainted? Known-clean callees have their argument groups
    /// skipped; unknown callees conservatively propagate.
    fn expr_tainted(&self, span: Span) -> bool {
        let toks = &self.ctx.tokens;
        let mut i = span.0;
        let end = span.1.min(toks.len());
        while i < end {
            let t = &toks[i];
            if t.kind == TokKind::Ident && !self.ctx.in_attr[i] {
                if self.types.contains(&t.text) {
                    return true;
                }
                let is_call = toks
                    .get(i + 1)
                    .is_some_and(|n| n.kind == TokKind::Open && n.text == "(");
                if is_call {
                    match self.callee_summary(i) {
                        Some(s) if s.source => return true,
                        Some(s) if !s.propagates => {
                            // Clean callee: taint cannot flow out through
                            // its return value; skip the arguments.
                            i = match_delim(toks, i + 1) + 1;
                            continue;
                        }
                        _ => {}
                    }
                } else {
                    let prev_sep = i > 0
                        && toks[i - 1].kind == TokKind::Punct
                        && (toks[i - 1].text == "." || toks[i - 1].text == "::");
                    if !prev_sep && self.taints.contains(&t.text) {
                        return true;
                    }
                }
            }
            i += 1;
        }
        false
    }

    /// Summary for the callee named at token `i`, resolved by call shape.
    ///
    /// `X::name(..)` tries the exact `Type::name` key, then free functions
    /// (module paths like `crate::ct::cswap_limbs` qualify a free fn); a
    /// miss stays unknown rather than falling back to some other type's
    /// method of the same name. `.name(..)` consults only method
    /// summaries; a bare `name(..)` only free functions.
    fn callee_summary(&self, i: usize) -> Option<FnSummary> {
        let toks = &self.ctx.tokens;
        let name = toks[i].text.as_str();
        if i >= 1 && toks[i - 1].kind == TokKind::Punct {
            match toks[i - 1].text.as_str() {
                "::" => {
                    if i >= 2 && toks[i - 2].kind == TokKind::Ident {
                        let qualified = format!("{}::{name}", toks[i - 2].text);
                        if let Some(s) = self.summaries.qualified.get(&qualified) {
                            return Some(*s);
                        }
                    }
                    return self.summaries.free.get(name).copied();
                }
                "." => return self.summaries.methods.get(name).copied(),
                _ => {}
            }
        }
        self.summaries.free.get(name).copied()
    }

    /// A tainted call may write taint into its `&mut x` arguments.
    fn mark_mut_args(&mut self, span: Span) {
        let toks = &self.ctx.tokens;
        let end = span.1.min(toks.len());
        let mut i = span.0;
        while i + 2 < end {
            if toks[i].kind == TokKind::Punct
                && toks[i].text == "&"
                && toks[i + 1].kind == TokKind::Ident
                && toks[i + 1].text == "mut"
                && toks[i + 2].kind == TokKind::Ident
            {
                self.taints.insert(toks[i + 2].text.clone());
                i += 3;
                continue;
            }
            i += 1;
        }
    }

    fn bare_marker_above(&self, line: u32) -> bool {
        self.markers
            .iter()
            .any(|(ml, names)| names.is_empty() && *ml < line && line - *ml <= 2)
    }

    fn waived(&self, line: u32) -> bool {
        self.ctx.waiver_for(line, FAMILY).is_some()
            || RULES.iter().any(|r| self.ctx.waiver_for(line, r).is_some())
    }

    /// Does the function's return value carry taint? Explicit `return`s
    /// plus the tail expression of the body.
    fn return_tainted(&self, stmts: &[Stmt]) -> bool {
        self.any_return_tainted(stmts) || self.tail_tainted(stmts)
    }

    fn any_return_tainted(&self, stmts: &[Stmt]) -> bool {
        stmts.iter().any(|s| match s {
            Stmt::Return {
                value: Some(v), ..
            } => self.expr_tainted(*v),
            Stmt::If {
                then_body,
                else_body,
                ..
            } => self.any_return_tainted(then_body) || self.any_return_tainted(else_body),
            Stmt::While { body, .. }
            | Stmt::For { body, .. }
            | Stmt::Loop { body }
            | Stmt::Block { body } => self.any_return_tainted(body),
            Stmt::Match { arms, .. } => arms.iter().any(|a| self.any_return_tainted(&a.body)),
            _ => false,
        })
    }

    fn tail_tainted(&self, stmts: &[Stmt]) -> bool {
        match stmts.last() {
            Some(Stmt::Expr {
                target: None,
                value,
                ..
            }) => self.expr_tainted(*value),
            Some(Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            }) => {
                self.expr_tainted(*cond)
                    || self.tail_tainted(then_body)
                    || self.tail_tainted(else_body)
            }
            Some(Stmt::Match {
                scrutinee, arms, ..
            }) => {
                self.expr_tainted(*scrutinee)
                    || arms.iter().any(|a| self.tail_tainted(&a.body))
            }
            Some(Stmt::Block { body }) | Some(Stmt::Loop { body }) => self.tail_tainted(body),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::findings::summarize;

    fn run(src: &str, types: &[&str], paths: &[&str]) -> Vec<Finding> {
        let ctx = FileCtx::build("lib.rs".into(), src);
        let config = Config {
            taint_paths: paths.iter().map(|s| s.to_string()).collect(),
            taint_types: types.iter().map(|s| s.to_string()).collect(),
            ..Config::default()
        };
        let mut findings = Vec::new();
        check_workspace(&[ctx], &config, &mut findings);
        findings
    }

    fn rules_of(findings: &[Finding]) -> Vec<&str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn disabled_without_paths() {
        let f = run("fn f(k: Key) { if k.bit() { g(); } }", &["Key"], &[]);
        assert!(f.is_empty());
    }

    #[test]
    fn branch_on_secret_param_type() {
        let f = run(
            "fn f(k: &Key) -> u64 { if k.bit() { return 1; } 0 }",
            &["Key"],
            &["lib.rs"],
        );
        assert_eq!(rules_of(&f), vec!["T001", "T004"]);
    }

    #[test]
    fn marker_seeds_fn_params() {
        let f = run(
            "// pprl:secret(exp)\nfn modexp(base: u64, exp: u64) -> u64 {\n    let mut r = 1;\n    while exp > 0 { r *= base; }\n    r\n}",
            &[],
            &["lib.rs"],
        );
        assert_eq!(rules_of(&f), vec!["T003"]);
    }

    #[test]
    fn taint_flows_through_let_and_assignment() {
        let f = run(
            "fn f(k: &Key) {\n    let a = k.low();\n    let mut b = 0;\n    b = a & 7;\n    if b == 3 { g(); }\n}",
            &["Key"],
            &["lib.rs"],
        );
        assert_eq!(rules_of(&f), vec!["T001"]);
    }

    #[test]
    fn secret_indexed_access() {
        let f = run(
            "fn f(k: &Key, table: &[u64]) -> u64 {\n    let idx = k.low() as usize;\n    table[idx & 7]\n}",
            &["Key"],
            &["lib.rs"],
        );
        assert_eq!(rules_of(&f), vec!["T002"]);
    }

    #[test]
    fn tainted_range_loop_but_not_public_range() {
        let f = run(
            "fn f(k: &Key) {\n    let n = k.low();\n    for _i in 0..n { g(); }\n    for _j in 0..64 { g(); }\n    for _x in k.items().iter() { g(); }\n}",
            &["Key"],
            &["lib.rs"],
        );
        // Iterating a tainted *collection* is fine (fixed length);
        // a tainted range bound is not.
        assert_eq!(rules_of(&f), vec!["T003"]);
    }

    #[test]
    fn callee_summary_source_and_clean() {
        let src = "\
fn derive(k: &Key) -> u64 { k.low() }\n\
fn public_len(v: &[u64]) -> usize { v.len() }\n\
fn caller(k: &Key, v: &[u64]) {\n\
    let d = derive(k);\n\
    if d == 3 { g(); }\n\
    let n = public_len(v);\n\
    if n == 3 { g(); }\n\
}\n";
        let f = run(src, &["Key"], &["lib.rs"]);
        assert_eq!(rules_of(&f), vec!["T001"], "only the derive()-fed branch");
    }

    #[test]
    fn waived_branch_does_not_taint_context() {
        let f = run(
            "fn f(k: &Key) -> u64 {\n    // pprl:allow(secret-taint): occupancy only\n    if k.empty() { return 0; }\n    1\n}",
            &["Key"],
            &["lib.rs"],
        );
        let s = summarize(&f);
        assert_eq!((s.total, s.new, s.waived), (1, 0, 1), "{f:?}");
        assert_eq!(f[0].rule, "T001");
    }

    #[test]
    fn marker_type_and_bare_let_marker() {
        let src = "\
// pprl:secret\nstruct Sk { v: u64 }\n\
fn f() {\n\
    // pprl:secret\n\
    let noise = sample();\n\
    match noise & 1 { 0 => g(), _ => h(), }\n\
}\n";
        let f = run(src, &[], &["lib.rs"]);
        assert_eq!(rules_of(&f), vec!["T001"]);
    }

    #[test]
    fn mut_arg_of_tainted_call_is_tainted() {
        let f = run(
            "fn f(k: &Key) {\n    let mut buf = 0u64;\n    fill(k, &mut buf);\n    if buf > 0 { g(); }\n}",
            &["Key"],
            &["lib.rs"],
        );
        assert_eq!(rules_of(&f), vec!["T001"]);
    }

    #[test]
    fn constant_time_body_is_clean() {
        let f = run(
            "fn select(k: &Key, a: u64, b: u64) -> u64 {\n    let mask = k.bit().wrapping_neg();\n    (a & mask) | (b & !mask)\n}",
            &["Key"],
            &["lib.rs"],
        );
        assert!(f.is_empty(), "{f:?}");
    }
}
