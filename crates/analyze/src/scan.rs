//! Workspace scanning: file discovery, per-file analysis context
//! (token stream + exclusion masks + waivers), and the two-pass driver
//! that feeds the lint rules.
//!
//! Exclusion masks are what make token-level linting precise enough:
//! `#[cfg(test)]` modules, `#[test]`/`#[bench]` functions, attribute
//! token spans, and `macro_rules!` bodies are all marked so rules never
//! fire inside them. Files under `tests/`, `benches/`, `examples/`, and
//! `fixtures/` directories are skipped entirely.

use crate::baseline::assign_fingerprints;
use crate::config::Config;
use crate::findings::Finding;
use crate::lexer::{lex, Comment, TokKind, Token};
use crate::rules;
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};

/// Inline waiver: `// pprl:allow(family[, family…]): justification`.
#[derive(Debug, Clone)]
pub struct Waiver {
    pub families: Vec<String>,
    pub reason: String,
}

/// Everything a rule needs to analyze one file.
pub struct FileCtx {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
    /// Token is inside test-only code or a `macro_rules!` body.
    pub excluded: Vec<bool>,
    /// Token is inside an `#[…]` attribute span.
    pub in_attr: Vec<bool>,
    /// Source lines (1-based access via `line_text`).
    pub lines: Vec<String>,
    /// Waivers keyed by the line(s) they cover.
    pub waivers: HashMap<u32, Vec<Waiver>>,
    /// Lines carrying a `pprl:secret` marker comment.
    pub secret_marker_lines: Vec<u32>,
}

impl FileCtx {
    pub fn build(path: String, src: &str) -> FileCtx {
        let lexed = lex(src);
        let (excluded, in_attr) = compute_masks(&lexed.tokens);
        let mut waivers: HashMap<u32, Vec<Waiver>> = HashMap::new();
        let mut secret_marker_lines = Vec::new();
        let comment_lines: HashSet<u32> = lexed.comments.iter().map(|c| c.line).collect();
        for c in &lexed.comments {
            if let Some(w) = parse_waiver(&c.text) {
                // A waiver covers its own line (trailing comment), any run
                // of comment lines continuing the justification, and the
                // first code line after it (the offending expression).
                waivers.entry(c.line).or_default().push(w.clone());
                let mut l = c.line + 1;
                while comment_lines.contains(&l) {
                    waivers.entry(l).or_default().push(w.clone());
                    l += 1;
                }
                waivers.entry(l).or_default().push(w);
            }
            // Bare markers tag types; `pprl:secret(a, b)` markers seed the
            // taint pass and must not capture a nearby struct/enum.
            if c.text.contains("pprl:secret") && !c.text.contains("pprl:secret(") {
                secret_marker_lines.push(c.line);
            }
        }
        FileCtx {
            path,
            tokens: lexed.tokens,
            comments: lexed.comments,
            excluded,
            in_attr,
            lines: src.lines().map(|l| l.to_string()).collect(),
            waivers,
            secret_marker_lines,
        }
    }

    /// Whitespace-normalized text of a 1-based line.
    pub fn line_text(&self, line: u32) -> String {
        self.lines
            .get(line.saturating_sub(1) as usize)
            .map(|l| normalize_ws(l))
            .unwrap_or_default()
    }

    /// Returns the waiver covering `line` for `family`, if any.
    pub fn waiver_for(&self, line: u32, family: &str) -> Option<&Waiver> {
        self.waivers
            .get(&line)?
            .iter()
            .find(|w| w.families.iter().any(|f| f == family))
    }

    /// Type names in this file marked secret via `pprl:secret` comments:
    /// each marker tags the first `struct`/`enum` declared within three
    /// lines below it.
    pub fn marker_secret_types(&self) -> Vec<String> {
        let mut out = Vec::new();
        if self.secret_marker_lines.is_empty() {
            return out;
        }
        let toks = &self.tokens;
        let mut decls: Vec<(String, u32)> = Vec::new();
        for i in 0..toks.len() {
            if toks[i].kind == TokKind::Ident
                && (toks[i].text == "struct" || toks[i].text == "enum")
            {
                if let Some(name) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) {
                    decls.push((name.text.clone(), name.line));
                }
            }
        }
        for &m in &self.secret_marker_lines {
            if let Some((name, _)) = decls
                .iter()
                .find(|&&(_, l)| m <= l && l.saturating_sub(m) <= 3)
            {
                out.push(name.clone());
            }
        }
        out
    }
}

fn normalize_ws(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Parses a waiver comment. Accepted shape:
/// `pprl:allow(family1, family2): free-text reason`.
fn parse_waiver(comment: &str) -> Option<Waiver> {
    let at = comment.find("pprl:allow(")?;
    let rest = &comment[at + "pprl:allow(".len()..];
    let close = rest.find(')')?;
    let families: Vec<String> = rest[..close]
        .split(',')
        .map(|f| f.trim().to_string())
        .filter(|f| !f.is_empty())
        .collect();
    if families.is_empty() {
        return None;
    }
    let reason = rest[close + 1..]
        .trim_start_matches(':')
        .trim()
        .to_string();
    Some(Waiver { families, reason })
}

/// Computes `(excluded, in_attr)` masks over the token stream.
fn compute_masks(tokens: &[Token]) -> (Vec<bool>, Vec<bool>) {
    let n = tokens.len();
    let mut excluded = vec![false; n];
    let mut in_attr = vec![false; n];
    let mut i = 0usize;

    while i < n {
        let t = &tokens[i];

        // `macro_rules! name { … }` — the body is a template, not code.
        if t.kind == TokKind::Ident && t.text == "macro_rules" {
            if let Some(open) = find_first_open(tokens, i) {
                let close = match_delim(tokens, open);
                mark(&mut excluded, i, close);
                i = close + 1;
                continue;
            }
        }

        // Attribute: `#[…]` or `#![…]`.
        if t.kind == TokKind::Punct && t.text == "#" {
            let mut j = i + 1;
            let inner = tokens.get(j).is_some_and(|t| t.text == "!");
            if inner {
                j += 1;
            }
            if tokens.get(j).is_some_and(|t| t.kind == TokKind::Open && t.text == "[") {
                let close = match_delim(tokens, j);
                mark(&mut in_attr, i, close);
                let is_test = attr_is_test(&tokens[j + 1..close]);
                i = close + 1;
                // Outer test attributes exclude the item that follows.
                if is_test && !inner {
                    i = exclude_item(tokens, i, &mut excluded, &mut in_attr);
                }
                continue;
            }
        }

        i += 1;
    }
    (excluded, in_attr)
}

/// Does an attribute's content mark test-only code?
/// Matches `test`, `cfg(test)`, `cfg(any(test, …))`, `bench`,
/// `should_panic` — but not `cfg(not(test))`.
fn attr_is_test(content: &[Token]) -> bool {
    for (k, t) in content.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "bench" | "should_panic" => return true,
            "test" => {
                // Reject when directly under `not(…)`.
                let negated = k >= 2
                    && content[k - 1].kind == TokKind::Open
                    && content[k - 2].kind == TokKind::Ident
                    && content[k - 2].text == "not";
                if !negated {
                    return true;
                }
            }
            _ => {}
        }
    }
    false
}

/// Marks the item starting at `from` (after its test attribute) as
/// excluded: any further attributes, then tokens through the end of the
/// item (`;` at depth 0, or the matching close of its first `{`).
/// Returns the index just past the item.
fn exclude_item(
    tokens: &[Token],
    mut from: usize,
    excluded: &mut [bool],
    in_attr: &mut [bool],
) -> usize {
    let n = tokens.len();
    // Skip (and mark) any additional attributes stacked on the item.
    while from < n && tokens[from].kind == TokKind::Punct && tokens[from].text == "#" {
        if tokens
            .get(from + 1)
            .is_some_and(|t| t.kind == TokKind::Open && t.text == "[")
        {
            let close = match_delim(tokens, from + 1);
            mark(in_attr, from, close);
            mark(excluded, from, close);
            from = close + 1;
        } else {
            break;
        }
    }
    let mut depth = 0usize;
    let mut i = from;
    while i < n {
        let t = &tokens[i];
        excluded[i] = true;
        match t.kind {
            TokKind::Open => {
                if t.text == "{" && depth == 0 {
                    let close = match_delim(tokens, i);
                    mark(excluded, i, close);
                    return close + 1;
                }
                depth += 1;
            }
            TokKind::Close => depth = depth.saturating_sub(1),
            TokKind::Punct if t.text == ";" && depth == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    n
}

fn mark(mask: &mut [bool], from: usize, to: usize) {
    let end = to.min(mask.len().saturating_sub(1));
    for m in mask.iter_mut().take(end + 1).skip(from) {
        *m = true;
    }
}

/// Index of the first `Open` token at or after `from`.
fn find_first_open(tokens: &[Token], from: usize) -> Option<usize> {
    tokens[from..]
        .iter()
        .position(|t| t.kind == TokKind::Open)
        .map(|p| from + p)
}

/// Index of the `Close` matching the `Open` at `open` (or the last token
/// if unbalanced — the analyzer must not panic on malformed input).
pub fn match_delim(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        match t.kind {
            TokKind::Open => depth += 1,
            TokKind::Close => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    tokens.len().saturating_sub(1)
}

/// Directory names never scanned.
const SKIP_DIRS: &[&str] = &["target", "tests", "benches", "examples", "fixtures", ".git"];

/// Recursively collects `.rs` files under `dir`.
fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default();
            if !SKIP_DIRS.contains(&name) {
                walk(&path, out);
            }
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
}

/// Loads every scannable file under the configured roots.
pub fn load_workspace(root: &Path, config: &Config) -> Vec<FileCtx> {
    let mut files = Vec::new();
    for r in &config.roots {
        walk(&root.join(r), &mut files);
    }
    files.sort();
    files
        .into_iter()
        .filter_map(|p| {
            let src = std::fs::read_to_string(&p).ok()?;
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .to_string_lossy()
                .replace('\\', "/");
            Some(FileCtx::build(rel, &src))
        })
        .collect()
}

/// Runs the per-file lint families plus the workspace-wide taint pass and
/// returns findings with fingerprints assigned, sorted by (file, line, rule).
pub fn run_analysis(root: &Path, config: &Config) -> Vec<Finding> {
    let files = load_workspace(root, config);

    // Pass 1: the secret-type universe = config list + marker comments.
    let mut secret_types: HashSet<String> =
        config.secret_types.iter().cloned().collect();
    for f in &files {
        secret_types.extend(f.marker_secret_types());
    }

    // Pass 2: rules.
    let mut findings = Vec::new();
    for f in &files {
        rules::secret::check(f, config, &secret_types, &mut findings);
        rules::panic::check(f, config, &mut findings);
        rules::ct::check(f, config, &mut findings);
    }
    // Pass 3: the taint dataflow pass needs every file at once (callee
    // summaries cross file boundaries).
    rules::taint::check_workspace(&files, config, &mut findings);
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
    });
    assign_fingerprints(&mut findings);
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(src: &str) -> FileCtx {
        FileCtx::build("test.rs".into(), src)
    }

    #[test]
    fn cfg_test_mod_is_excluded() {
        let f = ctx("fn a() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn b() { y.unwrap(); } }\nfn c() {}");
        // Tokens of `y.unwrap()` must be excluded, `x.unwrap()` not, and
        // code after the test mod must be included again.
        let y = f
            .tokens
            .iter()
            .position(|t| t.text == "y")
            .expect("y token");
        let x = f.tokens.iter().position(|t| t.text == "x").unwrap();
        let c = f.tokens.iter().rposition(|t| t.text == "c").unwrap();
        assert!(f.excluded[y]);
        assert!(!f.excluded[x]);
        assert!(!f.excluded[c]);
    }

    #[test]
    fn test_fn_with_stacked_attrs_is_excluded() {
        let f = ctx("#[test]\n#[allow(dead_code)]\nfn t() { a.unwrap(); }\nfn real() { b[0]; }");
        let a = f.tokens.iter().position(|t| t.text == "a").unwrap();
        let b = f.tokens.iter().position(|t| t.text == "b").unwrap();
        assert!(f.excluded[a]);
        assert!(!f.excluded[b]);
    }

    #[test]
    fn cfg_not_test_is_not_excluded() {
        let f = ctx("#[cfg(not(test))]\nfn a() { x.unwrap(); }");
        let x = f.tokens.iter().position(|t| t.text == "x").unwrap();
        assert!(!f.excluded[x]);
    }

    #[test]
    fn attribute_tokens_are_masked() {
        let f = ctx("#[derive(Debug)]\nstruct S { v: [u8; 4] }");
        let derive = f.tokens.iter().position(|t| t.text == "derive").unwrap();
        assert!(f.in_attr[derive]);
        let s = f.tokens.iter().position(|t| t.text == "S").unwrap();
        assert!(!f.in_attr[s]);
    }

    #[test]
    fn macro_rules_bodies_are_excluded() {
        let f = ctx("macro_rules! m { ($x:expr) => { $x.unwrap() }; }\nfn a() { b.unwrap(); }");
        let uw = f.tokens.iter().position(|t| t.text == "unwrap").unwrap();
        assert!(f.excluded[uw]);
        let b = f.tokens.iter().position(|t| t.text == "b").unwrap();
        assert!(!f.excluded[b]);
    }

    #[test]
    fn waiver_parsing_and_lookup() {
        let f = ctx("// pprl:allow(panic-path): length checked above\nlet x = v[0];");
        let w = f.waiver_for(2, "panic-path").expect("waiver applies");
        assert_eq!(w.reason, "length checked above");
        assert!(f.waiver_for(2, "secret-leak").is_none());
    }

    #[test]
    fn waiver_extends_over_multiline_justification() {
        let f = ctx(
            "// pprl:allow(panic-path): the emptiness check above bounds\n// the index, so this cannot go out of range\nlet x = v[0];\nlet y = w[0];",
        );
        assert!(f.waiver_for(3, "panic-path").is_some(), "first code line");
        assert!(f.waiver_for(4, "panic-path").is_none(), "next line uncovered");
    }

    #[test]
    fn secret_marker_tags_following_struct() {
        let f = ctx("// pprl:secret\npub struct KeyMaterial { x: u64 }\nstruct Plain;");
        assert_eq!(f.marker_secret_types(), vec!["KeyMaterial".to_string()]);
    }
}
