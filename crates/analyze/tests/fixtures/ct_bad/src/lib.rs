//! Fixture: const-time violations in a designated function (`pow` with
//! secret `exp`), and an undesignated helper that must not be flagged.

pub fn pow(exp: u64, base: u64) -> u64 {
    if exp == 0 {
        return 1;
    }
    let leak = exp == 42;
    let _ = leak;
    base
}

pub fn helper(x: u64) -> u64 {
    if x == 0 {
        1
    } else {
        x
    }
}
