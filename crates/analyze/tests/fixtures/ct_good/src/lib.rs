//! Fixture: constant-time square-and-multiply — loop bound and masks
//! are public, no branch touches the secret exponent.

pub fn pow(exp: u64, base: u64) -> u64 {
    let mut acc = 1u64;
    let mut b = base;
    let mut i = 0u32;
    while i < 64 {
        let bit = (exp >> i) & 1;
        let mask = bit.wrapping_neg();
        acc = (acc.wrapping_mul(b) & mask) | (acc & !mask);
        b = b.wrapping_mul(b);
        i += 1;
    }
    acc
}
