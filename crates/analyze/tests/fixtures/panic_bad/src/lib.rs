//! Fixture: one violation per panic-path rule in non-test code, plus a
//! test module that must NOT be flagged.

pub fn bad(values: &[u64], maybe: Option<u64>) -> u64 {
    let a = maybe.unwrap();
    let b = Some(1u64).expect("one");
    if values.len() < 2 {
        panic!("too short");
    }
    let c = values[0];
    a + b + c
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let x: Option<u64> = Some(3);
        assert_eq!(x.unwrap(), 3);
        let v = vec![1u64];
        let _ = v[0];
    }
}
