//! Fixture: panic-free protocol code, plus one justified inline waiver.

#[derive(Debug)]
pub enum Error {
    Missing,
    TooShort,
}

pub fn good(values: &[u64], maybe: Option<u64>) -> Result<u64, Error> {
    let a = maybe.ok_or(Error::Missing)?;
    let b = values.first().copied().ok_or(Error::TooShort)?;
    Ok(a + b)
}

pub fn waived(values: &[u64]) -> u64 {
    if values.is_empty() {
        return 0;
    }
    // pprl:allow(panic-path): index bounded by the emptiness check above
    values[0]
}
