//! Fixture: every secret-leak rule fires exactly as counted in
//! `tests/rules.rs`. Never compiled — analyzer input only.

// pprl:secret
#[derive(Clone, Debug)]
pub struct SecretKey {
    pub limbs: Vec<u64>,
    exponent: u64,
}

pub struct PublicInfo {
    pub bits: u32,
}

impl std::fmt::Display for SecretKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "redacted")
    }
}

pub fn log_key(sk: &SecretKey) {
    println!("key = {:?}", sk);
    let msg = format!("{sk:?}");
    let _ = (msg, sk.exponent);
}

pub fn log_public(info: &PublicInfo) {
    println!("bits = {}", info.bits);
}
