//! Fixture: secret type handled correctly — redacting Debug impl is
//! waived with a justification, fields stay private.

// pprl:secret
pub struct SecretKey {
    limbs: Vec<u64>,
    pub(crate) exponent: u64,
}

// pprl:allow(secret-leak): redacting impl — prints no field data
impl std::fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SecretKey").finish_non_exhaustive()
    }
}

pub fn describe(key: &SecretKey) -> usize {
    key.limbs.len()
}
