//! Taint fixture: every T-family sink, reachable from three kinds of
//! taint source (marker-tagged type, `pprl:secret(...)` fn marker, and
//! callee-summary propagation).

// pprl:secret
pub struct Key {
    limbs: Vec<u64>,
}

impl Key {
    pub fn dec(&self, table: &[u64]) -> u64 {
        let k = self.limbs.len() as u64;
        let mut acc = 0u64;
        if k > 0 {
            // T001: branch on secret-derived k
            acc += 1;
        }
        for i in 0..k {
            // T003: loop bound derived from secret
            acc = acc.wrapping_add(i);
        }
        let idx = (k & 7) as usize;
        acc += table[idx]; // T002: secret-indexed access
        if k == 9 {
            // T001 again
            return acc; // T004: early return under secret branch
        }
        acc
    }
}

// pprl:secret(exp)
pub fn modexp(base: u64, exp: u64, m: u64) -> u64 {
    let mut result = 1u64;
    let mut b = base % m;
    let mut e = exp;
    while e > 0 {
        // T003: loop condition on secret exponent
        result = result.wrapping_mul(b) % m;
        b = b.wrapping_mul(b) % m;
        e >>= 1;
    }
    result
}

pub fn derive(k: &Key) -> u64 {
    k.dec(&[0, 1, 2, 3])
}

pub fn caller(k: &Key) -> u64 {
    let d = derive(k);
    let mut out = 0;
    if d == 3 {
        // T001: taint propagated through the derive() summary
        out = 1;
    }
    out
}

/// Public-data control flow must stay silent.
pub fn helper(v: &[u64]) -> u64 {
    let n = v.len();
    let mut acc = 0;
    for i in 0..n {
        acc = acc.wrapping_add(v[i]);
    }
    acc
}
