//! Taint fixture: the constant-time rewrite of `taint_bad` — branch-free
//! mask selection over the whole public table — plus one justified,
//! waived branch on occupancy state.

// pprl:secret
pub struct Key {
    limbs: Vec<u64>,
}

impl Key {
    /// Branch-free decode: mask-select from every public slot instead of
    /// indexing by the secret.
    pub fn dec(&self, table: &[u64]) -> u64 {
        let k = self.limbs.len() as u64;
        let mut acc = 0u64;
        for (i, &v) in table.iter().enumerate() {
            let mask = eq_mask(i as u64, k & 7);
            acc |= v & mask;
        }
        acc
    }

    pub fn occupancy(&self) -> usize {
        // pprl:allow(secret-taint): occupancy is public operational state,
        // not key material
        match self.limbs.first() {
            Some(_) => self.limbs.len(),
            None => 0,
        }
    }
}

/// All-ones when `a == b`, all-zeros otherwise, with no branch.
fn eq_mask(a: u64, b: u64) -> u64 {
    let d = a ^ b;
    (((d | d.wrapping_neg()) >> 63) ^ 1).wrapping_neg()
}
