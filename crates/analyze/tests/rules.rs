//! Integration tests: run the analyzer over the fixture mini-crates in
//! `tests/fixtures/` and assert exact diagnostic counts per rule, waiver
//! suppression, baseline round-trips, and fingerprint stability.
//!
//! The fixture directories deliberately have no `Cargo.toml`, so cargo
//! never tries to compile their intentionally-bad code.

use pprl_analyze::baseline::{assign_fingerprints, Baseline};
use pprl_analyze::config::{Config, CtTarget};
use pprl_analyze::findings::{summarize, Finding};
use pprl_analyze::scan::{run_analysis, FileCtx};
use std::path::PathBuf;

fn fixtures_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn count(findings: &[Finding], rule: &str) -> usize {
    findings.iter().filter(|f| f.rule == rule).count()
}

fn cfg(roots: &[&str]) -> Config {
    Config {
        roots: roots.iter().map(|r| r.to_string()).collect(),
        ..Config::default()
    }
}

#[test]
fn secret_bad_flags_every_leak() {
    let mut config = cfg(&["secret_bad"]);
    config.secret_idents = vec!["sk".to_string()];
    let findings = run_analysis(&fixtures_root(), &config);
    assert_eq!(count(&findings, "S001"), 1, "derive(Debug) on secret type");
    assert_eq!(count(&findings, "S002"), 1, "manual Display impl");
    assert_eq!(count(&findings, "S003"), 2, "format-macro arg + inline capture");
    assert_eq!(count(&findings, "S004"), 1, "pub field");
    let s = summarize(&findings);
    assert_eq!((s.total, s.new), (5, 5));
}

#[test]
fn secret_good_redacting_impl_is_waived() {
    let config = cfg(&["secret_good"]);
    let findings = run_analysis(&fixtures_root(), &config);
    assert_eq!(count(&findings, "S002"), 1);
    let s = summarize(&findings);
    assert_eq!((s.total, s.new, s.waived), (1, 0, 1));
}

#[test]
fn panic_bad_flags_each_rule_once() {
    let mut config = cfg(&["panic_bad"]);
    config.panic_paths = vec!["panic_bad".to_string()];
    let findings = run_analysis(&fixtures_root(), &config);
    assert_eq!(count(&findings, "P001"), 1, "unwrap");
    assert_eq!(count(&findings, "P002"), 1, "expect");
    assert_eq!(count(&findings, "P003"), 1, "panic!");
    assert_eq!(count(&findings, "P004"), 1, "indexing (test-mod index not counted)");
    assert_eq!(summarize(&findings).new, 4);
}

#[test]
fn panic_good_is_clean_except_waived_index() {
    let mut config = cfg(&["panic_good"]);
    config.panic_paths = vec!["panic_good".to_string()];
    let findings = run_analysis(&fixtures_root(), &config);
    let s = summarize(&findings);
    assert_eq!((s.total, s.new, s.waived), (1, 0, 1), "only the justified index");
    assert_eq!(count(&findings, "P004"), 1);
}

#[test]
fn ct_bad_flags_branch_return_and_compare() {
    let mut config = cfg(&["ct_bad"]);
    config.ct = vec![CtTarget {
        file: "ct_bad/src/lib.rs".to_string(),
        functions: vec!["pow".to_string()],
        secret: vec!["exp".to_string()],
    }];
    let findings = run_analysis(&fixtures_root(), &config);
    assert_eq!(count(&findings, "C001"), 1, "if on secret exp");
    assert_eq!(count(&findings, "C002"), 1, "early return");
    assert_eq!(count(&findings, "C003"), 1, "comparison outside the branch");
    assert_eq!(summarize(&findings).new, 3);
    assert!(
        findings
            .iter()
            .all(|f| f.severity == pprl_analyze::Severity::Warning),
        "const-time findings are warnings"
    );
}

#[test]
fn ct_good_constant_time_rewrite_is_clean() {
    let mut config = cfg(&["ct_good"]);
    config.ct = vec![CtTarget {
        file: "ct_good/src/lib.rs".to_string(),
        functions: vec!["pow".to_string()],
        secret: vec!["exp".to_string()],
    }];
    let findings = run_analysis(&fixtures_root(), &config);
    assert!(findings.is_empty(), "unexpected: {findings:?}");
}

#[test]
fn taint_bad_flags_every_sink() {
    let mut config = cfg(&["taint_bad"]);
    config.taint_paths = vec!["taint_bad/src/lib.rs".to_string()];
    let findings = run_analysis(&fixtures_root(), &config);
    assert_eq!(count(&findings, "T001"), 3, "2 branches + 1 via call summary");
    assert_eq!(count(&findings, "T002"), 1, "secret-indexed table access");
    assert_eq!(count(&findings, "T003"), 2, "for-range bound + while condition");
    assert_eq!(count(&findings, "T004"), 1, "early return under secret branch");
    assert_eq!(summarize(&findings).new, 7, "{findings:?}");
}

#[test]
fn taint_good_branch_free_rewrite_is_clean() {
    let mut config = cfg(&["taint_good"]);
    config.taint_paths = vec!["taint_good/src/lib.rs".to_string()];
    let findings = run_analysis(&fixtures_root(), &config);
    let s = summarize(&findings);
    assert_eq!((s.total, s.new, s.waived), (1, 0, 1), "{findings:?}");
    assert_eq!(count(&findings, "T001"), 1, "only the waived occupancy match");
}

#[test]
fn combined_run_finds_all_families() {
    let mut config = cfg(&["secret_bad", "panic_bad", "ct_bad"]);
    config.secret_idents = vec!["sk".to_string()];
    config.panic_paths = vec!["panic_bad".to_string()];
    config.ct = vec![CtTarget {
        file: "ct_bad/src/lib.rs".to_string(),
        functions: vec!["pow".to_string()],
        secret: vec!["exp".to_string()],
    }];
    let findings = run_analysis(&fixtures_root(), &config);
    assert_eq!(summarize(&findings).new, 12, "5 secret + 4 panic + 3 ct");
    for family in ["secret-leak", "panic-path", "const-time"] {
        assert!(
            findings.iter().any(|f| f.family == family),
            "family {family} missing"
        );
    }
}

#[test]
fn baseline_roundtrip_suppresses_known_findings() {
    let mut config = cfg(&["panic_bad"]);
    config.panic_paths = vec!["panic_bad".to_string()];
    let findings = run_analysis(&fixtures_root(), &config);
    assert_eq!(summarize(&findings).new, 4);

    let baseline = Baseline::from_findings(&findings, None);
    let parsed = Baseline::parse(&baseline.serialize()).expect("serialized baseline parses");

    let mut rerun = run_analysis(&fixtures_root(), &config);
    let stale = parsed.apply(&mut rerun);
    assert!(stale.is_empty(), "no stale entries on identical code");
    let s = summarize(&rerun);
    assert_eq!((s.new, s.baselined), (0, 4), "all prior findings suppressed");
}

#[test]
fn fingerprints_survive_unrelated_line_insertion() {
    let mut config = Config::default();
    config.panic_paths = vec!["x.rs".to_string()];

    let fp_of = |src: &str| {
        let ctx = FileCtx::build("x.rs".to_string(), src);
        let mut findings = Vec::new();
        pprl_analyze::rules::panic::check(&ctx, &config, &mut findings);
        assign_fingerprints(&mut findings);
        assert_eq!(findings.len(), 1);
        findings[0].fingerprint.clone()
    };

    let before = fp_of("pub fn f(v: &[u64]) -> u64 { v[0] }\n");
    let after = fp_of("// an unrelated comment pushes the code down\n\npub fn f(v: &[u64]) -> u64 { v[0] }\n");
    assert_eq!(before, after, "content-addressed fingerprints ignore line shifts");
}
