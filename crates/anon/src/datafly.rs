//! Sweeney's DataFly algorithm \[8\]: bottom-up *full-domain* generalization.
//!
//! Start from the most specific level (taxonomy leaves / leaf intervals of
//! the static VGH), and while the anonymity requirement is violated by more
//! than `k` records, generalize the attribute with the most distinct values
//! one level up — across the whole column (full-domain recoding). Finally
//! suppress the at-most-`k` stragglers.

use crate::genval::GenVal;
use crate::view::AnonymizedView;
use pprl_data::DataSet;
use pprl_hierarchy::{NodeId, Vgh};
use std::collections::HashMap;

/// Runs DataFly. `qids` are attribute indices into the schema.
pub fn datafly(data: &DataSet, qids: &[usize], k: usize) -> AnonymizedView {
    let vghs: Vec<&Vgh> = qids
        .iter()
        .map(|&q| data.schema().attribute(q).vgh())
        .collect();

    // Leaf-level generalization node per record per QID.
    let leaf_nodes: Vec<Vec<NodeId>> = data
        .records()
        .iter()
        .map(|r| {
            qids.iter()
                .zip(&vghs)
                .map(|(&q, vgh)| match vgh {
                    Vgh::Categorical(t) => t.leaf_node(r.value(q).as_cat()),
                    Vgh::Continuous(h) => h
                        .leaf_for(r.value(q).as_num())
                        .expect("record values lie in the VGH domain"),
                })
                .collect()
        })
        .collect();

    // Current generalization level per attribute (levels *up* from leaves).
    let mut levels = vec![0u32; qids.len()];
    let max_level: Vec<u32> = vghs.iter().map(|v| v.height()).collect();

    loop {
        let sequences: Vec<Vec<NodeId>> = leaf_nodes
            .iter()
            .map(|leaves| {
                leaves
                    .iter()
                    .zip(&vghs)
                    .zip(&levels)
                    .map(|((&leaf, vgh), &lvl)| vgh.generalize(leaf, lvl))
                    .collect()
            })
            .collect();

        let mut groups: HashMap<&[NodeId], Vec<u32>> = HashMap::new();
        for (row, seq) in sequences.iter().enumerate() {
            groups.entry(seq.as_slice()).or_default().push(row as u32);
        }

        let violating: usize = groups
            .values()
            .filter(|rows| rows.len() < k)
            .map(|rows| rows.len())
            .sum();

        let exhausted = levels
            .iter()
            .zip(&max_level)
            .all(|(&lvl, &max)| lvl >= max);

        if violating <= k || exhausted {
            // Terminate: suppress the stragglers (≤ k of them, or whatever
            // remains once every attribute is fully generalized).
            let mut suppressed = Vec::new();
            let mut assignments = Vec::new();
            for (seq, rows) in groups {
                if rows.len() < k {
                    suppressed.extend(rows);
                } else {
                    for row in rows {
                        assignments.push((row, to_genvals(seq, &vghs)));
                    }
                }
            }
            suppressed.sort_unstable();
            return AnonymizedView::from_assignments(
                data,
                qids.to_vec(),
                assignments,
                suppressed,
            );
        }

        // Generalize the attribute with the most distinct current values
        // (among attributes not yet at the root).
        let distinct_per_attr: Vec<usize> = (0..qids.len())
            .map(|pos| {
                let mut vals: Vec<NodeId> = sequences.iter().map(|s| s[pos]).collect();
                vals.sort_unstable();
                vals.dedup();
                vals.len()
            })
            .collect();
        let target = (0..qids.len())
            .filter(|&pos| levels[pos] < max_level[pos])
            .max_by_key(|&pos| distinct_per_attr[pos])
            .expect("not exhausted, so some attribute can generalize");
        levels[target] += 1;
    }
}

/// Converts a node sequence to `GenVal`s (intervals for continuous VGHs).
fn to_genvals(seq: &[NodeId], vghs: &[&Vgh]) -> Vec<GenVal> {
    seq.iter()
        .zip(vghs)
        .map(|(&node, vgh)| match vgh {
            Vgh::Categorical(_) => GenVal::Cat(node),
            Vgh::Continuous(h) => {
                let (lo, hi) = h.bounds(node);
                GenVal::Range { lo, hi }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pprl_data::synth::{generate, SynthConfig};

    fn data(n: usize) -> DataSet {
        generate(&SynthConfig {
            records: n,
            seed: 21,
        })
    }

    #[test]
    fn result_is_k_anonymous_with_bounded_suppression() {
        let d = data(500);
        for k in [2usize, 8, 32] {
            let view = datafly(&d, &[0, 1, 2, 3, 4], k);
            assert!(view.is_k_anonymous(k), "k={k}");
            assert!(
                view.suppressed().len() <= k,
                "k={k}: suppressed {} > k",
                view.suppressed().len()
            );
            assert_eq!(view.covered_records() + view.suppressed().len(), d.len());
        }
    }

    #[test]
    fn full_domain_recoding_generalizes_whole_columns() {
        // Full-domain recoding: all class sequences at one attribute sit at
        // the same VGH depth.
        let d = data(400);
        let view = datafly(&d, &[1, 2], 16);
        let schema = d.schema();
        for (pos, &qid) in view.qids().iter().enumerate() {
            let t = schema.attribute(qid).vgh().as_taxonomy().unwrap().clone();
            let depths: Vec<u32> = view
                .classes()
                .iter()
                .map(|c| t.depth(c.sequence[pos].as_cat()))
                .collect();
            // All leaves at equal depth would give equal values; unbalanced
            // taxonomies can differ by the leaf-depth spread only.
            let min = depths.iter().min().unwrap();
            let max = depths.iter().max().unwrap();
            assert!(
                max - min <= t.height(),
                "depth spread implausible for full-domain recoding"
            );
        }
    }

    #[test]
    fn small_data_fully_generalizes_but_terminates() {
        // 3 records, k=3: must generalize heavily or suppress; never loop.
        let d = data(3);
        let view = datafly(&d, &[0, 1, 2, 3, 4], 3);
        assert!(view.is_k_anonymous(3));
    }

    #[test]
    fn k_one_keeps_leaf_precision() {
        let d = data(100);
        let view = datafly(&d, &[1, 2], 1);
        assert_eq!(view.suppressed().len(), 0);
        let schema = d.schema();
        // No violation at level 0, so values stay at leaves.
        for class in view.classes() {
            for (pos, val) in class.sequence.iter().enumerate() {
                let t = schema
                    .attribute(view.qids()[pos])
                    .vgh()
                    .as_taxonomy()
                    .unwrap()
                    .clone();
                assert!(t.is_leaf(val.as_cat()));
            }
        }
    }
}
