//! Generalized attribute values.

use pprl_hierarchy::NodeId;
use serde::{Deserialize, Serialize};

/// A generalized value: a taxonomy node for categorical attributes, or a
/// half-open interval for continuous ones.
///
/// Intervals are explicit (not VGH node ids) because TDS and Mondrian build
/// numeric intervals *on the fly* rather than following a static hierarchy
/// — the paper's §VI-A critique (3) hinges on exactly this difference.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub enum GenVal {
    /// Categorical generalization: a node of the attribute's taxonomy.
    Cat(NodeId),
    /// Continuous generalization: the half-open interval `[lo, hi)`.
    Range {
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
}

impl GenVal {
    /// The taxonomy node, panicking for ranges.
    pub fn as_cat(&self) -> NodeId {
        match self {
            GenVal::Cat(n) => *n,
            GenVal::Range { lo, hi } => panic!("expected Cat, got [{lo}-{hi})"),
        }
    }

    /// The interval bounds, panicking for categorical nodes.
    pub fn as_range(&self) -> (f64, f64) {
        match self {
            GenVal::Range { lo, hi } => (*lo, *hi),
            GenVal::Cat(n) => panic!("expected Range, got node {n}"),
        }
    }
}

impl PartialEq for GenVal {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (GenVal::Cat(a), GenVal::Cat(b)) => a == b,
            (GenVal::Range { lo: a1, hi: a2 }, GenVal::Range { lo: b1, hi: b2 }) => {
                a1.to_bits() == b1.to_bits() && a2.to_bits() == b2.to_bits()
            }
            _ => false,
        }
    }
}

impl Eq for GenVal {}

impl std::hash::Hash for GenVal {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            GenVal::Cat(n) => {
                state.write_u8(0);
                state.write_u32(*n);
            }
            GenVal::Range { lo, hi } => {
                state.write_u8(1);
                state.write_u64(lo.to_bits());
                state.write_u64(hi.to_bits());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn equality_and_hashing() {
        let mut set = HashSet::new();
        set.insert(GenVal::Cat(3));
        set.insert(GenVal::Range { lo: 1.0, hi: 2.0 });
        assert!(set.contains(&GenVal::Cat(3)));
        assert!(set.contains(&GenVal::Range { lo: 1.0, hi: 2.0 }));
        assert!(!set.contains(&GenVal::Cat(4)));
        assert!(!set.contains(&GenVal::Range { lo: 1.0, hi: 2.5 }));
    }

    #[test]
    fn accessors() {
        assert_eq!(GenVal::Cat(7).as_cat(), 7);
        assert_eq!(GenVal::Range { lo: 0.0, hi: 8.0 }.as_range(), (0.0, 8.0));
    }

    #[test]
    #[should_panic(expected = "expected Cat")]
    fn wrong_accessor_panics() {
        GenVal::Range { lo: 0.0, hi: 1.0 }.as_cat();
    }
}
