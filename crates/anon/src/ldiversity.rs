//! ℓ-diversity check (Machanavajjhala et al. \[10\]) — related-work
//! extension: k-anonymity alone leaks the sensitive attribute when a class
//! lacks diversity. The linkage pipeline treats the income class label as
//! the sensitive attribute.

use crate::view::AnonymizedView;
use pprl_data::DataSet;

/// Returns the *distinct* ℓ-diversity of the view: the minimum number of
/// distinct sensitive (class-label) values across equivalence classes.
/// A view is ℓ-diverse iff the returned value is ≥ ℓ.
pub fn distinct_class_diversity(view: &AnonymizedView, data: &DataSet) -> usize {
    view.classes()
        .iter()
        .map(|class| {
            let mut seen = vec![false; data.schema().class_count()];
            for &row in &class.rows {
                seen[data.records()[row as usize].class() as usize] = true;
            }
            seen.iter().filter(|&&s| s).count()
        })
        .min()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Anonymizer, AnonymizationMethod, KAnonymityRequirement};
    use pprl_data::synth::{generate, SynthConfig};

    #[test]
    fn diversity_within_bounds() {
        let data = generate(&SynthConfig {
            records: 400,
            seed: 5,
        });
        let view = Anonymizer::new(AnonymizationMethod::MaxEntropy, KAnonymityRequirement(32))
            .anonymize(&data, &[0, 1, 2])
            .unwrap();
        let l = distinct_class_diversity(&view, &data);
        assert!(l >= 1, "every class has at least one label");
        assert!(l <= data.schema().class_count());
    }

    #[test]
    fn diversity_constrained_anonymizer_is_l_diverse() {
        let data = generate(&SynthConfig {
            records: 600,
            seed: 7,
        });
        let plain = Anonymizer::new(AnonymizationMethod::MaxEntropy, KAnonymityRequirement(8))
            .anonymize(&data, &[0, 1, 2, 3])
            .unwrap();
        let diverse = Anonymizer::new(
            AnonymizationMethod::MaxEntropyDiverse(2),
            KAnonymityRequirement(8),
        )
        .anonymize(&data, &[0, 1, 2, 3])
        .unwrap();
        assert!(diverse.is_k_anonymous(8));
        assert!(distinct_class_diversity(&diverse, &data) >= 2);
        // The extra constraint can only coarsen the release.
        assert!(diverse.distinct_sequences() <= plain.distinct_sequences());
    }

    #[test]
    fn empty_view_has_zero_diversity() {
        let data = generate(&SynthConfig {
            records: 10,
            seed: 6,
        });
        let view = crate::view::AnonymizedView::from_assignments(&data, vec![1], vec![], vec![]);
        assert_eq!(distinct_class_diversity(&view, &data), 0);
    }
}
