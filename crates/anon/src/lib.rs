//! # pprl-anon — k-anonymization algorithms
//!
//! Each data holder publishes a k-anonymous generalization of its data set;
//! the quality of that generalization drives the blocking step's power
//! (paper §VI-A: "Anonymization methods play a very crucial role in our
//! method"). Three published algorithms plus the paper's own metric are
//! implemented:
//!
//! * [`AnonymizationMethod::Datafly`] — Sweeney's full-domain bottom-up
//!   generalization \[8\]: repeatedly generalize the attribute with the most
//!   distinct values, then suppress at most k stragglers.
//! * [`AnonymizationMethod::Tds`] — Fung et al.'s top-down specialization
//!   \[7\]: specialize the attribute with the best *information gain* on the
//!   class label; numeric intervals are built on the fly by best-gain
//!   binary splits. The paper's three critiques of TDS-for-blocking
//!   (not-beneficial specializations skipped; gain ≠ entropy; shallow
//!   on-the-fly numeric hierarchies) emerge naturally from this
//!   implementation.
//! * [`AnonymizationMethod::MaxEntropy`] — the paper's proposal (§VI-A):
//!   top-down, every specialization is beneficial, choose the valid
//!   attribute with **maximum entropy**, heuristically maximizing the
//!   number of distinct generalization sequences.
//! * [`AnonymizationMethod::Mondrian`] — LeFevre et al.'s multidimensional
//!   partitioning \[24\] (median splits / widest attribute), included as the
//!   related-work extension.
//!
//! All methods emit an [`AnonymizedView`]: the partition of records into
//! equivalence classes keyed by *generalization sequences* — exactly the
//! artifact the blocking step consumes.
//!
//! ```
//! use pprl_anon::{AnonymizationMethod, Anonymizer, KAnonymityRequirement};
//! use pprl_data::synth::{generate, SynthConfig};
//!
//! let data = generate(&SynthConfig { records: 300, seed: 1 });
//! let view = Anonymizer::new(AnonymizationMethod::MaxEntropy, KAnonymityRequirement(8))
//!     .anonymize(&data, &[0, 1, 2])
//!     .unwrap();
//! assert!(view.is_k_anonymous(8));
//! println!("{} distinct generalization sequences", view.distinct_sequences());
//! ```

mod datafly;
mod genval;
mod ldiversity;
mod metrics;
mod tds_global;
mod topdown;
mod view;

pub use datafly::datafly;
pub use genval::GenVal;
pub use ldiversity::distinct_class_diversity;
pub use metrics::{
    average_class_size, discernibility, distinct_sequences, marketer_risk, prosecutor_risk,
};
pub use tds_global::tds_global;
pub use topdown::{top_down, ChooserKind, NumericStrategy, TopDownConfig};
pub use view::{AnonymizedView, EquivalenceClass};

use pprl_data::DataSet;

/// The anonymity requirement `k` (paper notation: each released sequence
/// must cover at least `k` records).
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct KAnonymityRequirement(pub usize);

impl KAnonymityRequirement {
    /// The raw `k`.
    pub fn k(&self) -> usize {
        self.0
    }
}

/// Which anonymization algorithm a data holder runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum AnonymizationMethod {
    /// Sweeney's DataFly \[8\].
    Datafly,
    /// Fung et al.'s top-down specialization \[7\].
    Tds,
    /// The paper's maximum-entropy top-down method (§VI-A).
    MaxEntropy,
    /// LeFevre et al.'s Mondrian \[24\] (extension).
    Mondrian,
    /// MaxEntropy with an additional distinct ℓ-diversity requirement on
    /// the class label (Machanavajjhala et al. \[10\], extension).
    MaxEntropyDiverse(usize),
}

/// Errors from anonymization.
#[derive(Debug, Clone, PartialEq)]
pub enum AnonError {
    /// `k` is zero or exceeds the data set size.
    BadK { k: usize, records: usize },
    /// The QID list is empty or references a missing attribute.
    BadQids(String),
}

impl std::fmt::Display for AnonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnonError::BadK { k, records } => {
                write!(f, "k={k} invalid for {records} records")
            }
            AnonError::BadQids(s) => write!(f, "bad quasi-identifiers: {s}"),
        }
    }
}

impl std::error::Error for AnonError {}

/// Front door: anonymize `data` on the given QID attribute indices.
#[derive(Clone, Copy, Debug)]
pub struct Anonymizer {
    method: AnonymizationMethod,
    k: KAnonymityRequirement,
}

impl Anonymizer {
    /// Configures an anonymizer.
    pub fn new(method: AnonymizationMethod, k: KAnonymityRequirement) -> Self {
        Anonymizer { method, k }
    }

    /// The configured method.
    pub fn method(&self) -> AnonymizationMethod {
        self.method
    }

    /// The configured anonymity requirement.
    pub fn k(&self) -> KAnonymityRequirement {
        self.k
    }

    /// Produces the k-anonymous view of `data` over `qids`.
    pub fn anonymize(&self, data: &DataSet, qids: &[usize]) -> Result<AnonymizedView, AnonError> {
        validate_inputs(data, qids, self.k.k())?;
        let view = match self.method {
            AnonymizationMethod::Datafly => datafly(data, qids, self.k.k()),
            AnonymizationMethod::Tds => tds_global(data, qids, self.k.k()),
            AnonymizationMethod::MaxEntropy => top_down(
                data,
                qids,
                &TopDownConfig {
                    k: self.k.k(),
                    chooser: ChooserKind::MaxEntropy,
                    numeric: NumericStrategy::StaticVgh,
                    diversity: None,
                },
            ),
            AnonymizationMethod::Mondrian => top_down(
                data,
                qids,
                &TopDownConfig {
                    k: self.k.k(),
                    chooser: ChooserKind::Widest,
                    numeric: NumericStrategy::MedianBinary,
                    diversity: None,
                },
            ),
            AnonymizationMethod::MaxEntropyDiverse(l) => top_down(
                data,
                qids,
                &TopDownConfig {
                    k: self.k.k(),
                    chooser: ChooserKind::MaxEntropy,
                    numeric: NumericStrategy::StaticVgh,
                    diversity: Some(l),
                },
            ),
        };
        debug_assert!(view.is_k_anonymous(self.k.k()));
        Ok(view)
    }
}

fn validate_inputs(data: &DataSet, qids: &[usize], k: usize) -> Result<(), AnonError> {
    if k == 0 || k > data.len() {
        return Err(AnonError::BadK {
            k,
            records: data.len(),
        });
    }
    if qids.is_empty() {
        return Err(AnonError::BadQids("empty QID set".into()));
    }
    let arity = data.schema().arity();
    if let Some(&bad) = qids.iter().find(|&&q| q >= arity) {
        return Err(AnonError::BadQids(format!(
            "attribute index {bad} out of range (arity {arity})"
        )));
    }
    let mut seen = vec![false; arity];
    for &q in qids {
        if seen[q] {
            return Err(AnonError::BadQids(format!("duplicate attribute {q}")));
        }
        seen[q] = true;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pprl_data::synth::{generate, SynthConfig};

    #[test]
    fn invalid_inputs_rejected() {
        let data = generate(&SynthConfig {
            records: 50,
            seed: 1,
        });
        let anon = Anonymizer::new(AnonymizationMethod::MaxEntropy, KAnonymityRequirement(0));
        assert!(anon.anonymize(&data, &[0, 1]).is_err());
        let anon = Anonymizer::new(AnonymizationMethod::MaxEntropy, KAnonymityRequirement(51));
        assert!(anon.anonymize(&data, &[0, 1]).is_err());
        let anon = Anonymizer::new(AnonymizationMethod::MaxEntropy, KAnonymityRequirement(2));
        assert!(anon.anonymize(&data, &[]).is_err());
        assert!(anon.anonymize(&data, &[99]).is_err());
        assert!(anon.anonymize(&data, &[1, 1]).is_err());
    }

    #[test]
    fn every_method_yields_k_anonymous_views() {
        let data = generate(&SynthConfig {
            records: 400,
            seed: 2,
        });
        let qids = [0usize, 1, 2, 3, 4];
        for method in [
            AnonymizationMethod::Datafly,
            AnonymizationMethod::Tds,
            AnonymizationMethod::MaxEntropy,
            AnonymizationMethod::Mondrian,
        ] {
            for k in [2usize, 8, 32] {
                let view = Anonymizer::new(method, KAnonymityRequirement(k))
                    .anonymize(&data, &qids)
                    .unwrap();
                assert!(
                    view.is_k_anonymous(k),
                    "{method:?} k={k} violates k-anonymity"
                );
                assert_eq!(
                    view.covered_records() + view.suppressed().len(),
                    data.len(),
                    "{method:?} k={k} loses records"
                );
            }
        }
    }
}
