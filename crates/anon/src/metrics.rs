//! Anonymization quality metrics.

use crate::view::AnonymizedView;

/// Number of distinct generalization sequences — the paper's Fig. 2 metric
/// ("the advantage of more generalization sequences should be obvious …
/// every partition is smaller and more specific. This allows better
/// blocking efficiency").
pub fn distinct_sequences(view: &AnonymizedView) -> usize {
    view.distinct_sequences()
}

/// Mean equivalence-class size.
pub fn average_class_size(view: &AnonymizedView) -> f64 {
    if view.classes().is_empty() {
        return 0.0;
    }
    view.covered_records() as f64 / view.classes().len() as f64
}

/// Prosecutor re-identification risk: the worst-case probability that an
/// attacker who *knows their target is in the data* re-identifies it —
/// `1 / min class size`. k-anonymity bounds this by `1/k`; the paper's
/// §VI-B ("Anonymity requirement k is the most important parameter to
/// adjust the amount of privacy protection and disclosure risk") made
/// concrete.
pub fn prosecutor_risk(view: &AnonymizedView) -> f64 {
    view.classes()
        .iter()
        .map(|c| 1.0 / c.size() as f64)
        .fold(0.0, f64::max)
}

/// Marketer re-identification risk: the expected fraction of records an
/// attacker re-identifies by linking every class uniformly —
/// `(Σ_classes 1) / covered records = classes / n`.
pub fn marketer_risk(view: &AnonymizedView) -> f64 {
    if view.covered_records() == 0 {
        return 0.0;
    }
    view.classes().len() as f64 / view.covered_records() as f64
}

/// The discernibility metric `Σ |class|²` (+ `|data|·|suppressed|`):
/// standard cost measure from the anonymization literature, exposed for
/// ablation studies.
pub fn discernibility(view: &AnonymizedView) -> u64 {
    let class_cost: u64 = view
        .classes()
        .iter()
        .map(|c| (c.size() * c.size()) as u64)
        .sum();
    let total = view.covered_records() + view.suppressed().len();
    class_cost + (view.suppressed().len() * total) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genval::GenVal;
    use crate::view::AnonymizedView;
    use pprl_data::synth::{generate, SynthConfig};

    fn toy_view(sizes: &[usize], suppressed: usize) -> AnonymizedView {
        let total: usize = sizes.iter().sum::<usize>() + suppressed;
        let data = generate(&SynthConfig {
            records: total,
            seed: 1,
        });
        let mut assignments = Vec::new();
        let mut row = 0u32;
        for (i, &s) in sizes.iter().enumerate() {
            for _ in 0..s {
                assignments.push((row, vec![GenVal::Cat(i as u32)]));
                row += 1;
            }
        }
        let sup: Vec<u32> = (row..row + suppressed as u32).collect();
        AnonymizedView::from_assignments(&data, vec![1], assignments, sup)
    }

    #[test]
    fn metric_values() {
        let view = toy_view(&[3, 5], 2);
        assert_eq!(distinct_sequences(&view), 2);
        assert_eq!(average_class_size(&view), 4.0);
        // 9 + 25 + 2*10 = 54
        assert_eq!(discernibility(&view), 54);
        // Worst class has 3 members; 2 classes over 8 covered records.
        assert!((prosecutor_risk(&view) - 1.0 / 3.0).abs() < 1e-12);
        assert!((marketer_risk(&view) - 2.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn k_anonymity_bounds_prosecutor_risk() {
        use crate::{AnonymizationMethod, Anonymizer, KAnonymityRequirement};
        let data = generate(&SynthConfig {
            records: 400,
            seed: 4,
        });
        for k in [4usize, 16, 64] {
            let view =
                Anonymizer::new(AnonymizationMethod::MaxEntropy, KAnonymityRequirement(k))
                    .anonymize(&data, &[0, 1, 2])
                    .unwrap();
            assert!(
                prosecutor_risk(&view) <= 1.0 / k as f64 + 1e-12,
                "k={k}: risk must be bounded by 1/k"
            );
        }
    }

    #[test]
    fn empty_view_metrics() {
        let view = toy_view(&[], 0);
        assert_eq!(average_class_size(&view), 0.0);
        assert_eq!(discernibility(&view), 0);
    }
}
