//! Faithful TDS (Fung, Wang, Yu — ICDE'05 \[7\]): top-down specialization
//! with **global (full-domain-cut) recoding**.
//!
//! The algorithm maintains one *cut* through each attribute's hierarchy,
//! shared by the whole table. Each round it considers specializing one cut
//! value `v` into its children, scores the candidate by the information
//! gain on the class label over the records covered by `v`, and applies the
//! *best valid and beneficial* specialization globally. A specialization is
//! valid only if every equivalence class it touches still has ≥ k records —
//! the global coupling that makes TDS conservative.
//!
//! Continuous attributes get their interval hierarchy built on the fly via
//! best-gain binary splits (the source of the hybrid paper's critique (3):
//! once gain dries up, intervals stay wide).

use crate::genval::GenVal;
use crate::view::AnonymizedView;
use pprl_data::{DataSet, Record};
use pprl_hierarchy::{Taxonomy, Vgh};
use std::collections::HashMap;

/// Runs global TDS and returns the anonymized view.
pub fn tds_global(data: &DataSet, qids: &[usize], k: usize) -> AnonymizedView {
    let vghs: Vec<&Vgh> = qids
        .iter()
        .map(|&q| data.schema().attribute(q).vgh())
        .collect();
    let mut state = State::new(data, qids, &vghs);

    while let Some(best) = state.best_candidate(k) {
        state.apply(best);
    }

    let assignments = (0..data.len() as u32)
        .map(|row| (row, state.sequence_of(row as usize)))
        .collect();
    AnonymizedView::from_assignments(data, qids.to_vec(), assignments, Vec::new())
}

/// A cut value: per attribute position, either a taxonomy node or a
/// dynamic interval.
type Seq = Vec<GenVal>;

struct State<'a> {
    data: &'a DataSet,
    qids: &'a [usize],
    vghs: &'a [&'a Vgh],
    /// Current generalized value per (record, qid position).
    assign: Vec<Seq>,
    /// Record rows grouped by their current value per attribute position:
    /// `groups[pos][value] = rows`.
    groups: Vec<HashMap<GenVal, Vec<u32>>>,
    /// Current equivalence-class sizes keyed by full sequence.
    class_sizes: HashMap<Seq, usize>,
}

/// A chosen specialization: split `value` at attribute position `pos` into
/// `children`, where each child carries the rows that move into it.
struct Candidate {
    pos: usize,
    value: GenVal,
    children: Vec<(GenVal, Vec<u32>)>,
    gain: f64,
}

impl<'a> State<'a> {
    fn new(data: &'a DataSet, qids: &'a [usize], vghs: &'a [&'a Vgh]) -> Self {
        let root_seq: Seq = vghs
            .iter()
            .map(|vgh| match vgh {
                Vgh::Categorical(_) => GenVal::Cat(0),
                Vgh::Continuous(h) => {
                    let (lo, hi) = h.domain();
                    GenVal::Range { lo, hi }
                }
            })
            .collect();
        let assign = vec![root_seq.clone(); data.len()];
        let mut groups: Vec<HashMap<GenVal, Vec<u32>>> = Vec::with_capacity(qids.len());
        for &v in root_seq.iter() {
            let mut m = HashMap::new();
            m.insert(v, (0..data.len() as u32).collect());
            groups.push(m);
        }
        let mut class_sizes = HashMap::new();
        class_sizes.insert(root_seq, data.len());
        State {
            data,
            qids,
            vghs,
            assign,
            groups,
            class_sizes,
        }
    }

    fn sequence_of(&self, row: usize) -> Seq {
        self.assign[row].clone()
    }

    fn record(&self, row: u32) -> &Record {
        &self.data.records()[row as usize]
    }

    /// Enumerates candidates and returns the best valid, beneficial one.
    fn best_candidate(&self, k: usize) -> Option<Candidate> {
        let mut best: Option<Candidate> = None;
        for pos in 0..self.qids.len() {
            let values: Vec<GenVal> = self.groups[pos].keys().copied().collect();
            for value in values {
                let rows = &self.groups[pos][&value];
                if rows.is_empty() {
                    continue;
                }
                let Some(children) = self.split_value(pos, value, rows) else {
                    continue;
                };
                if !self.is_valid(pos, value, &children, k) {
                    continue;
                }
                let gain = self.info_gain(rows, &children);
                if gain <= 1e-12 {
                    continue; // not beneficial (hybrid-paper critique (1))
                }
                if best.as_ref().map_or(true, |b| gain > b.gain) {
                    best = Some(Candidate {
                        pos,
                        value,
                        children,
                        gain,
                    });
                }
            }
        }
        best
    }

    /// Buckets `rows` by the children of `value`, or `None` if `value` is
    /// maximally specific.
    fn split_value(
        &self,
        pos: usize,
        value: GenVal,
        rows: &[u32],
    ) -> Option<Vec<(GenVal, Vec<u32>)>> {
        match (self.vghs[pos], value) {
            (Vgh::Categorical(t), GenVal::Cat(node)) => {
                if t.is_leaf(node) {
                    return None;
                }
                let children = t.children(node);
                let mut buckets: Vec<(GenVal, Vec<u32>)> = children
                    .iter()
                    .map(|&c| (GenVal::Cat(c), Vec::new()))
                    .collect();
                let q = self.qids[pos];
                for &row in rows {
                    let leaf = self.record(row).value(q).as_cat();
                    let idx = children
                        .iter()
                        .position(|&c| in_leaf_range(t, c, leaf))
                        .expect("leaf under exactly one child");
                    buckets[idx].1.push(row);
                }
                buckets.retain(|(_, rows)| !rows.is_empty());
                Some(buckets)
            }
            (Vgh::Continuous(_), GenVal::Range { lo, hi }) => {
                let q = self.qids[pos];
                let mut vals: Vec<(f64, u32)> = rows
                    .iter()
                    .map(|&row| (self.record(row).value(q).as_num(), row))
                    .collect();
                vals.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
                // Best-gain binary cut among distinct values.
                let mut cuts: Vec<f64> = Vec::new();
                for w in vals.windows(2) {
                    if w[0].0 < w[1].0 {
                        cuts.push(w[1].0);
                    }
                }
                if cuts.is_empty() {
                    return None;
                }
                let mut best: Option<(f64, f64)> = None; // (gain, cut)
                for &cut in &cuts {
                    let at = vals.partition_point(|&(v, _)| v < cut);
                    let left: Vec<u32> = vals[..at].iter().map(|&(_, r)| r).collect();
                    let right: Vec<u32> = vals[at..].iter().map(|&(_, r)| r).collect();
                    let g = self.info_gain(
                        rows,
                        &[
                            (GenVal::Range { lo, hi: cut }, left),
                            (GenVal::Range { lo: cut, hi }, right),
                        ],
                    );
                    if best.map_or(true, |(bg, _)| g > bg) {
                        best = Some((g, cut));
                    }
                }
                let (_, cut) = best?;
                let at = vals.partition_point(|&(v, _)| v < cut);
                Some(vec![
                    (
                        GenVal::Range { lo, hi: cut },
                        vals[..at].iter().map(|&(_, r)| r).collect(),
                    ),
                    (
                        GenVal::Range { lo: cut, hi },
                        vals[at..].iter().map(|&(_, r)| r).collect(),
                    ),
                ])
            }
            _ => unreachable!("value kind matches hierarchy kind"),
        }
    }

    /// Global validity: after moving each affected class's rows into child
    /// classes, every non-empty class must keep ≥ k members.
    fn is_valid(
        &self,
        pos: usize,
        value: GenVal,
        children: &[(GenVal, Vec<u32>)],
        k: usize,
    ) -> bool {
        // New class sizes for affected classes only.
        let mut new_sizes: HashMap<Seq, usize> = HashMap::new();
        for (child_val, rows) in children {
            for &row in rows {
                let mut seq = self.assign[row as usize].clone();
                debug_assert_eq!(seq[pos], value);
                seq[pos] = *child_val;
                *new_sizes.entry(seq).or_insert(0) += 1;
            }
        }
        new_sizes.values().all(|&size| size >= k)
    }

    /// Class-label information gain of the split over `rows`.
    fn info_gain(&self, rows: &[u32], children: &[(GenVal, Vec<u32>)]) -> f64 {
        let parent = self.class_entropy(rows);
        let n = rows.len() as f64;
        let kids: f64 = children
            .iter()
            .map(|(_, rows)| rows.len() as f64 / n * self.class_entropy(rows))
            .sum();
        parent - kids
    }

    fn class_entropy(&self, rows: &[u32]) -> f64 {
        let classes = self.data.schema().class_count();
        let mut counts = vec![0usize; classes];
        for &row in rows {
            counts[self.record(row).class() as usize] += 1;
        }
        let n = rows.len() as f64;
        counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / n;
                -p * p.log2()
            })
            .sum()
    }

    /// Applies a specialization globally.
    fn apply(&mut self, cand: Candidate) {
        // Update class sizes: remove affected old classes, add new ones.
        for (child_val, rows) in &cand.children {
            for &row in rows {
                let old_seq = &self.assign[row as usize];
                if let Some(size) = self.class_sizes.get_mut(old_seq) {
                    *size -= 1;
                    if *size == 0 {
                        self.class_sizes.remove(old_seq);
                    }
                }
                let mut new_seq = self.assign[row as usize].clone();
                new_seq[cand.pos] = *child_val;
                *self.class_sizes.entry(new_seq.clone()).or_insert(0) += 1;
                self.assign[row as usize] = new_seq;
            }
        }
        // Update the per-attribute grouping.
        self.groups[cand.pos].remove(&cand.value);
        for (child_val, rows) in cand.children {
            self.groups[cand.pos].insert(child_val, rows);
        }
    }
}

fn in_leaf_range(t: &Taxonomy, node: pprl_hierarchy::NodeId, leaf: u32) -> bool {
    let (lo, hi) = t.leaf_range(node);
    (lo..hi).contains(&leaf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pprl_data::synth::{generate, SynthConfig};

    fn data(n: usize) -> DataSet {
        generate(&SynthConfig {
            records: n,
            seed: 33,
        })
    }

    #[test]
    fn result_is_k_anonymous() {
        let d = data(500);
        for k in [2usize, 8, 32] {
            let view = tds_global(&d, &[0, 1, 2, 3, 4], k);
            assert!(view.is_k_anonymous(k), "k={k}");
            assert_eq!(view.covered_records(), d.len());
        }
    }

    #[test]
    fn recoding_is_global_single_dimensional() {
        // Global recoding: the set of values appearing at one attribute
        // position forms an antichain (a cut): no value is an ancestor of
        // another.
        let d = data(400);
        let view = tds_global(&d, &[1, 2], 8);
        let schema = d.schema();
        for (pos, &qid) in view.qids().iter().enumerate() {
            let t = schema.attribute(qid).vgh().as_taxonomy().unwrap().clone();
            let values: Vec<_> = view
                .classes()
                .iter()
                .map(|c| c.sequence[pos].as_cat())
                .collect();
            for &a in &values {
                for &b in &values {
                    if a != b {
                        let (alo, ahi) = t.leaf_range(a);
                        let (blo, bhi) = t.leaf_range(b);
                        let nested = (alo <= blo && bhi <= ahi) || (blo <= alo && ahi <= bhi);
                        assert!(!nested, "cut values must not be nested: {a} vs {b}");
                    }
                }
            }
        }
    }

    #[test]
    fn fewer_sequences_than_local_recoding() {
        // The global validity constraint can only reduce the sequence count
        // relative to the per-partition engine with the same metric.
        let d = data(600);
        let global = tds_global(&d, &[0, 1, 2, 3, 4], 8);
        let local = crate::topdown::top_down(
            &d,
            &[0, 1, 2, 3, 4],
            &crate::topdown::TopDownConfig {
                k: 8,
                chooser: crate::topdown::ChooserKind::InfoGain {
                    require_positive: true,
                },
                numeric: crate::topdown::NumericStrategy::BestGainBinary,
                diversity: None,
            },
        );
        assert!(
            global.distinct_sequences() <= local.distinct_sequences(),
            "global {} > local {}",
            global.distinct_sequences(),
            local.distinct_sequences()
        );
    }

    #[test]
    fn terminates_on_tiny_inputs() {
        let d = data(5);
        let view = tds_global(&d, &[0, 1], 5);
        assert!(view.is_k_anonymous(5));
    }
}
