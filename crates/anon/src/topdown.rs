//! The shared top-down specialization engine.
//!
//! TDS \[7\], the paper's MaxEntropy method (§VI-A), and Mondrian \[24\] are
//! all instances of one scheme: start from the fully generalized partition
//! and repeatedly *specialize* a partition on one attribute, provided every
//! resulting sub-partition still satisfies the anonymity requirement
//! ("valid") and the method's metric approves ("beneficial"). They differ
//! only in the metric ([`ChooserKind`]) and in how numeric intervals are
//! refined ([`NumericStrategy`]).

use crate::genval::GenVal;
use crate::view::AnonymizedView;
use pprl_data::DataSet;
use pprl_hierarchy::{NodeId, Vgh};

/// Attribute-selection metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChooserKind {
    /// TDS: maximize information gain on the class label. With
    /// `require_positive`, zero-gain specializations are *skipped* — the
    /// paper's critique (1) of TDS as a blocking enabler.
    InfoGain {
        /// Skip specializations whose gain is not strictly positive.
        require_positive: bool,
    },
    /// The paper's metric: maximize the entropy of the attribute's value
    /// distribution within the partition; every specialization counts as
    /// beneficial.
    MaxEntropy,
    /// Mondrian: pick the attribute with the widest normalized extent.
    Widest,
}

/// How continuous attributes are specialized.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NumericStrategy {
    /// Follow the static interval VGH (the paper's method and DataFly).
    StaticVgh,
    /// Best-information-gain binary splits built on the fly (TDS \[7\]) —
    /// the source of the paper's critique (3): gain hits zero quickly, so
    /// the resulting interval "hierarchies" stay shallow.
    BestGainBinary,
    /// Median binary splits (Mondrian \[24\]).
    MedianBinary,
}

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct TopDownConfig {
    /// Anonymity requirement.
    pub k: usize,
    /// Attribute-selection metric.
    pub chooser: ChooserKind,
    /// Numeric refinement strategy.
    pub numeric: NumericStrategy,
    /// Optional distinct ℓ-diversity requirement on the class label
    /// (Machanavajjhala et al. \[10\], the related-work extension): a
    /// specialization is valid only if every resulting partition retains at
    /// least ℓ distinct class labels.
    pub diversity: Option<usize>,
}

/// A work-in-progress partition.
struct Partition {
    rows: Vec<u32>,
    seq: Vec<GenVal>,
    /// For continuous attributes under [`NumericStrategy::StaticVgh`], the
    /// VGH node backing `seq[j]` (intervals alone cannot be specialized
    /// without knowing their place in the tree).
    numeric_nodes: Vec<Option<NodeId>>,
}

/// Bucketed rows: each entry is the bucket's new generalized value, the
/// backing VGH node (static numeric refinement only), and the member rows.
type Buckets = Vec<(GenVal, Option<NodeId>, Vec<u32>)>;

/// A candidate specialization of one partition on one attribute.
struct Candidate {
    attr_pos: usize,
    score: f64,
    buckets: Buckets,
}

/// Runs the top-down engine and returns the anonymized view.
pub fn top_down(data: &DataSet, qids: &[usize], config: &TopDownConfig) -> AnonymizedView {
    let vghs: Vec<&Vgh> = qids
        .iter()
        .map(|&q| data.schema().attribute(q).vgh())
        .collect();

    let root_seq: Vec<GenVal> = vghs
        .iter()
        .map(|vgh| match vgh {
            Vgh::Categorical(_) => GenVal::Cat(vgh.root()),
            Vgh::Continuous(h) => {
                let (lo, hi) = h.domain();
                GenVal::Range { lo, hi }
            }
        })
        .collect();
    let root_nodes: Vec<Option<NodeId>> = vghs
        .iter()
        .map(|vgh| match (vgh, config.numeric) {
            (Vgh::Continuous(_), NumericStrategy::StaticVgh) => Some(0),
            _ => None,
        })
        .collect();

    let mut stack = vec![Partition {
        rows: (0..data.len() as u32).collect(),
        seq: root_seq,
        numeric_nodes: root_nodes,
    }];
    let mut finished: Vec<(u32, Vec<GenVal>)> = Vec::new();

    while let Some(part) = stack.pop() {
        match best_candidate(data, qids, &vghs, &part, config) {
            None => {
                for &row in &part.rows {
                    finished.push((row, part.seq.clone()));
                }
            }
            Some(cand) => {
                for (val, node, rows) in cand.buckets {
                    let mut seq = part.seq.clone();
                    seq[cand.attr_pos] = val;
                    let mut numeric_nodes = part.numeric_nodes.clone();
                    if numeric_nodes[cand.attr_pos].is_some() || node.is_some() {
                        numeric_nodes[cand.attr_pos] = node;
                    }
                    stack.push(Partition {
                        rows,
                        seq,
                        numeric_nodes,
                    });
                }
            }
        }
    }

    AnonymizedView::from_assignments(data, qids.to_vec(), finished, Vec::new())
}

/// Finds the highest-scoring valid (and beneficial) specialization.
fn best_candidate(
    data: &DataSet,
    qids: &[usize],
    vghs: &[&Vgh],
    part: &Partition,
    config: &TopDownConfig,
) -> Option<Candidate> {
    let mut best: Option<Candidate> = None;
    for (pos, (&qid, vgh)) in qids.iter().zip(vghs).enumerate() {
        let Some(buckets) = propose_split(data, qid, vgh, part, pos, config) else {
            continue;
        };
        // Validity: every non-empty bucket keeps the anonymity requirement.
        if buckets.iter().any(|(_, _, rows)| rows.len() < config.k) {
            continue;
        }
        // Optional ℓ-diversity validity: every bucket keeps ≥ ℓ distinct
        // class labels.
        if let Some(l) = config.diversity {
            let diverse_enough = buckets.iter().all(|(_, _, rows)| {
                let mut seen = vec![false; data.schema().class_count()];
                let mut distinct = 0usize;
                for &row in rows {
                    let c = data.records()[row as usize].class() as usize;
                    if !seen[c] {
                        seen[c] = true;
                        distinct += 1;
                        if distinct >= l {
                            break;
                        }
                    }
                }
                distinct >= l
            });
            if !diverse_enough {
                continue;
            }
        }
        let score = match config.chooser {
            ChooserKind::InfoGain { require_positive } => {
                let gain = info_gain(data, &part.rows, &buckets);
                if require_positive && gain <= 1e-12 {
                    continue; // not beneficial — skipped, per TDS
                }
                gain
            }
            ChooserKind::MaxEntropy => bucket_entropy(&buckets, part.rows.len()),
            ChooserKind::Widest => match vgh {
                Vgh::Categorical(t) => {
                    let node = part.seq[pos].as_cat();
                    t.spec_set_size(node) as f64 / t.leaf_count() as f64
                }
                Vgh::Continuous(h) => {
                    let (lo, hi) = part.seq[pos].as_range();
                    (hi - lo) / h.norm_factor()
                }
            },
        };
        if best.as_ref().map_or(true, |b| score > b.score) {
            best = Some(Candidate {
                attr_pos: pos,
                score,
                buckets,
            });
        }
    }
    best
}

/// Proposes the bucketing a specialization of attribute `qid` would create,
/// or `None` if the attribute cannot be specialized further.
fn propose_split(
    data: &DataSet,
    qid: usize,
    vgh: &Vgh,
    part: &Partition,
    pos: usize,
    config: &TopDownConfig,
) -> Option<Buckets> {
    match vgh {
        Vgh::Categorical(t) => {
            let node = part.seq[pos].as_cat();
            if t.is_leaf(node) {
                return None;
            }
            let children = t.children(node);
            let mut buckets: Vec<(GenVal, Option<NodeId>, Vec<u32>)> = children
                .iter()
                .map(|&c| (GenVal::Cat(c), None, Vec::new()))
                .collect();
            for &row in &part.rows {
                let leaf_pos = data.records()[row as usize].value(qid).as_cat();
                let child_idx = children
                    .iter()
                    .position(|&c| {
                        let (lo, hi) = t.leaf_range(c);
                        (lo..hi).contains(&leaf_pos)
                    })
                    .expect("every leaf lies under exactly one child");
                buckets[child_idx].2.push(row);
            }
            buckets.retain(|(_, _, rows)| !rows.is_empty());
            Some(buckets)
        }
        Vgh::Continuous(h) => match config.numeric {
            NumericStrategy::StaticVgh => {
                let node = part.numeric_nodes[pos].expect("static numeric node tracked");
                if h.is_leaf(node) {
                    return None;
                }
                let children = h.children(node);
                let mut buckets: Vec<(GenVal, Option<NodeId>, Vec<u32>)> = children
                    .iter()
                    .map(|&c| {
                        let (lo, hi) = h.bounds(c);
                        (GenVal::Range { lo, hi }, Some(c), Vec::new())
                    })
                    .collect();
                for &row in &part.rows {
                    let v = data.records()[row as usize].value(qid).as_num();
                    let idx = children
                        .iter()
                        .position(|&c| {
                            let (lo, hi) = h.bounds(c);
                            v >= lo && v < hi
                        })
                        .expect("children tile parent");
                    buckets[idx].2.push(row);
                }
                buckets.retain(|(_, _, rows)| !rows.is_empty());
                Some(buckets)
            }
            NumericStrategy::BestGainBinary => {
                binary_split(data, qid, part, pos, config.k, SplitRule::BestGain)
            }
            NumericStrategy::MedianBinary => {
                binary_split(data, qid, part, pos, config.k, SplitRule::Median)
            }
        },
    }
}

enum SplitRule {
    BestGain,
    Median,
}

/// Splits `[lo, hi)` at a cut `c` into `[lo, c)` / `[c, hi)`.
fn binary_split(
    data: &DataSet,
    qid: usize,
    part: &Partition,
    pos: usize,
    k: usize,
    rule: SplitRule,
) -> Option<Buckets> {
    let (lo, hi) = part.seq[pos].as_range();
    let mut values: Vec<(f64, u32)> = part
        .rows
        .iter()
        .map(|&row| (data.records()[row as usize].value(qid).as_num(), row))
        .collect();
    values.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite values"));
    // Candidate cuts between adjacent distinct values.
    let mut cuts: Vec<f64> = Vec::new();
    for w in values.windows(2) {
        if w[0].0 < w[1].0 {
            cuts.push(w[1].0);
        }
    }
    if cuts.is_empty() {
        return None; // all values identical: nothing to split
    }

    let cut = match rule {
        SplitRule::Median => {
            // The distinct value nearest to the median row.
            let mid = values[values.len() / 2].0;
            *cuts
                .iter()
                .min_by(|a, b| {
                    (*a - mid)
                        .abs()
                        .partial_cmp(&(*b - mid).abs())
                        .expect("finite")
                })
                .expect("non-empty cuts")
        }
        SplitRule::BestGain => {
            let mut best = (f64::NEG_INFINITY, cuts[0]);
            for &c in &cuts {
                let split_at = values.partition_point(|&(v, _)| v < c);
                if split_at < k || values.len() - split_at < k {
                    continue; // invalid cut; skip early
                }
                let left: Vec<u32> = values[..split_at].iter().map(|&(_, r)| r).collect();
                let right: Vec<u32> = values[split_at..].iter().map(|&(_, r)| r).collect();
                let g = info_gain(
                    data,
                    &part.rows,
                    &[
                        (GenVal::Range { lo, hi: c }, None, left),
                        (GenVal::Range { lo: c, hi }, None, right),
                    ],
                );
                if g > best.0 {
                    best = (g, c);
                }
            }
            if best.0 == f64::NEG_INFINITY {
                return None; // no valid cut
            }
            best.1
        }
    };

    let split_at = values.partition_point(|&(v, _)| v < cut);
    let left: Vec<u32> = values[..split_at].iter().map(|&(_, r)| r).collect();
    let right: Vec<u32> = values[split_at..].iter().map(|&(_, r)| r).collect();
    if left.is_empty() || right.is_empty() {
        return None;
    }
    Some(vec![
        (GenVal::Range { lo, hi: cut }, None, left),
        (GenVal::Range { lo: cut, hi }, None, right),
    ])
}

/// Shannon entropy of the class label over `rows`.
fn class_entropy(data: &DataSet, rows: &[u32]) -> f64 {
    let classes = data.schema().class_count();
    let mut counts = vec![0usize; classes];
    for &row in rows {
        counts[data.records()[row as usize].class() as usize] += 1;
    }
    entropy_of_counts(&counts, rows.len())
}

/// Information gain of a split w.r.t. the class label.
fn info_gain(
    data: &DataSet,
    parent_rows: &[u32],
    buckets: &[(GenVal, Option<NodeId>, Vec<u32>)],
) -> f64 {
    let parent = class_entropy(data, parent_rows);
    let n = parent_rows.len() as f64;
    let children: f64 = buckets
        .iter()
        .map(|(_, _, rows)| rows.len() as f64 / n * class_entropy(data, rows))
        .sum();
    parent - children
}

/// Entropy of the bucket-occupancy distribution — the paper's "attribute
/// with maximum entropy" metric, measured over the specialization's
/// immediate branches.
fn bucket_entropy(buckets: &[(GenVal, Option<NodeId>, Vec<u32>)], total: usize) -> f64 {
    let counts: Vec<usize> = buckets.iter().map(|(_, _, rows)| rows.len()).collect();
    entropy_of_counts(&counts, total)
}

fn entropy_of_counts(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let n = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pprl_data::synth::{generate, SynthConfig};

    fn data() -> DataSet {
        generate(&SynthConfig {
            records: 600,
            seed: 11,
        })
    }

    fn config(chooser: ChooserKind, numeric: NumericStrategy, k: usize) -> TopDownConfig {
        TopDownConfig {
            k,
            chooser,
            numeric,
            diversity: None,
        }
    }

    #[test]
    fn max_entropy_produces_k_anonymous_partition() {
        let d = data();
        let view = top_down(
            &d,
            &[0, 1, 2, 3, 4],
            &config(ChooserKind::MaxEntropy, NumericStrategy::StaticVgh, 8),
        );
        assert!(view.is_k_anonymous(8));
        assert_eq!(view.covered_records(), d.len());
        assert!(view.distinct_sequences() > 1, "root-only view is useless");
    }

    #[test]
    fn larger_k_means_fewer_sequences() {
        let d = data();
        let count = |k: usize| {
            top_down(
                &d,
                &[0, 1, 2, 3, 4],
                &config(ChooserKind::MaxEntropy, NumericStrategy::StaticVgh, k),
            )
            .distinct_sequences()
        };
        let (c2, c16, c128) = (count(2), count(16), count(128));
        assert!(c2 >= c16, "k=2 ({c2}) >= k=16 ({c16})");
        assert!(c16 >= c128, "k=16 ({c16}) >= k=128 ({c128})");
    }

    #[test]
    fn tds_benefit_test_only_prunes() {
        // The greedy path with and without the benefit test is identical
        // until the strict variant stops early (when the best gain is no
        // longer positive), so requiring positive gain can only *reduce*
        // the number of distinct sequences — the paper's critique (1).
        let d = data();
        let strict = top_down(
            &d,
            &[0, 1, 2, 3],
            &config(
                ChooserKind::InfoGain {
                    require_positive: true,
                },
                NumericStrategy::BestGainBinary,
                8,
            ),
        );
        let lenient = top_down(
            &d,
            &[0, 1, 2, 3],
            &config(
                ChooserKind::InfoGain {
                    require_positive: false,
                },
                NumericStrategy::BestGainBinary,
                8,
            ),
        );
        assert!(strict.is_k_anonymous(8));
        assert!(lenient.is_k_anonymous(8));
        assert!(
            strict.distinct_sequences() <= lenient.distinct_sequences(),
            "benefit test must prune: strict {} > lenient {}",
            strict.distinct_sequences(),
            lenient.distinct_sequences()
        );
    }

    #[test]
    fn mondrian_median_splits_are_valid() {
        let d = data();
        let view = top_down(
            &d,
            &[0, 1, 2, 3, 4],
            &config(ChooserKind::Widest, NumericStrategy::MedianBinary, 16),
        );
        assert!(view.is_k_anonymous(16));
        assert_eq!(view.covered_records(), d.len());
    }

    #[test]
    fn k_equals_one_specializes_to_leaves() {
        // With k = 1 every specialization is valid, so categorical values
        // reach taxonomy leaves and the blocking step sees exact values.
        let d = generate(&SynthConfig {
            records: 60,
            seed: 3,
        });
        let view = top_down(
            &d,
            &[1, 2],
            &config(ChooserKind::MaxEntropy, NumericStrategy::StaticVgh, 1),
        );
        let schema = d.schema();
        for class in view.classes() {
            for (pos, val) in class.sequence.iter().enumerate() {
                let vgh = schema.attribute(view.qids()[pos]).vgh();
                let t = vgh.as_taxonomy().unwrap();
                assert!(t.is_leaf(val.as_cat()), "k=1 must reach leaves");
            }
        }
    }

    #[test]
    fn entropy_of_counts_basics() {
        assert_eq!(entropy_of_counts(&[10], 10), 0.0);
        let h = entropy_of_counts(&[5, 5], 10);
        assert!((h - 1.0).abs() < 1e-12);
        assert_eq!(entropy_of_counts(&[], 0), 0.0);
    }
}
