//! The anonymized release: equivalence classes keyed by generalization
//! sequences.

use crate::genval::GenVal;
use pprl_data::DataSet;
use std::collections::HashMap;
use std::sync::Arc;

/// All records sharing one generalization sequence.
#[derive(Clone, Debug)]
pub struct EquivalenceClass {
    /// One generalized value per QID attribute (in `qids` order).
    pub sequence: Vec<GenVal>,
    /// Indices into the source data set's records.
    pub rows: Vec<u32>,
}

impl EquivalenceClass {
    /// Class cardinality.
    pub fn size(&self) -> usize {
        self.rows.len()
    }
}

/// A k-anonymous view of a data set: the publishable artifact of the
/// anonymization step and the *only* input the blocking step may read.
#[derive(Clone, Debug)]
pub struct AnonymizedView {
    schema: Arc<pprl_data::Schema>,
    qids: Vec<usize>,
    classes: Vec<EquivalenceClass>,
    suppressed: Vec<u32>,
}

impl AnonymizedView {
    /// Assembles a view (used by the anonymizers).
    pub fn new(
        data: &DataSet,
        qids: Vec<usize>,
        classes: Vec<EquivalenceClass>,
        suppressed: Vec<u32>,
    ) -> Self {
        AnonymizedView {
            schema: Arc::clone(data.schema()),
            qids,
            classes,
            suppressed,
        }
    }

    /// Groups rows by identical generalization sequence (normalizing views
    /// whose builder produced duplicate sequences).
    pub fn from_assignments(
        data: &DataSet,
        qids: Vec<usize>,
        assignments: Vec<(u32, Vec<GenVal>)>,
        suppressed: Vec<u32>,
    ) -> Self {
        let mut groups: HashMap<Vec<GenVal>, Vec<u32>> = HashMap::new();
        for (row, seq) in assignments {
            groups.entry(seq).or_default().push(row);
        }
        let mut classes: Vec<EquivalenceClass> = groups
            .into_iter()
            .map(|(sequence, mut rows)| {
                rows.sort_unstable();
                EquivalenceClass { sequence, rows }
            })
            .collect();
        // Deterministic order: by first row index.
        classes.sort_by_key(|c| c.rows[0]);
        AnonymizedView::new(data, qids, classes, suppressed)
    }

    /// The schema of the underlying data.
    pub fn schema(&self) -> &Arc<pprl_data::Schema> {
        &self.schema
    }

    /// QID attribute indices, in sequence order.
    pub fn qids(&self) -> &[usize] {
        &self.qids
    }

    /// The equivalence classes.
    pub fn classes(&self) -> &[EquivalenceClass] {
        &self.classes
    }

    /// Rows removed entirely (DataFly suppression).
    pub fn suppressed(&self) -> &[u32] {
        &self.suppressed
    }

    /// Number of distinct generalization sequences — the paper's Fig. 2
    /// quality metric.
    pub fn distinct_sequences(&self) -> usize {
        self.classes.len()
    }

    /// Records covered by classes (excludes suppressed).
    pub fn covered_records(&self) -> usize {
        self.classes.iter().map(|c| c.size()).sum()
    }

    /// `true` iff every class has at least `k` members.
    pub fn is_k_anonymous(&self, k: usize) -> bool {
        self.classes.iter().all(|c| c.size() >= k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pprl_data::synth::{generate, SynthConfig};

    #[test]
    fn from_assignments_groups_and_sorts() {
        let data = generate(&SynthConfig {
            records: 4,
            seed: 1,
        });
        let seq_a = vec![GenVal::Cat(1)];
        let seq_b = vec![GenVal::Cat(2)];
        let view = AnonymizedView::from_assignments(
            &data,
            vec![1],
            vec![
                (3, seq_a.clone()),
                (0, seq_a.clone()),
                (1, seq_b.clone()),
                (2, seq_a.clone()),
            ],
            vec![],
        );
        assert_eq!(view.distinct_sequences(), 2);
        assert_eq!(view.covered_records(), 4);
        let first = &view.classes()[0];
        assert_eq!(first.rows, vec![0, 2, 3]);
        assert!(view.is_k_anonymous(1));
        assert!(!view.is_k_anonymous(2));
    }
}
