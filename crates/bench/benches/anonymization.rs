//! Anonymization cost at paper scale (the paper measures 2.02 s / 2.03 s
//! for D1 / D2 with its MaxEntropy method), for all four algorithms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pprl_anon::{AnonymizationMethod, Anonymizer, KAnonymityRequirement};
use pprl_bench::{Env, DEFAULT_K, DEFAULT_QIDS};

fn bench_anon(c: &mut Criterion) {
    let env = Env::new(20_108, 42);
    let qids = Env::qids(DEFAULT_QIDS);

    let mut g = c.benchmark_group("anonymize-paper-scale");
    g.sample_size(10);
    for method in [
        AnonymizationMethod::MaxEntropy,
        AnonymizationMethod::Datafly,
        AnonymizationMethod::Tds,
        AnonymizationMethod::Mondrian,
    ] {
        g.bench_with_input(
            BenchmarkId::new("k32", format!("{method:?}")),
            &method,
            |b, &method| {
                let anon = Anonymizer::new(method, KAnonymityRequirement(DEFAULT_K));
                b.iter(|| anon.anonymize(&env.d1, &qids).unwrap())
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_anon);
criterion_main!(benches);
