//! Microbenchmarks for the arithmetic substrate: the cost drivers behind
//! every Paillier operation.

use criterion::{criterion_group, criterion_main, Criterion};
use pprl_bignum::{prime, random_bits, BigUint, Montgomery};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_bignum(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let a1024 = random_bits(&mut rng, 1024);
    let b1024 = random_bits(&mut rng, 1024);
    let m2048 = {
        let mut m = random_bits(&mut rng, 2048);
        m.set_bit(0);
        m
    };
    let e1024 = random_bits(&mut rng, 1024);

    c.bench_function("mul/1024x1024", |b| {
        b.iter(|| black_box(&a1024).mul(black_box(&b1024)))
    });
    c.bench_function("div_rem/2048by1024", |b| {
        let n = a1024.mul(&b1024);
        b.iter(|| black_box(&n).div_rem(black_box(&b1024)).unwrap())
    });
    c.bench_function("mont_mul/2048", |b| {
        let ctx = Montgomery::new(&m2048).unwrap();
        let am = ctx.to_mont(&a1024);
        let bm = ctx.to_mont(&b1024);
        b.iter(|| ctx.mont_mul(black_box(&am), black_box(&bm)))
    });
    c.bench_function("mod_pow/1024exp_2048mod", |b| {
        let ctx = Montgomery::new(&m2048).unwrap();
        b.iter(|| ctx.pow(black_box(&a1024), black_box(&e1024)))
    });

    let mut g = c.benchmark_group("primes");
    g.sample_size(10);
    g.bench_function("gen_prime/512", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| prime::gen_prime(&mut rng, 512))
    });
    g.finish();

    c.bench_function("gcd/1024", |b| {
        b.iter(|| black_box(&a1024).gcd(black_box(&b1024)))
    });
    c.bench_function("mod_inverse/1024", |b| {
        let m = {
            let mut m = random_bits(&mut rng, 1024);
            m.set_bit(0);
            m
        };
        let x = BigUint::from_u64(0xDEAD_BEEF);
        b.iter(|| black_box(&x).mod_inverse(black_box(&m)))
    });
}

criterion_group!(benches, bench_bignum);
criterion_main!(benches);
