//! Blocking-step cost at paper scale (the paper measures 1.35 s) and the
//! slack-rule microcosts.

use criterion::{criterion_group, criterion_main, Criterion};
use pprl_anon::AnonymizationMethod;
use pprl_bench::{make_views, run_blocking, Env, DEFAULT_K, DEFAULT_QIDS, DEFAULT_THETA};

fn bench_blocking(c: &mut Criterion) {
    let env = Env::new(20_108, 42);
    let qids = Env::qids(DEFAULT_QIDS);
    let rule = env.rule(&qids, DEFAULT_THETA);
    let views = make_views(&env, AnonymizationMethod::MaxEntropy, DEFAULT_K, &qids);

    let mut g = c.benchmark_group("blocking");
    g.sample_size(20);
    g.bench_function("blocking_step/paper_scale_k32", |b| {
        b.iter(|| run_blocking(&views, &rule))
    });
    g.finish();

    // Ground truth computation (evaluation-side cost, not protocol cost).
    let mut g = c.benchmark_group("evaluation");
    g.sample_size(10);
    g.bench_function("ground_truth/paper_scale", |b| {
        b.iter(|| pprl_core::GroundTruth::compute(&env.d1, &env.d2, &qids, &rule))
    });
    g.finish();
}

criterion_group!(benches, bench_blocking);
criterion_main!(benches);
