//! Paillier primitive costs at the paper's 1024-bit key size.

use criterion::{criterion_group, criterion_main, Criterion};
use pprl_bignum::BigUint;
use pprl_crypto::paillier::Keypair;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_paillier(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let keys = Keypair::generate(&mut rng, 1024);
    let (pk, sk) = keys.clone().split();
    let c1 = pk.encrypt_u64(1234, &mut rng).unwrap();
    let c2 = pk.encrypt_u64(5678, &mut rng).unwrap();

    let mut g = c.benchmark_group("paillier-1024");
    g.sample_size(20);
    g.bench_function("keygen", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| Keypair::generate(&mut rng, 1024))
    });
    g.bench_function("encrypt", |b| {
        b.iter(|| pk.encrypt_u64(black_box(42), &mut rng).unwrap())
    });
    g.bench_function("decrypt_crt", |b| {
        b.iter(|| sk.decrypt_u64(black_box(&c1)).unwrap())
    });
    g.bench_function("homomorphic_add", |b| {
        b.iter(|| pk.add(black_box(&c1), black_box(&c2)))
    });
    g.bench_function("scalar_mul", |b| {
        b.iter(|| pk.mul_plain(black_box(&c1), &BigUint::from_u64(987_654_321)))
    });
    g.bench_function("rerandomize", |b| {
        b.iter(|| pk.rerandomize(black_box(&c1), &mut rng))
    });
    g.finish();
}

criterion_group!(benches, bench_paillier);
criterion_main!(benches);
