//! The §VI headline cost: one secure distance comparison at 1024-bit keys
//! (the paper measures 0.43 s per continuous attribute on 2008 hardware).

use criterion::{criterion_group, criterion_main, Criterion};
use pprl_crypto::paillier::Keypair;
use pprl_crypto::protocol::party::run_wire_protocol;
use pprl_crypto::protocol::party::QueryingParty;
use pprl_crypto::protocol::{secure_squared_distance, secure_threshold_match};
use pprl_crypto::CostLedger;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_protocol(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let keys = Keypair::generate(&mut rng, 1024);

    let mut g = c.benchmark_group("protocol-1024");
    g.sample_size(20);
    g.bench_function("secure_distance/one_attribute", |b| {
        let mut ledger = CostLedger::new();
        b.iter(|| {
            secure_squared_distance(keys.public(), keys.private(), 40, 31, &mut rng, &mut ledger)
                .unwrap()
        })
    });
    g.bench_function("secure_threshold_match/one_attribute", |b| {
        let mut ledger = CostLedger::new();
        b.iter(|| {
            secure_threshold_match(
                keys.public(),
                keys.private(),
                40,
                31,
                23,
                &mut rng,
                &mut ledger,
            )
            .unwrap()
        })
    });
    g.bench_function("wire_protocol/one_attribute", |b| {
        let querier = QueryingParty::with_keys(keys.clone());
        let mut ledger = CostLedger::new();
        b.iter(|| run_wire_protocol(&querier, 40, 31, &mut rng, &mut ledger).unwrap())
    });
    g.bench_function("record_protocol/five_attributes", |b| {
        use pprl_crypto::protocol::record::{
            alice_record_message, bob_record_message, querier_reveal_record,
        };
        let mut ledger = CostLedger::new();
        let a = [3u64, 7, 2, 9, 40_000];
        let bv = [3u64, 7, 2, 9, 42_000];
        let t = [0u64, 0, 0, 0, 23_040_000];
        b.iter(|| {
            let m1 = alice_record_message(keys.public(), &a, &mut rng, &mut ledger).unwrap();
            let m2 =
                bob_record_message(keys.public(), &m1, &bv, &t, &mut rng, &mut ledger).unwrap();
            querier_reveal_record(keys.private(), &m2, &mut ledger).unwrap()
        })
    });
    g.finish();

    // The set-intersection comparator's primitives.
    let mut g = c.benchmark_group("commutative-1536");
    g.sample_size(20);
    let group = pprl_crypto::CommutativeGroup::default();
    let key = pprl_crypto::CommutativeKey::generate(&group, &mut rng);
    g.bench_function("hash_encrypt", |b| {
        b.iter(|| key.encrypt_value(b"smith|1975-03-12"))
    });
    g.bench_function("sha256/64B", |b| {
        let data = [0xABu8; 64];
        b.iter(|| pprl_crypto::sha256(&data))
    });
    g.finish();
}

criterion_group!(benches, bench_protocol);
criterion_main!(benches);
