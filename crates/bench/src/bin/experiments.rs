//! Regenerates every table and figure of the paper's evaluation (§VI).
//!
//! ```sh
//! cargo run --release -p pprl-bench --bin experiments -- all
//! cargo run --release -p pprl-bench --bin experiments -- fig4 --records 20108
//! ```
//!
//! Subcommands: `fig2 fig3 fig4 fig5 fig6 fig7 fig8 timing strategies
//! baselines ablation-heuristics ablation-anonymizers chaos all`.
//! Options: `--records N` (records per linkage input; default 20108, the
//! paper's scale), `--seed S`, `--csv DIR` (also write each table as CSV).

use pprl_anon::{AnonymizationMethod, Anonymizer, KAnonymityRequirement};
use pprl_bench::*;
use pprl_core::GroundTruth;
use pprl_crypto::paillier::Keypair;
use pprl_crypto::protocol::secure_squared_distance;
use pprl_crypto::CostLedger;
use pprl_smc::{LabelingStrategy, SmcAllowance};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut records = 20_108usize;
    let mut seed = 42u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--records" => {
                records = args[i + 1].parse().expect("--records N");
                i += 2;
            }
            "--seed" => {
                seed = args[i + 1].parse().expect("--seed S");
                i += 2;
            }
            "--csv" => {
                let dir = std::path::PathBuf::from(&args[i + 1]);
                std::fs::create_dir_all(&dir).expect("create --csv dir");
                pprl_bench::set_csv_dir(Some(dir));
                i += 2;
            }
            c if cmd.is_none() => {
                cmd = Some(c.to_string());
                i += 1;
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    let cmd = cmd.unwrap_or_else(|| "all".to_string());

    eprintln!("# scale: {records} records per input, seed {seed}");
    let t = Instant::now();
    let env = Env::new(records, seed);
    eprintln!("# data generated in {:?}", t.elapsed());

    match cmd.as_str() {
        "fig2" => fig2(&env),
        "fig3" => fig3(&env),
        "fig4" => fig4(&env),
        "fig5" => fig5(&env),
        "fig6" => fig6(&env),
        "fig7" => fig7(&env),
        "fig8" => fig8(&env),
        "timing" => timing(&env),
        "strategies" => strategies(&env),
        "baselines" => baselines(&env),
        "ablation-heuristics" => ablation_heuristics(&env),
        "ablation-anonymizers" => ablation_anonymizers(&env),
        "chaos" => chaos(seed),
        "all" => {
            fig2(&env);
            fig3(&env);
            fig4(&env);
            fig5(&env);
            fig6(&env);
            fig7(&env);
            fig8(&env);
            strategies(&env);
            baselines(&env);
            ablation_heuristics(&env);
            ablation_anonymizers(&env);
            chaos(seed);
            timing(&env);
        }
        other => {
            eprintln!("unknown subcommand {other}");
            std::process::exit(2);
        }
    }
}

/// Fig. 2 — number of distinct generalization sequences vs k, for
/// TDS / MaxEntropy / DataFly, on the full (un-partitioned) data set.
fn fig2(env: &Env) {
    let qids = Env::qids(DEFAULT_QIDS);
    let methods = [
        ("TDS", AnonymizationMethod::Tds),
        ("Entropy", AnonymizationMethod::MaxEntropy),
        ("DataFly", AnonymizationMethod::Datafly),
    ];
    let mut rows = Vec::new();
    for k in feasible_k(env.source.len()) {
        let mut vals = Vec::new();
        for (_, method) in &methods {
            let view = Anonymizer::new(*method, KAnonymityRequirement(k))
                .anonymize(&env.source, &qids)
                .expect("valid inputs");
            vals.push(view.distinct_sequences() as f64);
        }
        rows.push((k.to_string(), vals));
    }
    print_table(
        "Fig. 2 — distinct generalization sequences vs anonymity requirement k",
        "k",
        &methods.iter().map(|(n, _)| n.to_string()).collect::<Vec<_>>(),
        &rows,
    );
}

/// Fig. 3 — blocking efficiency vs k (defaults otherwise).
fn fig3(env: &Env) {
    let qids = Env::qids(DEFAULT_QIDS);
    let rule = env.rule(&qids, DEFAULT_THETA);
    let mut rows = Vec::new();
    for k in feasible_k(env.d1.len().min(env.d2.len())) {
        let views = make_views(env, AnonymizationMethod::MaxEntropy, k, &qids);
        let blocking = run_blocking(&views, &rule);
        rows.push((k.to_string(), vec![100.0 * blocking.efficiency()]));
    }
    print_table(
        "Fig. 3 — blocking efficiency (%) vs anonymity requirement k",
        "k",
        &["efficiency %".into()],
        &rows,
    );
}

/// Fig. 4 — recall vs k for the three heuristics (allowance 1.5 %).
fn fig4(env: &Env) {
    let qids = Env::qids(DEFAULT_QIDS);
    let rule = env.rule(&qids, DEFAULT_THETA);
    let truth = GroundTruth::compute(&env.d1, &env.d2, &qids, &rule);
    let mut rows = Vec::new();
    for k in feasible_k(env.d1.len().min(env.d2.len())) {
        let views = make_views(env, AnonymizationMethod::MaxEntropy, k, &qids);
        let blocking = run_blocking(&views, &rule);
        let vals = HEURISTICS
            .iter()
            .map(|&h| {
                100.0
                    * run_point(
                        env,
                        &views,
                        &rule,
                        &blocking,
                        &truth,
                        h,
                        SmcAllowance::Fraction(DEFAULT_ALLOWANCE),
                    )
                    .recall
            })
            .collect();
        rows.push((k.to_string(), vals));
    }
    print_table(
        "Fig. 4 — recall (%) vs anonymity requirement k",
        "k",
        &heuristic_names(),
        &rows,
    );
}

/// Fig. 5 — recall vs matching threshold θ, plus the §VI-C observation that
/// blocking efficiency barely moves with θ (E9 ablation).
fn fig5(env: &Env) {
    let qids = Env::qids(DEFAULT_QIDS);
    let views = make_views(env, AnonymizationMethod::MaxEntropy, DEFAULT_K, &qids);
    let mut rows = Vec::new();
    for &theta in &THETA_SWEEP {
        let rule = env.rule(&qids, theta);
        let blocking = run_blocking(&views, &rule);
        let truth = GroundTruth::compute(&env.d1, &env.d2, &qids, &rule);
        let mut vals: Vec<f64> = HEURISTICS
            .iter()
            .map(|&h| {
                100.0
                    * run_point(
                        env,
                        &views,
                        &rule,
                        &blocking,
                        &truth,
                        h,
                        SmcAllowance::Fraction(DEFAULT_ALLOWANCE),
                    )
                    .recall
            })
            .collect();
        vals.push(100.0 * blocking.efficiency());
        rows.push((format!("{theta:.2}"), vals));
    }
    let mut series = heuristic_names();
    series.push("blocking %".into());
    print_table(
        "Fig. 5 — recall (%) vs matching threshold θ (last column: §VI-C blocking-efficiency ablation)",
        "theta",
        &series,
        &rows,
    );
}

/// Fig. 6 — blocking efficiency vs number of QIDs.
fn fig6(env: &Env) {
    let mut rows = Vec::new();
    for &q in &QID_SWEEP {
        let qids = Env::qids(q);
        let rule = env.rule(&qids, DEFAULT_THETA);
        let views = make_views(env, AnonymizationMethod::MaxEntropy, DEFAULT_K, &qids);
        let blocking = run_blocking(&views, &rule);
        rows.push((q.to_string(), vec![100.0 * blocking.efficiency()]));
    }
    print_table(
        "Fig. 6 — blocking efficiency (%) vs number of quasi-identifiers",
        "qids",
        &["efficiency %".into()],
        &rows,
    );
}

/// Fig. 7 — recall vs number of QIDs for the three heuristics.
fn fig7(env: &Env) {
    let mut rows = Vec::new();
    for &q in &QID_SWEEP {
        let qids = Env::qids(q);
        let rule = env.rule(&qids, DEFAULT_THETA);
        let views = make_views(env, AnonymizationMethod::MaxEntropy, DEFAULT_K, &qids);
        let blocking = run_blocking(&views, &rule);
        let truth = GroundTruth::compute(&env.d1, &env.d2, &qids, &rule);
        let vals = HEURISTICS
            .iter()
            .map(|&h| {
                100.0
                    * run_point(
                        env,
                        &views,
                        &rule,
                        &blocking,
                        &truth,
                        h,
                        SmcAllowance::Fraction(DEFAULT_ALLOWANCE),
                    )
                    .recall
            })
            .collect();
        rows.push((q.to_string(), vals));
    }
    print_table(
        "Fig. 7 — recall (%) vs number of quasi-identifiers",
        "qids",
        &heuristic_names(),
        &rows,
    );
}

/// Fig. 8 — recall vs SMC allowance (k = 32).
fn fig8(env: &Env) {
    let qids = Env::qids(DEFAULT_QIDS);
    let rule = env.rule(&qids, DEFAULT_THETA);
    let views = make_views(env, AnonymizationMethod::MaxEntropy, DEFAULT_K, &qids);
    let blocking = run_blocking(&views, &rule);
    let truth = GroundTruth::compute(&env.d1, &env.d2, &qids, &rule);
    println!(
        "\n(blocking efficiency at defaults: {:.2}% — sufficient allowance {:.2}%)",
        100.0 * blocking.efficiency(),
        100.0 * blocking.sufficient_allowance()
    );
    let mut rows = Vec::new();
    for &pct in &ALLOWANCE_SWEEP {
        let vals = HEURISTICS
            .iter()
            .map(|&h| {
                100.0
                    * run_point(
                        env,
                        &views,
                        &rule,
                        &blocking,
                        &truth,
                        h,
                        SmcAllowance::Fraction(pct / 100.0),
                    )
                    .recall
            })
            .collect();
        rows.push((format!("{pct:.2}%"), vals));
    }
    print_table(
        "Fig. 8 — recall (%) vs SMC allowance (% of all record pairs)",
        "allowance",
        &heuristic_names(),
        &rows,
    );
}

/// §VI timing text — anonymization / blocking / secure-distance costs.
fn timing(env: &Env) {
    println!("\n## §VI timing measurements (this host; paper: 2.8 GHz PC, 2 GB)");
    let qids = Env::qids(DEFAULT_QIDS);
    let rule = env.rule(&qids, DEFAULT_THETA);

    let anon = Anonymizer::new(
        AnonymizationMethod::MaxEntropy,
        KAnonymityRequirement(DEFAULT_K),
    );
    let t = Instant::now();
    let r_view = anon.anonymize(&env.d1, &qids).expect("valid inputs");
    let t_anon1 = t.elapsed();
    let t = Instant::now();
    let s_view = anon.anonymize(&env.d2, &qids).expect("valid inputs");
    let t_anon2 = t.elapsed();
    println!("anonymize D1 : {t_anon1:?}   (paper: 2.02 s)");
    println!("anonymize D2 : {t_anon2:?}   (paper: 2.03 s)");

    let engine = pprl_blocking::BlockingEngine::new(rule);
    let t = Instant::now();
    let blocking = engine.run(&r_view, &s_view).expect("views share QIDs");
    let t_block = t.elapsed();
    println!(
        "blocking step: {t_block:?}   (paper: 1.35 s; efficiency here {:.2}%)",
        100.0 * blocking.efficiency()
    );

    // One secure distance on a single continuous attribute, 1024-bit keys.
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let keys = Keypair::generate(&mut rng, 1024);
    let mut ledger = CostLedger::new();
    let reps = 10;
    let t = Instant::now();
    for i in 0..reps {
        let d = secure_squared_distance(
            keys.public(),
            keys.private(),
            40 + i,
            30,
            &mut rng,
            &mut ledger,
        )
        .expect("protocol runs");
        assert!(d > 0);
    }
    let per = t.elapsed() / reps as u32;
    println!("secure distance (1 continuous attribute, 1024-bit): {per:?}   (paper: 0.43 s)");

    let non_crypto = t_anon1 + t_anon2 + t_block;
    println!(
        "=> all non-crypto costs equal ≈ {:.1} secure comparisons (paper: ≈13)",
        non_crypto.as_secs_f64() / per.as_secs_f64()
    );
}

/// E10 — the three §V-B labeling strategies.
fn strategies(env: &Env) {
    let qids = Env::qids(DEFAULT_QIDS);
    let rule = env.rule(&qids, DEFAULT_THETA);
    let views = make_views(env, AnonymizationMethod::MaxEntropy, DEFAULT_K, &qids);
    let blocking = run_blocking(&views, &rule);
    let truth = GroundTruth::compute(&env.d1, &env.d2, &qids, &rule);
    let mut rows = Vec::new();
    for (name, strategy) in [
        ("max-precision", LabelingStrategy::MaximizePrecision),
        ("max-recall", LabelingStrategy::MaximizeRecall),
        ("classifier", LabelingStrategy::Classifier),
    ] {
        let (p, r) = run_strategy(
            env,
            &views,
            &qids,
            &rule,
            &blocking,
            &truth,
            strategy,
            SmcAllowance::Fraction(DEFAULT_ALLOWANCE),
        );
        rows.push((name.to_string(), vec![100.0 * p, 100.0 * r]));
    }
    print_table(
        "E10 — §V-B labeling strategies (precision/recall %)",
        "strategy",
        &["precision %".into(), "recall %".into()],
        &rows,
    );
}

/// The two §I baselines.
fn baselines(env: &Env) {
    let qids = Env::qids(DEFAULT_QIDS);
    let rule = env.rule(&qids, DEFAULT_THETA);
    let smc = pprl_core::baselines::pure_smc(&env.d1, &env.d2);
    let mut rows = vec![(
        "pure-SMC".to_string(),
        vec![smc.smc_invocations as f64, 100.0, 100.0],
    )];
    let intersect =
        pprl_core::baselines::secure_set_intersection(&env.d1, &env.d2, &qids, &rule);
    rows.push((
        "set-inter".to_string(),
        vec![
            intersect.smc_invocations as f64,
            100.0 * intersect.precision,
            100.0 * intersect.recall,
        ],
    ));
    for k in [2usize, DEFAULT_K] {
        let s = pprl_core::baselines::pure_sanitization(
            &env.d1,
            &env.d2,
            &qids,
            &rule,
            k,
            AnonymizationMethod::MaxEntropy,
        )
        .expect("baseline runs");
        rows.push((
            format!("sanit-k{k}"),
            vec![0.0, 100.0 * s.precision, 100.0 * s.recall],
        ));
    }
    print_table(
        "Baselines — cost and accuracy (§I comparison)",
        "baseline",
        &["invocations".into(), "precision %".into(), "recall %".into()],
        &rows,
    );
}

/// E11 — do the expected-distance heuristics actually beat random order?
fn ablation_heuristics(env: &Env) {
    use pprl_smc::SelectionHeuristic;
    let qids = Env::qids(DEFAULT_QIDS);
    let rule = env.rule(&qids, DEFAULT_THETA);
    let views = make_views(env, AnonymizationMethod::MaxEntropy, DEFAULT_K, &qids);
    let blocking = run_blocking(&views, &rule);
    let truth = GroundTruth::compute(&env.d1, &env.d2, &qids, &rule);
    let mut rows = Vec::new();
    for pct in [0.5f64, 1.0, 1.5] {
        let mut vals = Vec::new();
        for h in HEURISTICS
            .iter()
            .copied()
            .chain([SelectionHeuristic::Random { seed: 7 }])
        {
            vals.push(
                100.0
                    * run_point(
                        env,
                        &views,
                        &rule,
                        &blocking,
                        &truth,
                        h,
                        SmcAllowance::Fraction(pct / 100.0),
                    )
                    .recall,
            );
        }
        rows.push((format!("{pct:.1}%"), vals));
    }
    let mut series = heuristic_names();
    series.push("Random".into());
    print_table(
        "E11 — heuristics vs random selection order (recall %, by allowance)",
        "allowance",
        &series,
        &rows,
    );
}

/// E12 — how much does the anonymizer choice matter downstream?
fn ablation_anonymizers(env: &Env) {
    let qids = Env::qids(DEFAULT_QIDS);
    let rule = env.rule(&qids, DEFAULT_THETA);
    let truth = GroundTruth::compute(&env.d1, &env.d2, &qids, &rule);
    let mut rows = Vec::new();
    for (name, method) in [
        ("Entropy", AnonymizationMethod::MaxEntropy),
        ("TDS", AnonymizationMethod::Tds),
        ("DataFly", AnonymizationMethod::Datafly),
        ("Mondrian", AnonymizationMethod::Mondrian),
    ] {
        let views = make_views(env, method, DEFAULT_K, &qids);
        let blocking = run_blocking(&views, &rule);
        let point = run_point(
            env,
            &views,
            &rule,
            &blocking,
            &truth,
            pprl_smc::SelectionHeuristic::MinAvgFirst,
            SmcAllowance::Fraction(DEFAULT_ALLOWANCE),
        );
        rows.push((
            name.to_string(),
            vec![
                views.r.distinct_sequences() as f64,
                100.0 * point.efficiency,
                100.0 * point.recall,
            ],
        ));
    }
    print_table(
        "E12 — anonymizer choice at k = 32 (sequences / blocking % / recall %)",
        "method",
        &["sequences".into(), "blocking %".into(), "recall %".into()],
        &rows,
    );
}

/// Chaos sweep — linkage quality vs injected fault rate for the batched
/// wire protocol over a faulty transport with retries. Runs at a small
/// fixed scale (real 256-bit Paillier per pair, independent of --records).
fn chaos(seed: u64) {
    use pprl_core::{HybridLinkage, LinkageConfig};
    use pprl_smc::{ChannelConfig, FaultConfig, RetryPolicy, SmcMode};

    let scenario = pprl_core::SyntheticScenario::builder()
        .records_per_set(400)
        .seed(seed)
        .build();
    let (d1, d2) = scenario.data_sets();
    let mut rows = Vec::new();
    for &rate in &[0.0f64, 0.02, 0.05, 0.08, 0.10] {
        let cfg = LinkageConfig::paper_defaults()
            .with_k(8)
            .with_allowance(SmcAllowance::Pairs(150))
            .with_mode(SmcMode::PaillierBatched {
                modulus_bits: 256,
                seed,
                pack: false,
            })
            .with_channel(ChannelConfig {
                faults: FaultConfig::uniform(rate),
                retry: RetryPolicy::with_retries(16),
                seed: seed ^ (rate * 1000.0) as u64,
            });
        let out = HybridLinkage::new(cfg).run(&d1, &d2).expect("pipeline runs");
        let deg = out.degradation();
        rows.push((
            format!("{:.0}%", rate * 100.0),
            vec![
                100.0 * out.metrics.precision(),
                100.0 * out.metrics.recall(),
                deg.pairs_abandoned() as f64,
                deg.retries_spent as f64,
                deg.injected.total() as f64,
            ],
        ));
    }
    print_table(
        "Chaos — linkage quality vs injected fault rate (batched Paillier over faulty transport, 16 retries)",
        "fault rate",
        &[
            "precision %".into(),
            "recall %".into(),
            "abandoned".into(),
            "retries".into(),
            "faults".into(),
        ],
        &rows,
    );
}

fn heuristic_names() -> Vec<String> {
    HEURISTICS.iter().map(|h| h.to_string()).collect()
}
