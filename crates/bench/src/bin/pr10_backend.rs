//! PR 10 backend sweep: exact Paillier vs q-gram CLK Bloom matching.
//!
//! Runs the full pipeline in-process on the seeded synthetic corpus at a
//! 100 % SMC allowance (every unknown pair is compared, so the backends'
//! *decisions* are what differ, not their budgets), sweeping record
//! count × comparator backend. For each cell it reports SMC pairs/sec
//! (pipeline overhead measured by a zero-allowance run and subtracted)
//! and linkage quality: precision/recall against ground truth, plus the
//! Bloom backend's agreement with the exact-Paillier match set — the
//! honest cost of trading homomorphic distance for Dice-over-CLK.
//!
//! ```sh
//! cargo run --release -p pprl-bench --bin pr10_backend -- \
//!     --records 40,80 --out BENCH_pr10.json
//! ```
//!
//! The acceptance bar rides along: the Bloom backend must clear
//! `--min-speedup` (default 50x) over Paillier at every record count.

use pprl_core::{HybridLinkage, LinkageConfig, LinkageOutcome};
use pprl_data::DataSet;
use pprl_smc::{SmcAllowance, SmcMode};
use std::collections::BTreeSet;
use std::time::Instant;

fn scenario(records: usize) -> (DataSet, DataSet) {
    pprl_core::SyntheticScenario::builder()
        .records_per_set(records)
        .seed(7)
        .build()
        .data_sets()
}

fn config_for(mode: SmcMode, allowance: SmcAllowance) -> LinkageConfig {
    let mut config = LinkageConfig::paper_defaults().with_allowance(allowance);
    config.mode = mode;
    config.channel = None;
    config
}

struct Cell {
    backend: &'static str,
    smc_pairs: u64,
    smc_elapsed_s: f64,
    pairs_per_sec: f64,
    declared: u64,
    true_matches: u64,
    precision: f64,
    recall: f64,
    matched: BTreeSet<(u32, u32)>,
    clk_bits: u64,
    dp_flips: u64,
    ledger_bytes: u64,
}

/// One pipeline run; `overhead_s` is the same corpus at zero allowance
/// (anonymization + blocking + scoring, no SMC), so the quotient is the
/// comparator's own throughput, not the pipeline's.
fn run_cell(
    backend: &'static str,
    mode: SmcMode,
    d1: &DataSet,
    d2: &DataSet,
    overhead_s: f64,
) -> Cell {
    let pipeline = HybridLinkage::new(config_for(mode, SmcAllowance::Fraction(1.0)));
    let started = Instant::now();
    let outcome: LinkageOutcome = pipeline.run(d1, d2).expect("pipeline run");
    let elapsed = started.elapsed().as_secs_f64();
    let smc_elapsed_s = (elapsed - overhead_s).max(1e-6);

    let m = &outcome.metrics;
    let precision = if m.declared_matches > 0 {
        m.true_positives as f64 / m.declared_matches as f64
    } else {
        1.0
    };
    let recall = if m.true_matches > 0 {
        m.true_positives as f64 / m.true_matches as f64
    } else {
        1.0
    };
    Cell {
        backend,
        smc_pairs: m.smc_invocations,
        smc_elapsed_s,
        pairs_per_sec: m.smc_invocations as f64 / smc_elapsed_s,
        declared: m.declared_matches,
        true_matches: m.true_matches,
        precision,
        recall,
        matched: outcome.matched_rows().collect(),
        clk_bits: outcome.smc.comparator.clk_bits_exchanged,
        dp_flips: outcome.smc.comparator.dp_flips,
        ledger_bytes: outcome.ledger.bytes,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opt = |key: &str| -> Option<&str> {
        args.iter()
            .position(|a| a == key)
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
    };
    let records: Vec<usize> = opt("--records")
        .unwrap_or("40,80")
        .split(',')
        .map(|v| v.trim().parse().expect("--records N,N"))
        .collect();
    let out = opt("--out").unwrap_or("BENCH_pr10.json").to_string();
    let min_speedup: f64 = opt("--min-speedup").map_or(50.0, |v| v.parse().expect("--min-speedup X"));

    eprintln!("pr10_backend: records={records:?} min_speedup={min_speedup}");

    let mut entries = String::new();
    let mut worst_speedup = f64::INFINITY;
    for &n in &records {
        let (d1, d2) = scenario(n);

        // Pipeline overhead: same corpus, no SMC budget at all.
        let started = Instant::now();
        HybridLinkage::new(config_for(
            SmcMode::PaillierBatched { modulus_bits: 256, seed: 42, pack: false },
            SmcAllowance::Fraction(0.0),
        ))
        .run(&d1, &d2)
        .expect("overhead run");
        let overhead_s = started.elapsed().as_secs_f64();

        let paillier = run_cell(
            "paillier",
            SmcMode::PaillierBatched { modulus_bits: 256, seed: 42, pack: false },
            &d1,
            &d2,
            overhead_s,
        );
        let bloom = run_cell(
            "bloom",
            SmcMode::Bloom { params: pprl_bloom::ClkParams::paper_defaults(42) },
            &d1,
            &d2,
            overhead_s,
        );

        // Agreement with the exact protocol: of the pairs Bloom declared,
        // how many Paillier also declared (precision), and how much of
        // Paillier's match set Bloom recovered (recall).
        let common = bloom.matched.intersection(&paillier.matched).count() as f64;
        let precision_vs_exact = if bloom.matched.is_empty() {
            1.0
        } else {
            common / bloom.matched.len() as f64
        };
        let recall_vs_exact = if paillier.matched.is_empty() {
            1.0
        } else {
            common / paillier.matched.len() as f64
        };
        let speedup = bloom.pairs_per_sec / paillier.pairs_per_sec.max(1e-9);
        worst_speedup = worst_speedup.min(speedup);

        for cell in [&paillier, &bloom] {
            eprintln!(
                "records={n:>4} backend={:<8} {} pairs in {:.3}s ({:.1} pairs/sec) \
                 declared={} precision={:.3} recall={:.3}",
                cell.backend, cell.smc_pairs, cell.smc_elapsed_s, cell.pairs_per_sec,
                cell.declared, cell.precision, cell.recall,
            );
            if !entries.is_empty() {
                entries.push_str(",\n");
            }
            entries.push_str(&format!(
                concat!(
                    "    {{ \"records_per_set\": {}, \"backend\": \"{}\", ",
                    "\"smc_pairs\": {}, \"smc_elapsed_s\": {:.4}, ",
                    "\"pairs_per_sec\": {:.2}, \"declared_matches\": {}, ",
                    "\"true_matches\": {}, \"precision\": {:.4}, \"recall\": {:.4}, ",
                    "\"clk_bits_exchanged\": {}, \"dp_flips\": {}, \"ledger_bytes\": {} }}"
                ),
                n, cell.backend, cell.smc_pairs, cell.smc_elapsed_s, cell.pairs_per_sec,
                cell.declared, cell.true_matches, cell.precision, cell.recall,
                cell.clk_bits, cell.dp_flips, cell.ledger_bytes,
            ));
        }
        eprintln!(
            "records={n:>4} bloom vs exact-paillier: speedup={speedup:.1}x \
             precision={precision_vs_exact:.3} recall={recall_vs_exact:.3}"
        );
        entries.push_str(&format!(
            concat!(
                ",\n    {{ \"records_per_set\": {}, \"backend\": \"bloom_vs_paillier\", ",
                "\"speedup\": {:.2}, \"precision_vs_exact\": {:.4}, ",
                "\"recall_vs_exact\": {:.4} }}"
            ),
            n, speedup, precision_vs_exact, recall_vs_exact,
        ));
    }

    assert!(
        worst_speedup >= min_speedup,
        "bloom must be at least {min_speedup}x paillier pairs/sec at every \
         record count (worst observed: {worst_speedup:.1}x)"
    );

    let doc = format!(
        r#"{{
  "bench": "pr10_backend",
  "allowance": "fraction(1.0)",
  "modulus_bits": 256,
  "clk": {{ "filter_len": 1000, "hashes": 30, "q": 2, "threshold": 0.8, "epsilon": 0.0 }},
  "min_speedup_required": {min_speedup},
  "worst_speedup_observed": {worst_speedup:.2},
  "sweep": [
{entries}
  ]
}}
"#,
    );
    std::fs::write(&out, doc).expect("write bench output");
    println!("wrote {out}");
}
