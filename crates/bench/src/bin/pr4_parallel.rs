//! PR 4 perf baseline: parallel pipeline execution + Paillier fast paths.
//!
//! Emits machine-readable `BENCH_pr4.json` — pipeline phase timings, SMC
//! pairs/sec, a worker-thread sweep (1/2/4/8), and the Paillier `encrypt`
//! before/after (generic double exponentiation vs the `g = n+1` binomial
//! shortcut + windowed `mod_pow` + randomizer pool). Future PRs regress
//! against this file.
//!
//! ```sh
//! cargo run --release -p pprl-bench --bin pr4_parallel -- \
//!     --records 2500 --out BENCH_pr4.json
//! ```
//!
//! Every series re-verifies determinism: a sweep point that produced a
//! different outcome than the sequential run aborts the bench.

use pprl_bench::{make_views, Env};
use pprl_bignum::BigUint;
use pprl_blocking::BlockingEngine;
use pprl_core::{HybridLinkage, LinkageConfig};
use pprl_crypto::paillier::Keypair;
use pprl_crypto::RandomizerPool;
use pprl_smc::{
    DeadlineBudget, LabelingStrategy, SelectionHeuristic, SmcAllowance, SmcMode, SmcStep,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const THREADS_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opt = |key: &str| -> Option<&str> {
        args.iter()
            .position(|a| a == key)
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
    };
    let records: usize = opt("--records").map_or(2_500, |v| v.parse().expect("--records N"));
    let bits: usize = opt("--bits").map_or(256, |v| v.parse().expect("--bits B"));
    let smc_pairs: u64 = opt("--smc-pairs").map_or(48, |v| v.parse().expect("--smc-pairs N"));
    let encryptions: usize = opt("--encryptions").map_or(64, |v| v.parse().expect("--encryptions N"));
    let out = opt("--out").unwrap_or("BENCH_pr4.json").to_string();

    let host_threads = pprl_runtime::resolve_threads(None);
    eprintln!("pr4_parallel: records={records} bits={bits} host_threads={host_threads}");

    let env = Env::new(records, 42);
    let qids = Env::qids(5);
    let rule = env.rule(&qids, 0.05);
    let views = make_views(&env, pprl_anon::AnonymizationMethod::MaxEntropy, 8, &qids);

    // ---- Blocking thread sweep -------------------------------------------
    let engine = BlockingEngine::new(rule.clone());
    let reference = engine.run(&views.r, &views.s).expect("views share QIDs");
    let mut blocking_series = Vec::new();
    let mut blocking_base_ms = 0.0;
    for &threads in &THREADS_SWEEP {
        let mut best = f64::INFINITY;
        for _rep in 0..3 {
            let t0 = Instant::now();
            let outcome = engine
                .run_parallel(&views.r, &views.s, threads)
                .expect("views share QIDs");
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            assert_eq!(
                (outcome.matched_pairs, outcome.nonmatched_pairs, outcome.unknown_pairs),
                (
                    reference.matched_pairs,
                    reference.nonmatched_pairs,
                    reference.unknown_pairs
                ),
                "parallel blocking diverged at {threads} threads"
            );
            best = best.min(ms);
        }
        if threads == 1 {
            blocking_base_ms = best;
        }
        blocking_series.push(format!(
            r#"{{ "threads": {threads}, "wall_ms": {best:.3}, "speedup": {:.3} }}"#,
            blocking_base_ms / best
        ));
        eprintln!("blocking  threads={threads}: {best:.2} ms");
    }

    // ---- SMC thread sweep (real Paillier) --------------------------------
    let blocking = engine
        .run_parallel(&views.r, &views.s, host_threads)
        .expect("views share QIDs");
    let step = SmcStep {
        heuristic: SelectionHeuristic::MinAvgFirst,
        allowance: SmcAllowance::Pairs(smc_pairs),
        strategy: LabelingStrategy::MaximizePrecision,
        mode: SmcMode::PaillierBatched {
            modulus_bits: bits,
            seed: 42,
            pack: false,
        },
        channel: None,
        deadline: DeadlineBudget::None,
    };
    let mut smc_series = Vec::new();
    let mut smc_reference: Option<Vec<(u32, u32)>> = None;
    let mut smc_base_ms = 0.0;
    for &threads in &THREADS_SWEEP {
        let t0 = Instant::now();
        let mut runner = step
            .start(
                &env.d1,
                &env.d2,
                &views.r,
                &views.s,
                &blocking.unknown,
                &rule,
                blocking.total_pairs,
            )
            .expect("valid SMC inputs");
        if threads > 1 {
            runner.prefill_randomizers(
                (smc_pairs as usize).saturating_mul(2 * qids.len()),
                threads,
                17,
            );
        }
        runner
            .run_to_completion_parallel(threads)
            .expect("oracle-free run cannot fail");
        let report = runner.finish();
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        match &smc_reference {
            None => smc_reference = Some(report.matched_pairs.clone()),
            Some(reference) => assert_eq!(
                reference, &report.matched_pairs,
                "parallel SMC diverged at {threads} threads"
            ),
        }
        if threads == 1 {
            smc_base_ms = ms;
        }
        let pairs_per_sec = report.invocations as f64 / (ms / 1e3).max(1e-9);
        smc_series.push(format!(
            r#"{{ "threads": {threads}, "wall_ms": {ms:.3}, "pairs": {}, "pairs_per_sec": {pairs_per_sec:.3}, "speedup": {:.3} }}"#,
            report.invocations,
            smc_base_ms / ms
        ));
        eprintln!(
            "smc       threads={threads}: {ms:.1} ms, {pairs_per_sec:.1} pairs/s ({} pairs)",
            report.invocations
        );
    }

    // ---- Paillier encrypt: before/after ----------------------------------
    // "Before" is the seed implementation: generic square-and-multiply for
    // both factors of c = g^m · r^n mod n². "After" is today's hot path:
    // the g = n+1 binomial shortcut plus a pooled r^n — two modular
    // products per encryption.
    let mut rng = StdRng::seed_from_u64(9);
    let mut keys = Keypair::generate(&mut rng, bits);
    let n = keys.public().n().clone();
    let n2 = keys.public().n_squared().clone();
    let g = &n + &BigUint::one();
    // Full-width plaintexts: with tiny exponents both paths degenerate to
    // the r^n exponentiation, hiding the g^m saving the shortcut buys.
    let plaintexts: Vec<BigUint> = (0..encryptions)
        .map(|_| pprl_bignum::random_below(&mut rng, &n))
        .collect();

    let t0 = Instant::now();
    let mut naive_check = BigUint::zero();
    for m in &plaintexts {
        // The seed implementation: draw r and run square-and-multiply for
        // both factors of c = g^m · r^n mod n².
        let r = pprl_bignum::random_below(&mut rng, &n);
        let gm = g.mod_pow(m, &n2);
        let rn = r.mod_pow(&n, &n2);
        naive_check = gm.mod_mul(&rn, &n2);
    }
    let naive_ms = t0.elapsed().as_secs_f64() * 1e3;
    let naive_per_sec = encryptions as f64 / (naive_ms / 1e3).max(1e-9);

    // Shortcut alone (no pool): g^m collapses to 1 + m·n, leaving one
    // windowed exponentiation for r^n.
    let t1 = Instant::now();
    for m in &plaintexts {
        keys.public().encrypt(m, &mut rng).expect("m < n");
    }
    let shortcut_ms = t1.elapsed().as_secs_f64() * 1e3;
    let shortcut_per_sec = encryptions as f64 / (shortcut_ms / 1e3).max(1e-9);

    // Shortcut + pool: the parallel pipeline's hot path (prefill timed
    // separately — it runs concurrently with other work in the pipeline).
    let t2 = Instant::now();
    let pool = RandomizerPool::prefill(keys.public(), encryptions, host_threads, 23);
    let prefill_ms = t2.elapsed().as_secs_f64() * 1e3;
    keys.attach_pool(pool).expect("pool filled for this modulus");
    let t3 = Instant::now();
    let mut pooled_check = BigUint::zero();
    for m in &plaintexts {
        pooled_check = keys
            .public()
            .encrypt(m, &mut rng)
            .expect("m < n")
            .as_biguint()
            .clone();
    }
    let pooled_ms = t3.elapsed().as_secs_f64() * 1e3;
    let pooled_per_sec = encryptions as f64 / (pooled_ms / 1e3).max(1e-9);
    assert!(
        naive_check < n2 && pooled_check < n2,
        "ciphertexts must be reduced mod n²"
    );
    eprintln!(
        "encrypt   before {naive_per_sec:.1}/s | shortcut {shortcut_per_sec:.1}/s | \
         pooled {pooled_per_sec:.1}/s ({:.2}x, prefill {prefill_ms:.1} ms)",
        pooled_per_sec / naive_per_sec
    );

    // ---- End-to-end pipeline phase timings -------------------------------
    let t0 = Instant::now();
    let cfg = LinkageConfig::paper_defaults()
        .with_k(8)
        .with_allowance(SmcAllowance::Pairs(smc_pairs));
    let _ = make_views(&env, pprl_anon::AnonymizationMethod::MaxEntropy, 8, &qids);
    let anonymize_ms = t0.elapsed().as_secs_f64() * 1e3;
    let mut pipeline_series = Vec::new();
    let mut pipeline_reference: Option<String> = None;
    for &threads in &THREADS_SWEEP {
        let t0 = Instant::now();
        let outcome = HybridLinkage::new(cfg.clone())
            .with_threads(threads)
            .run(&env.d1, &env.d2)
            .expect("pipeline runs");
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let mut rows: Vec<(u32, u32)> = outcome.matched_rows().collect();
        rows.sort_unstable();
        let mut digest = pprl_journal::Fnv1a64::new();
        for (ri, si) in rows {
            digest.update_u64(ri as u64);
            digest.update_u64(si as u64);
        }
        let digest = format!("{:016x}", digest.finish());
        match &pipeline_reference {
            None => pipeline_reference = Some(digest.clone()),
            Some(reference) => assert_eq!(
                reference, &digest,
                "pipeline outcome diverged at {threads} threads"
            ),
        }
        pipeline_series.push(format!(
            r#"{{ "threads": {threads}, "wall_ms": {ms:.3}, "matched_digest": "{digest}" }}"#
        ));
        eprintln!("pipeline  threads={threads}: {ms:.1} ms");
    }

    // The document is assembled by hand: this binary must stay buildable
    // and meaningful without any JSON crate in the loop.
    let doc = format!(
        r#"{{
  "bench": "pr4_parallel",
  "host_threads": {host_threads},
  "records_per_set": {records},
  "threads_sweep": [1, 2, 4, 8],
  "anonymize_ms": {anonymize_ms:.3},
  "blocking": {{
    "classes_r": {classes_r},
    "classes_s": {classes_s},
    "series": [
      {blocking_series}
    ]
  }},
  "smc": {{
    "mode": "paillier_batched",
    "modulus_bits": {bits},
    "budget_pairs": {smc_pairs},
    "series": [
      {smc_series}
    ]
  }},
  "paillier_encrypt": {{
    "modulus_bits": {bits},
    "encryptions": {encryptions},
    "before_generic_per_sec": {naive_per_sec:.3},
    "after_shortcut_per_sec": {shortcut_per_sec:.3},
    "after_pooled_per_sec": {pooled_per_sec:.3},
    "speedup_shortcut": {speedup_shortcut:.3},
    "speedup_pooled": {speedup_pooled:.3},
    "pool_prefill_ms": {prefill_ms:.3}
  }},
  "pipeline": {{
    "series": [
      {pipeline_series}
    ]
  }}
}}
"#,
        classes_r = views.r.classes().len(),
        classes_s = views.s.classes().len(),
        blocking_series = blocking_series.join(",\n      "),
        smc_series = smc_series.join(",\n      "),
        speedup_shortcut = shortcut_per_sec / naive_per_sec,
        speedup_pooled = pooled_per_sec / naive_per_sec,
        pipeline_series = pipeline_series.join(",\n      "),
    );
    std::fs::write(&out, doc).expect("write bench output");
    println!("wrote {out}");
}
