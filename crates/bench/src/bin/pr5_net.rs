//! PR 5 net baseline: the SMC wire protocol over real loopback TCP.
//!
//! Extends the `BENCH_pr4.json` trajectory with the networking layer.
//! Runs the per-pair protocol exchange (Alice → Bob record shares,
//! Bob → Querier masked differences) through [`ReliableLink`] over two
//! transports — the perfect in-memory [`LocalTransport`] and
//! [`TcpTransport`] on a real loopback socket mesh — and records, per
//! pair, the wire round-trip time plus the byte overhead TCP framing adds
//! on top of the protocol ledger's own accounting.
//!
//! ```sh
//! cargo run --release -p pprl-bench --bin pr5_net -- \
//!     --pairs 96 --out BENCH_pr5.json
//! ```
//!
//! The ledger is asserted identical across both transports: moving frames
//! through the kernel must not change a single protocol byte, only the
//! wire totals beneath it.

use pprl_crypto::paillier::Keypair;
use pprl_crypto::protocol::transport::{LocalTransport, PartyId};
use pprl_crypto::protocol::{
    alice_record_message, bob_record_message, querier_reveal_record, ReliableLink, RetryPolicy,
    Transport,
};
use pprl_crypto::CostLedger;
use pprl_net::{NetStats, TcpTransport};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// One transport's sweep results.
struct Series {
    name: &'static str,
    per_pair_us: Vec<f64>,
    ledger: CostLedger,
    wire: Option<NetStats>,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Drives `pairs` full protocol exchanges over `link`, timing only the
/// `deliver` calls (the crypto between them is identical per transport
/// and benchmarked by `pr4_parallel`).
fn run_series<T: Transport>(
    name: &'static str,
    mut link: ReliableLink<T>,
    keys: &Keypair,
    pairs: u64,
    qids: usize,
    seed: u64,
) -> (Series, ReliableLink<T>) {
    let pk = keys.public().clone();
    let mut rng = StdRng::seed_from_u64(seed);
    let thresholds: Vec<u64> = vec![2; qids];
    let mut ledger = CostLedger::new();
    let mut per_pair_us = Vec::with_capacity(pairs as usize);
    for pair in 1..=pairs {
        let alice_values: Vec<u64> = (0..qids).map(|_| rng.gen_range(0..32u64)).collect();
        let bob_values: Vec<u64> = (0..qids).map(|_| rng.gen_range(0..32u64)).collect();
        let m_alice =
            alice_record_message(&pk, &alice_values, &mut rng, &mut ledger).expect("small values");

        let t0 = Instant::now();
        let delivered = link
            .deliver(PartyId::Alice, PartyId::Bob, pair, m_alice, &mut ledger)
            .expect("perfect line");
        let leg1 = t0.elapsed();

        let m_bob = bob_record_message(
            &pk,
            &delivered,
            &bob_values,
            &thresholds,
            &mut rng,
            &mut ledger,
        )
        .expect("decodable shares");

        let t1 = Instant::now();
        let delivered = link
            .deliver(PartyId::Bob, PartyId::Querier, pair, m_bob, &mut ledger)
            .expect("perfect line");
        let leg2 = t1.elapsed();

        querier_reveal_record(keys.private(), &delivered, &mut ledger).expect("decodable result");
        per_pair_us.push((leg1 + leg2).as_secs_f64() * 1e6);
    }
    eprintln!(
        "{name:<6} {pairs} pairs: {:.1} us/pair mean, ledger {} msgs / {} bytes",
        per_pair_us.iter().sum::<f64>() / per_pair_us.len() as f64,
        ledger.messages,
        ledger.bytes,
    );
    (
        Series {
            name,
            per_pair_us,
            ledger,
            wire: None,
        },
        link,
    )
}

fn series_json(s: &Series) -> String {
    let mut sorted = s.per_pair_us.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let mean = sorted.iter().sum::<f64>() / sorted.len().max(1) as f64;
    let wire = match &s.wire {
        Some(w) => format!(
            concat!(
                "{{ \"frames_sent\": {}, \"frames_received\": {}, ",
                "\"bytes_sent\": {}, \"bytes_received\": {}, \"retransmits\": {} }}"
            ),
            w.frames_sent, w.frames_received, w.bytes_sent, w.bytes_received, w.retransmits
        ),
        None => "null".to_string(),
    };
    format!(
        r#"{{
      "transport": "{}",
      "round_trip_us": {{ "mean": {mean:.3}, "p50": {:.3}, "p95": {:.3}, "max": {:.3} }},
      "ledger": {{ "messages": {}, "message_bytes": {}, "retries": {} }},
      "wire": {wire}
    }}"#,
        s.name,
        percentile(&sorted, 0.50),
        percentile(&sorted, 0.95),
        percentile(&sorted, 1.0),
        s.ledger.messages,
        s.ledger.bytes,
        s.ledger.retries,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opt = |key: &str| -> Option<&str> {
        args.iter()
            .position(|a| a == key)
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
    };
    let pairs: u64 = opt("--pairs").map_or(96, |v| v.parse().expect("--pairs N"));
    let bits: usize = opt("--bits").map_or(256, |v| v.parse().expect("--bits B"));
    let qids: usize = opt("--qids").map_or(5, |v| v.parse().expect("--qids N"));
    let out = opt("--out").unwrap_or("BENCH_pr5.json").to_string();

    eprintln!("pr5_net: pairs={pairs} bits={bits} qids={qids}");
    let mut rng = StdRng::seed_from_u64(42);
    let keys = Keypair::generate(&mut rng, bits);

    // In-memory reference: the PR 1 simulated channel at zero faults.
    let local = ReliableLink::new(LocalTransport::new(), RetryPolicy::default(), 7);
    let (local_series, _) = run_series("local", local, &keys, pairs, qids, 11);

    // Real sockets: same link layer, frames cross the kernel's TCP stack.
    let mesh = TcpTransport::loopback_mesh(Duration::from_millis(500)).expect("loopback binds");
    let tcp = ReliableLink::new(mesh, RetryPolicy::default(), 7);
    let (mut tcp_series, mut tcp_link) = run_series("tcp", tcp, &keys, pairs, qids, 11);
    tcp_series.wire = Some(tcp_link.transport_mut().stats);

    // The protocol layer must be bit-for-bit oblivious to the transport.
    assert_eq!(
        (local_series.ledger.messages, local_series.ledger.bytes),
        (tcp_series.ledger.messages, tcp_series.ledger.bytes),
        "TCP framing leaked into the protocol ledger"
    );
    let wire = tcp_series.wire.as_ref().expect("just set");
    let framing_overhead =
        wire.bytes_sent as f64 / tcp_series.ledger.bytes.max(1) as f64;
    eprintln!(
        "tcp framing: {} wire bytes over {} protocol bytes ({framing_overhead:.3}x)",
        wire.bytes_sent, tcp_series.ledger.bytes
    );

    // Assembled by hand, like pr4_parallel: this binary must stay
    // meaningful without any JSON crate in the loop.
    let doc = format!(
        r#"{{
  "bench": "pr5_net",
  "pairs": {pairs},
  "modulus_bits": {bits},
  "qids_per_record": {qids},
  "series": [
    {local},
    {tcp}
  ],
  "tcp_framing_overhead": {framing_overhead:.4}
}}
"#,
        local = series_json(&local_series),
        tcp = series_json(&tcp_series),
    );
    std::fs::write(&out, doc).expect("write bench output");
    println!("wrote {out}");
}
