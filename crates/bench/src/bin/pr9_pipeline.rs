//! PR 9 latency sweep: windowed pipelining under injected wire delay.
//!
//! Drives a full three-party linkage (querier, Alice, Bob as in-process
//! threads over real loopback TCP) with a seeded delay-only [`ChaosProxy`]
//! parked on both data legs (Bob↔Alice and Bob↔querier), sweeping the
//! holders' `--window` against the injected per-chunk delay. The
//! acceptance bar rides along: every configuration's matched-pair digest
//! and protocol ledger must be byte-identical — the window is a pure
//! deployment knob — while pairs/sec at high RTT must grow with the
//! window.
//!
//! ```sh
//! cargo run --release -p pprl-bench --bin pr9_pipeline -- \
//!     --records 60 --windows 1,8,32 --delays 0,10,50 --out BENCH_pr9.json
//! ```
//!
//! A `--packing` section additionally measures ciphertext packing
//! (`SmcMode::PaillierBatched { pack: true }`) against the scalar wire
//! format at zero delay: same decisions, fewer decryptions, fewer bytes.

use pprl_core::{HybridLinkage, LinkageConfig, PartyOptions, PartyOutcome, Role};
use pprl_data::DataSet;
use pprl_journal::Fnv1a64;
use pprl_net::{ChaosConfig, ChaosProxy};
use pprl_smc::{SmcAllowance, SmcMode};
use std::net::{SocketAddr, TcpListener};
use std::time::Instant;

/// Reserves an ephemeral loopback port by binding and dropping a
/// listener; the party that binds it for real follows immediately.
fn free_addr() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("loopback bind");
    listener.local_addr().expect("local addr")
}

/// The shared job: paper defaults shrunk to a benchable pair budget.
fn build_config(records: usize, pack: bool) -> (LinkageConfig, DataSet, DataSet) {
    let scenario = pprl_core::SyntheticScenario::builder()
        .records_per_set(records)
        .seed(7)
        .build();
    let (d1, d2) = scenario.data_sets();
    let mut config = LinkageConfig::paper_defaults()
        .with_allowance(SmcAllowance::Fraction(0.02));
    config.mode = SmcMode::PaillierBatched {
        modulus_bits: 256,
        seed: 42,
        pack,
    };
    config.channel = None;
    (config, d1, d2)
}

struct RunResult {
    elapsed_s: f64,
    pairs: u64,
    /// Order-independent digest of the declared match set.
    matched_digest: u64,
    ledger_messages: u64,
    ledger_bytes: u64,
    decryptions: u64,
    /// Holder-side wire accounting (max-merged over Alice and Bob).
    retransmits: u64,
    batches_sent: u64,
    batched_envelopes: u64,
    max_window: u64,
}

/// One full three-party session at the given window and injected delay.
fn run_once(
    config: &LinkageConfig,
    d1: &DataSet,
    d2: &DataSet,
    window: usize,
    delay_ms: u64,
) -> RunResult {
    let q_addr = free_addr();
    let a_addr = free_addr();
    let chaos = {
        let mut c = ChaosConfig::clean(9);
        c.delay_ms = delay_ms;
        c
    };
    // Both data legs cross a delay proxy; each relayed chunk sleeps
    // `delay_ms` per direction, so the effective RTT is ~2x that.
    let p_bq = ChaosProxy::start("127.0.0.1:0", q_addr, chaos).expect("proxy to querier");
    let p_ba = ChaosProxy::start("127.0.0.1:0", a_addr, chaos).expect("proxy to alice");
    let bq_addr = p_bq.local_addr();
    let ba_addr = p_ba.local_addr();

    let spawn = |role: Role, f: Box<dyn FnOnce(&mut PartyOptions) + Send>| {
        let config = config.clone();
        let (d1, d2) = (d1.clone(), d2.clone());
        std::thread::spawn(move || -> PartyOutcome {
            let pipeline = HybridLinkage::new(config).with_threads(1);
            let mut popts = PartyOptions::new(role);
            popts.window = window;
            f(&mut popts);
            pprl_core::run_party(&pipeline, &d1, &d2, &popts).expect("party run")
        })
    };

    let started = Instant::now();
    let query = spawn(
        Role::Query,
        Box::new(move |p| p.listen = Some(q_addr.to_string())),
    );
    let alice = spawn(
        Role::Alice,
        Box::new(move |p| {
            p.listen = Some(a_addr.to_string());
            p.querier_addr = Some(q_addr);
        }),
    );
    let bob = spawn(
        Role::Bob,
        Box::new(move |p| {
            p.querier_addr = Some(bq_addr);
            p.alice_addr = Some(ba_addr);
        }),
    );
    let q_out = query.join().expect("querier thread");
    let a_out = alice.join().expect("alice thread");
    let b_out = bob.join().expect("bob thread");
    let elapsed_s = started.elapsed().as_secs_f64();
    drop(p_bq);
    drop(p_ba);

    let outcome = q_out.outcome.as_ref().expect("querier outcome");
    let mut matched: Vec<(u32, u32)> = outcome.matched_rows().collect();
    matched.sort_unstable();
    let mut digest = Fnv1a64::new();
    digest.update_u64(matched.len() as u64);
    for &(ri, si) in &matched {
        digest.update_u64(ri as u64);
        digest.update_u64(si as u64);
    }
    RunResult {
        elapsed_s,
        pairs: q_out.live_pairs + q_out.replayed_pairs,
        matched_digest: digest.finish(),
        ledger_messages: outcome.ledger.messages,
        ledger_bytes: outcome.ledger.bytes,
        decryptions: outcome.ledger.decryptions,
        retransmits: a_out.net.retransmits + b_out.net.retransmits,
        batches_sent: a_out.net.batches_sent + b_out.net.batches_sent,
        batched_envelopes: a_out.net.batched_envelopes + b_out.net.batched_envelopes,
        max_window: a_out.net.max_window.max(b_out.net.max_window),
    }
}

fn parse_list(raw: &str, flag: &str) -> Vec<u64> {
    raw.split(',')
        .map(|v| v.trim().parse().unwrap_or_else(|_| panic!("{flag}: bad entry {v:?}")))
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opt = |key: &str| -> Option<&str> {
        args.iter()
            .position(|a| a == key)
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
    };
    let has = |key: &str| args.iter().any(|a| a == key);
    let records: usize = opt("--records").map_or(60, |v| v.parse().expect("--records N"));
    let windows = parse_list(opt("--windows").unwrap_or("1,8,32"), "--windows");
    let delays = parse_list(opt("--delays").unwrap_or("0,10,50"), "--delays");
    let out = opt("--out").unwrap_or("BENCH_pr9.json").to_string();
    let assert_speedup = has("--assert-windowed-speedup");
    let with_packing = !has("--no-packing");

    eprintln!(
        "pr9_pipeline: records={records} windows={windows:?} delays={delays:?}"
    );
    let (config, d1, d2) = build_config(records, false);

    let mut sweep = Vec::new();
    let mut entries = String::new();
    for &delay in &delays {
        for &window in &windows {
            let r = run_once(&config, &d1, &d2, window as usize, delay);
            let rate = r.pairs as f64 / r.elapsed_s.max(1e-9);
            eprintln!(
                "delay={delay:>3}ms window={window:>3}: {} pairs in {:.2}s \
                 ({rate:.1} pairs/sec, max_window={}, batches={}, retransmits={})",
                r.pairs, r.elapsed_s, r.max_window, r.batches_sent, r.retransmits
            );
            if !entries.is_empty() {
                entries.push_str(",\n");
            }
            entries.push_str(&format!(
                concat!(
                    "    {{ \"delay_ms\": {}, \"window\": {}, \"pairs\": {}, ",
                    "\"elapsed_s\": {:.3}, \"pairs_per_sec\": {:.2}, ",
                    "\"matched_digest\": \"{:016x}\", \"ledger_bytes\": {}, ",
                    "\"net\": {{ \"retransmits\": {}, \"batches_sent\": {}, ",
                    "\"batched_envelopes\": {}, \"max_window\": {} }} }}"
                ),
                delay, window, r.pairs, r.elapsed_s, rate, r.matched_digest,
                r.ledger_bytes, r.retransmits, r.batches_sent,
                r.batched_envelopes, r.max_window,
            ));
            sweep.push((delay, window, rate, r));
        }
    }

    // The window is a deployment knob: every configuration must produce
    // the same report — digest, message count, and ledger bytes alike.
    let (_, _, _, first) = sweep.first().expect("non-empty sweep");
    for (delay, window, _, r) in &sweep {
        assert_eq!(
            (r.matched_digest, r.ledger_messages, r.ledger_bytes),
            (first.matched_digest, first.ledger_messages, first.ledger_bytes),
            "delay={delay} window={window}: the report drifted with the window"
        );
    }

    // Headline: the widest window against lockstep at the worst RTT.
    let max_delay = delays.iter().copied().max().unwrap_or(0);
    let rate_at = |w: u64| {
        sweep
            .iter()
            .find(|(d, win, _, _)| *d == max_delay && *win == w)
            .map(|(_, _, rate, _)| *rate)
            .unwrap_or(0.0)
    };
    let w_lo = windows.iter().copied().min().unwrap_or(1);
    let w_hi = windows.iter().copied().max().unwrap_or(1);
    let speedup = rate_at(w_hi) / rate_at(w_lo).max(1e-9);
    eprintln!(
        "speedup at {max_delay}ms injected delay: window {w_hi} is {speedup:.2}x window {w_lo}"
    );
    if assert_speedup {
        assert!(
            speedup > 1.0,
            "windowed pipelining must beat lockstep under {max_delay}ms delay \
             (got {speedup:.2}x)"
        );
    }

    // Packing head-to-head at zero delay, lockstep: the protocol ledger
    // shrinks (fewer decryptions, fewer bytes) while decisions hold.
    let packing_json = if with_packing {
        let (packed_config, ..) = build_config(records, true);
        let scalar = run_once(&config, &d1, &d2, 1, 0);
        let packed = run_once(&packed_config, &d1, &d2, 1, 0);
        assert_eq!(
            scalar.matched_digest, packed.matched_digest,
            "packing changed the declared match set"
        );
        assert!(
            packed.decryptions <= scalar.decryptions,
            "packing must not cost extra decryptions \
             ({} packed vs {} scalar)",
            packed.decryptions,
            scalar.decryptions
        );
        eprintln!(
            "packing: {} -> {} ledger bytes ({:.3}x), {} -> {} decryptions",
            scalar.ledger_bytes,
            packed.ledger_bytes,
            packed.ledger_bytes as f64 / scalar.ledger_bytes.max(1) as f64,
            scalar.decryptions,
            packed.decryptions,
        );
        format!(
            concat!(
                "{{\n",
                "    \"scalar\": {{ \"ledger_bytes\": {}, \"decryptions\": {} }},\n",
                "    \"packed\": {{ \"ledger_bytes\": {}, \"decryptions\": {} }},\n",
                "    \"byte_ratio\": {:.4}\n",
                "  }}"
            ),
            scalar.ledger_bytes,
            scalar.decryptions,
            packed.ledger_bytes,
            packed.decryptions,
            packed.ledger_bytes as f64 / scalar.ledger_bytes.max(1) as f64,
        )
    } else {
        "null".to_string()
    };

    // Assembled by hand like the earlier bench bins: meaningful without
    // a JSON crate in the loop.
    let doc = format!(
        r#"{{
  "bench": "pr9_pipeline",
  "records_per_set": {records},
  "smc_pairs": {pairs},
  "modulus_bits": 256,
  "sweep": [
{entries}
  ],
  "speedup_at_max_delay": {{
    "delay_ms": {max_delay},
    "window_hi": {w_hi},
    "window_lo": {w_lo},
    "speedup": {speedup:.3}
  }},
  "packing": {packing_json}
}}
"#,
        pairs = first.pairs,
    );
    std::fs::write(&out, doc).expect("write bench output");
    println!("wrote {out}");
}
