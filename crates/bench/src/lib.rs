//! Shared machinery for the experiment harness: scenario setup, sweep
//! runners that reuse expensive artifacts (anonymized views, ground truth)
//! across series, and table printing.
//!
//! Every figure/table of the paper's §VI maps to one function here; the
//! `experiments` binary is a thin CLI over them. See `DESIGN.md` for the
//! experiment index and `EXPERIMENTS.md` for recorded results.

use pprl_anon::{AnonymizationMethod, AnonymizedView, Anonymizer, KAnonymityRequirement};
use pprl_blocking::{BlockingEngine, BlockingOutcome, MatchingRule, PairLabel};
use pprl_core::{GroundTruth, SyntheticScenario};
use pprl_data::DataSet;
use pprl_smc::{
    label_leftovers, DeadlineBudget, LabelingStrategy, SelectionHeuristic, SmcAllowance,
    SmcMode, SmcStep,
};
use serde::Serialize;

/// The paper's k sweep (Figs. 2–4).
pub const K_SWEEP: [usize; 10] = [2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];

/// The prefix of [`K_SWEEP`] feasible over `records` input rows. A
/// k-anonymity requirement larger than the input cannot be satisfied,
/// so small-scale runs (`--records 1000`) skip the tail of the sweep
/// instead of aborting mid-figure; the skip is reported on stderr.
pub fn feasible_k(records: usize) -> Vec<usize> {
    let (ok, skipped): (Vec<usize>, Vec<usize>) =
        K_SWEEP.into_iter().partition(|&k| k <= records);
    if !skipped.is_empty() {
        eprintln!("# skipping infeasible k over {records} records: {skipped:?}");
    }
    ok
}
/// The paper's θ sweep (Fig. 5).
pub const THETA_SWEEP: [f64; 10] = [0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08, 0.09, 0.1];
/// The paper's |QID| sweep (Figs. 6–7).
pub const QID_SWEEP: [usize; 6] = [3, 4, 5, 6, 7, 8];
/// The paper's allowance sweep in percent (Fig. 8).
pub const ALLOWANCE_SWEEP: [f64; 7] = [0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0];
/// The three heuristics of the §VI series.
pub const HEURISTICS: [SelectionHeuristic; 3] = [
    SelectionHeuristic::MaxLast,
    SelectionHeuristic::MinFirst,
    SelectionHeuristic::MinAvgFirst,
];

/// Paper defaults (§VI).
pub const DEFAULT_K: usize = 32;
/// Default θ.
pub const DEFAULT_THETA: f64 = 0.05;
/// Default allowance (fraction of all pairs).
pub const DEFAULT_ALLOWANCE: f64 = 0.015;
/// Default QID count.
pub const DEFAULT_QIDS: usize = 5;

/// Experiment environment: the two linkage inputs plus the full source
/// (Fig. 2 anonymizes the un-partitioned data set).
pub struct Env {
    /// First linkage input.
    pub d1: DataSet,
    /// Second linkage input.
    pub d2: DataSet,
    /// The full cleaned source (3/2 × records-per-set).
    pub source: DataSet,
}

impl Env {
    /// Builds the environment at a given scale (records per linkage input).
    pub fn new(records_per_set: usize, seed: u64) -> Self {
        let scenario = SyntheticScenario::builder()
            .records_per_set(records_per_set)
            .seed(seed)
            .build();
        let (d1, d2) = scenario.data_sets();
        let source = pprl_data::synth::generate(&pprl_data::synth::SynthConfig {
            records: records_per_set / 2 * 3,
            seed,
        });
        Env { d1, d2, source }
    }

    /// QID indices for a top-q sweep.
    pub fn qids(q: usize) -> Vec<usize> {
        (0..q).collect()
    }

    /// The uniform matching rule at θ.
    pub fn rule(&self, qids: &[usize], theta: f64) -> MatchingRule {
        MatchingRule::uniform(self.d1.schema(), qids, theta)
    }
}

/// One anonymized pair of views (shared across heuristic series).
pub struct Views {
    /// D1's view.
    pub r: AnonymizedView,
    /// D2's view.
    pub s: AnonymizedView,
}

/// Anonymizes both inputs with the same method and k.
pub fn make_views(env: &Env, method: AnonymizationMethod, k: usize, qids: &[usize]) -> Views {
    let anon = Anonymizer::new(method, KAnonymityRequirement(k));
    Views {
        r: anon.anonymize(&env.d1, qids).expect("valid anonymization inputs"),
        s: anon.anonymize(&env.d2, qids).expect("valid anonymization inputs"),
    }
}

/// Result of one (views, rule, heuristic, allowance) linkage evaluation.
#[derive(Clone, Debug, Serialize)]
pub struct RunPoint {
    /// Blocking efficiency.
    pub efficiency: f64,
    /// Recall against ground truth.
    pub recall: f64,
    /// Precision.
    pub precision: f64,
    /// SMC comparisons spent.
    pub invocations: u64,
}

/// Runs blocking once for a views/rule pair.
pub fn run_blocking(views: &Views, rule: &MatchingRule) -> BlockingOutcome {
    BlockingEngine::new(rule.clone())
        .run(&views.r, &views.s)
        .expect("views share QIDs")
}

/// Runs the SMC step + maximize-precision scoring for one heuristic,
/// reusing a precomputed blocking outcome and ground truth.
#[allow(clippy::too_many_arguments)]
pub fn run_point(
    env: &Env,
    views: &Views,
    rule: &MatchingRule,
    blocking: &BlockingOutcome,
    truth: &GroundTruth,
    heuristic: SelectionHeuristic,
    allowance: SmcAllowance,
) -> RunPoint {
    let step = SmcStep {
        heuristic,
        allowance,
        strategy: LabelingStrategy::MaximizePrecision,
        mode: SmcMode::Oracle,
        channel: None,
        deadline: DeadlineBudget::None,
    };
    let smc = step
        .run(
            &env.d1,
            &env.d2,
            &views.r,
            &views.s,
            &blocking.unknown,
            rule,
            blocking.total_pairs,
        )
        .expect("oracle mode cannot fail");
    let tp = blocking.matched_pairs + smc.matched_pairs.len() as u64;
    RunPoint {
        efficiency: blocking.efficiency(),
        recall: if truth.total_matches() == 0 {
            1.0
        } else {
            tp as f64 / truth.total_matches() as f64
        },
        precision: 1.0, // structural under maximize-precision
        invocations: smc.invocations,
    }
}

/// Full strategy evaluation (E10): runs one strategy end to end and scores
/// precision *and* recall, including leftover declarations.
#[allow(clippy::too_many_arguments)]
pub fn run_strategy(
    env: &Env,
    views: &Views,
    qids: &[usize],
    rule: &MatchingRule,
    blocking: &BlockingOutcome,
    truth: &GroundTruth,
    strategy: LabelingStrategy,
    allowance: SmcAllowance,
) -> (f64, f64) {
    // Strategy 3 uses random selection (paper §V-B); 1 and 2 use the
    // default heuristic.
    let heuristic = match strategy {
        LabelingStrategy::Classifier => SelectionHeuristic::Random { seed: 1 },
        _ => SelectionHeuristic::MinAvgFirst,
    };
    let step = SmcStep {
        heuristic,
        allowance,
        strategy,
        mode: SmcMode::Oracle,
        channel: None,
        deadline: DeadlineBudget::None,
    };
    let smc = step
        .run(
            &env.d1,
            &env.d2,
            &views.r,
            &views.s,
            &blocking.unknown,
            rule,
            blocking.total_pairs,
        )
        .expect("oracle mode cannot fail");

    // Score leftovers under the strategy.
    let schema = env.d1.schema();
    let vghs: Vec<&pprl_hierarchy::Vgh> =
        qids.iter().map(|&q| schema.attribute(q).vgh()).collect();
    let avg_ed = |pref: &pprl_blocking::ClassPairRef| {
        let eds = pprl_smc::expected::expected_vector(
            &vghs,
            &rule.distances,
            &views.r.classes()[pref.r_class as usize].sequence,
            &views.s.classes()[pref.s_class as usize].sequence,
        );
        eds.iter().sum::<f64>() / eds.len().max(1) as f64
    };
    let leftover_scores: Vec<f64> = smc.leftovers.iter().map(|l| avg_ed(&l.class_pair)).collect();
    let examined_scores: Vec<f64> = smc.examined.iter().map(|e| avg_ed(&e.class_pair)).collect();
    let labels = label_leftovers(
        strategy,
        &smc.leftovers,
        &leftover_scores,
        &smc.examined,
        &examined_scores,
    );

    let mut declared = blocking.matched_pairs + smc.matched_pairs.len() as u64;
    let mut tp = declared; // blocking + SMC matches are sound
    for (leftover, label) in smc.leftovers.iter().zip(&labels) {
        if *label == PairLabel::Match {
            declared += leftover.class_pair.pairs - leftover.skip;
            tp += pprl_core::count_matches_in_class_pair(
                &env.d1,
                &env.d2,
                qids,
                rule,
                &views.r.classes()[leftover.class_pair.r_class as usize].rows,
                &views.s.classes()[leftover.class_pair.s_class as usize].rows,
                leftover.skip,
            );
        }
    }
    let precision = if declared == 0 {
        1.0
    } else {
        tp as f64 / declared as f64
    };
    let recall = if truth.total_matches() == 0 {
        1.0
    } else {
        tp as f64 / truth.total_matches() as f64
    };
    (precision, recall)
}

/// Optional directory for CSV copies of every printed table.
static CSV_DIR: std::sync::OnceLock<Option<std::path::PathBuf>> = std::sync::OnceLock::new();

/// Enables CSV export (call once, before any table is printed).
pub fn set_csv_dir(dir: Option<std::path::PathBuf>) {
    let _ = CSV_DIR.set(dir);
}

/// Prints an aligned table: header + rows of (x, series values). With CSV
/// export enabled, also writes `<slug>.csv` into the chosen directory.
pub fn print_table(title: &str, x_label: &str, series: &[String], rows: &[(String, Vec<f64>)]) {
    println!("\n## {title}");
    print!("{x_label:>12}");
    for s in series {
        print!(" {s:>14}");
    }
    println!();
    for (x, vals) in rows {
        print!("{x:>12}");
        for v in vals {
            print!(" {v:>14.4}");
        }
        println!();
    }

    if let Some(Some(dir)) = CSV_DIR.get() {
        let slug: String = title
            .chars()
            .take_while(|&c| c != '—')
            .collect::<String>()
            .trim()
            .to_lowercase()
            .replace('.', "")
            .replace(' ', "_");
        let mut csv = format!("{x_label},{}\n", series.join(","));
        for (x, vals) in rows {
            let vals: Vec<String> = vals.iter().map(|v| format!("{v}")).collect();
            csv.push_str(&format!("{x},{}\n", vals.join(",")));
        }
        let path = dir.join(format!("{slug}.csv"));
        if let Err(e) = std::fs::write(&path, csv) {
            eprintln!("# csv export to {} failed: {e}", path.display());
        } else {
            eprintln!("# wrote {}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_and_point_smoke() {
        let env = Env::new(200, 3);
        assert_eq!(env.d1.len(), 200);
        assert_eq!(env.source.len(), 300);
        let qids = Env::qids(5);
        let rule = env.rule(&qids, DEFAULT_THETA);
        let views = make_views(&env, AnonymizationMethod::MaxEntropy, 8, &qids);
        let blocking = run_blocking(&views, &rule);
        let truth = GroundTruth::compute(&env.d1, &env.d2, &qids, &rule);
        let point = run_point(
            &env,
            &views,
            &rule,
            &blocking,
            &truth,
            SelectionHeuristic::MinAvgFirst,
            SmcAllowance::Fraction(0.015),
        );
        assert!(point.efficiency > 0.0);
        assert!(point.recall >= 0.0 && point.recall <= 1.0);
        assert_eq!(point.precision, 1.0);
    }

    #[test]
    fn strategies_tradeoff_direction() {
        let env = Env::new(150, 5);
        let qids = Env::qids(5);
        let rule = env.rule(&qids, DEFAULT_THETA);
        let views = make_views(&env, AnonymizationMethod::MaxEntropy, 16, &qids);
        let blocking = run_blocking(&views, &rule);
        let truth = GroundTruth::compute(&env.d1, &env.d2, &qids, &rule);
        let allowance = SmcAllowance::Pairs(200);
        let (p1, r1) = run_strategy(
            &env, &views, &qids, &rule, &blocking, &truth,
            LabelingStrategy::MaximizePrecision, allowance,
        );
        let (p2, r2) = run_strategy(
            &env, &views, &qids, &rule, &blocking, &truth,
            LabelingStrategy::MaximizeRecall, allowance,
        );
        assert_eq!(p1, 1.0);
        assert_eq!(r2, 1.0);
        assert!(r1 <= r2);
        assert!(p2 <= p1);
    }
}
