//! Conversions: big-endian bytes, hexadecimal, decimal, and serde support.
//!
//! Serde serializes values as lowercase hex strings — human-readable in
//! experiment dumps and free of endianness pitfalls.

use crate::{BigUint, BignumError};
use serde::{de, Deserialize, Deserializer, Serialize, Serializer};
use std::fmt;
use std::str::FromStr;

impl BigUint {
    /// Builds a value from big-endian bytes (leading zeros allowed).
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len().div_ceil(8));
        for chunk in bytes.rchunks(8) {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
        }
        BigUint::from_limbs(limbs)
    }

    /// Serializes to minimal big-endian bytes (empty for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            let bytes = limb.to_be_bytes();
            if i == self.limbs.len() - 1 {
                // Skip leading zero bytes of the most significant limb.
                let skip = (limb.leading_zeros() / 8) as usize;
                out.extend(bytes.iter().skip(skip));
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Serializes to big-endian bytes left-padded to exactly `len` bytes.
    ///
    /// Returns an error-free best effort: panics if the value needs more than
    /// `len` bytes (protocol messages size buffers from the key length, so
    /// this indicates a logic error, not input error).
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_bytes_be();
        assert!(
            raw.len() <= len,
            "value needs {} bytes, buffer is {len}",
            raw.len()
        );
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// Parses a hexadecimal string (no prefix, case-insensitive).
    pub fn from_hex(s: &str) -> Result<Self, BignumError> {
        if s.is_empty() {
            return Err(BignumError::Parse("empty hex string".into()));
        }
        let mut bytes = Vec::with_capacity(s.len() / 2 + 1);
        let s = if s.len() % 2 == 1 {
            format!("0{s}")
        } else {
            s.to_string()
        };
        for pair in s.as_bytes().chunks(2) {
            let &[hi, lo] = pair else {
                // Unreachable: the string was padded to even length above.
                return Err(BignumError::Parse("odd hex length".into()));
            };
            bytes.push((hex_digit(hi)? << 4) | hex_digit(lo)?);
        }
        Ok(BigUint::from_bytes_be(&bytes))
    }

    /// Lowercase hexadecimal rendering ("0" for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut s = String::with_capacity(self.limbs.len() * 16);
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            if i == self.limbs.len() - 1 {
                s.push_str(&format!("{limb:x}"));
            } else {
                s.push_str(&format!("{limb:016x}"));
            }
        }
        s
    }

    /// Decimal rendering.
    pub fn to_decimal(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        // Peel 19 decimal digits at a time (largest power of ten in u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut n = self.clone();
        let mut parts: Vec<u64> = Vec::new();
        while !n.is_zero() {
            let Ok((q, r)) = n.div_rem_u64(CHUNK) else {
                debug_assert!(false, "CHUNK is a non-zero constant");
                break;
            };
            parts.push(r);
            n = q;
        }
        let mut s = String::new();
        for (i, part) in parts.iter().enumerate().rev() {
            if i == parts.len() - 1 {
                s.push_str(&part.to_string());
            } else {
                s.push_str(&format!("{part:019}"));
            }
        }
        s
    }

    /// Parses a decimal string.
    pub fn from_decimal(s: &str) -> Result<Self, BignumError> {
        if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
            return Err(BignumError::Parse(format!("invalid decimal: {s:?}")));
        }
        let mut out = BigUint::zero();
        for chunk in s.as_bytes().chunks(19) {
            // Every byte was validated as an ASCII digit above; 19 digits
            // fit in u64 (10^19 - 1 < 2^64).
            let v = chunk
                .iter()
                .fold(0u64, |acc, &b| acc * 10 + u64::from(b - b'0'));
            out = out.mul_u64(10u64.pow(chunk.len() as u32));
            out.add_u64_assign(v);
        }
        Ok(out)
    }
}

fn hex_digit(b: u8) -> Result<u8, BignumError> {
    match b {
        b'0'..=b'9' => Ok(b - b'0'),
        b'a'..=b'f' => Ok(b - b'a' + 10),
        b'A'..=b'F' => Ok(b - b'A' + 10),
        _ => Err(BignumError::Parse(format!("invalid hex digit {:?}", b as char))),
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_decimal())
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl FromStr for BigUint {
    type Err = BignumError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(hex) = s.strip_prefix("0x") {
            BigUint::from_hex(hex)
        } else {
            BigUint::from_decimal(s)
        }
    }
}

impl Serialize for BigUint {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_hex())
    }
}

impl<'de> Deserialize<'de> for BigUint {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        BigUint::from_hex(&s).map_err(de::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_roundtrip() {
        let v = BigUint::from_u128(0x0102_0304_0506_0708_090a_0b0cu128);
        let bytes = v.to_bytes_be();
        assert_eq!(bytes[0], 0x01);
        assert_eq!(BigUint::from_bytes_be(&bytes), v);
    }

    #[test]
    fn bytes_leading_zeros_ignored() {
        let v = BigUint::from_u64(0xABCD);
        assert_eq!(BigUint::from_bytes_be(&[0, 0, 0xAB, 0xCD]), v);
        assert_eq!(v.to_bytes_be(), vec![0xAB, 0xCD]);
    }

    #[test]
    fn padded_bytes() {
        let v = BigUint::from_u64(0xFF);
        assert_eq!(v.to_bytes_be_padded(4), vec![0, 0, 0, 0xFF]);
    }

    #[test]
    #[should_panic(expected = "buffer")]
    fn padded_bytes_too_small_panics() {
        BigUint::from_u128(1u128 << 64).to_bytes_be_padded(4);
    }

    #[test]
    fn hex_roundtrip() {
        for s in ["0", "1", "ff", "deadbeef", "123456789abcdef0123456789abcdef"] {
            let v = BigUint::from_hex(s).unwrap();
            assert_eq!(v.to_hex(), s, "input {s}");
            assert_eq!(BigUint::from_hex(&v.to_hex()).unwrap(), v);
        }
    }

    #[test]
    fn hex_odd_length() {
        assert_eq!(BigUint::from_hex("abc").unwrap().to_u64(), Some(0xabc));
    }

    #[test]
    fn hex_invalid_digit() {
        assert!(BigUint::from_hex("xyz").is_err());
        assert!(BigUint::from_hex("").is_err());
    }

    #[test]
    fn decimal_roundtrip() {
        let cases = [
            "0",
            "1",
            "18446744073709551616", // 2^64
            "340282366920938463463374607431768211456", // 2^128
            "99999999999999999999999999999999999999",
        ];
        for s in cases {
            assert_eq!(BigUint::from_decimal(s).unwrap().to_decimal(), s);
        }
    }

    #[test]
    fn decimal_rejects_garbage() {
        assert!(BigUint::from_decimal("12a3").is_err());
        assert!(BigUint::from_decimal("").is_err());
        assert!(BigUint::from_decimal("-5").is_err());
    }

    #[test]
    fn from_str_dispatches_on_prefix() {
        assert_eq!("0xff".parse::<BigUint>().unwrap().to_u64(), Some(255));
        assert_eq!("255".parse::<BigUint>().unwrap().to_u64(), Some(255));
    }

    #[test]
    fn display_and_debug() {
        let v = BigUint::from_u64(255);
        assert_eq!(format!("{v}"), "255");
        assert_eq!(format!("{v:?}"), "BigUint(0xff)");
    }
}
