//! Constant-time helpers: branch-free limb selection and comparison.
//!
//! Everything here avoids value-dependent branches and value-dependent
//! memory addressing; control flow depends only on limb *counts*, which
//! are public for the places these helpers serve (fixed-width Paillier
//! moduli and exponents). Selection is done with all-ones/all-zero masks
//! derived from a bit via `wrapping_neg`, the usual dudect-friendly idiom.

use crate::BigUint;

/// Swaps `a` and `b` in place when `mask` is all-ones, leaves both
/// untouched when it is zero. XOR-swap per limb: no branch, no
/// value-dependent addressing. Slices must have equal length.
pub(crate) fn cswap_limbs(mask: u64, a: &mut [u64], b: &mut [u64]) {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter_mut().zip(b.iter_mut()) {
        let diff = (*x ^ *y) & mask;
        *x ^= diff;
        *y ^= diff;
    }
}

/// Normalizes a word to a 0/1 flag: 1 when `v != 0`, else 0, without
/// comparing (the sign bit of `v | -v` is set exactly when `v` is
/// nonzero).
pub(crate) fn nonzero_u64(v: u64) -> u64 {
    (v | v.wrapping_neg()) >> 63
}

impl BigUint {
    /// Constant-time `self < other`: returns 1 or 0. Runs in time
    /// dependent only on the larger limb count, by trial-subtracting
    /// over the padded common width and reporting the final borrow.
    pub fn ct_lt(&self, other: &BigUint) -> u64 {
        let width = self.limbs().len().max(other.limbs().len());
        let lhs = self.limbs().iter().copied().chain(core::iter::repeat(0));
        let rhs = other.limbs().iter().copied().chain(core::iter::repeat(0));
        lhs.zip(rhs).take(width).fold(0u64, |borrow, (a, b)| {
            let d = (a as u128)
                .wrapping_sub(b as u128)
                .wrapping_sub(borrow as u128);
            ((d >> 64) as u64) & 1
        })
    }

    /// Low 64 bits of the value (0 for an empty limb vector).
    pub fn low_u64(&self) -> u64 {
        self.limbs().first().copied().unwrap_or(0)
    }

    /// 1 when any bit at position 64 or above is set, else 0 — the
    /// branch-free complement of [`BigUint::to_u64`]'s `None` case.
    pub fn hi64_nonzero(&self) -> u64 {
        let hi = self
            .limbs()
            .iter()
            .skip(1)
            .fold(0u64, |acc, &limb| acc | limb);
        nonzero_u64(hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cswap_swaps_on_full_mask_only() {
        let mut a = [1u64, 2, 3];
        let mut b = [9u64, 8, 7];
        cswap_limbs(0, &mut a, &mut b);
        assert_eq!((a, b), ([1, 2, 3], [9, 8, 7]));
        cswap_limbs(u64::MAX, &mut a, &mut b);
        assert_eq!((a, b), ([9, 8, 7], [1, 2, 3]));
    }

    #[test]
    fn nonzero_flag() {
        assert_eq!(nonzero_u64(0), 0);
        assert_eq!(nonzero_u64(1), 1);
        assert_eq!(nonzero_u64(u64::MAX), 1);
        assert_eq!(nonzero_u64(1 << 63), 1);
    }

    #[test]
    fn ct_lt_matches_ord_across_widths() {
        let vals = [
            BigUint::zero(),
            BigUint::one(),
            BigUint::from_u64(u64::MAX),
            BigUint::one().shl(64),
            BigUint::one().shl(65),
            &BigUint::one().shl(128) - &BigUint::one(),
            BigUint::from_u128(0xDEAD_BEEF_0000_0001_0000_0000u128),
        ];
        for a in &vals {
            for b in &vals {
                assert_eq!(a.ct_lt(b) == 1, a < b, "a={a:?} b={b:?}");
            }
        }
    }

    #[test]
    fn low_and_high_extraction() {
        assert_eq!(BigUint::zero().low_u64(), 0);
        assert_eq!(BigUint::zero().hi64_nonzero(), 0);
        let v = BigUint::from_u64(42);
        assert_eq!(v.low_u64(), 42);
        assert_eq!(v.hi64_nonzero(), 0);
        let w = &BigUint::one().shl(64) + &BigUint::from_u64(5);
        assert_eq!(w.low_u64(), 5);
        assert_eq!(w.hi64_nonzero(), 1);
    }
}
