//! Division with remainder: Knuth's Algorithm D, performed over 32-bit
//! digits so that the quotient-digit estimation fits comfortably in `u64`
//! intermediates. The 64→32-bit digit conversion costs a copy per division,
//! which is negligible next to the O(n·m) core loop at Paillier sizes.

use crate::{BigUint, BignumError};

impl BigUint {
    /// Computes `(self / divisor, self % divisor)`.
    pub fn div_rem(&self, divisor: &BigUint) -> Result<(BigUint, BigUint), BignumError> {
        if divisor.is_zero() {
            return Err(BignumError::DivisionByZero);
        }
        if self < divisor {
            return Ok((BigUint::zero(), self.clone()));
        }
        if let Some(d) = divisor.to_u64() {
            let (q, r) = self.div_rem_u64(d)?;
            return Ok((q, BigUint::from_u64(r)));
        }

        let u = to_u32_digits(self.limbs());
        let v = to_u32_digits(divisor.limbs());
        let (q, r) = knuth_d(&u, &v);
        Ok((from_u32_digits(&q), from_u32_digits(&r)))
    }

    /// Computes `(self / d, self % d)` for a single-word divisor.
    pub fn div_rem_u64(&self, d: u64) -> Result<(BigUint, u64), BignumError> {
        if d == 0 {
            return Err(BignumError::DivisionByZero);
        }
        let mut q = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for (qd, &l) in q.iter_mut().zip(self.limbs.iter()).rev() {
            let cur = (rem << 64) | l as u128;
            *qd = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        Ok((BigUint::from_limbs(q), rem as u64))
    }

    /// `self % modulus`, panicking on a zero modulus.
    pub fn rem(&self, modulus: &BigUint) -> BigUint {
        // pprl:allow(panic-path): documented contract panic; checked_/div_rem alternatives exist for fallible callers
        self.div_rem(modulus).expect("modulus must be non-zero").1
    }
}

impl std::ops::Div for &BigUint {
    type Output = BigUint;
    fn div(self, rhs: &BigUint) -> BigUint {
        // pprl:allow(panic-path): documented contract panic; checked_/div_rem alternatives exist for fallible callers
        self.div_rem(rhs).expect("division by zero").0
    }
}

impl std::ops::Rem for &BigUint {
    type Output = BigUint;
    fn rem(self, rhs: &BigUint) -> BigUint {
        BigUint::rem(self, rhs)
    }
}

/// Splits little-endian `u64` limbs into little-endian `u32` digits,
/// dropping high zero digits.
fn to_u32_digits(limbs: &[u64]) -> Vec<u32> {
    let mut out = Vec::with_capacity(limbs.len() * 2);
    for &l in limbs {
        out.push(l as u32);
        out.push((l >> 32) as u32);
    }
    while out.last() == Some(&0) {
        out.pop();
    }
    out
}

/// Reassembles little-endian `u32` digits into a normalized [`BigUint`].
fn from_u32_digits(digits: &[u32]) -> BigUint {
    let mut limbs = Vec::with_capacity(digits.len().div_ceil(2));
    for pair in digits.chunks(2) {
        let lo = pair.first().copied().unwrap_or(0) as u64;
        let hi = pair.get(1).copied().unwrap_or(0) as u64;
        limbs.push(lo | (hi << 32));
    }
    BigUint::from_limbs(limbs)
}

const BASE: u64 = 1 << 32;

/// Knuth TAOCP vol. 2, Algorithm 4.3.1 D. Requires `u >= v`, `v.len() >= 2`,
/// digits normalized (no leading zeros). Returns `(quotient, remainder)`.
///
/// Digit access is iterator-shaped (`iter().skip(..)` windows and `zip`ped
/// carry loops) rather than indexed, so the whole routine is free of
/// panicking `x[i]` sites (panic-path P004).
fn knuth_d(u: &[u32], v: &[u32]) -> (Vec<u32>, Vec<u32>) {
    let n = v.len();
    let m = u.len() - n;
    debug_assert!(n >= 2);

    // D1: normalize so the top divisor digit has its high bit set.
    let shift = v.last().map_or(0, |d| d.leading_zeros());
    let vn = shl_digits(v, shift);
    let mut un = shl_digits(u, shift);
    un.resize(u.len() + 1, 0); // extra high digit for the first iteration

    // The top two divisor digits drive every D3 estimate.
    let mut vtop = vn.iter().rev().copied();
    let v1 = vtop.next().unwrap_or(0) as u64;
    let v2 = vtop.next().unwrap_or(0) as u64;

    // Quotient digits are produced most significant first; collect and
    // reverse instead of assigning through q[j].
    let mut q = Vec::with_capacity(m + 1);

    // D2-D7: compute one quotient digit per iteration, most significant first.
    for j in (0..=m).rev() {
        // D3: estimate qhat from the top two dividend digits of the
        // window un[j ..= j+n] (read u_{j+n-2}, u_{j+n-1}, u_{j+n}).
        let mut utop = un.iter().skip(j + n - 2).copied();
        let u2 = utop.next().unwrap_or(0) as u64;
        let u1 = utop.next().unwrap_or(0) as u64;
        let u0 = utop.next().unwrap_or(0) as u64;
        let top = u0 * BASE + u1;
        let mut qhat = top / v1;
        let mut rhat = top % v1;
        while qhat >= BASE || qhat * v2 > rhat * BASE + u2 {
            qhat -= 1;
            rhat += v1;
            if rhat >= BASE {
                break;
            }
        }

        // qhat may still equal BASE when the estimation loop exits via
        // rhat >= BASE; clamp to BASE-1 (still >= the true digit, and the
        // add-back in D6 repairs the off-by-one) so D4 cannot overflow u64.
        qhat = qhat.min(BASE - 1);

        // D4: multiply and subtract un[j..j+n] -= qhat * vn over the
        // zipped window, then fold borrow and carry into the top digit.
        let mut borrow = 0i64;
        let mut carry = 0u64;
        for (ud, &vd) in un.iter_mut().skip(j).zip(vn.iter()) {
            let p = qhat * vd as u64 + carry;
            carry = p >> 32;
            let t = *ud as i64 - borrow - (p as u32) as i64;
            *ud = t as u32;
            borrow = if t < 0 { 1 } else { 0 };
        }
        let mut t = 0i64;
        if let Some(ud) = un.get_mut(j + n) {
            t = *ud as i64 - borrow - carry as i64;
            *ud = t as u32;
        }

        // D5/D6: if we subtracted too much, add one divisor back.
        if t < 0 {
            qhat -= 1;
            let mut carry = 0u64;
            for (ud, &vd) in un.iter_mut().skip(j).zip(vn.iter()) {
                let s = *ud as u64 + vd as u64 + carry;
                *ud = s as u32;
                carry = s >> 32;
            }
            if let Some(ud) = un.get_mut(j + n) {
                *ud = (*ud as u64).wrapping_add(carry) as u32;
            }
        }

        q.push(qhat as u32);
    }
    q.reverse();

    // D8: denormalize the remainder (the low n digits of un).
    un.truncate(n);
    let rem = shr_digits(&un, shift);
    while q.last() == Some(&0) {
        q.pop();
    }
    (q, rem)
}

fn shl_digits(d: &[u32], shift: u32) -> Vec<u32> {
    if shift == 0 {
        return d.to_vec();
    }
    let mut out = Vec::with_capacity(d.len() + 1);
    let mut carry = 0u32;
    for &x in d {
        out.push((x << shift) | carry);
        carry = x >> (32 - shift);
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

fn shr_digits(d: &[u32], shift: u32) -> Vec<u32> {
    let mut out: Vec<u32> = if shift == 0 {
        d.to_vec()
    } else {
        d.iter()
            .zip(d.iter().skip(1).copied().chain(std::iter::once(0)))
            .map(|(&x, hi)| (x >> shift) | (hi << (32 - shift)))
            .collect()
    };
    while out.last() == Some(&0) {
        out.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(a: &BigUint, b: &BigUint) {
        let (q, r) = a.div_rem(b).unwrap();
        assert!(r < *b, "remainder must be < divisor");
        let recomposed = &q.mul(b) + &r;
        assert_eq!(recomposed, *a, "q*b + r must equal a");
    }

    #[test]
    fn division_by_zero_errors() {
        let a = BigUint::from_u64(5);
        assert_eq!(
            a.div_rem(&BigUint::zero()),
            Err(BignumError::DivisionByZero)
        );
    }

    #[test]
    fn small_divisions() {
        let a = BigUint::from_u64(1000);
        let b = BigUint::from_u64(7);
        let (q, r) = a.div_rem(&b).unwrap();
        assert_eq!(q.to_u64(), Some(142));
        assert_eq!(r.to_u64(), Some(6));
    }

    #[test]
    fn dividend_smaller_than_divisor() {
        let a = BigUint::from_u64(3);
        let b = BigUint::from_u128(1u128 << 80);
        let (q, r) = a.div_rem(&b).unwrap();
        assert!(q.is_zero());
        assert_eq!(r, a);
    }

    #[test]
    fn multi_limb_division_roundtrips() {
        let a = BigUint::from_u128(0xDEAD_BEEF_CAFE_BABE_0123_4567_89AB_CDEFu128);
        let b = BigUint::from_u128(0x1_0000_0001_0000_0001u128);
        check(&a, &b);
    }

    #[test]
    fn stress_structured_operands() {
        // Operands chosen to stress qhat correction paths (top digits near BASE).
        let mut a = BigUint::one().shl(512);
        a = &a - &BigUint::one();
        let mut b = BigUint::one().shl(200);
        b = &b - &BigUint::from_u64(1);
        check(&a, &b);
        let c = BigUint::one().shl(256);
        check(&a, &c);
        check(&c, &b);
    }

    #[test]
    fn div_rem_u64_matches_general_path() {
        let a = BigUint::from_u128(u128::MAX - 12345);
        let (q1, r1) = a.div_rem_u64(97).unwrap();
        let (q2, r2) = a.div_rem(&BigUint::from_u64(97)).unwrap();
        assert_eq!(q1, q2);
        assert_eq!(BigUint::from_u64(r1), r2);
    }

    #[test]
    fn rem_operator() {
        let a = BigUint::from_u64(100);
        let m = BigUint::from_u64(7);
        assert_eq!((&a % &m).to_u64(), Some(2));
        assert_eq!((&a / &m).to_u64(), Some(14));
    }
}
