//! Greatest common divisor, extended Euclidean algorithm, and modular
//! inverses — the number-theoretic glue Paillier keygen relies on
//! (`λ = lcm(p-1, q-1)`, `μ = L(g^λ mod n²)⁻¹ mod n`).

use crate::{BigInt, BigUint, BignumError};

impl BigUint {
    /// Greatest common divisor (Euclid).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Least common multiple. `lcm(0, x) = 0`.
    pub fn lcm(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let g = self.gcd(other);
        (self / &g).mul(other)
    }

    /// Extended GCD: returns `(g, x, y)` with `self·x + other·y = g`.
    pub fn egcd(&self, other: &BigUint) -> (BigUint, BigInt, BigInt) {
        // Iterative version tracking Bézout coefficients as signed ints.
        let mut r0 = self.clone();
        let mut r1 = other.clone();
        let mut x0 = BigInt::one();
        let mut x1 = BigInt::zero();
        let mut y0 = BigInt::zero();
        let mut y1 = BigInt::one();

        while !r1.is_zero() {
            let Ok((q, r)) = r0.div_rem(&r1) else {
                debug_assert!(false, "r1 is non-zero inside the loop");
                break;
            };
            r0 = std::mem::replace(&mut r1, r);
            let qi = BigInt::from_biguint(q);
            let nx = x0.sub(&qi.mul(&x1));
            x0 = std::mem::replace(&mut x1, nx);
            let ny = y0.sub(&qi.mul(&y1));
            y0 = std::mem::replace(&mut y1, ny);
        }
        (r0, x0, y0)
    }

    /// Modular inverse: `self⁻¹ mod m`, or [`BignumError::NotInvertible`]
    /// when `gcd(self, m) ≠ 1`.
    pub fn mod_inverse(&self, m: &BigUint) -> Result<BigUint, BignumError> {
        if m.is_zero() || m.is_one() {
            return Err(BignumError::NotInvertible);
        }
        let (g, x, _) = self.egcd(m);
        if !g.is_one() {
            return Err(BignumError::NotInvertible);
        }
        Ok(x.rem_euclid(m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        let a = BigUint::from_u64(48);
        let b = BigUint::from_u64(36);
        assert_eq!(a.gcd(&b).to_u64(), Some(12));
        assert_eq!(a.gcd(&BigUint::zero()), a);
        assert_eq!(BigUint::zero().gcd(&b), b);
    }

    #[test]
    fn lcm_basics() {
        let a = BigUint::from_u64(4);
        let b = BigUint::from_u64(6);
        assert_eq!(a.lcm(&b).to_u64(), Some(12));
        assert!(a.lcm(&BigUint::zero()).is_zero());
    }

    #[test]
    fn egcd_bezout_identity() {
        let a = BigUint::from_u64(240);
        let b = BigUint::from_u64(46);
        let (g, x, y) = a.egcd(&b);
        assert_eq!(g.to_u64(), Some(2));
        // a*x + b*y == g, checked in signed arithmetic.
        let lhs = BigInt::from_biguint(a).mul(&x).add(&BigInt::from_biguint(b).mul(&y));
        assert_eq!(lhs, BigInt::from_biguint(g));
    }

    #[test]
    fn mod_inverse_small() {
        let a = BigUint::from_u64(3);
        let m = BigUint::from_u64(11);
        let inv = a.mod_inverse(&m).unwrap();
        assert_eq!(inv.to_u64(), Some(4)); // 3*4 = 12 ≡ 1 (mod 11)
    }

    #[test]
    fn mod_inverse_not_invertible() {
        let a = BigUint::from_u64(6);
        let m = BigUint::from_u64(9);
        assert_eq!(a.mod_inverse(&m), Err(BignumError::NotInvertible));
        assert_eq!(a.mod_inverse(&BigUint::one()), Err(BignumError::NotInvertible));
    }

    #[test]
    fn mod_inverse_large_prime() {
        let p = BigUint::from_decimal("170141183460469231731687303715884105727").unwrap();
        let a = BigUint::from_u64(0x1234_5678_9abc_def0);
        let inv = a.mod_inverse(&p).unwrap();
        assert_eq!(a.mod_mul(&inv, &p), BigUint::one());
    }
}
