//! Minimal signed big integer: just enough for the extended Euclidean
//! algorithm (Bézout coefficients go negative). Not a general-purpose signed
//! type — only the operations `egcd` needs are implemented.

use crate::BigUint;
use std::cmp::Ordering;

/// Sign of a [`BigInt`]. Zero is always [`Sign::Plus`] with zero magnitude.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sign {
    /// Non-negative.
    Plus,
    /// Strictly negative.
    Minus,
}

/// Signed arbitrary-precision integer (sign + magnitude).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BigInt {
    sign: Sign,
    mag: BigUint,
}

impl BigInt {
    /// Zero.
    pub fn zero() -> Self {
        BigInt {
            sign: Sign::Plus,
            mag: BigUint::zero(),
        }
    }

    /// One.
    pub fn one() -> Self {
        BigInt {
            sign: Sign::Plus,
            mag: BigUint::one(),
        }
    }

    /// A non-negative value from a magnitude.
    pub fn from_biguint(mag: BigUint) -> Self {
        BigInt {
            sign: Sign::Plus,
            mag,
        }
    }

    /// Builds from sign and magnitude, normalizing `-0` to `+0`.
    pub fn new(sign: Sign, mag: BigUint) -> Self {
        if mag.is_zero() {
            BigInt::zero()
        } else {
            BigInt { sign, mag }
        }
    }

    /// The sign.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The magnitude.
    pub fn magnitude(&self) -> &BigUint {
        &self.mag
    }

    /// `true` iff negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Minus
    }

    /// `true` iff zero.
    pub fn is_zero(&self) -> bool {
        self.mag.is_zero()
    }

    /// Negation.
    pub fn neg(&self) -> BigInt {
        BigInt::new(
            match self.sign {
                Sign::Plus => Sign::Minus,
                Sign::Minus => Sign::Plus,
            },
            self.mag.clone(),
        )
    }

    /// Signed addition.
    pub fn add(&self, other: &BigInt) -> BigInt {
        match (self.sign, other.sign) {
            (Sign::Plus, Sign::Plus) => BigInt::new(Sign::Plus, &self.mag + &other.mag),
            (Sign::Minus, Sign::Minus) => BigInt::new(Sign::Minus, &self.mag + &other.mag),
            _ => {
                // Opposite signs: subtract smaller magnitude from larger.
                match self.mag.cmp(&other.mag) {
                    Ordering::Equal => BigInt::zero(),
                    Ordering::Greater => BigInt::new(self.sign, &self.mag - &other.mag),
                    Ordering::Less => BigInt::new(other.sign, &other.mag - &self.mag),
                }
            }
        }
    }

    /// Signed subtraction.
    pub fn sub(&self, other: &BigInt) -> BigInt {
        self.add(&other.neg())
    }

    /// Signed multiplication.
    pub fn mul(&self, other: &BigInt) -> BigInt {
        let sign = if self.sign == other.sign {
            Sign::Plus
        } else {
            Sign::Minus
        };
        BigInt::new(sign, self.mag.mul(&other.mag))
    }

    /// Multiplies by an unsigned magnitude.
    pub fn mul_biguint(&self, other: &BigUint) -> BigInt {
        BigInt::new(self.sign, self.mag.mul(other))
    }

    /// Reduces into `[0, m)` — the canonical representative modulo `m`.
    pub fn rem_euclid(&self, m: &BigUint) -> BigUint {
        let r = self.mag.rem(m);
        match self.sign {
            Sign::Plus => r,
            Sign::Minus => {
                if r.is_zero() {
                    r
                } else {
                    m - &r
                }
            }
        }
    }
}

impl std::fmt::Display for BigInt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_negative() {
            write!(f, "-")?;
        }
        write!(f, "{}", self.mag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(v: i64) -> BigInt {
        if v < 0 {
            BigInt::new(Sign::Minus, BigUint::from_u64(v.unsigned_abs()))
        } else {
            BigInt::new(Sign::Plus, BigUint::from_u64(v as u64))
        }
    }

    #[test]
    fn negative_zero_normalizes() {
        let z = BigInt::new(Sign::Minus, BigUint::zero());
        assert_eq!(z, BigInt::zero());
        assert!(!z.is_negative());
    }

    #[test]
    fn signed_addition_table() {
        for (a, b) in [(5i64, 3i64), (5, -3), (-5, 3), (-5, -3), (3, -5), (-3, 5)] {
            assert_eq!(int(a).add(&int(b)), int(a + b), "{a} + {b}");
            assert_eq!(int(a).sub(&int(b)), int(a - b), "{a} - {b}");
            assert_eq!(int(a).mul(&int(b)), int(a * b), "{a} * {b}");
        }
    }

    #[test]
    fn rem_euclid_wraps_negatives() {
        let m = BigUint::from_u64(7);
        assert_eq!(int(-1).rem_euclid(&m).to_u64(), Some(6));
        assert_eq!(int(-7).rem_euclid(&m).to_u64(), Some(0));
        assert_eq!(int(-15).rem_euclid(&m).to_u64(), Some(6));
        assert_eq!(int(15).rem_euclid(&m).to_u64(), Some(1));
    }

    #[test]
    fn display_includes_sign() {
        assert_eq!(format!("{}", int(-42)), "-42");
        assert_eq!(format!("{}", int(42)), "42");
    }
}
