//! # pprl-bignum — arbitrary-precision integer arithmetic
//!
//! A from-scratch big-integer substrate sized for the needs of the Paillier
//! cryptosystem used by the hybrid private-record-linkage protocol:
//! 512-bit prime generation, 2048-bit modular exponentiation (mod `n²`),
//! extended GCD / modular inverses, and CRT-friendly decompositions.
//!
//! The crate deliberately avoids external big-integer dependencies — it is
//! one of the substrates the reproduction builds rather than imports.
//!
//! ## Layout
//!
//! * [`BigUint`] — unsigned magnitude, little-endian `u64` limbs.
//! * [`BigInt`] — thin signed wrapper (sign + magnitude), used by the
//!   extended Euclidean algorithm.
//! * [`Montgomery`] — Montgomery multiplication context for odd moduli;
//!   drives [`BigUint::mod_pow`].
//! * [`prime`] — Miller–Rabin primality testing and random prime generation.
//!
//! ## Example
//!
//! ```
//! use pprl_bignum::BigUint;
//!
//! let p = BigUint::from_u64(1_000_003);
//! let a = BigUint::from_u64(1234);
//! // Fermat: a^(p-1) = 1 (mod p) for prime p not dividing a.
//! let e = &p - &BigUint::one();
//! assert_eq!(a.mod_pow(&e, &p), BigUint::one());
//! ```

mod convert;
mod ct;
mod div;
mod gcd;
mod int;
mod modular;
mod modpow;
mod mul;
pub mod prime;
mod random;
mod shift;
mod uint;

pub use int::{BigInt, Sign};
pub use modular::Montgomery;
pub use random::{random_below, random_bits};
pub use uint::BigUint;

/// Errors produced by bignum operations that can fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BignumError {
    /// Division or reduction by zero.
    DivisionByZero,
    /// Subtraction would underflow an unsigned magnitude.
    Underflow,
    /// The element has no inverse modulo the given modulus.
    NotInvertible,
    /// Montgomery arithmetic requires an odd modulus greater than one.
    EvenModulus,
    /// A textual representation could not be parsed.
    Parse(String),
}

impl std::fmt::Display for BignumError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BignumError::DivisionByZero => write!(f, "division by zero"),
            BignumError::Underflow => write!(f, "unsigned subtraction underflow"),
            BignumError::NotInvertible => write!(f, "element is not invertible"),
            BignumError::EvenModulus => write!(f, "modulus must be odd and > 1"),
            BignumError::Parse(s) => write!(f, "parse error: {s}"),
        }
    }
}

impl std::error::Error for BignumError {}
