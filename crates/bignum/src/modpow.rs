//! Modular exponentiation: fixed-window square-and-multiply over a
//! Montgomery context for odd moduli, with a generic division-based fallback
//! for even moduli (unused by Paillier but kept for API completeness).
//!
//! The window table stores only the *odd* powers `base^1, base^3, …,
//! base^(2^W − 1)`: even window digits factor as `odd · 2^tz`, and the
//! `2^tz` part is folded into the squaring schedule (square `W − tz`
//! times, multiply by the odd part, square `tz` more times). Same
//! multiplication count per window as a full table, half the
//! precomputation.

use crate::{BigUint, Montgomery};

/// Window width in bits. 4 gives an 8-entry odd-power table: a good
/// trade for 1024–2048-bit exponents (≈12% fewer multiplications than
/// binary, 7 fewer table-build products than a full 16-entry table).
const WINDOW: usize = 4;

impl BigUint {
    /// Computes `self^exp mod modulus` with the fixed-window walk.
    ///
    /// Runtime varies with the exponent's bit pattern — use only where
    /// the exponent is public (Paillier encryption raises to `n`).
    /// For secret exponents use [`BigUint::mod_pow_ct`].
    ///
    /// Panics if `modulus` is zero; `modulus == 1` yields zero.
    pub fn mod_pow(&self, exp: &BigUint, modulus: &BigUint) -> BigUint {
        assert!(!modulus.is_zero(), "mod_pow: zero modulus");
        // Every condition below reads the modulus, which is public in all
        // uses (n², p², q², the AgES group prime) — the exponent never
        // steers control flow here.
        if modulus.is_one() {
            BigUint::zero()
        } else if modulus.is_odd() {
            match Montgomery::new(modulus) {
                Ok(ctx) => ctx.pow(self, exp),
                // Unreachable for an odd modulus > 1, but degrade to the
                // generic division-based path rather than aborting.
                Err(_) => mod_pow_binary(self, exp, modulus),
            }
        } else {
            mod_pow_binary(self, exp, modulus)
        }
    }

    /// Computes `self^exp mod modulus` in time independent of the
    /// exponent's bit pattern (Montgomery ladder, [`Montgomery::pow_ct`]).
    ///
    /// The exponent's *limb count* is the only exponent-derived quantity
    /// that reaches control flow; callers with secret exponents of a
    /// fixed width (CRT decryption exponents `p−1`/`q−1`, the AgES
    /// commutative-encryption exponent) leak nothing per call. Even or
    /// unit moduli have no Montgomery form and fall back to the
    /// variable-time path — a property of the public modulus, not of the
    /// exponent, and unreachable from the crypto layer.
    ///
    /// Panics if `modulus` is zero; `modulus == 1` yields zero.
    // pprl:secret(exp)
    pub fn mod_pow_ct(&self, exp: &BigUint, modulus: &BigUint) -> BigUint {
        assert!(!modulus.is_zero(), "mod_pow_ct: zero modulus");
        if modulus.is_odd() && !modulus.is_one() {
            match Montgomery::new(modulus) {
                Ok(ctx) => ctx.pow_ct(self, exp),
                Err(_) => self.mod_pow(exp, modulus),
            }
        } else {
            self.mod_pow(exp, modulus)
        }
    }
}

impl Montgomery {
    /// `base^exp mod m` using this context (reusable across many calls with
    /// the same modulus — Paillier encrypts thousands of values mod `n²`).
    pub fn pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        // Exponent length and zero-ness are public here: Paillier uses
        // fixed-width public exponents (`n`), and the window walk below
        // always consumes every aligned window of that width.
        // pprl:allow(const-time): zero exponent is a degenerate public case
        if exp.is_zero() {
            return BigUint::one().rem(self.modulus()); // pprl:allow(const-time): see above
        }
        let base_m = self.to_mont(base);

        // Precompute the odd powers base^1, base^3, …, base^(2^W − 1).
        let base_sq = self.mont_mul(&base_m, &base_m);
        let mut odd_pows: Vec<Vec<u64>> = Vec::with_capacity(1 << (WINDOW - 1));
        let mut run = base_m.clone();
        odd_pows.push(run.clone());
        for _ in 1..(1 << (WINDOW - 1)) {
            run = self.mont_mul(&run, &base_sq);
            odd_pows.push(run.clone());
        }
        // `base^k` for odd `k` lives at `odd_pows[k >> 1]`; the lookup
        // below cannot miss, but degrades to recomputation over aborting.
        let odd_pow = |k: usize| -> Vec<u64> {
            match odd_pows.get(k >> 1) {
                Some(t) => t.clone(),
                None => {
                    let mut v = base_m.clone();
                    for _ in 1..k {
                        v = self.mont_mul(&v, &base_m);
                    }
                    v
                }
            }
        };

        let bits = exp.bits();
        let mut acc = self.one_mont();
        let mut started = false;
        // Consume the exponent in aligned W-bit windows, MSB first.
        let top_window = bits.div_ceil(WINDOW);
        for w in (0..top_window).rev() {
            let mut digit = 0usize;
            for b in 0..WINDOW {
                let idx = w * WINDOW + b;
                // pprl:allow(const-time): window digit assembly reads public exponent bits of a fixed-width walk
                if idx < bits && exp.bit(idx) {
                    digit |= 1 << b;
                }
            }
            // pprl:allow(const-time): zero-window skip is the classic windowed-exponentiation shape; Paillier exponents are public
            if digit == 0 {
                if started {
                    for _ in 0..WINDOW {
                        acc = self.mont_mul(&acc, &acc);
                    }
                }
                continue;
            }
            // digit = odd_part · 2^tz: hoist the trailing zeros into the
            // squaring schedule so only odd powers are ever looked up.
            // pprl:allow(const-time): trailing-zero split of the public window digit
            let tz = digit.trailing_zeros() as usize;
            let odd_part = digit >> tz; // pprl:allow(const-time): odd factor of the public window digit
            let entry = odd_pow(odd_part);
            if started {
                for _ in 0..(WINDOW - tz) {
                    acc = self.mont_mul(&acc, &acc);
                }
                acc = self.mont_mul(&acc, &entry);
            } else {
                acc = entry;
                started = true;
            }
            for _ in 0..tz {
                acc = self.mont_mul(&acc, &acc);
            }
        }
        if started {
            self.from_mont(&acc)
        } else {
            BigUint::one().rem(self.modulus())
        }
    }

    /// `base^exp mod m` via the Montgomery ladder: one squaring and one
    /// multiplication per exponent bit, with the operand roles chosen by
    /// a branch-free conditional swap. Unlike [`Montgomery::pow`], the
    /// multiplication schedule — and therefore the runtime — depends
    /// only on the exponent's limb count, never on which bits are set.
    ///
    /// The ladder walks every bit of every limb (including leading
    /// zeros), so exponents of equal limb count are indistinguishable.
    /// An empty exponent leaves the accumulator at 1.
    // pprl:secret(exp)
    pub fn pow_ct(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        let base_m = self.to_mont(base);
        // Ladder invariant: r1 = r0 · base (in the exponent), maintained
        // by swapping the square/multiply roles instead of branching.
        let mut r0 = self.one_mont();
        let mut r1 = base_m;
        for &limb in exp.limbs().iter().rev() {
            for shift in (0..64).rev() {
                let bit = (limb >> shift) & 1;
                let mask = bit.wrapping_neg();
                crate::ct::cswap_limbs(mask, &mut r0, &mut r1);
                r1 = self.mont_mul(&r0, &r1);
                r0 = self.mont_mul(&r0, &r0);
                crate::ct::cswap_limbs(mask, &mut r0, &mut r1);
            }
        }
        self.from_mont(&r0)
    }
}

/// Plain binary square-and-multiply with division-based reduction.
fn mod_pow_binary(base: &BigUint, exp: &BigUint, modulus: &BigUint) -> BigUint {
    let mut acc = BigUint::one().rem(modulus);
    let mut b = base.rem(modulus);
    for i in 0..exp.bits() {
        if exp.bit(i) {
            acc = acc.mod_mul(&b, modulus);
        }
        if i + 1 < exp.bits() {
            b = b.mod_mul(&b, modulus);
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_pow(base: u64, exp: u64, m: u64) -> u64 {
        let mut acc = 1u128;
        let b = base as u128 % m as u128;
        for _ in 0..exp {
            acc = acc * b % m as u128;
        }
        acc as u64
    }

    #[test]
    fn matches_naive_small() {
        for (b, e, m) in [
            (2u64, 10u64, 1_000_003u64),
            (7, 13, 11),
            (123, 0, 7),
            (0, 5, 7),
            (5, 1, 9),
            (10, 30, 17),
        ] {
            let got = BigUint::from_u64(b)
                .mod_pow(&BigUint::from_u64(e), &BigUint::from_u64(m));
            assert_eq!(got.to_u64(), Some(naive_pow(b, e, m)), "({b},{e},{m})");
        }
    }

    #[test]
    fn even_modulus_fallback() {
        // 3^5 mod 16 = 243 mod 16 = 3
        let got = BigUint::from_u64(3).mod_pow(&BigUint::from_u64(5), &BigUint::from_u64(16));
        assert_eq!(got.to_u64(), Some(3));
    }

    #[test]
    fn modulus_one_gives_zero() {
        let got = BigUint::from_u64(42).mod_pow(&BigUint::from_u64(3), &BigUint::one());
        assert!(got.is_zero());
    }

    #[test]
    fn fermat_little_theorem_128bit() {
        // p = 2^127 - 1 (Mersenne prime)
        let p = BigUint::from_decimal("170141183460469231731687303715884105727").unwrap();
        let a = BigUint::from_u64(0xCAFE_BABE_DEAD_BEEF);
        let e = &p - &BigUint::one();
        assert_eq!(a.mod_pow(&e, &p), BigUint::one());
    }

    #[test]
    fn exponent_crossing_window_boundaries() {
        let m = BigUint::from_u64(1_000_000_007);
        let base = BigUint::from_u64(3);
        // exponent with bits straddling 4-bit windows: 2^65 + 2^4 + 1
        let mut e = BigUint::one().shl(65);
        e.add_u64_assign(17);
        let got = base.mod_pow(&e, &m);
        // cross-check via two smaller steps: 3^(2^65) * 3^17
        let e1 = BigUint::one().shl(65);
        let part1 = base.mod_pow(&e1, &m);
        let part2 = base.mod_pow(&BigUint::from_u64(17), &m);
        assert_eq!(got, part1.mod_mul(&part2, &m));
    }

    #[test]
    #[should_panic(expected = "zero modulus")]
    fn zero_modulus_panics() {
        BigUint::one().mod_pow(&BigUint::one(), &BigUint::zero());
    }

    #[test]
    fn ladder_matches_window_small() {
        for (b, e, m) in [
            (2u64, 10u64, 1_000_003u64),
            (7, 13, 11),
            (123, 0, 7),
            (0, 5, 7),
            (5, 1, 9),
            (10, 30, 17),
            (0xDEAD_BEEF, u64::MAX, 0xFFFF_FFFF_FFFF_FFC5),
        ] {
            let base = BigUint::from_u64(b);
            let exp = BigUint::from_u64(e);
            let modulus = BigUint::from_u64(m);
            assert_eq!(
                base.mod_pow_ct(&exp, &modulus),
                base.mod_pow(&exp, &modulus),
                "({b},{e},{m})"
            );
        }
    }

    #[test]
    fn ladder_even_and_unit_modulus_fall_back() {
        let base = BigUint::from_u64(3);
        assert_eq!(
            base.mod_pow_ct(&BigUint::from_u64(5), &BigUint::from_u64(16)).to_u64(),
            Some(3)
        );
        assert!(base.mod_pow_ct(&BigUint::from_u64(5), &BigUint::one()).is_zero());
    }

    #[test]
    fn ladder_fermat_128bit() {
        let p = BigUint::from_decimal("170141183460469231731687303715884105727").unwrap();
        let a = BigUint::from_u64(0xCAFE_BABE_DEAD_BEEF);
        let e = &p - &BigUint::one();
        assert_eq!(a.mod_pow_ct(&e, &p), BigUint::one());
    }
}
