//! Modular arithmetic helpers and the Montgomery multiplication context.
//!
//! Montgomery form turns each modular multiplication inside an
//! exponentiation into two schoolbook passes with no division, which is what
//! makes 2048-bit `mod n²` Paillier exponentiations tractable.

use crate::{BigUint, BignumError};

impl BigUint {
    /// `(self + other) mod m`. Operands need not be reduced.
    pub fn mod_add(&self, other: &BigUint, m: &BigUint) -> BigUint {
        let s = self + other;
        s.rem(m)
    }

    /// `(self - other) mod m`, wrapping into `[0, m)`.
    pub fn mod_sub(&self, other: &BigUint, m: &BigUint) -> BigUint {
        let a = self.rem(m);
        let b = other.rem(m);
        if a >= b {
            &a - &b
        } else {
            &(&a + m) - &b
        }
    }

    /// `(self * other) mod m`.
    pub fn mod_mul(&self, other: &BigUint, m: &BigUint) -> BigUint {
        self.mul(other).rem(m)
    }
}

/// Montgomery multiplication context for a fixed odd modulus.
///
/// Construction is O(n²) (computes `R² mod m`); each [`Montgomery::mul`]
/// afterwards is a single CIOS pass. Values live in *Montgomery form*
/// (`a·R mod m` where `R = 2^(64·n)`); convert with [`Montgomery::to_mont`] /
/// [`Montgomery::from_mont`].
#[derive(Clone, Debug)]
pub struct Montgomery {
    modulus: BigUint,
    /// Modulus limbs padded to exactly `n`.
    m_limbs: Vec<u64>,
    /// `-m⁻¹ mod 2^64` (for the per-limb reduction step).
    n0inv: u64,
    /// `R² mod m`, in plain form, padded to `n` limbs.
    r2: Vec<u64>,
    /// `R mod m` (the Montgomery form of 1), padded to `n` limbs.
    r1: Vec<u64>,
    n: usize,
}

impl Montgomery {
    /// Creates a context for an odd modulus `> 1`.
    pub fn new(modulus: &BigUint) -> Result<Self, BignumError> {
        if modulus.is_even() || modulus.is_one() || modulus.is_zero() {
            return Err(BignumError::EvenModulus);
        }
        let n = modulus.limbs().len();
        let mut m_limbs = modulus.limbs().to_vec();
        m_limbs.resize(n, 0);

        // Newton's iteration: inv ≡ m0⁻¹ (mod 2^64) in 6 steps.
        let Some(&m0) = m_limbs.first() else {
            // Unreachable: a zero modulus was rejected above.
            return Err(BignumError::EvenModulus);
        };
        let mut inv = 1u64;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(m0.wrapping_mul(inv)));
        }
        debug_assert_eq!(m0.wrapping_mul(inv), 1);
        let n0inv = inv.wrapping_neg();

        // R mod m and R² mod m via plain division (one-time cost).
        let r = BigUint::one().shl(n * 64).rem(modulus);
        let r2_big = r.mul(&r).rem(modulus);
        let mut r1 = r.limbs().to_vec();
        r1.resize(n, 0);
        let mut r2 = r2_big.limbs().to_vec();
        r2.resize(n, 0);

        Ok(Montgomery {
            modulus: modulus.clone(),
            m_limbs,
            n0inv,
            r2,
            r1,
            n,
        })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.modulus
    }

    /// Number of 64-bit limbs in the modulus.
    pub fn limb_count(&self) -> usize {
        self.n
    }

    /// Converts `a` (reduced mod m internally) into Montgomery form.
    pub fn to_mont(&self, a: &BigUint) -> Vec<u64> {
        let reduced = a.rem(&self.modulus);
        let mut limbs = reduced.limbs().to_vec();
        limbs.resize(self.n, 0);
        self.mont_mul(&limbs, &self.r2)
    }

    /// Converts a Montgomery-form value back to a plain [`BigUint`].
    pub fn from_mont(&self, a: &[u64]) -> BigUint {
        let mut one = vec![0u64; self.n];
        if let Some(first) = one.first_mut() {
            *first = 1;
        }
        BigUint::from_limbs(self.mont_mul(a, &one))
    }

    /// Montgomery form of 1 (`R mod m`).
    pub fn one_mont(&self) -> Vec<u64> {
        self.r1.clone()
    }

    /// CIOS Montgomery product of two `n`-limb Montgomery-form values.
    ///
    /// Returns `a·b·R⁻¹ mod m`, padded to `n` limbs. The accumulator is
    /// exactly `n` limbs plus two scalar overflow limbs (`tn`, `tn1`), and
    /// every pass is a bounded `zip` — no index arithmetic anywhere near
    /// the secret operands.
    // pprl:secret(a, b): operands are secret-derived during CRT decryption
    pub fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        debug_assert_eq!(a.len(), self.n);
        debug_assert_eq!(b.len(), self.n);
        let n = self.n;
        let mut t = vec![0u64; n];
        let mut tn = 0u64;

        for &ai in a.iter() {
            // t += ai * b
            let mut carry = 0u128;
            for (tj, &bj) in t.iter_mut().zip(b.iter()) {
                let s = *tj as u128 + ai as u128 * bj as u128 + carry;
                *tj = s as u64;
                carry = s >> 64;
            }
            let s = tn as u128 + carry;
            tn = s as u64;
            let mut tn1 = (s >> 64) as u64;

            // Add mi * m so the lowest limb cancels to zero...
            let mi = t.first().copied().unwrap_or(0).wrapping_mul(self.n0inv);
            let mut carry = 0u128;
            for (tj, &mj) in t.iter_mut().zip(self.m_limbs.iter()) {
                let s = *tj as u128 + mi as u128 * mj as u128 + carry;
                *tj = s as u64;
                carry = s >> 64;
            }
            let s = tn as u128 + carry;
            tn = s as u64;
            tn1 = tn1.wrapping_add((s >> 64) as u64);

            // ...then divide by 2^64: the zero limb rotates out, the first
            // overflow limb rotates in.
            t.rotate_left(1);
            t.iter_mut().rev().take(1).for_each(|slot| *slot = tn);
            tn = tn1;
        }

        // Result in (t, tn) is < 2m; subtract m once if needed. The
        // subtraction is always performed into a scratch buffer and then
        // kept or discarded by mask select, so the tail's timing does not
        // depend on the (secret-derived) product value. The reduced value
        // is d exactly when the overflow limb is set (the borrow consumes
        // it) or the low limbs already reach m (no borrow at all).
        let hi = tn;
        let mut d = vec![0u64; n];
        let mut borrow = 0u64;
        for ((dj, tj), mj) in d.iter_mut().zip(t.iter()).zip(self.m_limbs.iter()) {
            let s = (*tj as u128)
                .wrapping_sub(*mj as u128)
                .wrapping_sub(borrow as u128);
            *dj = s as u64;
            borrow = ((s >> 64) as u64) & 1;
        }
        let keep = (crate::ct::nonzero_u64(hi) | (1 ^ borrow)).wrapping_neg();
        for (tj, dj) in t.iter_mut().zip(d.iter()) {
            *tj = (*dj & keep) | (*tj & !keep);
        }
        t
    }

    /// `(a * b) mod m` on plain values, via Montgomery form.
    pub fn mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let am = self.to_mont(a);
        let bm = self.to_mont(b);
        self.from_mont(&self.mont_mul(&am, &bm))
    }

    /// Scrubs the precomputed state. A context built for a secret prime
    /// (CRT decryption uses `mod p²` / `mod q²`) embeds that prime in
    /// `modulus`/`m_limbs`, so secret-key drops must clear it too.
    pub fn zeroize(&mut self) {
        self.modulus.zeroize();
        for buf in [&mut self.m_limbs, &mut self.r2, &mut self.r1] {
            for limb in buf.iter_mut() {
                unsafe { core::ptr::write_volatile(limb, 0) };
            }
            buf.clear();
        }
        unsafe { core::ptr::write_volatile(&mut self.n0inv, 0) };
        core::sync::atomic::compiler_fence(core::sync::atomic::Ordering::SeqCst);
        self.n = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_even_modulus() {
        assert!(Montgomery::new(&BigUint::from_u64(10)).is_err());
        assert!(Montgomery::new(&BigUint::one()).is_err());
        assert!(Montgomery::new(&BigUint::zero()).is_err());
    }

    #[test]
    fn to_from_mont_roundtrip() {
        let m = BigUint::from_u64(1_000_003);
        let ctx = Montgomery::new(&m).unwrap();
        for v in [0u64, 1, 2, 999_999, 1_000_002] {
            let big = BigUint::from_u64(v);
            assert_eq!(ctx.from_mont(&ctx.to_mont(&big)), big, "v={v}");
        }
    }

    #[test]
    fn mont_mul_matches_plain() {
        let m = BigUint::from_decimal("170141183460469231731687303715884105727").unwrap(); // 2^127-1
        let ctx = Montgomery::new(&m).unwrap();
        let a = BigUint::from_u128(0x1234_5678_9abc_def0_1111_2222u128);
        let b = BigUint::from_u128(0xfeed_face_dead_beef_3333_4444u128);
        assert_eq!(ctx.mul(&a, &b), a.mod_mul(&b, &m));
    }

    #[test]
    fn mont_one_is_r_mod_m() {
        let m = BigUint::from_u64(0xFFFF_FFFF_FFFF_FFC5); // largest 64-bit prime
        let ctx = Montgomery::new(&m).unwrap();
        assert_eq!(ctx.from_mont(&ctx.one_mont()), BigUint::one());
    }

    #[test]
    fn mod_add_sub_wrap() {
        let m = BigUint::from_u64(7);
        let a = BigUint::from_u64(5);
        let b = BigUint::from_u64(6);
        assert_eq!(a.mod_add(&b, &m).to_u64(), Some(4));
        assert_eq!(a.mod_sub(&b, &m).to_u64(), Some(6));
        assert_eq!(b.mod_sub(&a, &m).to_u64(), Some(1));
    }

    #[test]
    fn mod_mul_reduces() {
        let m = BigUint::from_u64(13);
        let a = BigUint::from_u64(12);
        assert_eq!(a.mod_mul(&a, &m).to_u64(), Some(1));
    }
}
