//! Multiplication: schoolbook for small operands, Karatsuba above a
//! threshold. Paillier keygen multiplies 512-bit primes and squares 1024-bit
//! moduli, so operands are 8–32 limbs — squarely in schoolbook territory —
//! but Karatsuba keeps larger key sizes (2048/3072-bit) usable.

use crate::BigUint;

/// Operand size (in limbs) above which Karatsuba splits pay off.
const KARATSUBA_THRESHOLD: usize = 32;

impl BigUint {
    /// Full multiplication `self * other`.
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let out = mul_limbs(self.limbs(), other.limbs());
        BigUint::from_limbs(out)
    }

    /// Multiplies by a single `u64`.
    pub fn mul_u64(&self, v: u64) -> BigUint {
        if v == 0 || self.is_zero() {
            return BigUint::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &l in self.limbs() {
            let t = l as u128 * v as u128 + carry;
            out.push(t as u64);
            carry = t >> 64;
        }
        if carry != 0 {
            out.push(carry as u64);
        }
        BigUint::from_limbs(out)
    }

    /// Squares the value (thin wrapper; dedicated squaring saved for later
    /// optimization — profiling showed modexp dominated by Montgomery loop).
    pub fn square(&self) -> BigUint {
        self.mul(self)
    }
}

impl std::ops::Mul for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        BigUint::mul(self, rhs)
    }
}

impl std::ops::Mul<u64> for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: u64) -> BigUint {
        self.mul_u64(rhs)
    }
}

/// Multiplies two little-endian limb slices (non-empty, normalized or not).
fn mul_limbs(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.len().min(b.len()) >= KARATSUBA_THRESHOLD {
        karatsuba(a, b)
    } else {
        schoolbook(a, b)
    }
}

/// O(n·m) schoolbook multiplication.
fn schoolbook(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        // `window[j]` is `out[i + j]`; the split keeps the row addition and
        // the carry run-out free of panicking index arithmetic.
        let (_, window) = out.split_at_mut(i);
        let (row, tail) = window.split_at_mut(b.len());
        let mut carry = 0u128;
        for (slot, &bj) in row.iter_mut().zip(b) {
            let t = ai as u128 * bj as u128 + *slot as u128 + carry;
            *slot = t as u64;
            carry = t >> 64;
        }
        for slot in tail {
            if carry == 0 {
                break;
            }
            let t = *slot as u128 + carry;
            *slot = t as u64;
            carry = t >> 64;
        }
    }
    out
}

/// Karatsuba: split at half the shorter length, recurse three ways.
fn karatsuba(a: &[u64], b: &[u64]) -> Vec<u64> {
    let split = a.len().min(b.len()) / 2;
    let (a0, a1) = a.split_at(split);
    let (b0, b1) = b.split_at(split);

    let z0 = mul_limbs(a0, b0);
    let z2 = mul_limbs(a1, b1);

    let a0a1 = add_slices(a0, a1);
    let b0b1 = add_slices(b0, b1);
    let mut z1 = mul_limbs(&a0a1, &b0b1);
    // z1 = (a0+a1)(b0+b1) - z0 - z2
    sub_in_place(&mut z1, &z0);
    sub_in_place(&mut z1, &z2);

    // out = z0 + z1 << (64*split) + z2 << (64*2*split)
    let mut out = vec![0u64; a.len() + b.len()];
    add_shifted(&mut out, &z0, 0);
    add_shifted(&mut out, &z1, split);
    add_shifted(&mut out, &z2, 2 * split);
    out
}

/// Returns `a + b` as limbs.
fn add_slices(a: &[u64], b: &[u64]) -> Vec<u64> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry = 0u64;
    for (i, &l) in long.iter().enumerate() {
        let rhs = short.get(i).copied().unwrap_or(0);
        let (s1, c1) = l.overflowing_add(rhs);
        let (s2, c2) = s1.overflowing_add(carry);
        out.push(s2);
        carry = (c1 as u64) + (c2 as u64);
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

/// `a -= b` on limb vectors, assuming `a >= b` (guaranteed by Karatsuba math).
fn sub_in_place(a: &mut [u64], b: &[u64]) {
    let mut borrow = 0u64;
    for (i, slot) in a.iter_mut().enumerate() {
        let rhs = b.get(i).copied().unwrap_or(0);
        let (d1, b1) = slot.overflowing_sub(rhs);
        let (d2, b2) = d1.overflowing_sub(borrow);
        *slot = d2;
        borrow = (b1 as u64) + (b2 as u64);
        if borrow == 0 && i >= b.len() {
            break;
        }
    }
    debug_assert_eq!(borrow, 0, "Karatsuba intermediate underflow");
}

/// `out += src << (64*shift)`; `out` must be long enough.
fn add_shifted(out: &mut [u64], src: &[u64], shift: usize) {
    let (_, window) = out.split_at_mut(shift);
    let mut carry = 0u64;
    for (i, slot) in window.iter_mut().enumerate() {
        if i >= src.len() && carry == 0 {
            break;
        }
        let rhs = src.get(i).copied().unwrap_or(0);
        let (s1, c1) = slot.overflowing_add(rhs);
        let (s2, c2) = s1.overflowing_add(carry);
        *slot = s2;
        carry = (c1 as u64) + (c2 as u64);
    }
    debug_assert_eq!(carry, 0, "Karatsuba result overflowed its buffer");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_products() {
        let a = BigUint::from_u64(12345);
        let b = BigUint::from_u64(67890);
        assert_eq!((&a * &b).to_u64(), Some(12345 * 67890));
    }

    #[test]
    fn cross_limb_product() {
        let a = BigUint::from_u64(u64::MAX);
        let b = BigUint::from_u64(u64::MAX);
        // (2^64-1)^2 = 2^128 - 2^65 + 1
        let expected = (u64::MAX as u128) * (u64::MAX as u128);
        assert_eq!((&a * &b).to_u128(), Some(expected));
    }

    #[test]
    fn mul_u64_matches_full_mul() {
        let a = BigUint::from_u128(0xdead_beef_cafe_babe_1234_5678u128);
        assert_eq!(a.mul_u64(1_000_003), a.mul(&BigUint::from_u64(1_000_003)));
    }

    #[test]
    fn zero_annihilates() {
        let a = BigUint::from_u128(u128::MAX);
        assert!(a.mul(&BigUint::zero()).is_zero());
        assert!(BigUint::zero().mul(&a).is_zero());
    }

    #[test]
    fn karatsuba_agrees_with_schoolbook() {
        // Build operands big enough to trigger the Karatsuba path.
        let limbs_a: Vec<u64> = (0..80u64).map(|i| i.wrapping_mul(0x9E3779B97F4A7C15)).collect();
        let limbs_b: Vec<u64> = (0..75u64).map(|i| (i + 7).wrapping_mul(0xC2B2AE3D27D4EB4F)).collect();
        let k = karatsuba(&limbs_a, &limbs_b);
        let s = schoolbook(&limbs_a, &limbs_b);
        let (mut k, mut s) = (k, s);
        while k.last() == Some(&0) {
            k.pop();
        }
        while s.last() == Some(&0) {
            s.pop();
        }
        assert_eq!(k, s);
    }

    #[test]
    fn square_matches_mul() {
        let a = BigUint::from_u128(0xffff_ffff_ffff_ffff_ffffu128);
        assert_eq!(a.square(), a.mul(&a));
    }
}
