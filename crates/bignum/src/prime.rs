//! Primality testing (Miller–Rabin) and random prime generation for
//! Paillier key material.

use crate::{random_below, random_bits, BigUint, Montgomery};
use rand::RngCore;

/// Small primes used for fast trial division before Miller–Rabin.
const SMALL_PRIMES: [u64; 46] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89,
    97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191,
    193, 197, 199,
];

/// Number of random Miller–Rabin rounds. 40 rounds bound the error
/// probability by 4⁻⁴⁰ ≈ 10⁻²⁴ for adversarially-chosen composites; for
/// *random* candidates the true error is far smaller still.
const MR_ROUNDS: usize = 40;

/// Probabilistic primality test (trial division + Miller–Rabin).
pub fn is_prime<R: RngCore + ?Sized>(n: &BigUint, rng: &mut R) -> bool {
    if n.is_zero() || n.is_one() {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let pb = BigUint::from_u64(p);
        if *n == pb {
            return true;
        }
        if n.rem(&pb).is_zero() {
            return false;
        }
    }
    miller_rabin(n, MR_ROUNDS, rng)
}

/// Miller–Rabin with `rounds` random bases. `n` must be odd, `> 3`, and
/// coprime to the small-prime list (callers ensure this via [`is_prime`]).
fn miller_rabin<R: RngCore + ?Sized>(n: &BigUint, rounds: usize, rng: &mut R) -> bool {
    debug_assert!(n.is_odd());
    let one = BigUint::one();
    let n_minus_1 = n - &one;
    // Contract violations degrade to "composite" — never a false prime.
    let Some(s) = n_minus_1.trailing_zeros() else {
        debug_assert!(false, "miller_rabin requires n > 3");
        return false;
    };
    let d = n_minus_1.shr(s);

    // Reuse one Montgomery context across all bases — this is where nearly
    // all of the prime-generation time goes.
    let Ok(ctx) = Montgomery::new(n) else {
        debug_assert!(false, "miller_rabin requires an odd modulus");
        return false;
    };

    let two = BigUint::from_u64(2);
    let bound = &n_minus_1 - &two; // bases drawn from [2, n-2]
    'witness: for _ in 0..rounds {
        let a = &random_below(rng, &bound) + &two;
        let mut x = ctx.pow(&a, &d);
        if x.is_one() || x == n_minus_1 {
            continue;
        }
        for _ in 0..s.saturating_sub(1) {
            x = x.mod_mul(&x, n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates a random prime with exactly `bits` significant bits.
///
/// The two top bits are forced to one so that the product of two such
/// primes has exactly `2·bits` bits (Paillier wants a full-width modulus).
pub fn gen_prime<R: RngCore + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
    assert!(bits >= 8, "prime size must be at least 8 bits");
    loop {
        let mut candidate = random_bits(rng, bits);
        candidate.set_bit(0); // odd
        candidate.set_bit(bits - 1); // full width
        candidate.set_bit(bits - 2); // product of two has width 2·bits
        if is_prime(&candidate, rng) {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn small_primes_recognized() {
        let mut rng = StdRng::seed_from_u64(1);
        for p in [2u64, 3, 5, 7, 97, 199, 211, 65537, 1_000_003] {
            assert!(is_prime(&BigUint::from_u64(p), &mut rng), "{p} is prime");
        }
    }

    #[test]
    fn small_composites_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        for c in [0u64, 1, 4, 9, 15, 91, 561, 6601, 41041, 1_000_001] {
            assert!(!is_prime(&BigUint::from_u64(c), &mut rng), "{c} is composite");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Classic Miller–Rabin stress: Carmichael numbers fool Fermat tests.
        let mut rng = StdRng::seed_from_u64(3);
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 62745, 162401] {
            assert!(!is_prime(&BigUint::from_u64(c), &mut rng), "{c} is Carmichael");
        }
    }

    #[test]
    fn mersenne_127_is_prime() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = BigUint::from_decimal("170141183460469231731687303715884105727").unwrap();
        assert!(is_prime(&p, &mut rng));
    }

    #[test]
    fn gen_prime_has_requested_width_and_is_odd() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = gen_prime(&mut rng, 64);
        assert_eq!(p.bits(), 64);
        assert!(p.is_odd());
        assert!(p.bit(62), "second-highest bit forced");
        assert!(is_prime(&p, &mut rng));
    }

    #[test]
    fn gen_prime_128_bits() {
        let mut rng = StdRng::seed_from_u64(6);
        let p = gen_prime(&mut rng, 128);
        assert_eq!(p.bits(), 128);
        assert!(is_prime(&p, &mut rng));
    }
}
