//! Uniform random big integers from any [`rand::RngCore`] source.

use crate::BigUint;
use rand::RngCore;

/// Samples a uniformly random value with exactly `bits` significant bits
/// (the top bit is forced to one). `bits == 0` yields zero.
pub fn random_bits<R: RngCore + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
    if bits == 0 {
        return BigUint::zero();
    }
    let limbs = bits.div_ceil(64);
    let mut v: Vec<u64> = (0..limbs).map(|_| rng.next_u64()).collect();
    let top_bits = bits - (limbs - 1) * 64;
    if let Some(top) = v.last_mut() {
        // Mask excess high bits, then force the top bit.
        if top_bits < 64 {
            *top &= (1u64 << top_bits) - 1;
        }
        *top |= 1u64 << (top_bits - 1);
    }
    BigUint::from_limbs(v)
}

/// Samples uniformly from `[0, bound)` by rejection. Panics on zero bound.
pub fn random_below<R: RngCore + ?Sized>(rng: &mut R, bound: &BigUint) -> BigUint {
    assert!(!bound.is_zero(), "random_below: zero bound");
    let bits = bound.bits();
    let limbs = bits.div_ceil(64);
    let top_bits = bits - (limbs - 1) * 64;
    let mask = if top_bits == 64 {
        u64::MAX
    } else {
        (1u64 << top_bits) - 1
    };
    loop {
        let mut v: Vec<u64> = (0..limbs).map(|_| rng.next_u64()).collect();
        if let Some(top) = v.last_mut() {
            *top &= mask;
        }
        let candidate = BigUint::from_limbs(v);
        if candidate < *bound {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_bits_has_exact_width() {
        let mut rng = StdRng::seed_from_u64(1);
        for bits in [1usize, 8, 63, 64, 65, 512, 1024] {
            let v = random_bits(&mut rng, bits);
            assert_eq!(v.bits(), bits, "bits={bits}");
        }
        assert!(random_bits(&mut rng, 0).is_zero());
    }

    #[test]
    fn random_below_respects_bound() {
        let mut rng = StdRng::seed_from_u64(2);
        let bound = BigUint::from_u64(1000);
        for _ in 0..200 {
            assert!(random_below(&mut rng, &bound) < bound);
        }
    }

    #[test]
    fn random_below_covers_small_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let bound = BigUint::from_u64(4);
        let mut seen = [false; 4];
        for _ in 0..100 {
            let v = random_below(&mut rng, &bound).to_u64().unwrap() as usize;
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear: {seen:?}");
    }

    #[test]
    #[should_panic(expected = "zero bound")]
    fn random_below_zero_bound_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        random_below(&mut rng, &BigUint::zero());
    }
}
