//! Bit shifts and single-bit access.

use crate::BigUint;

impl BigUint {
    /// Left shift by `bits`.
    pub fn shl(&self, bits: usize) -> BigUint {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = bits / 64;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            out.push(carry);
        }
        BigUint::from_limbs(out)
    }

    /// Right shift by `bits` (floor division by a power of two).
    pub fn shr(&self, bits: usize) -> BigUint {
        let limb_shift = bits / 64;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % 64;
        let Some(tail) = self.limbs.get(limb_shift..) else {
            return BigUint::zero();
        };
        let out: Vec<u64> = if bit_shift == 0 {
            tail.to_vec()
        } else {
            tail.iter()
                .zip(tail.iter().skip(1).copied().chain(std::iter::once(0)))
                .map(|(&l, hi)| (l >> bit_shift) | (hi << (64 - bit_shift)))
                .collect()
        };
        BigUint::from_limbs(out)
    }

    /// Returns bit `i` (little-endian position).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        match self.limbs.get(limb) {
            Some(&l) => (l >> (i % 64)) & 1 == 1,
            None => false,
        }
    }

    /// Sets bit `i` to one, growing as necessary.
    pub fn set_bit(&mut self, i: usize) {
        let limb = i / 64;
        if limb >= self.limbs.len() {
            self.limbs.resize(limb + 1, 0);
        }
        if let Some(l) = self.limbs.get_mut(limb) {
            *l |= 1u64 << (i % 64);
        }
    }

    /// Number of trailing zero bits (`None` for zero).
    pub fn trailing_zeros(&self) -> Option<usize> {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return Some(i * 64 + l.trailing_zeros() as usize);
            }
        }
        None
    }
}

impl std::ops::Shl<usize> for &BigUint {
    type Output = BigUint;
    fn shl(self, bits: usize) -> BigUint {
        BigUint::shl(self, bits)
    }
}

impl std::ops::Shr<usize> for &BigUint {
    type Output = BigUint;
    fn shr(self, bits: usize) -> BigUint {
        BigUint::shr(self, bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shl_across_limb_boundary() {
        let a = BigUint::from_u64(1);
        assert_eq!(a.shl(64).to_u128(), Some(1u128 << 64));
        assert_eq!(a.shl(100).bits(), 101);
    }

    #[test]
    fn shl_zero_bits_is_identity() {
        let a = BigUint::from_u64(42);
        assert_eq!(a.shl(0), a);
    }

    #[test]
    fn shr_discards_low_bits() {
        let a = BigUint::from_u128((1u128 << 100) | 0xFF);
        assert_eq!(a.shr(100).to_u64(), Some(1));
        assert!(a.shr(200).is_zero());
    }

    #[test]
    fn shl_shr_roundtrip() {
        let a = BigUint::from_u128(0x0123_4567_89ab_cdef_fedc_ba98u128);
        for bits in [1usize, 7, 63, 64, 65, 127, 130] {
            assert_eq!(a.shl(bits).shr(bits), a, "bits={bits}");
        }
    }

    #[test]
    fn bit_access() {
        let mut a = BigUint::zero();
        a.set_bit(130);
        assert!(a.bit(130));
        assert!(!a.bit(129));
        assert_eq!(a.bits(), 131);
        assert_eq!(a.trailing_zeros(), Some(130));
        assert_eq!(BigUint::zero().trailing_zeros(), None);
    }
}
