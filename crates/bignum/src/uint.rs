//! Core unsigned big-integer type: representation, comparison, addition,
//! and subtraction. Multiplication, division, shifting, conversions, and
//! modular arithmetic live in sibling modules.

use crate::BignumError;
use std::cmp::Ordering;

/// Arbitrary-precision unsigned integer.
///
/// Stored as little-endian `u64` limbs with the invariant that the most
/// significant limb is non-zero; zero is the empty limb vector. All public
/// constructors and operations preserve this normalization.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    pub(crate) limbs: Vec<u64>,
}

impl BigUint {
    /// The value `0`.
    #[inline]
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value `1`.
    #[inline]
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Builds a value from a single `u64`.
    #[inline]
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Builds a value from a `u128`.
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut out = BigUint {
            limbs: vec![lo, hi],
        };
        out.normalize();
        out
    }

    /// Builds a value from little-endian limbs, normalizing trailing zeros.
    pub(crate) fn from_limbs(limbs: Vec<u64>) -> Self {
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// Read-only access to the little-endian limbs.
    #[inline]
    pub(crate) fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Drops high zero limbs to restore the representation invariant.
    #[inline]
    pub(crate) fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Overwrites the limb storage with zeros, then leaves the value as
    /// zero. For secret material (key limbs) dropped from long-lived
    /// structs: volatile writes stop the compiler from eliding the
    /// "dead" stores, and the fence keeps them ordered before the free.
    ///
    /// Best-effort only — clones and reallocations made during earlier
    /// arithmetic are outside this value's control.
    pub fn zeroize(&mut self) {
        for limb in self.limbs.iter_mut() {
            unsafe { core::ptr::write_volatile(limb, 0) };
        }
        core::sync::atomic::compiler_fence(core::sync::atomic::Ordering::SeqCst);
        self.limbs.clear();
    }

    /// `true` iff the value is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// `true` iff the value is one.
    #[inline]
    pub fn is_one(&self) -> bool {
        matches!(self.limbs.as_slice(), [1])
    }

    /// `true` iff the value is even (zero counts as even).
    #[inline]
    pub fn is_even(&self) -> bool {
        self.limbs.first().map_or(true, |l| l & 1 == 0)
    }

    /// `true` iff the value is odd.
    #[inline]
    pub fn is_odd(&self) -> bool {
        !self.is_even()
    }

    /// Number of significant bits (`0` for zero).
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&hi) => self.limbs.len() * 64 - hi.leading_zeros() as usize,
        }
    }

    /// Returns the value as `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match *self.limbs.as_slice() {
            [] => Some(0),
            [l] => Some(l),
            _ => None,
        }
    }

    /// Returns the value as `u128` if it fits.
    pub fn to_u128(&self) -> Option<u128> {
        match *self.limbs.as_slice() {
            [] => Some(0),
            [lo] => Some(lo as u128),
            [lo, hi] => Some(lo as u128 | (hi as u128) << 64),
            _ => None,
        }
    }

    /// In-place addition: `self += other`.
    pub fn add_assign(&mut self, other: &BigUint) {
        if self.limbs.len() < other.limbs.len() {
            self.limbs.resize(other.limbs.len(), 0);
        }
        let mut carry = 0u64;
        for (i, limb) in self.limbs.iter_mut().enumerate() {
            let rhs = other.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = limb.overflowing_add(rhs);
            let (s2, c2) = s1.overflowing_add(carry);
            *limb = s2;
            carry = (c1 as u64) + (c2 as u64);
            if carry == 0 && i >= other.limbs.len() {
                return; // no carry left and nothing more to add
            }
        }
        if carry != 0 {
            self.limbs.push(carry);
        }
    }

    /// Adds a single `u64` in place.
    pub fn add_u64_assign(&mut self, mut v: u64) {
        for limb in self.limbs.iter_mut() {
            let (s, c) = limb.overflowing_add(v);
            *limb = s;
            if !c {
                return;
            }
            v = 1;
        }
        if v != 0 {
            self.limbs.push(v);
        }
    }

    /// Checked subtraction: `self - other`, or an underflow error.
    pub fn checked_sub(&self, other: &BigUint) -> Result<BigUint, BignumError> {
        if self < other {
            return Err(BignumError::Underflow);
        }
        let mut out = self.clone();
        out.sub_assign_unchecked(other);
        Ok(out)
    }

    /// In-place subtraction assuming `self >= other` (debug-asserted).
    pub(crate) fn sub_assign_unchecked(&mut self, other: &BigUint) {
        debug_assert!(*self >= *other, "BigUint subtraction underflow");
        let mut borrow = 0u64;
        for (i, limb) in self.limbs.iter_mut().enumerate() {
            let rhs = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = limb.overflowing_sub(rhs);
            let (d2, b2) = d1.overflowing_sub(borrow);
            *limb = d2;
            borrow = (b1 as u64) + (b2 as u64);
            if borrow == 0 && i >= other.limbs.len() {
                break;
            }
        }
        debug_assert_eq!(borrow, 0);
        self.normalize();
    }

}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl PartialOrd for BigUint {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl std::ops::Add for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        let mut out = self.clone();
        out.add_assign(rhs);
        out
    }
}

impl std::ops::Add<u64> for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: u64) -> BigUint {
        let mut out = self.clone();
        out.add_u64_assign(rhs);
        out
    }
}

impl std::ops::Sub for &BigUint {
    type Output = BigUint;
    /// Panics on underflow; use [`BigUint::checked_sub`] to handle it.
    fn sub(self, rhs: &BigUint) -> BigUint {
        self.checked_sub(rhs)
            // pprl:allow(panic-path): documented contract panic; checked_sub exists for fallible callers
            .expect("BigUint subtraction underflow")
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_u64(v)
    }
}

impl From<u32> for BigUint {
    fn from(v: u32) -> Self {
        BigUint::from_u64(v as u64)
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        BigUint::from_u128(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_normalized_and_even() {
        let z = BigUint::zero();
        assert!(z.is_zero());
        assert!(z.is_even());
        assert_eq!(z.bits(), 0);
        assert_eq!(z.to_u64(), Some(0));
    }

    #[test]
    fn from_u128_roundtrip() {
        let v = 0x1234_5678_9abc_def0_1122_3344_5566_7788u128;
        assert_eq!(BigUint::from_u128(v).to_u128(), Some(v));
    }

    #[test]
    fn addition_carries_across_limbs() {
        let a = BigUint::from_u64(u64::MAX);
        let b = BigUint::from_u64(1);
        let s = &a + &b;
        assert_eq!(s.to_u128(), Some(1u128 << 64));
    }

    #[test]
    fn add_u64_carry_chain() {
        let mut a = BigUint::from_u128(u128::MAX);
        a.add_u64_assign(1);
        assert_eq!(a.limbs(), &[0, 0, 1]);
    }

    #[test]
    fn subtraction_borrows() {
        let a = BigUint::from_u128(1u128 << 64);
        let b = BigUint::from_u64(1);
        let d = &a - &b;
        assert_eq!(d.to_u64(), Some(u64::MAX));
    }

    #[test]
    fn checked_sub_underflow_errors() {
        let a = BigUint::from_u64(1);
        let b = BigUint::from_u64(2);
        assert_eq!(a.checked_sub(&b), Err(BignumError::Underflow));
    }

    #[test]
    fn ordering_compares_by_magnitude() {
        let small = BigUint::from_u64(u64::MAX);
        let big = BigUint::from_u128(1u128 << 64);
        assert!(small < big);
        assert!(big > small);
        assert_eq!(big.cmp(&big), Ordering::Equal);
    }

    #[test]
    fn bits_counts_significant_bits() {
        assert_eq!(BigUint::from_u64(1).bits(), 1);
        assert_eq!(BigUint::from_u64(0xFF).bits(), 8);
        assert_eq!(BigUint::from_u128(1u128 << 100).bits(), 101);
    }

    #[test]
    fn parity() {
        assert!(BigUint::from_u64(2).is_even());
        assert!(BigUint::from_u64(3).is_odd());
    }
}
