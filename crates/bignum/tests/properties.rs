//! Property-based tests for the bignum substrate: ring laws, division
//! invariants, Montgomery/modpow consistency, and conversion roundtrips.

use pprl_bignum::{prime, random_below, BigUint, Montgomery};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a BigUint from arbitrary bytes (0..=48 bytes → up to 384 bits).
fn biguint() -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u8>(), 0..48).prop_map(|b| BigUint::from_bytes_be(&b))
}

/// Strategy: a non-zero BigUint.
fn biguint_nonzero() -> impl Strategy<Value = BigUint> {
    biguint().prop_map(|v| if v.is_zero() { BigUint::one() } else { v })
}

/// Strategy: an odd modulus > 1.
fn odd_modulus() -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u8>(), 1..32).prop_map(|b| {
        let mut v = BigUint::from_bytes_be(&b);
        v.set_bit(0);
        if v.is_one() {
            BigUint::from_u64(3)
        } else {
            v
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn add_commutes(a in biguint(), b in biguint()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn add_associates(a in biguint(), b in biguint(), c in biguint()) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn add_then_sub_roundtrips(a in biguint(), b in biguint()) {
        prop_assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn mul_commutes(a in biguint(), b in biguint()) {
        prop_assert_eq!(a.mul(&b), b.mul(&a));
    }

    #[test]
    fn mul_distributes_over_add(a in biguint(), b in biguint(), c in biguint()) {
        let lhs = a.mul(&(&b + &c));
        let rhs = &a.mul(&b) + &a.mul(&c);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn division_invariant(a in biguint(), b in biguint_nonzero()) {
        let (q, r) = a.div_rem(&b).unwrap();
        prop_assert!(r < b);
        prop_assert_eq!(&q.mul(&b) + &r, a);
    }

    #[test]
    fn shift_is_power_of_two_mul(a in biguint(), bits in 0usize..130) {
        let shifted = a.shl(bits);
        let expected = a.mul(&BigUint::one().shl(bits));
        prop_assert_eq!(shifted, expected);
    }

    #[test]
    fn bytes_roundtrip(a in biguint()) {
        prop_assert_eq!(BigUint::from_bytes_be(&a.to_bytes_be()), a);
    }

    #[test]
    fn hex_roundtrip(a in biguint()) {
        prop_assert_eq!(BigUint::from_hex(&a.to_hex()).unwrap(), a);
    }

    #[test]
    fn decimal_roundtrip(a in biguint()) {
        prop_assert_eq!(BigUint::from_decimal(&a.to_decimal()).unwrap(), a);
    }

    #[test]
    fn montgomery_mul_matches_plain(a in biguint(), b in biguint(), m in odd_modulus()) {
        let ctx = Montgomery::new(&m).unwrap();
        prop_assert_eq!(ctx.mul(&a, &b), a.mod_mul(&b, &m));
    }

    #[test]
    fn modpow_matches_repeated_squaring(a in biguint(), e in 0u64..64, m in odd_modulus()) {
        // Naive reference: e multiplications.
        let mut expected = BigUint::one().rem(&m);
        let ar = a.rem(&m);
        for _ in 0..e {
            expected = expected.mod_mul(&ar, &m);
        }
        prop_assert_eq!(a.mod_pow(&BigUint::from_u64(e), &m), expected);
    }

    #[test]
    fn modpow_product_law(a in biguint(), e1 in 0u64..1000, e2 in 0u64..1000, m in odd_modulus()) {
        // a^(e1+e2) = a^e1 * a^e2 (mod m)
        let lhs = a.mod_pow(&BigUint::from_u64(e1 + e2), &m);
        let rhs = a
            .mod_pow(&BigUint::from_u64(e1), &m)
            .mod_mul(&a.mod_pow(&BigUint::from_u64(e2), &m), &m);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn gcd_divides_both(a in biguint_nonzero(), b in biguint_nonzero()) {
        let g = a.gcd(&b);
        prop_assert!(a.rem(&g).is_zero());
        prop_assert!(b.rem(&g).is_zero());
    }

    #[test]
    fn gcd_lcm_product_law(a in biguint_nonzero(), b in biguint_nonzero()) {
        // gcd(a,b) * lcm(a,b) == a*b
        prop_assert_eq!(a.gcd(&b).mul(&a.lcm(&b)), a.mul(&b));
    }

    #[test]
    fn mod_inverse_is_inverse(a in biguint_nonzero(), m in odd_modulus()) {
        if let Ok(inv) = a.mod_inverse(&m) {
            prop_assert_eq!(a.mod_mul(&inv, &m), BigUint::one().rem(&m));
        } else {
            // Not invertible implies non-trivial gcd.
            prop_assert!(!a.gcd(&m).is_one());
        }
    }

    #[test]
    fn random_below_in_range(seed in any::<u64>(), m in odd_modulus()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let v = random_below(&mut rng, &m);
        prop_assert!(v < m);
    }

    #[test]
    fn ladder_matches_window_modpow(a in biguint(), e in biguint(), m in odd_modulus()) {
        // The constant-time Montgomery ladder and the fixed-window walk
        // must agree on every (base, exponent, modulus) — including
        // multi-limb exponents whose leading limbs are zero.
        prop_assert_eq!(a.mod_pow_ct(&e, &m), a.mod_pow(&e, &m));
    }

    #[test]
    fn ladder_even_modulus_fallback_matches(a in biguint(), e in 0u64..256, m in biguint_nonzero()) {
        // Even moduli have no Montgomery form; mod_pow_ct must degrade to
        // the same division-based result as mod_pow.
        let e = BigUint::from_u64(e);
        prop_assert_eq!(a.mod_pow_ct(&e, &m), a.mod_pow(&e, &m));
    }
}

/// Structured operands that exercise Knuth D's rare correction paths
/// (qhat overestimation and the D6 add-back), from the classic
/// Hacker's Delight test set, adapted to 32-bit digits.
#[test]
fn knuth_d_add_back_cases() {
    let digit = |d: u64, shift: usize| BigUint::from_u64(d).shl(shift * 32);
    let cases = [
        // u = [3, 0, 0x8000_0000], v = [1, 0x8000_0000] (digits, LE)
        (
            &digit(3, 0) + &digit(0x8000_0000, 2),
            &digit(1, 0) + &digit(0x8000_0000, 1),
        ),
        // u = [0, 0x8000_0000, 0x7fff_ffff], v = [1, 0x8000_0000]
        (
            &digit(0x8000_0000, 1) + &digit(0x7fff_ffff, 2),
            &digit(1, 0) + &digit(0x8000_0000, 1),
        ),
        // u = [0, 0xfffe_0000, 0x8000_0000], v = [0xffff_ffff, 0x8000_0000]
        (
            &digit(0xfffe_0000, 1) + &digit(0x8000_0000, 2),
            &digit(0xffff_ffff, 0) + &digit(0x8000_0000, 1),
        ),
        // Divisor with max top digit, dividend all ones.
        (
            BigUint::one().shl(256).checked_sub(&BigUint::one()).unwrap(),
            &digit(0xffff_ffff, 0) + &digit(0xffff_ffff, 3),
        ),
    ];
    for (i, (u, v)) in cases.iter().enumerate() {
        let (q, r) = u.div_rem(v).unwrap();
        assert!(r < *v, "case {i}: remainder bound");
        assert_eq!(&q.mul(v) + &r, *u, "case {i}: reconstruction");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Heavier operands than the main suite: up to 2048-bit dividends,
    /// the sizes Paillier actually uses mod n².
    #[test]
    fn division_invariant_large(
        a in proptest::collection::vec(any::<u8>(), 128..256),
        b in proptest::collection::vec(any::<u8>(), 32..128),
    ) {
        let a = BigUint::from_bytes_be(&a);
        let mut b = BigUint::from_bytes_be(&b);
        if b.is_zero() {
            b = BigUint::one();
        }
        let (q, r) = a.div_rem(&b).unwrap();
        prop_assert!(r < b);
        prop_assert_eq!(&q.mul(&b) + &r, a);
    }
}

#[test]
fn prime_product_has_no_small_factors() {
    let mut rng = StdRng::seed_from_u64(99);
    let p = prime::gen_prime(&mut rng, 96);
    let q = prime::gen_prime(&mut rng, 96);
    assert_ne!(p, q);
    let n = p.mul(&q);
    assert_eq!(n.bits(), 192);
    assert_eq!(n.gcd(&p), p);
    assert_eq!(&n / &p, q);
}

#[test]
fn fermat_on_generated_primes() {
    let mut rng = StdRng::seed_from_u64(7);
    for bits in [32usize, 64, 128] {
        let p = prime::gen_prime(&mut rng, bits);
        let a = BigUint::from_u64(2);
        let e = &p - &BigUint::one();
        assert_eq!(a.mod_pow(&e, &p), BigUint::one(), "bits={bits}");
    }
}
