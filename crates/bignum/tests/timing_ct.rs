//! Timing smoke test for the constant-time exponentiation path
//! (dudect-flavored, heavily simplified): the Montgomery ladder's
//! runtime must not depend on the exponent's Hamming weight.
//!
//! Two same-width 256-bit exponents sit at the extremes of the leakage
//! axis — `2^255` (one set bit) and `2^256 − 1` (all 256 set) — and are
//! measured in interleaved rounds so drift (thermal, scheduler) hits
//! both classes equally. The variable-time window walk would show the
//! all-ones exponent costing roughly a third more multiplications; the
//! ladder does one square and one multiply per bit regardless, so the
//! medians must agree to well under that margin.
//!
//! The assertion threshold is deliberately loose (50 %) to keep CI
//! robust on noisy shared runners: the defect this guards against —
//! accidentally routing `mod_pow_ct` back through the windowed or
//! binary walk — shows up as a 25–40 % median gap, while scheduler
//! noise on a median of dozens of samples stays in single digits.

use pprl_bignum::BigUint;
use std::time::Instant;

/// Samples per class. Odd, so the median is a single order statistic.
const SAMPLES: usize = 31;
/// Ladder runs per sample (amortizes the `Instant` read).
const REPS: usize = 4;

fn median_ns(mut v: Vec<u128>) -> u128 {
    v.sort_unstable();
    v[v.len() / 2]
}

#[test]
fn ladder_timing_independent_of_exponent_hamming_weight() {
    // 256-bit odd modulus: 2^256 − 189 (a prime, but only odd matters).
    let modulus = BigUint::one()
        .shl(256)
        .checked_sub(&BigUint::from_u64(189))
        .unwrap();
    let base = BigUint::from_u64(0xDEAD_BEEF_CAFE_F00D).mod_mul(&base_mix(), &modulus);

    // Same limb count (the one exponent-derived public quantity), extreme
    // Hamming weights: 1 bit set vs all 256.
    let exp_sparse = BigUint::one().shl(255);
    let exp_dense = BigUint::one()
        .shl(256)
        .checked_sub(&BigUint::one())
        .unwrap();
    assert_eq!(exp_sparse.bits().div_ceil(64), exp_dense.bits().div_ceil(64));

    let time_one = |exp: &BigUint| -> u128 {
        let t0 = Instant::now();
        for _ in 0..REPS {
            std::hint::black_box(
                std::hint::black_box(&base).mod_pow_ct(std::hint::black_box(exp), &modulus),
            );
        }
        t0.elapsed().as_nanos()
    };

    // Warmup: fault in code paths and let the allocator settle.
    for _ in 0..3 {
        time_one(&exp_sparse);
        time_one(&exp_dense);
    }

    let mut sparse = Vec::with_capacity(SAMPLES);
    let mut dense = Vec::with_capacity(SAMPLES);
    // Interleave the classes so slow drift cancels instead of biasing
    // whichever class happens to run second.
    for i in 0..SAMPLES {
        if i % 2 == 0 {
            sparse.push(time_one(&exp_sparse));
            dense.push(time_one(&exp_dense));
        } else {
            dense.push(time_one(&exp_dense));
            sparse.push(time_one(&exp_sparse));
        }
    }

    let med_sparse = median_ns(sparse);
    let med_dense = median_ns(dense);
    let ratio = med_dense.max(med_sparse) as f64 / med_dense.min(med_sparse).max(1) as f64;
    println!(
        "ladder medians: HW=1 {med_sparse} ns, HW=256 {med_dense} ns, ratio {ratio:.3}"
    );
    assert!(
        ratio < 1.5,
        "ladder timing varies with exponent Hamming weight: \
         HW=1 median {med_sparse} ns vs HW=256 median {med_dense} ns (ratio {ratio:.3})"
    );
}

/// A second multiplicand so the base is not a round single-limb value.
fn base_mix() -> BigUint {
    BigUint::from_u128(0x0123_4567_89ab_cdef_fedc_ba98_7654_3210u128)
}
