//! Plaintext attribute distances and the decision rule `dr` (paper §II).
//!
//! These run on *original* values. The hybrid protocol itself never
//! evaluates them outside the SMC step — they exist for the SMC oracle
//! (provably equivalent to the Paillier protocol), for ground-truth
//! computation, and for tests that check the slack bounds really bound
//! them.

use pprl_data::{Record, Schema, Value};
use pprl_hierarchy::{AttributeKind, Vgh};
use serde::{Deserialize, Serialize};

/// Distance function attached to one matching attribute.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttrDistance {
    /// 0/1 mismatch indicator (discrete attributes, §V-C).
    Hamming,
    /// `|x − y| / normFactor` (continuous attributes, §II/§V-C).
    NormalizedEuclidean,
    /// Levenshtein distance over leaf labels, normalized by the longest
    /// label in the domain (the §VIII future-work extension).
    NormalizedEdit,
}

/// The classifier the querying party supplies: per matching attribute a
/// distance function and a threshold θᵢ. A record pair matches iff *every*
/// attribute distance is ≤ its threshold.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MatchingRule {
    /// Per-QID thresholds θᵢ ∈ [0, 1].
    pub thetas: Vec<f64>,
    /// Per-QID distance functions.
    pub distances: Vec<AttrDistance>,
}

impl MatchingRule {
    /// Uniform thresholds with the natural distance per attribute kind
    /// (Hamming for categorical, normalized Euclidean for continuous) —
    /// the paper's experimental setup with θᵢ = θ.
    pub fn uniform(schema: &Schema, qids: &[usize], theta: f64) -> Self {
        let distances = qids
            .iter()
            .map(|&q| match schema.attribute(q).kind() {
                AttributeKind::Categorical => AttrDistance::Hamming,
                AttributeKind::Continuous => AttrDistance::NormalizedEuclidean,
            })
            .collect();
        MatchingRule {
            thetas: vec![theta; qids.len()],
            distances,
        }
    }

    /// Validates thresholds and arity against a QID list.
    pub fn validate(&self, qids: &[usize]) -> Result<(), crate::BlockingError> {
        if self.thetas.len() != qids.len() || self.distances.len() != qids.len() {
            return Err(crate::BlockingError::RuleArity {
                rule: self.thetas.len(),
                qids: qids.len(),
            });
        }
        for &t in &self.thetas {
            if !t.is_finite() || !(0.0..=1.0).contains(&t) {
                return Err(crate::BlockingError::BadThreshold(t));
            }
        }
        Ok(())
    }
}

/// Distance between two original values of one attribute.
///
/// A distance function paired with the wrong hierarchy kind (a
/// mis-assembled rule) yields the worst-case distance 1.0 — the pair
/// can only fail the threshold, never spuriously match — instead of
/// aborting mid-protocol.
pub fn attribute_distance(vgh: &Vgh, dist: AttrDistance, a: Value, b: Value) -> f64 {
    match dist {
        AttrDistance::Hamming => {
            if a.as_cat() == b.as_cat() {
                0.0
            } else {
                1.0
            }
        }
        AttrDistance::NormalizedEuclidean => {
            let Some(h) = vgh.as_intervals() else {
                debug_assert!(false, "Euclidean paired with a categorical hierarchy");
                return 1.0;
            };
            (a.as_num() - b.as_num()).abs() / h.norm_factor()
        }
        AttrDistance::NormalizedEdit => {
            let Some(t) = vgh.as_taxonomy() else {
                debug_assert!(false, "edit distance paired with a continuous hierarchy");
                return 1.0;
            };
            let la = t.label(t.leaf_node(a.as_cat()));
            let lb = t.label(t.leaf_node(b.as_cat()));
            let norm = max_label_len(t) as f64;
            crate::slack::edit_distance(la, lb) as f64 / norm
        }
    }
}

/// Longest leaf label in a taxonomy (edit-distance normalizer).
pub(crate) fn max_label_len(t: &pprl_hierarchy::Taxonomy) -> usize {
    (0..t.leaf_count() as u32)
        .map(|p| t.label(t.leaf_node(p)).chars().count())
        .max()
        .unwrap_or(1)
        .max(1)
}

/// The decision rule `dr(r, s)` (paper §II): true iff every matching
/// attribute respects its threshold.
pub fn records_match(
    schema: &Schema,
    qids: &[usize],
    rule: &MatchingRule,
    r: &Record,
    s: &Record,
) -> bool {
    debug_assert_eq!(qids.len(), rule.distances.len());
    qids.iter()
        .zip(rule.distances.iter().zip(&rule.thetas))
        .all(|(&q, (&dist, &theta))| {
            let vgh = schema.attribute(q).vgh();
            attribute_distance(vgh, dist, r.value(q), s.value(q)) <= theta
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pprl_data::synth::{generate, SynthConfig};

    #[test]
    fn uniform_rule_picks_natural_distances() {
        let schema = Schema::adult();
        let rule = MatchingRule::uniform(&schema, &[0, 1, 2], 0.05);
        assert_eq!(rule.distances[0], AttrDistance::NormalizedEuclidean);
        assert_eq!(rule.distances[1], AttrDistance::Hamming);
        assert_eq!(rule.thetas, vec![0.05; 3]);
        assert!(rule.validate(&[0, 1, 2]).is_ok());
    }

    #[test]
    fn rule_validation_rejects_bad_inputs() {
        let schema = Schema::adult();
        let rule = MatchingRule::uniform(&schema, &[0, 1], 0.05);
        assert!(rule.validate(&[0, 1, 2]).is_err());
        let bad = MatchingRule {
            thetas: vec![1.5],
            distances: vec![AttrDistance::Hamming],
        };
        assert!(bad.validate(&[1]).is_err());
        let nan = MatchingRule {
            thetas: vec![f64::NAN],
            distances: vec![AttrDistance::Hamming],
        };
        assert!(nan.validate(&[1]).is_err());
    }

    #[test]
    fn hamming_is_equality() {
        let schema = Schema::adult();
        let vgh = schema.attribute(1).vgh();
        assert_eq!(
            attribute_distance(vgh, AttrDistance::Hamming, Value::Cat(3), Value::Cat(3)),
            0.0
        );
        assert_eq!(
            attribute_distance(vgh, AttrDistance::Hamming, Value::Cat(3), Value::Cat(4)),
            1.0
        );
    }

    #[test]
    fn euclidean_is_normalized_by_domain_width() {
        let schema = Schema::adult();
        let vgh = schema.attribute(0).vgh(); // age, norm 96
        let d = attribute_distance(
            vgh,
            AttrDistance::NormalizedEuclidean,
            Value::Num(30.0),
            Value::Num(54.0),
        );
        assert!((d - 24.0 / 96.0).abs() < 1e-12);
    }

    #[test]
    fn identical_records_always_match() {
        let data = generate(&SynthConfig {
            records: 20,
            seed: 9,
        });
        let schema = data.schema();
        let qids = [0usize, 1, 2, 3, 4];
        let rule = MatchingRule::uniform(schema, &qids, 0.05);
        for r in data.records() {
            assert!(records_match(schema, &qids, &rule, r, r));
        }
    }

    #[test]
    fn age_window_drives_matching() {
        // Same categorical values, ages 4 apart: θ=0.05 → window 4.8 ⇒ match;
        // θ=0.03 → window 2.88 ⇒ mismatch.
        let data = generate(&SynthConfig {
            records: 1,
            seed: 10,
        });
        let schema = data.schema();
        let base = &data.records()[0];
        let mut vals = base.values().to_vec();
        vals[0] = Value::Num(base.value(0).as_num().min(85.0) + 4.0);
        let shifted = Record::new(999, vals, base.class());
        let qids = [0usize, 1, 2, 3, 4];
        let loose = MatchingRule::uniform(schema, &qids, 0.05);
        let tight = MatchingRule::uniform(schema, &qids, 0.03);
        assert!(records_match(schema, &qids, &loose, base, &shifted));
        assert!(!records_match(schema, &qids, &tight, base, &shifted));
    }
}
