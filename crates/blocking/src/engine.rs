//! The blocking engine: applies the slack decision rule to every pair of
//! equivalence classes across the two anonymized views.

use crate::distance::MatchingRule;
use crate::rule::{slack_decision, PairLabel};
use crate::BlockingError;
use pprl_anon::AnonymizedView;
use pprl_hierarchy::Vgh;
use serde::{Deserialize, Serialize};

/// Reference to one class pair `(index into R'.classes, index into
/// S'.classes)` plus the number of record pairs it stands for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassPairRef {
    /// Index of the class in the first view.
    pub r_class: u32,
    /// Index of the class in the second view.
    pub s_class: u32,
    /// `|class_R| × |class_S|` record pairs represented.
    pub pairs: u64,
}

/// Result of the blocking step.
#[derive(Clone, Debug, Default)]
pub struct BlockingOutcome {
    /// Total record pairs `|R| × |S|` (covered + suppressed).
    pub total_pairs: u64,
    /// Record pairs provably matched.
    pub matched_pairs: u64,
    /// Record pairs provably mismatched.
    pub nonmatched_pairs: u64,
    /// Record pairs left undecided (class pairs below, plus suppressed).
    pub unknown_pairs: u64,
    /// Record pairs involving a suppressed record (DataFly only): no
    /// generalization sequence exists for them, so they cannot be blocked
    /// and fall through to the SMC step with lowest priority.
    pub suppressed_pairs: u64,
    /// Class pairs labeled M.
    pub matched: Vec<ClassPairRef>,
    /// Class pairs labeled U, in grid order.
    pub unknown: Vec<ClassPairRef>,
}

impl BlockingOutcome {
    /// Blocking efficiency (§VI): the fraction of record pairs permanently
    /// classified by the slack decision rule.
    pub fn efficiency(&self) -> f64 {
        if self.total_pairs == 0 {
            return 0.0;
        }
        (self.matched_pairs + self.nonmatched_pairs) as f64 / self.total_pairs as f64
    }

    /// The *sufficient SMC allowance* for 100 % recall (§VI: "blocking
    /// efficiency also indicates the sufficient SMC allowance"), as a
    /// fraction of all pairs.
    pub fn sufficient_allowance(&self) -> f64 {
        1.0 - self.efficiency()
    }
}

/// Configured blocking step.
#[derive(Clone, Debug)]
pub struct BlockingEngine {
    rule: MatchingRule,
}

impl BlockingEngine {
    /// Builds an engine for a matching rule.
    pub fn new(rule: MatchingRule) -> Self {
        BlockingEngine { rule }
    }

    /// The matching rule.
    pub fn rule(&self) -> &MatchingRule {
        &self.rule
    }

    /// Runs the blocking step over two anonymized views.
    ///
    /// Complexity: `O(|classes_R| · |classes_S| · q)` — *not* a function of
    /// the record count, which is what makes blocking cheap (§VI measures
    /// 1.35 s against 0.43 s for a *single* SMC comparison).
    pub fn run(
        &self,
        r_view: &AnonymizedView,
        s_view: &AnonymizedView,
    ) -> Result<BlockingOutcome, BlockingError> {
        if r_view.qids() != s_view.qids() {
            return Err(BlockingError::QidMismatch);
        }
        self.rule.validate(r_view.qids())?;

        let schema = r_view.schema();
        let vghs: Vec<&Vgh> = r_view
            .qids()
            .iter()
            .map(|&q| schema.attribute(q).vgh())
            .collect();

        let r_total = (r_view.covered_records() + r_view.suppressed().len()) as u64;
        let s_total = (s_view.covered_records() + s_view.suppressed().len()) as u64;
        let covered_pairs = r_view.covered_records() as u64 * s_view.covered_records() as u64;

        let mut outcome = BlockingOutcome {
            total_pairs: r_total * s_total,
            suppressed_pairs: r_total * s_total - covered_pairs,
            ..BlockingOutcome::default()
        };
        outcome.unknown_pairs = outcome.suppressed_pairs;

        for (ri, rc) in r_view.classes().iter().enumerate() {
            for (si, sc) in s_view.classes().iter().enumerate() {
                let pairs = rc.size() as u64 * sc.size() as u64;
                let pref = ClassPairRef {
                    r_class: ri as u32,
                    s_class: si as u32,
                    pairs,
                };
                match slack_decision(&vghs, &self.rule, &rc.sequence, &sc.sequence) {
                    PairLabel::Match => {
                        outcome.matched_pairs += pairs;
                        outcome.matched.push(pref);
                    }
                    PairLabel::NonMatch => {
                        outcome.nonmatched_pairs += pairs;
                    }
                    PairLabel::Unknown => {
                        outcome.unknown_pairs += pairs;
                        outcome.unknown.push(pref);
                    }
                }
            }
        }
        debug_assert_eq!(
            outcome.matched_pairs + outcome.nonmatched_pairs + outcome.unknown_pairs,
            outcome.total_pairs
        );
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::records_match;
    use pprl_anon::{AnonymizationMethod, Anonymizer, KAnonymityRequirement};
    use pprl_data::synth::{generate, SynthConfig};
    use pprl_data::DataSet;

    const QIDS: [usize; 5] = [0, 1, 2, 3, 4];

    fn inputs(n: usize, seed: u64) -> (DataSet, DataSet) {
        let a = generate(&SynthConfig {
            records: n,
            seed,
        });
        let b = generate(&SynthConfig {
            records: n,
            seed: seed + 1,
        });
        (a, b)
    }

    fn anonymize(data: &DataSet, k: usize) -> AnonymizedView {
        Anonymizer::new(AnonymizationMethod::MaxEntropy, KAnonymityRequirement(k))
            .anonymize(data, &QIDS)
            .unwrap()
    }

    #[test]
    fn pair_accounting_is_exact() {
        let (a, b) = inputs(300, 41);
        let va = anonymize(&a, 8);
        let vb = anonymize(&b, 16); // asymmetric k is allowed (§I)
        let rule = MatchingRule::uniform(a.schema(), &QIDS, 0.05);
        let out = BlockingEngine::new(rule).run(&va, &vb).unwrap();
        assert_eq!(out.total_pairs, 300 * 300);
        assert_eq!(
            out.matched_pairs + out.nonmatched_pairs + out.unknown_pairs,
            out.total_pairs
        );
        assert!(out.efficiency() > 0.0 && out.efficiency() <= 1.0);
        assert!((out.efficiency() + out.sufficient_allowance() - 1.0).abs() < 1e-12);
    }

    /// Soundness: every pair in an M class-pair truly matches; every pair
    /// in an N class-pair truly mismatches. This is the paper's 100 %
    /// precision claim, checked against brute-force ground truth.
    #[test]
    fn blocking_is_sound() {
        let (a, b) = inputs(200, 43);
        let va = anonymize(&a, 4);
        let vb = anonymize(&b, 4);
        let rule = MatchingRule::uniform(a.schema(), &QIDS, 0.05);
        let out = BlockingEngine::new(rule.clone()).run(&va, &vb).unwrap();
        let schema = a.schema();

        for m in &out.matched {
            let rc = &va.classes()[m.r_class as usize];
            let sc = &vb.classes()[m.s_class as usize];
            for &ri in &rc.rows {
                for &si in &sc.rows {
                    assert!(
                        records_match(
                            schema,
                            &QIDS,
                            &rule,
                            &a.records()[ri as usize],
                            &b.records()[si as usize]
                        ),
                        "M pair must truly match"
                    );
                }
            }
        }
        // N pairs: everything not in matched/unknown. Reconstruct a quick
        // lookup of U/M class pairs and verify a sample of the rest.
        use std::collections::HashSet;
        let undecided: HashSet<(u32, u32)> = out
            .unknown
            .iter()
            .chain(&out.matched)
            .map(|p| (p.r_class, p.s_class))
            .collect();
        for (ri_class, rc) in va.classes().iter().enumerate() {
            for (si_class, sc) in vb.classes().iter().enumerate() {
                if undecided.contains(&(ri_class as u32, si_class as u32)) {
                    continue;
                }
                // Labeled N: sample the corner records.
                let r = &a.records()[rc.rows[0] as usize];
                let s = &b.records()[sc.rows[0] as usize];
                assert!(
                    !records_match(schema, &QIDS, &rule, r, s),
                    "N pair must truly mismatch"
                );
            }
        }
    }

    #[test]
    fn higher_k_lowers_efficiency() {
        // Fig. 3's monotone trend, on synthetic data. Greedy anonymizers
        // are not perfectly monotone point-to-point, so compare extremes.
        let (a, b) = inputs(400, 47);
        let rule = MatchingRule::uniform(a.schema(), &QIDS, 0.05);
        let engine = BlockingEngine::new(rule);
        let eff = |k: usize| {
            engine
                .run(&anonymize(&a, k), &anonymize(&b, k))
                .unwrap()
                .efficiency()
        };
        let (lo_k, hi_k) = (eff(2), eff(128));
        assert!(
            lo_k >= hi_k,
            "efficiency at k=2 ({lo_k:.4}) should dominate k=128 ({hi_k:.4})"
        );
    }

    #[test]
    fn qid_mismatch_rejected() {
        let (a, b) = inputs(60, 51);
        let va = Anonymizer::new(AnonymizationMethod::MaxEntropy, KAnonymityRequirement(2))
            .anonymize(&a, &[0, 1])
            .unwrap();
        let vb = Anonymizer::new(AnonymizationMethod::MaxEntropy, KAnonymityRequirement(2))
            .anonymize(&b, &[0, 2])
            .unwrap();
        let rule = MatchingRule::uniform(a.schema(), &[0, 1], 0.05);
        assert_eq!(
            BlockingEngine::new(rule).run(&va, &vb).unwrap_err(),
            BlockingError::QidMismatch
        );
    }

    #[test]
    fn suppressed_records_count_as_unknown() {
        let (a, b) = inputs(150, 53);
        // DataFly suppresses; MaxEntropy never does.
        let va = Anonymizer::new(AnonymizationMethod::Datafly, KAnonymityRequirement(8))
            .anonymize(&a, &QIDS)
            .unwrap();
        let vb = anonymize(&b, 8);
        let rule = MatchingRule::uniform(a.schema(), &QIDS, 0.05);
        let out = BlockingEngine::new(rule).run(&va, &vb).unwrap();
        assert_eq!(
            out.suppressed_pairs,
            va.suppressed().len() as u64 * 150,
            "suppressed rows pair with every S record"
        );
        assert!(out.unknown_pairs >= out.suppressed_pairs);
        assert_eq!(out.total_pairs, 150 * 150);
    }
}
