//! The blocking engine: applies the slack decision rule to every pair of
//! equivalence classes across the two anonymized views.

use crate::distance::MatchingRule;
use crate::rule::{slack_decision, PairLabel};
use crate::BlockingError;
use pprl_anon::AnonymizedView;
use pprl_hierarchy::Vgh;
use serde::{Deserialize, Serialize};

/// Reference to one class pair `(index into R'.classes, index into
/// S'.classes)` plus the number of record pairs it stands for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassPairRef {
    /// Index of the class in the first view.
    pub r_class: u32,
    /// Index of the class in the second view.
    pub s_class: u32,
    /// `|class_R| × |class_S|` record pairs represented.
    pub pairs: u64,
}

/// Result of the blocking step.
#[derive(Clone, Debug, Default)]
pub struct BlockingOutcome {
    /// Total record pairs `|R| × |S|` (covered + suppressed).
    pub total_pairs: u64,
    /// Record pairs provably matched.
    pub matched_pairs: u64,
    /// Record pairs provably mismatched.
    pub nonmatched_pairs: u64,
    /// Record pairs left undecided (class pairs below, plus suppressed).
    pub unknown_pairs: u64,
    /// Record pairs involving a suppressed record (DataFly only): no
    /// generalization sequence exists for them, so they cannot be blocked
    /// and fall through to the SMC step with lowest priority.
    pub suppressed_pairs: u64,
    /// Class pairs labeled M.
    pub matched: Vec<ClassPairRef>,
    /// Class pairs labeled U, in grid order.
    pub unknown: Vec<ClassPairRef>,
}

impl BlockingOutcome {
    /// Blocking efficiency (§VI): the fraction of record pairs permanently
    /// classified by the slack decision rule.
    pub fn efficiency(&self) -> f64 {
        if self.total_pairs == 0 {
            return 0.0;
        }
        (self.matched_pairs + self.nonmatched_pairs) as f64 / self.total_pairs as f64
    }

    /// The *sufficient SMC allowance* for 100 % recall (§VI: "blocking
    /// efficiency also indicates the sufficient SMC allowance"), as a
    /// fraction of all pairs.
    pub fn sufficient_allowance(&self) -> f64 {
        1.0 - self.efficiency()
    }
}

/// One resumable unit of blocking work: the slack decisions for R classes
/// `[r_start, r_end)` against every S class, with per-chunk M/N/U record-
/// pair tallies. Chunks are pure functions of the views and the rule, so a
/// journaled chunk can be verified on resume by recomputation.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockingChunk {
    /// Position of this chunk in the plan.
    pub chunk_index: u32,
    /// First R class covered (inclusive).
    pub r_start: u32,
    /// Last R class covered (exclusive).
    pub r_end: u32,
    /// Record pairs this chunk proved matched.
    pub matched_pairs: u64,
    /// Record pairs this chunk proved mismatched.
    pub nonmatched_pairs: u64,
    /// Record pairs this chunk left undecided.
    pub unknown_pairs: u64,
    /// Class pairs labeled M, in grid order.
    pub matched: Vec<ClassPairRef>,
    /// Class pairs labeled U, in grid order.
    pub unknown: Vec<ClassPairRef>,
}

impl BlockingChunk {
    /// The `(M, N, U)` record-pair tallies — the part of the chunk that is
    /// journaled and checked against recomputation on resume.
    pub fn tallies(&self) -> (u64, u64, u64) {
        (self.matched_pairs, self.nonmatched_pairs, self.unknown_pairs)
    }
}

/// Configured blocking step.
#[derive(Clone, Debug)]
pub struct BlockingEngine {
    rule: MatchingRule,
}

impl BlockingEngine {
    /// Builds an engine for a matching rule.
    pub fn new(rule: MatchingRule) -> Self {
        BlockingEngine { rule }
    }

    /// The matching rule.
    pub fn rule(&self) -> &MatchingRule {
        &self.rule
    }

    /// Runs the blocking step over two anonymized views.
    ///
    /// Complexity: `O(|classes_R| · |classes_S| · q)` — *not* a function of
    /// the record count, which is what makes blocking cheap (§VI measures
    /// 1.35 s against 0.43 s for a *single* SMC comparison).
    pub fn run(
        &self,
        r_view: &AnonymizedView,
        s_view: &AnonymizedView,
    ) -> Result<BlockingOutcome, BlockingError> {
        self.validate(r_view, s_view)?;
        let chunk = self.scan_range(r_view, s_view, 0, 0, r_view.classes().len());
        self.assemble(r_view, s_view, std::iter::once(chunk))
    }

    /// [`run`](Self::run) with the class grid scanned on up to `threads`
    /// workers. Chunks are deterministic pure functions of the inputs and
    /// are folded back in index order, so the outcome is byte-identical
    /// to the sequential path at any thread count; `threads <= 1` *is*
    /// the sequential path.
    pub fn run_parallel(
        &self,
        r_view: &AnonymizedView,
        s_view: &AnonymizedView,
        threads: usize,
    ) -> Result<BlockingOutcome, BlockingError> {
        if threads <= 1 {
            return self.run(r_view, s_view);
        }
        self.validate(r_view, s_view)?;
        // Aim for several chunks per worker so one slow chunk cannot
        // serialize the tail of the scan.
        let r_classes = r_view.classes().len();
        let per = r_classes.div_ceil(threads.saturating_mul(4)).max(1);
        let indexes: Vec<u32> = (0..self.chunk_count(r_view, per)).collect();
        let chunks = pprl_runtime::par_map(&indexes, threads, |_, &i| {
            self.scan_chunk_unchecked(r_view, s_view, i, per)
        });
        self.assemble(r_view, s_view, chunks)
    }

    /// Chunk scan without re-validating per chunk (`validate` already
    /// passed) — the parallel dispatch body.
    fn scan_chunk_unchecked(
        &self,
        r_view: &AnonymizedView,
        s_view: &AnonymizedView,
        chunk_index: u32,
        per: usize,
    ) -> BlockingChunk {
        let start = chunk_index as usize * per;
        let end = (start + per).min(r_view.classes().len());
        self.scan_range(r_view, s_view, chunk_index, start, end)
    }

    /// Number of resumable chunks the class grid splits into when each
    /// chunk covers `r_classes_per_chunk` R classes (× every S class).
    pub fn chunk_count(&self, r_view: &AnonymizedView, r_classes_per_chunk: usize) -> u32 {
        let per = r_classes_per_chunk.max(1);
        (r_view.classes().len().div_ceil(per)) as u32
    }

    /// Runs one chunk of the blocking step: the slack decisions for a
    /// contiguous range of R classes against every S class. Chunks are
    /// independent and deterministic, so a crashed run recomputes only the
    /// chunks its journal is missing; concatenating all chunks in index
    /// order via [`assemble`](Self::assemble) is exactly [`run`](Self::run).
    pub fn run_chunk(
        &self,
        r_view: &AnonymizedView,
        s_view: &AnonymizedView,
        chunk_index: u32,
        r_classes_per_chunk: usize,
    ) -> Result<BlockingChunk, BlockingError> {
        self.validate(r_view, s_view)?;
        let per = r_classes_per_chunk.max(1);
        let chunks = self.chunk_count(r_view, per);
        if chunk_index >= chunks {
            return Err(BlockingError::ChunkOutOfRange {
                index: chunk_index,
                chunks,
            });
        }
        let start = chunk_index as usize * per;
        let end = (start + per).min(r_view.classes().len());
        Ok(self.scan_range(r_view, s_view, chunk_index, start, end))
    }

    /// Folds chunks (in index order, covering every R class exactly once)
    /// into the [`BlockingOutcome`] that [`run`](Self::run) would produce.
    pub fn assemble(
        &self,
        r_view: &AnonymizedView,
        s_view: &AnonymizedView,
        chunks: impl IntoIterator<Item = BlockingChunk>,
    ) -> Result<BlockingOutcome, BlockingError> {
        let r_total = (r_view.covered_records() + r_view.suppressed().len()) as u64;
        let s_total = (s_view.covered_records() + s_view.suppressed().len()) as u64;
        let covered_pairs = r_view.covered_records() as u64 * s_view.covered_records() as u64;

        let mut outcome = BlockingOutcome {
            total_pairs: r_total * s_total,
            suppressed_pairs: r_total * s_total - covered_pairs,
            ..BlockingOutcome::default()
        };
        outcome.unknown_pairs = outcome.suppressed_pairs;

        let mut next_r = 0usize;
        for chunk in chunks {
            if chunk.r_start as usize != next_r {
                return Err(BlockingError::ChunkOutOfRange {
                    index: chunk.chunk_index,
                    chunks: u32::MAX,
                });
            }
            next_r = chunk.r_end as usize;
            outcome.matched_pairs += chunk.matched_pairs;
            outcome.nonmatched_pairs += chunk.nonmatched_pairs;
            outcome.unknown_pairs += chunk.unknown_pairs;
            outcome.matched.extend(chunk.matched);
            outcome.unknown.extend(chunk.unknown);
        }
        if next_r != r_view.classes().len() {
            return Err(BlockingError::ChunkOutOfRange {
                index: u32::MAX,
                chunks: u32::MAX,
            });
        }
        debug_assert_eq!(
            outcome.matched_pairs + outcome.nonmatched_pairs + outcome.unknown_pairs,
            outcome.total_pairs
        );
        Ok(outcome)
    }

    fn validate(
        &self,
        r_view: &AnonymizedView,
        s_view: &AnonymizedView,
    ) -> Result<(), BlockingError> {
        if r_view.qids() != s_view.qids() {
            return Err(BlockingError::QidMismatch);
        }
        self.rule.validate(r_view.qids())
    }

    /// Applies the slack decision rule over R classes `[r_start, r_end)` ×
    /// every S class, in grid order (assumes `validate` already passed).
    fn scan_range(
        &self,
        r_view: &AnonymizedView,
        s_view: &AnonymizedView,
        chunk_index: u32,
        r_start: usize,
        r_end: usize,
    ) -> BlockingChunk {
        let schema = r_view.schema();
        let vghs: Vec<&Vgh> = r_view
            .qids()
            .iter()
            .map(|&q| schema.attribute(q).vgh())
            .collect();

        let mut chunk = BlockingChunk {
            chunk_index,
            r_start: r_start as u32,
            r_end: r_end as u32,
            ..BlockingChunk::default()
        };
        for (ri, rc) in r_view.classes().iter().enumerate().take(r_end).skip(r_start) {
            for (si, sc) in s_view.classes().iter().enumerate() {
                let pairs = rc.size() as u64 * sc.size() as u64;
                let pref = ClassPairRef {
                    r_class: ri as u32,
                    s_class: si as u32,
                    pairs,
                };
                match slack_decision(&vghs, &self.rule, &rc.sequence, &sc.sequence) {
                    PairLabel::Match => {
                        chunk.matched_pairs += pairs;
                        chunk.matched.push(pref);
                    }
                    PairLabel::NonMatch => {
                        chunk.nonmatched_pairs += pairs;
                    }
                    PairLabel::Unknown => {
                        chunk.unknown_pairs += pairs;
                        chunk.unknown.push(pref);
                    }
                }
            }
        }
        chunk
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::records_match;
    use pprl_anon::{AnonymizationMethod, Anonymizer, KAnonymityRequirement};
    use pprl_data::synth::{generate, SynthConfig};
    use pprl_data::DataSet;

    const QIDS: [usize; 5] = [0, 1, 2, 3, 4];

    fn inputs(n: usize, seed: u64) -> (DataSet, DataSet) {
        let a = generate(&SynthConfig {
            records: n,
            seed,
        });
        let b = generate(&SynthConfig {
            records: n,
            seed: seed + 1,
        });
        (a, b)
    }

    fn anonymize(data: &DataSet, k: usize) -> AnonymizedView {
        Anonymizer::new(AnonymizationMethod::MaxEntropy, KAnonymityRequirement(k))
            .anonymize(data, &QIDS)
            .unwrap()
    }

    #[test]
    fn pair_accounting_is_exact() {
        let (a, b) = inputs(300, 41);
        let va = anonymize(&a, 8);
        let vb = anonymize(&b, 16); // asymmetric k is allowed (§I)
        let rule = MatchingRule::uniform(a.schema(), &QIDS, 0.05);
        let out = BlockingEngine::new(rule).run(&va, &vb).unwrap();
        assert_eq!(out.total_pairs, 300 * 300);
        assert_eq!(
            out.matched_pairs + out.nonmatched_pairs + out.unknown_pairs,
            out.total_pairs
        );
        assert!(out.efficiency() > 0.0 && out.efficiency() <= 1.0);
        assert!((out.efficiency() + out.sufficient_allowance() - 1.0).abs() < 1e-12);
    }

    /// Soundness: every pair in an M class-pair truly matches; every pair
    /// in an N class-pair truly mismatches. This is the paper's 100 %
    /// precision claim, checked against brute-force ground truth.
    #[test]
    fn blocking_is_sound() {
        let (a, b) = inputs(200, 43);
        let va = anonymize(&a, 4);
        let vb = anonymize(&b, 4);
        let rule = MatchingRule::uniform(a.schema(), &QIDS, 0.05);
        let out = BlockingEngine::new(rule.clone()).run(&va, &vb).unwrap();
        let schema = a.schema();

        for m in &out.matched {
            let rc = &va.classes()[m.r_class as usize];
            let sc = &vb.classes()[m.s_class as usize];
            for &ri in &rc.rows {
                for &si in &sc.rows {
                    assert!(
                        records_match(
                            schema,
                            &QIDS,
                            &rule,
                            &a.records()[ri as usize],
                            &b.records()[si as usize]
                        ),
                        "M pair must truly match"
                    );
                }
            }
        }
        // N pairs: everything not in matched/unknown. Reconstruct a quick
        // lookup of U/M class pairs and verify a sample of the rest.
        use std::collections::HashSet;
        let undecided: HashSet<(u32, u32)> = out
            .unknown
            .iter()
            .chain(&out.matched)
            .map(|p| (p.r_class, p.s_class))
            .collect();
        for (ri_class, rc) in va.classes().iter().enumerate() {
            for (si_class, sc) in vb.classes().iter().enumerate() {
                if undecided.contains(&(ri_class as u32, si_class as u32)) {
                    continue;
                }
                // Labeled N: sample the corner records.
                let r = &a.records()[rc.rows[0] as usize];
                let s = &b.records()[sc.rows[0] as usize];
                assert!(
                    !records_match(schema, &QIDS, &rule, r, s),
                    "N pair must truly mismatch"
                );
            }
        }
    }

    #[test]
    fn higher_k_lowers_efficiency() {
        // Fig. 3's monotone trend, on synthetic data. Greedy anonymizers
        // are not perfectly monotone point-to-point, so compare extremes.
        let (a, b) = inputs(400, 47);
        let rule = MatchingRule::uniform(a.schema(), &QIDS, 0.05);
        let engine = BlockingEngine::new(rule);
        let eff = |k: usize| {
            engine
                .run(&anonymize(&a, k), &anonymize(&b, k))
                .unwrap()
                .efficiency()
        };
        let (lo_k, hi_k) = (eff(2), eff(128));
        assert!(
            lo_k >= hi_k,
            "efficiency at k=2 ({lo_k:.4}) should dominate k=128 ({hi_k:.4})"
        );
    }

    #[test]
    fn qid_mismatch_rejected() {
        let (a, b) = inputs(60, 51);
        let va = Anonymizer::new(AnonymizationMethod::MaxEntropy, KAnonymityRequirement(2))
            .anonymize(&a, &[0, 1])
            .unwrap();
        let vb = Anonymizer::new(AnonymizationMethod::MaxEntropy, KAnonymityRequirement(2))
            .anonymize(&b, &[0, 2])
            .unwrap();
        let rule = MatchingRule::uniform(a.schema(), &[0, 1], 0.05);
        assert_eq!(
            BlockingEngine::new(rule).run(&va, &vb).unwrap_err(),
            BlockingError::QidMismatch
        );
    }

    /// Chunked execution is exactly the one-shot run: any chunk width
    /// yields the same outcome (tallies, class-pair lists, order) when the
    /// chunks are assembled in index order.
    #[test]
    fn chunked_run_assembles_to_the_one_shot_outcome() {
        let (a, b) = inputs(250, 59);
        let va = anonymize(&a, 8);
        let vb = anonymize(&b, 16);
        let rule = MatchingRule::uniform(a.schema(), &QIDS, 0.05);
        let engine = BlockingEngine::new(rule);
        let full = engine.run(&va, &vb).unwrap();
        for per in [1usize, 3, 7, va.classes().len(), va.classes().len() + 10] {
            let chunks: Vec<BlockingChunk> = (0..engine.chunk_count(&va, per))
                .map(|i| engine.run_chunk(&va, &vb, i, per).unwrap())
                .collect();
            let m: u64 = chunks.iter().map(|c| c.tallies().0).sum();
            assert_eq!(m, full.matched_pairs, "per-chunk tallies sum to the total");
            let assembled = engine.assemble(&va, &vb, chunks).unwrap();
            assert_eq!(assembled.total_pairs, full.total_pairs);
            assert_eq!(assembled.matched_pairs, full.matched_pairs);
            assert_eq!(assembled.nonmatched_pairs, full.nonmatched_pairs);
            assert_eq!(assembled.unknown_pairs, full.unknown_pairs);
            assert_eq!(assembled.matched, full.matched);
            assert_eq!(assembled.unknown, full.unknown, "grid order preserved");
        }
    }

    /// The parallel scan is the sequential scan, bit for bit: same
    /// tallies, same class-pair lists, same grid order, at every thread
    /// count (including more workers than chunks).
    #[test]
    fn parallel_run_is_byte_identical_to_sequential() {
        let (a, b) = inputs(250, 67);
        let va = anonymize(&a, 8);
        let vb = anonymize(&b, 16);
        let rule = MatchingRule::uniform(a.schema(), &QIDS, 0.05);
        let engine = BlockingEngine::new(rule);
        let seq = engine.run(&va, &vb).unwrap();
        for threads in [1usize, 2, 3, 4, 8, 64] {
            let par = engine.run_parallel(&va, &vb, threads).unwrap();
            assert_eq!(par.total_pairs, seq.total_pairs, "threads={threads}");
            assert_eq!(par.matched_pairs, seq.matched_pairs, "threads={threads}");
            assert_eq!(par.nonmatched_pairs, seq.nonmatched_pairs, "threads={threads}");
            assert_eq!(par.unknown_pairs, seq.unknown_pairs, "threads={threads}");
            assert_eq!(par.matched, seq.matched, "threads={threads}");
            assert_eq!(par.unknown, seq.unknown, "threads={threads}");
        }
    }

    #[test]
    fn chunk_plan_rejects_gaps_and_out_of_range_indexes() {
        let (a, b) = inputs(120, 61);
        let va = anonymize(&a, 8);
        let vb = anonymize(&b, 8);
        let rule = MatchingRule::uniform(a.schema(), &QIDS, 0.05);
        let engine = BlockingEngine::new(rule);
        let per = 2usize;
        let n = engine.chunk_count(&va, per);
        assert!(matches!(
            engine.run_chunk(&va, &vb, n, per),
            Err(BlockingError::ChunkOutOfRange { .. })
        ));
        // Dropping a middle chunk must not silently under-count.
        let mut chunks: Vec<BlockingChunk> = (0..n)
            .map(|i| engine.run_chunk(&va, &vb, i, per).unwrap())
            .collect();
        if chunks.len() > 2 {
            chunks.remove(1);
            assert!(matches!(
                engine.assemble(&va, &vb, chunks),
                Err(BlockingError::ChunkOutOfRange { .. })
            ));
        }
    }

    #[test]
    fn suppressed_records_count_as_unknown() {
        let (a, b) = inputs(150, 53);
        // DataFly suppresses; MaxEntropy never does.
        let va = Anonymizer::new(AnonymizationMethod::Datafly, KAnonymityRequirement(8))
            .anonymize(&a, &QIDS)
            .unwrap();
        let vb = anonymize(&b, 8);
        let rule = MatchingRule::uniform(a.schema(), &QIDS, 0.05);
        let out = BlockingEngine::new(rule).run(&va, &vb).unwrap();
        assert_eq!(
            out.suppressed_pairs,
            va.suppressed().len() as u64 * 150,
            "suppressed rows pair with every S record"
        );
        assert!(out.unknown_pairs >= out.suppressed_pairs);
        assert_eq!(out.total_pairs, 150 * 150);
    }
}
