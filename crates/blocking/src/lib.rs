//! # pprl-blocking — the anonymization-based blocking step (paper §IV)
//!
//! The blocking step decides record pairs using only the published
//! k-anonymous views. For each attribute of a pair of *generalization
//! sequences* it computes two **slack distances** over the corresponding
//! specialization sets:
//!
//! * `sdl` — the infimum of the attribute distance (no pair of originals
//!   can be closer), and
//! * `sds` — the supremum (no pair can be farther).
//!
//! The **slack decision rule** then labels the pair:
//!
//! ```text
//!        ⎧ N  if ∃ i: sdl(v.aᵢ, w.aᵢ) > θᵢ      (provably mismatching)
//! sdr =  ⎨ M  if ∀ i: sds(v.aᵢ, w.aᵢ) ≤ θᵢ      (provably matching)
//!        ⎩ U  otherwise                          (delegated to the SMC step)
//! ```
//!
//! Because anonymized data is "not dirty but imprecise" (§IV), M and N
//! labels are *exact* — this is why the hybrid method's precision is always
//! 100 %. All arithmetic happens per pair of equivalence classes, not per
//! record pair: records sharing a sequence are indistinguishable here
//! (§III: "We do not need to repeat the process for pairs generalized to
//! the same sequences").
//!
//! ```
//! use pprl_anon::{AnonymizationMethod, Anonymizer, KAnonymityRequirement};
//! use pprl_blocking::{BlockingEngine, MatchingRule};
//! use pprl_data::synth::{generate, SynthConfig};
//!
//! let a = generate(&SynthConfig { records: 200, seed: 1 });
//! let b = generate(&SynthConfig { records: 200, seed: 2 });
//! let anon = Anonymizer::new(AnonymizationMethod::MaxEntropy, KAnonymityRequirement(8));
//! let (va, vb) = (anon.anonymize(&a, &[0, 1, 2]).unwrap(),
//!                 anon.anonymize(&b, &[0, 1, 2]).unwrap());
//! let rule = MatchingRule::uniform(a.schema(), &[0, 1, 2], 0.05);
//! let outcome = BlockingEngine::new(rule).run(&va, &vb).unwrap();
//! // Efficiency (share of pairs decided without SMC) varies with the
//! // synthesizer's RNG; under a stub RNG it can degenerate to zero, so
//! // assert only that it is a valid fraction.
//! assert!((0.0..=1.0).contains(&outcome.efficiency()));
//! ```

mod distance;
mod engine;
mod rule;
mod slack;

pub use distance::{
    attribute_distance, records_match, AttrDistance, MatchingRule,
};
pub use engine::{BlockingChunk, BlockingEngine, BlockingOutcome, ClassPairRef};
pub use rule::{slack_decision, PairLabel};
pub use slack::{edit_distance, slack_bounds};

/// Errors from blocking configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum BlockingError {
    /// The two views disagree on their QID lists.
    QidMismatch,
    /// The matching rule's arity differs from the QID count.
    RuleArity { rule: usize, qids: usize },
    /// A threshold is outside `[0, 1]` or non-finite.
    BadThreshold(f64),
    /// A chunk index addressed past the chunk plan (resume against
    /// different inputs, or a corrupted journal).
    ChunkOutOfRange {
        /// The requested chunk.
        index: u32,
        /// Number of chunks the plan actually has.
        chunks: u32,
    },
}

impl std::fmt::Display for BlockingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlockingError::QidMismatch => write!(f, "views have different QID sets"),
            BlockingError::RuleArity { rule, qids } => {
                write!(f, "matching rule arity {rule} != {qids} QIDs")
            }
            BlockingError::BadThreshold(t) => write!(f, "bad threshold {t}"),
            BlockingError::ChunkOutOfRange { index, chunks } => {
                write!(f, "blocking chunk {index} out of range ({chunks} chunks)")
            }
        }
    }
}

impl std::error::Error for BlockingError {}
