//! The slack decision rule `sdr` (paper §IV).

use crate::distance::MatchingRule;
use crate::slack::slack_bounds;
use pprl_anon::GenVal;
use pprl_hierarchy::Vgh;
use serde::{Deserialize, Serialize};

/// Three-way label of a (class or record) pair after blocking.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PairLabel {
    /// Provably matching (every `sds ≤ θᵢ`).
    Match,
    /// Provably mismatching (some `sdl > θᵢ`).
    NonMatch,
    /// Undecidable from the anonymized views alone.
    Unknown,
}

/// Applies `sdr` to two generalization sequences.
///
/// Short-circuits on the first attribute that proves a mismatch — the
/// common case on skewed data, and the reason blocking is cheap.
pub fn slack_decision(
    vghs: &[&Vgh],
    rule: &MatchingRule,
    a: &[GenVal],
    b: &[GenVal],
) -> PairLabel {
    debug_assert_eq!(vghs.len(), a.len());
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(vghs.len(), rule.distances.len());
    let mut all_match = true;
    let attrs = vghs
        .iter()
        .zip(rule.distances.iter().zip(&rule.thetas))
        .zip(a.iter().zip(b));
    for ((vgh, (&dist, &theta)), (av, bv)) in attrs {
        let (sdl, sds) = slack_bounds(vgh, dist, av, bv);
        if sdl > theta {
            return PairLabel::NonMatch;
        }
        if sds > theta {
            all_match = false;
        }
    }
    if all_match {
        PairLabel::Match
    } else {
        PairLabel::Unknown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::AttrDistance;
    use pprl_hierarchy::{IntervalHierarchy, TaxSpec, Taxonomy};

    /// The paper's §III running example: Education × Work Hrs.
    fn setup() -> (Vgh, Vgh) {
        let edu = Taxonomy::from_spec(
            "education",
            &TaxSpec::node(
                "ANY",
                vec![
                    TaxSpec::node(
                        "Secondary",
                        vec![
                            TaxSpec::node(
                                "Junior Sec.",
                                vec![TaxSpec::leaf("9th"), TaxSpec::leaf("10th")],
                            ),
                            TaxSpec::node(
                                "Senior Sec.",
                                vec![TaxSpec::leaf("11th"), TaxSpec::leaf("12th")],
                            ),
                        ],
                    ),
                    TaxSpec::node(
                        "University",
                        vec![
                            TaxSpec::leaf("Bachelors"),
                            TaxSpec::node(
                                "Grad School",
                                vec![TaxSpec::leaf("Masters"), TaxSpec::leaf("Doctorate")],
                            ),
                        ],
                    ),
                ],
            ),
        )
        .unwrap();
        let hrs = IntervalHierarchy::from_spec(
            "work-hrs",
            &pprl_hierarchy::IntervalSpec::node(
                1.0,
                99.0,
                vec![
                    pprl_hierarchy::IntervalSpec::node(
                        1.0,
                        37.0,
                        vec![
                            pprl_hierarchy::IntervalSpec::leaf(1.0, 35.0),
                            pprl_hierarchy::IntervalSpec::leaf(35.0, 37.0),
                        ],
                    ),
                    pprl_hierarchy::IntervalSpec::leaf(37.0, 99.0),
                ],
            ),
        )
        .unwrap();
        (Vgh::Categorical(edu), Vgh::Continuous(hrs))
    }

    fn rule() -> MatchingRule {
        MatchingRule {
            thetas: vec![0.5, 0.2],
            distances: vec![AttrDistance::Hamming, AttrDistance::NormalizedEuclidean],
        }
    }

    fn seq(edu: &Vgh, label: &str, lo: f64, hi: f64) -> Vec<GenVal> {
        let node = edu.as_taxonomy().unwrap().node_by_label(label).unwrap();
        vec![GenVal::Cat(node), GenVal::Range { lo, hi }]
    }

    #[test]
    fn paper_mismatch_r1_s5() {
        // (Masters, [35-37)) vs (Senior Sec., [1-35)): the Education slack
        // infimum is 1 > 0.5 ⇒ N (paper §III).
        let (edu, hrs) = setup();
        let vghs = [&edu, &hrs];
        let a = seq(&edu, "Masters", 35.0, 37.0);
        let b = seq(&edu, "Senior Sec.", 1.0, 35.0);
        assert_eq!(slack_decision(&vghs, &rule(), &a, &b), PairLabel::NonMatch);
    }

    #[test]
    fn paper_match_r1_s1() {
        // (Masters, [35-37)) vs (Masters, [35-37)): equal singleton leaf +
        // interval span 2 ≤ 0.2·98 ⇒ M (paper §III).
        let (edu, hrs) = setup();
        let vghs = [&edu, &hrs];
        let a = seq(&edu, "Masters", 35.0, 37.0);
        assert_eq!(slack_decision(&vghs, &rule(), &a, &a), PairLabel::Match);
    }

    #[test]
    fn paper_unknown_r1_s3() {
        // (Masters, [35-37)) vs (ANY, [1-35)): Education could match
        // (specSets intersect) and Work Hrs could go either way ⇒ U.
        let (edu, hrs) = setup();
        let vghs = [&edu, &hrs];
        let a = seq(&edu, "Masters", 35.0, 37.0);
        let b = seq(&edu, "ANY", 1.0, 35.0);
        assert_eq!(slack_decision(&vghs, &rule(), &a, &b), PairLabel::Unknown);
    }

    #[test]
    fn all_attributes_must_agree_for_match() {
        let (edu, hrs) = setup();
        let vghs = [&edu, &hrs];
        // Education matches exactly, but Work Hrs spans the whole domain.
        let a = seq(&edu, "Masters", 1.0, 99.0);
        assert_eq!(slack_decision(&vghs, &rule(), &a, &a), PairLabel::Unknown);
    }

    #[test]
    fn numeric_gap_can_prove_mismatch() {
        let (edu, hrs) = setup();
        let vghs = [&edu, &hrs];
        // Education equal; Work Hrs [1-35) vs [37-99): gap 2/98 ≈ 0.0204.
        let mut a = seq(&edu, "Masters", 1.0, 35.0);
        let b = seq(&edu, "Masters", 37.0, 99.0);
        // θ₂ = 0.2 → gap is fine → still Unknown (span too wide to match).
        assert_eq!(slack_decision(&vghs, &rule(), &a, &b), PairLabel::Unknown);
        // Tighten θ₂ below the gap → provable mismatch.
        let tight = MatchingRule {
            thetas: vec![0.5, 0.01],
            distances: vec![AttrDistance::Hamming, AttrDistance::NormalizedEuclidean],
        };
        assert_eq!(slack_decision(&vghs, &tight, &a, &b), PairLabel::NonMatch);
        // And matching intervals at tight θ₂ still match when narrow enough.
        a[1] = GenVal::Range { lo: 35.0, hi: 37.0 };
        let c = a.clone();
        assert_eq!(slack_decision(&vghs, &tight, &a, &c), PairLabel::Unknown);
    }
}
