//! Slack distance functions `sdl` (infimum) and `sds` (supremum), paper §IV.
//!
//! For generalized values `v = gen(r).aᵢ` and `w = gen(s).aᵢ`, the original
//! pair `(r.aᵢ, s.aᵢ)` is guaranteed to lie in `specSet(v) × specSet(w)`;
//! `sdl`/`sds` bound the attribute distance over that product set.

use crate::distance::{max_label_len, AttrDistance};
use pprl_anon::GenVal;
use pprl_hierarchy::{Taxonomy, Vgh};

/// Computes `(sdl, sds)` for one attribute.
///
/// A distance function paired with the wrong hierarchy kind (a
/// mis-assembled rule) degrades to the vacuous bounds `(0, 1)` — the
/// pair stays *undecided* and falls through to the SMC step, which never
/// mislabels — instead of aborting mid-protocol.
pub fn slack_bounds(vgh: &Vgh, dist: AttrDistance, a: &GenVal, b: &GenVal) -> (f64, f64) {
    match dist {
        AttrDistance::Hamming => {
            let Some(t) = vgh.as_taxonomy() else {
                debug_assert!(false, "Hamming paired with a continuous hierarchy");
                return (0.0, 1.0);
            };
            hamming_bounds(t, a.as_cat(), b.as_cat())
        }
        AttrDistance::NormalizedEuclidean => {
            let Some(h) = vgh.as_intervals() else {
                debug_assert!(false, "Euclidean paired with a categorical hierarchy");
                return (0.0, 1.0);
            };
            let (a_lo, a_hi) = a.as_range();
            let (b_lo, b_hi) = b.as_range();
            euclidean_bounds(a_lo, a_hi, b_lo, b_hi, h.norm_factor())
        }
        AttrDistance::NormalizedEdit => {
            let Some(t) = vgh.as_taxonomy() else {
                debug_assert!(false, "edit distance paired with a continuous hierarchy");
                return (0.0, 1.0);
            };
            edit_bounds(t, a.as_cat(), b.as_cat())
        }
    }
}

/// Hamming: the originals *can* be equal iff the specialization sets
/// intersect (`sdl = 0`); they *must* be equal iff both sets are the same
/// singleton (`sds = 0`).
fn hamming_bounds(t: &Taxonomy, a: pprl_hierarchy::NodeId, b: pprl_hierarchy::NodeId) -> (f64, f64) {
    let overlap = t.spec_set_overlap(a, b);
    let sdl = if overlap > 0 { 0.0 } else { 1.0 };
    let both_same_singleton =
        t.spec_set_size(a) == 1 && t.spec_set_size(b) == 1 && overlap == 1;
    let sds = if both_same_singleton { 0.0 } else { 1.0 };
    (sdl, sds)
}

/// Normalized Euclidean over intervals `[a_lo, a_hi) × [b_lo, b_hi)`:
/// infimum is the gap between the intervals (0 when they overlap), supremum
/// is the widest end-to-end span.
fn euclidean_bounds(a_lo: f64, a_hi: f64, b_lo: f64, b_hi: f64, norm: f64) -> (f64, f64) {
    let gap = (a_lo.max(b_lo) - a_hi.min(b_hi)).max(0.0);
    let span = (b_hi - a_lo).max(a_hi - b_lo);
    (gap / norm, span / norm)
}

/// Edit-distance bounds by exhaustive evaluation over the (finite)
/// specialization sets — the literal §IV definitions
/// `sdl = inf …`, `sds = sup …`. String domains are small (name/address
/// dictionaries), and the engine memoizes per node pair.
fn edit_bounds(t: &Taxonomy, a: pprl_hierarchy::NodeId, b: pprl_hierarchy::NodeId) -> (f64, f64) {
    let norm = max_label_len(t) as f64;
    let mut inf = f64::INFINITY;
    let mut sup = f64::NEG_INFINITY;
    for pa in t.leaves_under(a) {
        let la = t.label(t.leaf_node(pa));
        for pb in t.leaves_under(b) {
            let lb = t.label(t.leaf_node(pb));
            let d = edit_distance(la, lb) as f64 / norm;
            inf = inf.min(d);
            sup = sup.max(d);
        }
    }
    (inf, sup)
}

/// Levenshtein distance (unit costs), O(|a|·|b|) time with a *single*
/// row updated in place (the previous row's cell is carried through two
/// scalars, `diag` and `left`), and no indexed access anywhere in the
/// hot inner loop.
pub fn edit_distance(a: &str, b: &str) -> usize {
    let b_chars: Vec<char> = b.chars().collect();
    if b_chars.is_empty() {
        return a.chars().count();
    }
    // row[j] = distance(a[..i], b[..j]) for the current prefix of `a`.
    let mut row: Vec<usize> = (0..=b_chars.len()).collect();
    for (i, ca) in a.chars().enumerate() {
        // Entering row i+1: row still holds row i. diag walks the old
        // row one cell behind the in-place update; left is the freshly
        // written cell to the west.
        let mut diag = i;
        let mut left = i + 1;
        for (cell, &cb) in row.iter_mut().skip(1).zip(&b_chars) {
            let up = *cell;
            let sub = diag + usize::from(ca != cb);
            let val = sub.min(up + 1).min(left + 1);
            *cell = val;
            diag = up;
            left = val;
        }
        if let Some(first) = row.first_mut() {
            *first = i + 1;
        }
    }
    row.last().copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pprl_hierarchy::{prefix_hierarchy, TaxSpec};

    fn edu() -> Taxonomy {
        Taxonomy::from_spec(
            "edu",
            &TaxSpec::node(
                "ANY",
                vec![
                    TaxSpec::node(
                        "Senior Sec.",
                        vec![TaxSpec::leaf("11th"), TaxSpec::leaf("12th")],
                    ),
                    TaxSpec::node(
                        "Grad",
                        vec![TaxSpec::leaf("Masters"), TaxSpec::leaf("Doctorate")],
                    ),
                ],
            ),
        )
        .unwrap()
    }

    #[test]
    fn paper_example_masters_vs_senior_sec() {
        // §III: d₁(r₁.a₁, s₅.a₁) = 1 because no specialization of
        // "Senior Sec." equals Masters → provable mismatch at θ = 0.5.
        let t = edu();
        let masters = t.node_by_label("Masters").unwrap();
        let senior = t.node_by_label("Senior Sec.").unwrap();
        let (sdl, sds) = hamming_bounds(&t, masters, senior);
        assert_eq!(sdl, 1.0);
        assert_eq!(sds, 1.0);
    }

    #[test]
    fn paper_example_masters_vs_masters() {
        // §III: both un-generalized and equal → distance exactly 0.
        let t = edu();
        let masters = t.node_by_label("Masters").unwrap();
        let (sdl, sds) = hamming_bounds(&t, masters, masters);
        assert_eq!(sdl, 0.0);
        assert_eq!(sds, 0.0);
    }

    #[test]
    fn overlapping_generalizations_are_undecided() {
        // ANY vs Masters: could be equal (sdl=0) or differ (sds=1).
        let t = edu();
        let any = t.root();
        let masters = t.node_by_label("Masters").unwrap();
        let (sdl, sds) = hamming_bounds(&t, any, masters);
        assert_eq!(sdl, 0.0);
        assert_eq!(sds, 1.0);
        // Same non-singleton node vs itself: records may still differ.
        let grad = t.node_by_label("Grad").unwrap();
        let (sdl, sds) = hamming_bounds(&t, grad, grad);
        assert_eq!((sdl, sds), (0.0, 1.0));
    }

    #[test]
    fn euclidean_bounds_paper_example() {
        // §III: both values in [35, 37) → sup < 19.6 at norm 98, so the
        // pair matches at θ₂ = 0.2.
        let (sdl, sds) = euclidean_bounds(35.0, 37.0, 35.0, 37.0, 98.0);
        assert_eq!(sdl, 0.0);
        assert!((sds - 2.0 / 98.0).abs() < 1e-12);
        assert!(sds <= 0.2);
    }

    #[test]
    fn euclidean_bounds_disjoint_intervals() {
        let (sdl, sds) = euclidean_bounds(0.0, 10.0, 30.0, 40.0, 100.0);
        assert!((sdl - 0.2).abs() < 1e-12); // gap 20
        assert!((sds - 0.4).abs() < 1e-12); // span 40
        // Symmetry.
        let (sdl2, sds2) = euclidean_bounds(30.0, 40.0, 0.0, 10.0, 100.0);
        assert_eq!((sdl, sds), (sdl2, sds2));
    }

    #[test]
    fn euclidean_bounds_nested_intervals() {
        let (sdl, sds) = euclidean_bounds(0.0, 100.0, 40.0, 50.0, 100.0);
        assert_eq!(sdl, 0.0);
        assert!((sds - 0.6).abs() < 1e-12); // max(50-0, 100-40)=60
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("abc", ""), 3);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("smith", "smyth"), 1);
        assert_eq!(edit_distance("a", "a"), 0);
    }

    #[test]
    fn edit_bounds_bracket_all_leaf_pairs() {
        let t = prefix_hierarchy(
            "surname",
            &["smith", "smythe", "stone", "jones"],
            &[1, 2],
        )
        .unwrap();
        let norm = max_label_len(&t) as f64;
        let s_star = t.node_by_label("s*").unwrap();
        let jones = t.node_by_label("jones").unwrap();
        let (sdl, sds) = edit_bounds(&t, s_star, jones);
        // Bounds must bracket every concrete pair.
        for name in ["smith", "smythe", "stone"] {
            let d = edit_distance(name, "jones") as f64 / norm;
            assert!(sdl <= d + 1e-12 && d <= sds + 1e-12, "{name}");
        }
        // Identical singleton: exact zero.
        let (sdl, sds) = edit_bounds(&t, jones, jones);
        assert_eq!((sdl, sds), (0.0, 0.0));
    }
}
