//! CLK construction, Dice matching, and BLIP bit flipping.

use std::fmt;

/// Flip-stream side tag for the first (querier-side / Alice) data set.
pub const SIDE_A: u8 = 0;
/// Flip-stream side tag for the second (Bob) data set.
pub const SIDE_B: u8 = 1;

/// Tuning knobs for the CLK backend. All-integer so the `Debug`
/// rendering — which feeds the job fingerprint — is byte-stable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClkParams {
    /// Bloom filter length in bits.
    pub filter_len: u32,
    /// Bits set per q-gram (double-hashing iterations).
    pub hashes: u32,
    /// q-gram width in characters.
    pub q: u32,
    /// Dice-similarity match threshold in thousandths (800 = 0.8).
    pub threshold_millis: u32,
    /// DP budget ε in thousandths (5000 = ε 5.0); 0 disables flipping.
    pub epsilon_millis: u32,
    /// Keys the q-gram hash family and the per-row flip streams.
    pub seed: u64,
}

impl ClkParams {
    /// The PACE exemplar's published configuration: 1000-bit filters,
    /// 30 hash functions, bigrams, 0.8 Dice threshold, flipping off.
    pub fn paper_defaults(seed: u64) -> Self {
        ClkParams {
            filter_len: 1000,
            hashes: 30,
            q: 2,
            threshold_millis: 800,
            epsilon_millis: 0,
            seed,
        }
    }

    /// Bounds check; every constructor in core/cli funnels through this
    /// so a nonsense filter never reaches the wire codec.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.filter_len < 8 || self.filter_len > 1 << 20 {
            return Err("clk filter length must be in 8..=1048576 bits");
        }
        if self.hashes == 0 || self.hashes > 256 {
            return Err("clk hash count must be in 1..=256");
        }
        if self.q == 0 || self.q > 8 {
            return Err("clk q-gram width must be in 1..=8");
        }
        if self.threshold_millis > 1000 {
            return Err("clk threshold is a fraction in thousandths (0..=1000)");
        }
        if self.epsilon_millis > 30_000 {
            return Err("clk epsilon is capped at 30.0 (30000 millis)");
        }
        Ok(())
    }

    /// Wire size of one encoded filter payload body (excluding tag and
    /// flip counter): packed bits, LSB-first within each byte.
    pub fn filter_bytes(&self) -> usize {
        (self.filter_len as usize).div_ceil(8)
    }
}

/// One record's Bloom-filter encoding. Bit `j` lives at byte `j / 8`,
/// position `j % 8`; padding bits past `nbits` are always zero (the
/// wire codec rejects filters that violate this).
#[derive(Clone, PartialEq, Eq)]
pub struct Clk {
    bits: Vec<u8>,
    nbits: u32,
}

// pprl:allow(secret-leak): redacting impl — reveals only the filter shape
impl fmt::Debug for Clk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Clk")
            .field("nbits", &self.nbits)
            .field("ones", &self.ones())
            .finish_non_exhaustive()
    }
}

impl Clk {
    /// All-zero filter of `nbits` bits.
    pub fn zero(nbits: u32) -> Self {
        Clk {
            bits: vec![0u8; (nbits as usize).div_ceil(8)],
            nbits,
        }
    }

    /// Reconstructs a filter from packed wire bytes. `None` when the
    /// byte count does not match `nbits` or a padding bit is set.
    pub fn from_bytes(nbits: u32, bits: Vec<u8>) -> Option<Self> {
        if bits.len() != (nbits as usize).div_ceil(8) {
            return None;
        }
        let tail = nbits % 8;
        if tail != 0 {
            let mask = !0u8 << tail;
            if bits.last().is_some_and(|b| b & mask != 0) {
                return None;
            }
        }
        Some(Clk { bits, nbits })
    }

    /// Filter length in bits.
    pub fn nbits(&self) -> u32 {
        self.nbits
    }

    /// Packed filter bytes, ready for the wire.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bits
    }

    /// Population count.
    pub fn ones(&self) -> u32 {
        self.bits.iter().map(|b| b.count_ones()).sum()
    }

    fn set(&mut self, bit: u32) {
        if bit >= self.nbits {
            return;
        }
        if let Some(byte) = self.bits.get_mut((bit / 8) as usize) {
            *byte |= 1u8 << (bit % 8);
        }
    }

    fn toggle(&mut self, bit: u32) {
        if bit >= self.nbits {
            return;
        }
        if let Some(byte) = self.bits.get_mut((bit / 8) as usize) {
            *byte ^= 1u8 << (bit % 8);
        }
    }
}

// pprl:allow(secret-leak): redacting impl — prints shape, never bit data
impl fmt::Display for Clk {
    /// Deliberately terse: a filter is derived from record contents, so
    /// its bits never belong in logs — only the shape does.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "clk[{} bits, {} set]", self.nbits, self.ones())
    }
}

/// FNV-1a over `bytes`, starting from `basis` — the workspace-standard
/// hash, reseeded so each (seed, field) slot gets its own gram family.
fn fnv1a64_seeded(basis: u64, bytes: &[u8]) -> u64 {
    let mut hash = basis;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
/// Decorrelates the second hash of the double-hashing scheme from the
/// first (golden-ratio constant, as in the executor's RNG forking).
const H2_TWEAK: u64 = 0x9e37_79b9_7f4a_7c15;

/// Inserts one q-gram: double hashing g_i = h1 + i·h2 (mod filter_len),
/// the standard simulation of `hashes` independent hash functions.
fn insert_gram(clk: &mut Clk, params: &ClkParams, field_idx: u64, gram: &[u8]) {
    let h1 = fnv1a64_seeded(FNV_BASIS ^ params.seed ^ field_idx, gram);
    // Forcing h2 odd keeps the probe sequence from collapsing onto a
    // short cycle when h2 shares a factor with the filter length.
    let h2 = fnv1a64_seeded(FNV_BASIS ^ params.seed.rotate_left(17) ^ H2_TWEAK ^ field_idx, gram) | 1;
    let len = u64::from(params.filter_len.max(1));
    for i in 0..u64::from(params.hashes) {
        let g = h1.wrapping_add(i.wrapping_mul(h2)) % len;
        clk.set(g as u32);
    }
}

/// Encodes canonicalized field strings as one composite CLK: each field
/// is padded with `q - 1` sentinel characters on both ends, split into
/// overlapping character q-grams, and hashed into the shared filter
/// under a per-field hash family (field 0's "ab" never collides with
/// field 1's "ab" by construction).
pub fn encode_fields<S: AsRef<str>>(params: &ClkParams, fields: &[S]) -> Clk {
    let mut clk = Clk::zero(params.filter_len);
    let q = params.q.max(1) as usize;
    for (idx, field) in fields.iter().enumerate() {
        let mut chars: Vec<char> = vec!['#'; q - 1];
        chars.extend(field.as_ref().chars());
        chars.resize(chars.len() + q - 1, '#');
        if chars.len() < q {
            continue;
        }
        let mut gram = String::new();
        for window in chars.windows(q) {
            gram.clear();
            gram.extend(window.iter());
            insert_gram(&mut clk, params, idx as u64, gram.as_bytes());
        }
    }
    clk
}

/// The three tallies a Dice decision needs. Shipping tallies instead of
/// the second filter is what keeps Bob's bits off the querier leg.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DiceCounts {
    pub a_ones: u32,
    pub b_ones: u32,
    pub common: u32,
}

impl DiceCounts {
    /// Tallies for a filter pair; `None` when the lengths disagree
    /// (mixed parameter sets must fail loudly upstream, not fuzzily).
    pub fn of(a: &Clk, b: &Clk) -> Option<DiceCounts> {
        if a.nbits != b.nbits {
            return None;
        }
        let common = a
            .bits
            .iter()
            .zip(b.bits.iter())
            .map(|(x, y)| (x & y).count_ones())
            .sum();
        Some(DiceCounts {
            a_ones: a.ones(),
            b_ones: b.ones(),
            common,
        })
    }
}

/// Dice similarity in thousandths: `2000·|A∩B| / (|A|+|B|)`, with the
/// degenerate both-empty case pinned to exact similarity.
pub fn dice_millis(counts: &DiceCounts) -> u32 {
    let denom = u64::from(counts.a_ones) + u64::from(counts.b_ones);
    if denom == 0 {
        return 1000;
    }
    let num = 2000u64 * u64::from(counts.common);
    (num / denom).min(u32::MAX as u64) as u32
}

/// The match decision, in exact integer arithmetic:
/// `2·common / (a_ones + b_ones) >= threshold` with no rounding step,
/// so every party — and every resume — lands on the same verdict.
pub fn dice_match(counts: &DiceCounts, threshold_millis: u32) -> bool {
    let denom = u64::from(counts.a_ones) + u64::from(counts.b_ones);
    if denom == 0 {
        return true;
    }
    2000u64 * u64::from(counts.common) >= u64::from(threshold_millis) * denom
}

/// `e^(x/1000)` in Q32 fixed point via the Taylor series — integer-only
/// so the flip threshold is identical on every build of every party.
fn exp_q32(x_millis: u32) -> u128 {
    const S: u128 = 1u128 << 32;
    let x = (u128::from(x_millis) << 32) / 1000;
    let mut term = S;
    let mut sum = S;
    let mut k: u128 = 1;
    // Terms vanish by k ≈ 3·x for the capped ε range; 128 is a hard
    // stop for the analyzer, not a precision knob.
    while term > 0 && k < 128 {
        term = term * x / (S * k);
        sum += term;
        k += 1;
    }
    sum
}

/// BLIP flip threshold: a draw `u < blip_threshold(ε)` from a uniform
/// u64 flips the bit, i.e. `p = 1 / (1 + e^ε)` scaled to 2^64. Returns
/// 0 (never flip) when the budget is 0 = disabled.
pub fn blip_threshold(epsilon_millis: u32) -> u64 {
    if epsilon_millis == 0 {
        return 0;
    }
    const S: u128 = 1u128 << 32;
    let e = exp_q32(epsilon_millis);
    ((1u128 << 96) / (S + e)) as u64
}

/// splitmix64 step — the workspace's standard cheap deterministic
/// stream (same constants as the crash-recovery kill scheduler).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Applies the BLIP mechanism in place and returns the number of bits
/// flipped. The stream is keyed by `(params.seed, side, row)` alone —
/// no ambient RNG state — so a crash-resumed party re-derives the exact
/// noise it journaled before dying.
pub fn blip_flip(clk: &mut Clk, params: &ClkParams, side: u8, row: u32) -> u32 {
    let threshold = blip_threshold(params.epsilon_millis);
    if threshold == 0 {
        return 0;
    }
    let mut state = params
        .seed
        ^ (u64::from(side) << 62)
        ^ u64::from(row).wrapping_mul(0x0000_0100_0000_01b3);
    // One warm-up draw decouples nearby (side, row) keys.
    let _ = splitmix64(&mut state);
    let mut flips = 0u32;
    for bit in 0..clk.nbits() {
        if splitmix64(&mut state) < threshold {
            clk.toggle(bit);
            flips += 1;
        }
    }
    flips
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ClkParams {
        ClkParams::paper_defaults(42)
    }

    #[test]
    fn paper_defaults_validate() {
        assert_eq!(params().validate(), Ok(()));
        assert_eq!(params(), ClkParams::paper_defaults(42));
        let mut bad = params();
        bad.filter_len = 4;
        assert!(bad.validate().is_err());
        bad = params();
        bad.threshold_millis = 1001;
        assert!(bad.validate().is_err());
        bad = params();
        bad.epsilon_millis = 40_000;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn encoding_is_deterministic_and_nonempty() {
        let a = encode_fields(&params(), &["smith", "john", "1970"]);
        let b = encode_fields(&params(), &["smith", "john", "1970"]);
        assert_eq!(a, b);
        assert!(a.ones() > 0);
        assert_eq!(a.nbits(), 1000);
        assert_eq!(a.as_bytes().len(), 125);
    }

    #[test]
    fn similar_strings_score_above_disjoint_ones() {
        let p = params();
        let a = encode_fields(&p, &["smith"]);
        let b = encode_fields(&p, &["smyth"]);
        let c = encode_fields(&p, &["quarterly"]);
        let ab = DiceCounts::of(&a, &b).expect("same length");
        let ac = DiceCounts::of(&a, &c).expect("same length");
        assert!(dice_millis(&ab) > dice_millis(&ac));
        assert!(dice_match(&DiceCounts::of(&a, &a).expect("same"), 1000));
    }

    #[test]
    fn fields_are_namespaced() {
        let p = params();
        let ab = encode_fields(&p, &["ab", ""]);
        let ba = encode_fields(&p, &["", "ab"]);
        assert_ne!(ab, ba, "field index must key the hash family");
    }

    #[test]
    fn empty_pair_is_exact_match() {
        let c = DiceCounts {
            a_ones: 0,
            b_ones: 0,
            common: 0,
        };
        assert!(dice_match(&c, 1000));
        assert_eq!(dice_millis(&c), 1000);
    }

    #[test]
    fn mismatched_lengths_refuse() {
        let a = Clk::zero(1000);
        let b = Clk::zero(992);
        assert!(DiceCounts::of(&a, &b).is_none());
    }

    #[test]
    fn padding_bits_are_rejected() {
        assert!(Clk::from_bytes(10, vec![0xff, 0x03]).is_some());
        assert!(Clk::from_bytes(10, vec![0xff, 0x04]).is_none());
        assert!(Clk::from_bytes(10, vec![0xff]).is_none());
        assert!(Clk::from_bytes(10, vec![0xff, 0x03, 0x00]).is_none());
    }

    #[test]
    fn blip_threshold_brackets() {
        // ε = 0 is "disabled", not "coin flip".
        assert_eq!(blip_threshold(0), 0);
        // ε → tiny approaches p = 1/2.
        let near_half = blip_threshold(1);
        let half = 1u64 << 63;
        assert!(near_half < half && half - near_half < half / 1000);
        // ε = 5 ⇒ p = 1/(1+e^5) ≈ 0.00669.
        let p5 = blip_threshold(5000) as f64 / (1u64 << 63) as f64 / 2.0;
        assert!((p5 - 0.00669).abs() < 0.0002, "p(ε=5) = {p5}");
        // Monotone: more budget, less noise.
        assert!(blip_threshold(5000) < blip_threshold(1000));
        assert!(blip_threshold(30_000) < blip_threshold(5000));
    }

    #[test]
    fn blip_is_deterministic_and_keyed() {
        let mut p = params();
        p.epsilon_millis = 2000;
        let base = encode_fields(&p, &["smith", "john"]);
        let mut x = base.clone();
        let mut y = base.clone();
        let fx = blip_flip(&mut x, &p, SIDE_A, 7);
        let fy = blip_flip(&mut y, &p, SIDE_A, 7);
        assert_eq!(x, y);
        assert_eq!(fx, fy);
        let mut z = base.clone();
        let fz = blip_flip(&mut z, &p, SIDE_B, 7);
        // Same row, other side: different noise (overwhelmingly).
        assert!(z != x || fz != fx);
        // Flipping twice with the same key undoes itself (XOR noise).
        let mut back = x.clone();
        blip_flip(&mut back, &p, SIDE_A, 7);
        assert_eq!(back, base);
    }

    #[test]
    fn blip_disabled_is_identity() {
        let p = params();
        let base = encode_fields(&p, &["smith"]);
        let mut x = base.clone();
        assert_eq!(blip_flip(&mut x, &p, SIDE_A, 3), 0);
        assert_eq!(x, base);
    }

    #[test]
    fn blip_flip_rate_tracks_epsilon() {
        let mut p = params();
        p.epsilon_millis = 5000;
        p.filter_len = 1 << 16;
        let mut clk = Clk::zero(p.filter_len);
        let flips = blip_flip(&mut clk, &p, SIDE_A, 0);
        // Expected rate 0.669% of 65536 ≈ 438; allow wide slack.
        assert!((150..=900).contains(&flips), "flips = {flips}");
        assert_eq!(clk.ones(), flips);
    }
}
