//! q-gram CLK Bloom-filter encoding for approximate private matching.
//!
//! The exact Paillier protocol compares attribute distances under
//! homomorphic encryption — cryptographically airtight, but ~hundreds of
//! pairs per second. The PPRL literature's workhorse alternative encodes
//! each record as a **cryptographic long-term key** (CLK): every
//! attribute value is split into overlapping character q-grams and each
//! gram sets `hashes` bits of one shared Bloom filter. Two records are
//! compared by exchanging filters and computing the Dice coefficient of
//! their bit sets; a threshold turns similarity into a match decision.
//!
//! Hardening follows the BLIP construction (Alaggan et al.), the flip
//! mechanism the PACE exemplar parameterizes: each bit of an outgoing
//! filter is independently flipped with probability `p = 1 / (1 + e^ε)`,
//! which makes the released filter ε-differentially private per bit.
//! `epsilon_millis == 0` disables flipping entirely (the exemplar's
//! default posture); smaller ε means more noise, not less.
//!
//! Everything here is integer-only and deterministic: the flip RNG is a
//! splitmix64 stream keyed by `(seed, side, row)`, and the flip
//! threshold is computed with fixed-point arithmetic, so re-encoding the
//! same record on any party or after a crash-resume yields bit-identical
//! filters — the property the journal's byte-identity contract rides on.

mod clk;
pub mod wire;

pub use clk::{
    blip_flip, blip_threshold, dice_match, dice_millis, encode_fields, Clk, ClkParams,
    DiceCounts, SIDE_A, SIDE_B,
};
pub use wire::{
    clk_msg_len, decode_clk, decode_dice, encode_clk, encode_dice, DiceMsg, WireError,
    DICE_MSG_LEN, TAG_CLK, TAG_DICE,
};
