//! Wire codecs for the CLK exchange.
//!
//! Two payloads ride the existing `PeerChannel` framing (which already
//! provides length prefixes and CRCs; these codecs add the strict
//! shape/invariant checks the crypto payloads get from their own tags):
//!
//! * [`TAG_CLK`] — Alice → Bob: one packed filter plus the DP flip
//!   count applied to it. Fixed width for a given `filter_len`.
//! * [`TAG_DICE`] — Bob → querier: the Dice tallies for one pair plus
//!   the pair's total flip count. Bob's own filter never crosses the
//!   querier leg — tallies reveal strictly less than bits.
//!
//! Both decoders are exact-width: truncation, extension, a foreign tag
//! byte, a set padding bit, or an impossible tally (`common` exceeding
//! either side's population) is a typed error, never a best-effort
//! parse. The tag values (0xC1/0xC2) are disjoint from the crypto
//! payload tags (1–4, 16–18) and the envelope tag (0xE5), so a
//! misrouted frame is caught by the first byte.

use crate::clk::Clk;
use std::fmt;

/// Alice → Bob: packed CLK bits + DP flip count.
pub const TAG_CLK: u8 = 0xC1;
/// Bob → querier: Dice tallies + combined flip count.
pub const TAG_DICE: u8 = 0xC2;

/// Exact wire width of a [`TAG_DICE`] payload.
pub const DICE_MSG_LEN: usize = 1 + 4 * 4;

/// Decode failure: every variant names what the peer got wrong, so a
/// desync surfaces as a protocol error instead of a garbage decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// First byte was not the expected tag.
    Tag { expected: u8, got: u8 },
    /// Payload truncated or extended.
    Length { expected: usize, got: usize },
    /// A bit past `filter_len` was set in the final packed byte.
    Padding,
    /// Tallies violate `common <= min(a_ones, b_ones) <= filter_len`.
    Counts,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Tag { expected, got } => {
                write!(f, "clk wire: expected tag {expected:#04x}, got {got:#04x}")
            }
            WireError::Length { expected, got } => {
                write!(f, "clk wire: expected {expected} payload bytes, got {got}")
            }
            WireError::Padding => write!(f, "clk wire: padding bits set past filter length"),
            WireError::Counts => write!(f, "clk wire: dice tallies are inconsistent"),
        }
    }
}

impl std::error::Error for WireError {}

/// Exact wire width of a [`TAG_CLK`] payload for `filter_len`-bit filters.
pub fn clk_msg_len(filter_len: u32) -> usize {
    1 + (filter_len as usize).div_ceil(8) + 4
}

/// Encodes one filter: `[TAG_CLK][packed bits][u32 LE flips]`.
pub fn encode_clk(clk: &Clk, flips: u32) -> Vec<u8> {
    let mut buf = Vec::with_capacity(clk_msg_len(clk.nbits()));
    buf.push(TAG_CLK);
    buf.extend_from_slice(clk.as_bytes());
    buf.extend_from_slice(&flips.to_le_bytes());
    buf
}

fn read_u32(buf: &[u8], at: usize) -> Result<u32, WireError> {
    let bytes: [u8; 4] = buf
        .get(at..at + 4)
        .and_then(|s| s.try_into().ok())
        .ok_or(WireError::Length {
            expected: at + 4,
            got: buf.len(),
        })?;
    Ok(u32::from_le_bytes(bytes))
}

/// Decodes a [`TAG_CLK`] payload for the agreed `filter_len`.
pub fn decode_clk(buf: &[u8], filter_len: u32) -> Result<(Clk, u32), WireError> {
    let expected = clk_msg_len(filter_len);
    if buf.len() != expected {
        return Err(WireError::Length {
            expected,
            got: buf.len(),
        });
    }
    let (&tag, rest) = buf.split_first().ok_or(WireError::Length {
        expected,
        got: buf.len(),
    })?;
    if tag != TAG_CLK {
        return Err(WireError::Tag {
            expected: TAG_CLK,
            got: tag,
        });
    }
    let nbytes = (filter_len as usize).div_ceil(8);
    let bits = rest.get(..nbytes).ok_or(WireError::Length {
        expected,
        got: buf.len(),
    })?;
    let clk = Clk::from_bytes(filter_len, bits.to_vec()).ok_or(WireError::Padding)?;
    let flips = read_u32(buf, 1 + nbytes)?;
    Ok((clk, flips))
}

/// One pair's Dice verdict material, as shipped Bob → querier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DiceMsg {
    pub a_ones: u32,
    pub b_ones: u32,
    pub common: u32,
    /// Total DP flips applied across both sides' filters for this pair.
    pub flips: u32,
}

/// Encodes the tallies: `[TAG_DICE][a_ones][b_ones][common][flips]`,
/// all u32 LE.
pub fn encode_dice(msg: &DiceMsg) -> Vec<u8> {
    let mut buf = Vec::with_capacity(DICE_MSG_LEN);
    buf.push(TAG_DICE);
    buf.extend_from_slice(&msg.a_ones.to_le_bytes());
    buf.extend_from_slice(&msg.b_ones.to_le_bytes());
    buf.extend_from_slice(&msg.common.to_le_bytes());
    buf.extend_from_slice(&msg.flips.to_le_bytes());
    buf
}

/// Decodes and sanity-checks a [`TAG_DICE`] payload against the agreed
/// `filter_len`.
pub fn decode_dice(buf: &[u8], filter_len: u32) -> Result<DiceMsg, WireError> {
    if buf.len() != DICE_MSG_LEN {
        return Err(WireError::Length {
            expected: DICE_MSG_LEN,
            got: buf.len(),
        });
    }
    let (&tag, _) = buf.split_first().ok_or(WireError::Length {
        expected: DICE_MSG_LEN,
        got: buf.len(),
    })?;
    if tag != TAG_DICE {
        return Err(WireError::Tag {
            expected: TAG_DICE,
            got: tag,
        });
    }
    let msg = DiceMsg {
        a_ones: read_u32(buf, 1)?,
        b_ones: read_u32(buf, 5)?,
        common: read_u32(buf, 9)?,
        flips: read_u32(buf, 13)?,
    };
    if msg.a_ones > filter_len || msg.b_ones > filter_len {
        return Err(WireError::Counts);
    }
    if msg.common > msg.a_ones.min(msg.b_ones) {
        return Err(WireError::Counts);
    }
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clk::{encode_fields, ClkParams};

    #[test]
    fn clk_roundtrips() {
        let p = ClkParams::paper_defaults(9);
        let clk = encode_fields(&p, &["roundtrip"]);
        let wire = encode_clk(&clk, 17);
        assert_eq!(wire.len(), clk_msg_len(p.filter_len));
        let (back, flips) = decode_clk(&wire, p.filter_len).expect("roundtrip");
        assert_eq!(back, clk);
        assert_eq!(flips, 17);
    }

    #[test]
    fn clk_rejects_malformed() {
        let p = ClkParams::paper_defaults(9);
        let clk = encode_fields(&p, &["x"]);
        let wire = encode_clk(&clk, 0);
        // Truncated / extended.
        assert!(matches!(
            decode_clk(&wire[..wire.len() - 1], p.filter_len),
            Err(WireError::Length { .. })
        ));
        let mut long = wire.clone();
        long.push(0);
        assert!(matches!(
            decode_clk(&long, p.filter_len),
            Err(WireError::Length { .. })
        ));
        // Foreign tag.
        let mut bad_tag = wire.clone();
        bad_tag[0] = TAG_DICE;
        assert!(matches!(
            decode_clk(&bad_tag, p.filter_len),
            Err(WireError::Tag { .. })
        ));
        // Set padding bit: 996-bit filters leave 4 dead bits in the
        // final byte, so a flip there must be caught by the codec.
        let mut odd = p;
        odd.filter_len = 996;
        let odd_wire = encode_clk(&encode_fields(&odd, &["x"]), 0);
        let mut bad_pad = odd_wire.clone();
        let last_bits = 1 + odd.filter_bytes() - 1;
        bad_pad[last_bits] |= 0x80;
        assert!(matches!(
            decode_clk(&bad_pad, odd.filter_len),
            Err(WireError::Padding)
        ));
        assert!(decode_clk(&odd_wire, odd.filter_len).is_ok());
        // Length disagreement between the peers' configs.
        assert!(matches!(
            decode_clk(&wire, 992),
            Err(WireError::Length { .. })
        ));
    }

    #[test]
    fn dice_roundtrips_and_rejects() {
        let msg = DiceMsg {
            a_ones: 120,
            b_ones: 140,
            common: 100,
            flips: 3,
        };
        let wire = encode_dice(&msg);
        assert_eq!(wire.len(), DICE_MSG_LEN);
        assert_eq!(decode_dice(&wire, 1000), Ok(msg));

        assert!(matches!(
            decode_dice(&wire[..DICE_MSG_LEN - 2], 1000),
            Err(WireError::Length { .. })
        ));
        let mut bad_tag = wire.clone();
        bad_tag[0] = TAG_CLK;
        assert!(matches!(decode_dice(&bad_tag, 1000), Err(WireError::Tag { .. })));
        // common > min(a, b).
        let impossible = DiceMsg {
            a_ones: 10,
            b_ones: 8,
            common: 9,
            flips: 0,
        };
        assert_eq!(
            decode_dice(&encode_dice(&impossible), 1000),
            Err(WireError::Counts)
        );
        // ones > filter_len.
        assert_eq!(decode_dice(&wire, 100), Err(WireError::Counts));
    }
}
