//! Property tests for the CLK wire codecs and the match decision.
//!
//! The wire properties pin the adversarial surface: a `TAG_CLK` or
//! `TAG_DICE` payload that was truncated, extended, re-tagged, or had
//! padding/tally invariants broken must decode to a typed [`WireError`],
//! never to a filter or verdict. The round-trip and determinism
//! properties pin what resume correctness rests on: identical inputs
//! encode to identical bytes, and the threshold decision is a pure
//! function of the tallies.

use proptest::prelude::*;
use pprl_bloom::{
    clk_msg_len, decode_clk, decode_dice, dice_match, dice_millis, encode_clk, encode_dice,
    encode_fields, ClkParams, DiceCounts, DiceMsg, WireError, DICE_MSG_LEN, TAG_CLK, TAG_DICE,
};

/// Small-but-irregular filter lengths: byte-aligned, off-by-one, and the
/// paper default. Small filters keep case counts high; `validate()`
/// bounds are respected.
fn any_params() -> impl Strategy<Value = ClkParams> {
    (
        prop_oneof![Just(64u32), Just(96), Just(100), 8u32..=128, Just(1000)],
        1u32..=8,
        1u32..=4,
        0u32..=1000,
        any::<u64>(),
    )
        .prop_map(|(filter_len, hashes, q, threshold_millis, seed)| {
            let mut p = ClkParams::paper_defaults(seed);
            p.filter_len = filter_len;
            p.hashes = hashes;
            p.q = q;
            p.threshold_millis = threshold_millis;
            p
        })
}

fn any_fields() -> impl Strategy<Value = Vec<String>> {
    // Printable-ASCII fields built from byte vectors (the vendored
    // proptest build carries no string-regex support).
    prop::collection::vec(
        prop::collection::vec(0x20u8..0x7f, 0..13)
            .prop_map(|bytes| String::from_utf8(bytes).expect("printable ascii")),
        1..6,
    )
}

proptest! {
    /// encode ∘ decode is the identity on every (params, record) pair —
    /// the exact bytes a resumed holder re-derives must parse back to
    /// the exact filter the first incarnation sent.
    #[test]
    fn clk_encode_decode_identity(
        params in any_params(),
        fields in any_fields(),
        flips in any::<u32>(),
    ) {
        let clk = encode_fields(&params, &fields);
        let wire = encode_clk(&clk, flips);
        prop_assert_eq!(wire.len(), clk_msg_len(params.filter_len));
        prop_assert_eq!(wire[0], TAG_CLK);
        let (back, back_flips) = decode_clk(&wire, params.filter_len).unwrap();
        prop_assert_eq!(back, clk);
        prop_assert_eq!(back_flips, flips);
    }

    /// Encoding is deterministic: the same record under the same params
    /// produces byte-identical wire payloads (resume depends on it).
    #[test]
    fn clk_encoding_deterministic(params in any_params(), fields in any_fields()) {
        let a = encode_clk(&encode_fields(&params, &fields), 0);
        let b = encode_clk(&encode_fields(&params, &fields), 0);
        prop_assert_eq!(a, b);
    }

    /// Truncating or extending a CLK payload by any amount is a typed
    /// length error.
    #[test]
    fn clk_rejects_resized(
        params in any_params(),
        fields in any_fields(),
        cut in 1usize..=8,
        grow in 1usize..=8,
        extra in any::<u8>(),
    ) {
        let wire = encode_clk(&encode_fields(&params, &fields), 7);
        let cut = cut.min(wire.len());
        let short = &wire[..wire.len() - cut];
        prop_assert_eq!(
            decode_clk(short, params.filter_len),
            Err(WireError::Length { expected: wire.len(), got: short.len() })
        );
        let mut long = wire.clone();
        long.extend(std::iter::repeat(extra).take(grow));
        prop_assert_eq!(
            decode_clk(&long, params.filter_len),
            Err(WireError::Length { expected: wire.len(), got: long.len() })
        );
    }

    /// Any single-bit flip in a CLK payload is either caught by the
    /// codec (tag byte, dead padding bit) or decodes to a *different*
    /// filter / flip count — never silently to the original message.
    #[test]
    fn clk_bit_flip_never_silent(
        params in any_params(),
        fields in any_fields(),
        byte_sel in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let clk = encode_fields(&params, &fields);
        let wire = encode_clk(&clk, 3);
        let at = byte_sel.index(wire.len());
        let mut mutated = wire.clone();
        mutated[at] ^= 1 << bit;
        match decode_clk(&mutated, params.filter_len) {
            Err(WireError::Tag { .. }) => prop_assert_eq!(at, 0),
            Err(WireError::Padding) => {
                // Only a dead bit past filter_len can trip this.
                prop_assert!(params.filter_len % 8 != 0);
            }
            Err(e) => prop_assert!(false, "unexpected error {e:?}"),
            Ok((back, flips)) => {
                prop_assert!(back != clk || flips != 3, "bit flip decoded to the original");
            }
        }
    }

    /// Same for dice payloads: resized input is a typed length error,
    /// and the codec refuses tallies that are impossible under the
    /// agreed filter length.
    #[test]
    fn dice_rejects_resized_and_impossible(
        a_ones in 0u32..=1000,
        b_ones in 0u32..=1000,
        common in 0u32..=1000,
        flips in any::<u32>(),
        cut in 1usize..=DICE_MSG_LEN,
        grow in 1usize..=8,
    ) {
        let msg = DiceMsg { a_ones, b_ones, common, flips };
        let wire = encode_dice(&msg);
        prop_assert_eq!(wire.len(), DICE_MSG_LEN);
        prop_assert_eq!(wire[0], TAG_DICE);

        let short = &wire[..DICE_MSG_LEN - cut];
        prop_assert!(matches!(
            decode_dice(short, 1000),
            Err(WireError::Length { .. })
        ));
        let mut long = wire.clone();
        long.extend(std::iter::repeat(0u8).take(grow));
        prop_assert!(matches!(
            decode_dice(&long, 1000),
            Err(WireError::Length { .. })
        ));

        let plausible = common <= a_ones.min(b_ones);
        match decode_dice(&wire, 1000) {
            Ok(back) => {
                prop_assert!(plausible);
                prop_assert_eq!(back, msg);
            }
            Err(WireError::Counts) => prop_assert!(!plausible),
            Err(e) => prop_assert!(false, "unexpected error {e:?}"),
        }
        // The same tallies against a smaller agreed filter are refused.
        if a_ones.max(b_ones) > 63 {
            prop_assert_eq!(decode_dice(&wire, 63), Err(WireError::Counts));
        }
    }

    /// The threshold decision is a pure, deterministic function of the
    /// tallies: recomputing it (as a resumed querier does when replaying
    /// journal frames) can never change a verdict.
    #[test]
    fn threshold_decision_deterministic(
        params in any_params(),
        left in any_fields(),
        right in any_fields(),
    ) {
        let a = encode_fields(&params, &left);
        let b = encode_fields(&params, &right);
        let counts = DiceCounts::of(&a, &b).unwrap();
        let first = dice_match(&counts, params.threshold_millis);
        for _ in 0..3 {
            let again = DiceCounts::of(&a, &b).unwrap();
            prop_assert_eq!(dice_millis(&again), dice_millis(&counts));
            prop_assert_eq!(dice_match(&again, params.threshold_millis), first);
        }
        // The decision agrees with the scaled Dice coefficient.
        prop_assert_eq!(first, dice_millis(&counts) >= params.threshold_millis);
        // Identical records always match at any threshold <= 1000 when
        // the filter is non-empty.
        let self_counts = DiceCounts::of(&a, &a).unwrap();
        if a.ones() > 0 {
            prop_assert_eq!(dice_millis(&self_counts), 1000);
        }
    }
}
