//! `pprl-link` — hybrid private record linkage from the command line.
//!
//! ```sh
//! # Generate a reproducible two-holder scenario as adult.data-format CSVs:
//! pprl-link synth --records 2000 --seed 7 --out /tmp/demo
//!
//! # Link the two files with the paper's defaults and print the report:
//! pprl-link run --left /tmp/demo/d1.csv --right /tmp/demo/d2.csv
//!
//! # Tune the three-way trade-off:
//! pprl-link run --left d1.csv --right d2.csv \
//!     --k 64 --theta 0.05 --allowance-pct 2.0 --heuristic maxlast --json
//!
//! # Inspect exactly what a holder would publish:
//! pprl-link anonymize --input d1.csv --k 32 --method entropy
//! ```

use pprl_anon::{AnonymizationMethod, Anonymizer, KAnonymityRequirement};
use pprl_core::{journal_run, HybridLinkage, LinkageConfig, LinkageOutcome};
use pprl_data::loader::load_adult;
use pprl_smc::{
    ChannelConfig, DeadlineBudget, FaultConfig, LabelingStrategy, RetryPolicy, SelectionHeuristic,
    SmcAllowance, SmcMode,
};
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    // `party serve` is the daemon spelling of the top-level `serve`.
    let (cmd, rest) = if cmd == "party" && rest.first().map(String::as_str) == Some("serve") {
        ("serve", &rest[1..])
    } else {
        (cmd.as_str(), rest)
    };
    let opts = match parse_opts(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match cmd {
        "synth" => cmd_synth(&opts),
        "run" => cmd_run(&opts),
        "party" => cmd_party(&opts),
        "serve" => cmd_serve(&opts),
        "anonymize" => cmd_anonymize(&opts),
        "block" => cmd_block(&opts),
        "chaosproxy" => cmd_chaosproxy(&opts),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
pprl-link — hybrid private record linkage (ICDE 2008 reproduction)

USAGE:
  pprl-link synth     --out DIR [--records N] [--seed S]
  pprl-link run       --left FILE --right FILE [options]
  pprl-link party     --role R --left FILE --right FILE [options]
  pprl-link party serve --job NAME=LEFT,RIGHT [--job ...] --journal-dir DIR [options]
  pprl-link anonymize --input FILE [--k K] [--method M] [--qids Q] [--publish FILE]
  pprl-link block     --left-view FILE --right-view FILE [--theta T]
  pprl-link chaosproxy --upstream ADDR [--listen ADDR] [--family F] [--seed S]

`anonymize --publish` writes the k-anonymous release to a file; `block`
labels the pair space from two published views alone — no plaintext ever
crosses the boundary, exactly the protocol's trust model.

RUN OPTIONS:
  --k K               anonymity requirement for both holders   [32]
  --k-left K          override left holder's k
  --k-right K         override right holder's k
  --theta T           matching threshold θ for all attributes  [0.05]
  --qids Q            number of quasi-identifiers (top-q)      [5]
  --allowance-pct P   SMC allowance as % of all pairs          [1.5]
  --heuristic H       minfirst | maxlast | minavg | random     [minavg]
  --method M          entropy | tds | datafly | mondrian       [entropy]
  --strategy S        precision | recall | classifier          [precision]
  --paillier BITS     run real Paillier SMC with BITS-bit keys (slow)
  --backend B         comparator backend: paillier | bloom. Selects the
                      real wire protocol in-process (same frames as party
                      mode); `bloom` compares q-gram CLK Bloom filters by
                      Dice similarity instead of exact Paillier distances
  --clk-len N         bloom: CLK filter length in bits          [1000]
  --clk-hashes N      bloom: hash functions per q-gram          [30]
  --clk-q N           bloom: q-gram width                       [2]
  --clk-threshold T   bloom: Dice similarity match threshold    [0.8]
  --clk-epsilon E     bloom: differential-privacy budget ε for
                      randomized CLK bit flipping (0 = off)     [0]
  --fault-rate R      run the batched wire protocol over a faulty network:
                      drop/corrupt/duplicate/reorder/delay each frame with
                      probability R (implies batched Paillier mode)
  --retries N         max retransmissions per exchange              [8]
  --fault-seed S      fault-injection and backoff-jitter seed       [7]
  --deadline-ms MS    wall-clock budget for the SMC step; on expiry the
                      remaining in-allowance pairs are labeled by the
                      strategy instead of compared (precision stays 100%)
  --threads N         worker threads for blocking and SMC comparisons
                      [all cores]; --threads 1 forces the sequential
                      path; results are byte-identical at any N
  --journal PATH      journal progress to PATH so a killed run can resume
  --resume            resume the run recorded in --journal PATH
  --checkpoint-every N  session checkpoint cadence in SMC outcomes  [64]
  --pace-ms MS        artificial delay per SMC outcome (test harness)
  --json              emit the report as JSON

Example — 5 % fault injection, 4 retries, degradation report:
  pprl-link run --left d1.csv --right d2.csv \\
      --allowance-pct 0.5 --fault-rate 0.05 --retries 4 --paillier 256

Example — crash-safe run, then recovery after a kill:
  pprl-link run --left d1.csv --right d2.csv --journal /tmp/job.pprlj
  pprl-link run --left d1.csv --right d2.csv --journal /tmp/job.pprlj --resume

PARTY OPTIONS (three-process deployment over TCP; every party loads the
same two files and the same RUN OPTIONS — the handshake rejects drift):
  --role R            query | alice | bob
  --listen ADDR       listener bind address (query: for both holders;
                      alice: for bob) [127.0.0.1:0]; the bound address is
                      announced on stderr as
                      `pprl-net: <role> listening on <addr>`
  --connect-querier ADDR  the querier's announced address (alice, bob)
  --connect-alice ADDR    alice's announced address (bob)
  --journal PATH      durable per-party journal; with --resume a killed
                      party rejoins the session at its watermark
  --net-timeout-ms MS     socket poll timeout           [1000]
  --net-deadline-ms MS    per-operation reconnect deadline [30000]
  --no-fsync          skip journal/report fsyncs (kill-only test runs)
  --window N          data-holder send window: keep up to N record pairs
                      in flight before blocking on the journal-gated ack
                      [1 = classic lockstep]. A deployment knob: parties
                      may disagree, reports are byte-identical at any N
  --pack              pack all attribute results of a pair slot-wise into
                      as few Paillier ciphertexts as possible (fewer
                      decryptions and bytes per pair); changes the wire
                      format, so every party must agree (fingerprinted)
  --backend B         paillier | bloom [paillier]; every party must pass
                      the same value — the handshake refuses a peer whose
                      announced backend differs (typed mismatch error).
                      The CLK knobs (--clk-len/--clk-hashes/--clk-q/
                      --clk-threshold/--clk-epsilon) apply under bloom and
                      are part of the handshake fingerprint
  Paillier is always batched in party mode ('--paillier BITS' sets the key
  size, default 256); --fault-rate is rejected. --deadline-ms is allowed
  but must be identical on every party (it is part of the handshake
  fingerprint); only the querier's clock is consulted — on expiry it
  abandons its remaining pairs and drains the oblivious holders.

Example — full linkage across three terminals on loopback:
  pprl-link party --role query --left d1.csv --right d2.csv --json
  pprl-link party --role alice --left d1.csv --right d2.csv \\
      --connect-querier 127.0.0.1:PORT
  pprl-link party --role bob   --left d1.csv --right d2.csv \\
      --connect-querier 127.0.0.1:PORT --connect-alice 127.0.0.1:PORT2

SERVE OPTIONS (`party serve`: a long-lived querier daemon serving many
jobs over one listener; holders join each job with `party --role alice|bob`
against the announced address, configured identically to that job):
  --job NAME=LEFT,RIGHT  one linkage job (repeatable); NAME keys the
                      job's journal (`NAME.pprlj`) and report
                      (`NAME.report`) under --journal-dir
  --journal-dir DIR   per-job journals and reports; a restarted daemon
                      resumes unfinished jobs and re-serves finished ones
                      from disk without re-executing a pair
  --max-jobs N        concurrent session bound [2]; excess holders get a
                      typed Busy frame and redial after --retry-after-ms
  --retry-after-ms MS pause hinted inside a Busy answer       [200]
  --max-crashes N     worker attempts before a job is quarantined [3]
  --pool-prefill N    pre-fill N Paillier randomizers into the shared
                      warm-keypair pool                        [0]
  --max-conns N       socket connections admitted at once; excess dialers
                      get a typed Busy refusal at accept        [64]
  --idle-timeout-ms MS  parked (handshaken but unclaimed) connections are
                      reaped after this much silence         [30000]
  --silence-timeout-ms MS  per-job silence watchdog: a peer dark for this
                      long fails the job, which the supervisor requeues
                      through the crash-recovery path (off by default —
                      one-shot semantics degrade the pair instead)
  --metrics-path P    write a per-job metrics snapshot (status, wall time,
                      pairs/sec, wire accounting, peak window occupancy)
                      to P at drain/completion and on SIGUSR1
  --listen/--net-timeout-ms/--net-deadline-ms/--no-fsync/--window/--pack
  as in party mode;
  RUN OPTIONS (including --deadline-ms) apply to every job alike.
  SIGTERM drains gracefully: stop admitting, finish in-flight jobs, exit 0.

Example — serve three jobs, at most two concurrent:
  pprl-link party serve --journal-dir /var/lib/pprl \\
      --job ab=a.csv,b.csv --job cd=c.csv,d.csv --job ef=e.csv,f.csv \\
      --max-jobs 2 --listen 127.0.0.1:7001

CHAOSPROXY OPTIONS (a seeded TCP relay that injects socket-level faults;
park it between two parties to rehearse network failure):
  --upstream ADDR     where faithful bytes would have gone (required)
  --listen ADDR       relay bind address [127.0.0.1:0]; announced on
                      stderr as `pprl-chaos: listening on <addr> ...`
  --family F          none | delay | drop | dup | corrupt | split |
                      reset | partition | slowloris        [none]
  --seed S            fault-decision seed (replayable)     [1]
  --duration-ms MS    exit after MS (0 = run until SIGTERM) [0]
  Exit prints a fault census to stderr. The proxy never touches frame
  contents on purpose except under `corrupt`; the protocol's checksums
  and retransmission must absorb everything it does.

Example — bob reaches the querier only through a flaky link:
  pprl-link chaosproxy --upstream 127.0.0.1:7001 --family drop --seed 7
  pprl-link party --role bob ... --connect-querier 127.0.0.1:CHAOSPORT
";

type Opts = HashMap<String, String>;

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --option, got {:?}", args[i]))?;
        if key == "json" || key == "resume" || key == "no-fsync" || key == "pack" {
            opts.insert(key.to_string(), "true".to_string());
            i += 1;
        } else {
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("--{key} needs a value"))?;
            if key == "job" {
                // `--job` repeats; accumulate newline-separated so the
                // flat map keeps one entry per option name.
                opts.entry(key.to_string())
                    .and_modify(|v| {
                        v.push('\n');
                        v.push_str(value);
                    })
                    .or_insert_with(|| value.clone());
            } else {
                opts.insert(key.to_string(), value.clone());
            }
            i += 2;
        }
    }
    Ok(opts)
}

fn get<T: std::str::FromStr>(opts: &Opts, key: &str, default: T) -> Result<T, String> {
    match opts.get(key) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("--{key}: cannot parse {raw:?}")),
    }
}

fn parse_method(name: &str) -> Result<AnonymizationMethod, String> {
    match name {
        "entropy" => Ok(AnonymizationMethod::MaxEntropy),
        "tds" => Ok(AnonymizationMethod::Tds),
        "datafly" => Ok(AnonymizationMethod::Datafly),
        "mondrian" => Ok(AnonymizationMethod::Mondrian),
        other => Err(format!("unknown method {other:?}")),
    }
}

fn cmd_synth(opts: &Opts) -> Result<(), String> {
    let out = opts.get("out").ok_or("--out DIR is required")?;
    let records: usize = get(opts, "records", 2_000)?;
    let seed: u64 = get(opts, "seed", 42)?;
    let scenario = pprl_core::SyntheticScenario::builder()
        .records_per_set(records)
        .seed(seed)
        .build();
    let (d1, d2) = scenario.data_sets();
    std::fs::create_dir_all(out).map_err(|e| e.to_string())?;
    for (name, ds) in [("d1.csv", &d1), ("d2.csv", &d2)] {
        let path = format!("{out}/{name}");
        std::fs::write(&path, pprl_data::writer::write_adult_csv(ds))
            .map_err(|e| e.to_string())?;
        println!("wrote {path} ({} records)", ds.len());
    }
    Ok(())
}

/// Loads `--left`/`--right` (every party subcommand needs both).
fn load_inputs(opts: &Opts) -> Result<(pprl_data::DataSet, pprl_data::DataSet), String> {
    let left = opts.get("left").ok_or("--left FILE is required")?;
    let right = opts.get("right").ok_or("--right FILE is required")?;
    let d1 = load_adult(left).map_err(|e| format!("{left}: {e}"))?;
    let d2 = load_adult(right).map_err(|e| format!("{right}: {e}"))?;
    Ok((d1, d2))
}

/// Builds the [`LinkageConfig`] from the shared RUN OPTIONS.
fn build_config(opts: &Opts) -> Result<LinkageConfig, String> {
    let k: usize = get(opts, "k", 32)?;
    let mut config = LinkageConfig::paper_defaults()
        .with_k(k)
        .with_theta(get(opts, "theta", 0.05)?)
        .with_qid_count(get(opts, "qids", 5)?)
        .with_allowance(SmcAllowance::Fraction(
            get(opts, "allowance-pct", 1.5)? / 100.0,
        ));
    config.k_r = KAnonymityRequirement(get(opts, "k-left", k)?);
    config.k_s = KAnonymityRequirement(get(opts, "k-right", k)?);
    let method = parse_method(opts.get("method").map(String::as_str).unwrap_or("entropy"))?;
    config.method_r = method;
    config.method_s = method;
    config.heuristic = match opts.get("heuristic").map(String::as_str).unwrap_or("minavg") {
        "minfirst" => SelectionHeuristic::MinFirst,
        "maxlast" => SelectionHeuristic::MaxLast,
        "minavg" => SelectionHeuristic::MinAvgFirst,
        "random" => SelectionHeuristic::Random { seed: 1 },
        other => return Err(format!("unknown heuristic {other:?}")),
    };
    config.strategy = match opts.get("strategy").map(String::as_str).unwrap_or("precision") {
        "precision" => LabelingStrategy::MaximizePrecision,
        "recall" => LabelingStrategy::MaximizeRecall,
        "classifier" => LabelingStrategy::Classifier,
        other => return Err(format!("unknown strategy {other:?}")),
    };
    if let Some(bits) = opts.get("paillier") {
        config.mode = SmcMode::Paillier {
            modulus_bits: bits.parse().map_err(|_| "--paillier BITS")?,
            seed: get(opts, "seed", 42)?,
        };
    }
    if opts.contains_key("fault-rate") || opts.contains_key("retries") {
        let rate: f64 = get(opts, "fault-rate", 0.0)?;
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!("--fault-rate must be in [0, 1], got {rate}"));
        }
        // Only the batched wire protocol moves bytes over a network.
        config.mode = SmcMode::PaillierBatched {
            modulus_bits: get(opts, "paillier", 256)?,
            seed: get(opts, "seed", 42)?,
            pack: opts.contains_key("pack"),
        };
        config.channel = Some(ChannelConfig {
            faults: FaultConfig::uniform(rate),
            retry: RetryPolicy {
                max_retries: get(opts, "retries", 8)?,
                ..RetryPolicy::default()
            },
            seed: get(opts, "fault-seed", 7)?,
        });
    }

    if let Some(ms) = opts.get("deadline-ms") {
        config.deadline = DeadlineBudget::WallClockMs(
            ms.parse().map_err(|_| "--deadline-ms: cannot parse MS")?,
        );
    }
    Ok(config)
}

/// Resolves `--backend` (plus the CLK knobs) into the wire-protocol SMC
/// mode. All of it is fingerprinted: in the three-process deployment a
/// party launched with a different backend is refused at the handshake
/// with a typed backend-mismatch error, and diverging CLK parameters
/// split the job fingerprint.
fn backend_mode(opts: &Opts) -> Result<SmcMode, String> {
    match opts.get("backend").map(String::as_str).unwrap_or("paillier") {
        "paillier" => Ok(SmcMode::PaillierBatched {
            modulus_bits: get(opts, "paillier", 256)?,
            seed: get(opts, "seed", 42)?,
            pack: opts.contains_key("pack"),
        }),
        "bloom" => {
            if opts.contains_key("pack") {
                return Err(
                    "--pack packs Paillier ciphertexts; the bloom backend has none".to_string(),
                );
            }
            let mut params = pprl_bloom::ClkParams::paper_defaults(get(opts, "seed", 42)?);
            params.filter_len = get(opts, "clk-len", params.filter_len)?;
            params.hashes = get(opts, "clk-hashes", params.hashes)?;
            params.q = get(opts, "clk-q", params.q)?;
            let threshold: f64 = get(opts, "clk-threshold", 0.8)?;
            if !(0.0..=1.0).contains(&threshold) {
                return Err(format!("--clk-threshold must be in [0, 1], got {threshold}"));
            }
            params.threshold_millis = (threshold * 1000.0).round() as u32;
            let epsilon: f64 = get(opts, "clk-epsilon", 0.0)?;
            if !(0.0..=64.0).contains(&epsilon) {
                return Err(format!("--clk-epsilon must be in [0, 64], got {epsilon}"));
            }
            params.epsilon_millis = (epsilon * 1000.0).round() as u32;
            params.validate().map_err(|e| e.to_string())?;
            Ok(SmcMode::Bloom { params })
        }
        other => Err(format!("unknown backend {other:?} (use paillier or bloom)")),
    }
}

fn cmd_run(opts: &Opts) -> Result<(), String> {
    if opts.contains_key("resume") && !opts.contains_key("journal") {
        return Err("--resume requires --journal PATH".to_string());
    }
    let (d1, d2) = load_inputs(opts)?;
    let mut config = build_config(opts)?;
    if opts.contains_key("backend") {
        if opts.contains_key("fault-rate") || opts.contains_key("retries") {
            return Err(
                "--backend selects the real wire protocol in-process; \
                 drop --fault-rate/--retries"
                    .to_string(),
            );
        }
        config.mode = backend_mode(opts)?;
        config.channel = None;
    }
    let threads: usize = get(opts, "threads", pprl_runtime::resolve_threads(None))?;
    if threads == 0 {
        return Err("--threads must be at least 1".to_string());
    }
    let pipeline = HybridLinkage::new(config).with_threads(threads);
    let outcome: LinkageOutcome = match opts.get("journal") {
        None => pipeline.run(&d1, &d2).map_err(|e| e.to_string())?,
        Some(path) => {
            let jopts = journal_run::JournalOptions {
                checkpoint_every: get(opts, "checkpoint-every", 64)?,
                pace_ms: get(opts, "pace-ms", 0)?,
                ..journal_run::JournalOptions::default()
            };
            let path = std::path::Path::new(path);
            let journaled = if opts.contains_key("resume") {
                journal_run::resume(&pipeline, &d1, &d2, path, &jopts)
            } else {
                journal_run::run_journaled(&pipeline, &d1, &d2, path, &jopts)
            }
            .map_err(|e| e.to_string())?;
            // Progress accounting goes to stderr so stdout is byte-identical
            // between a fresh run and a crash-recovered one.
            eprintln!(
                "journal: resumed={} restored={} replayed={} live={}",
                journaled.resumed,
                journaled.restored_pairs,
                journaled.replayed_pairs,
                journaled.live_pairs
            );
            journaled.outcome
        }
    };
    print_report(&outcome, opts);
    Ok(())
}

/// Runs one party of the three-process networked deployment.
fn cmd_party(opts: &Opts) -> Result<(), String> {
    if opts.contains_key("resume") && !opts.contains_key("journal") {
        return Err("--resume requires --journal PATH".to_string());
    }
    if opts.contains_key("fault-rate") {
        return Err(
            "party mode runs over a real network: --fault-rate is rejected".to_string(),
        );
    }
    let role = match opts.get("role").map(String::as_str) {
        Some("query") => pprl_core::Role::Query,
        Some("alice") => pprl_core::Role::Alice,
        Some("bob") => pprl_core::Role::Bob,
        Some(other) => return Err(format!("unknown role {other:?}")),
        None => return Err("--role query|alice|bob is required".to_string()),
    };
    let (d1, d2) = load_inputs(opts)?;
    let mut config = build_config(opts)?;
    // Party mode always speaks a real wire protocol over the real
    // network; the simulated channel stays off. `--backend` picks which
    // one (batched Paillier by default, CLK Bloom with `bloom`) and is
    // announced in the handshake: a peer with a different backend is
    // refused with a typed mismatch error. `--deadline-ms` is allowed
    // and must be identical on every party (it is fingerprinted);
    // only the querier's clock is consulted — expiry abandons its
    // remaining pairs and drains the oblivious holders.
    config.mode = backend_mode(opts)?;
    config.channel = None;

    let parse_addr = |key: &str| -> Result<Option<std::net::SocketAddr>, String> {
        opts.get(key)
            .map(|raw| raw.parse().map_err(|_| format!("--{key}: bad address {raw:?}")))
            .transpose()
    };
    let mut popts = pprl_core::PartyOptions::new(role);
    popts.listen = opts.get("listen").cloned();
    popts.querier_addr = parse_addr("connect-querier")?;
    popts.alice_addr = parse_addr("connect-alice")?;
    popts.journal = opts.get("journal").map(std::path::PathBuf::from);
    popts.resume = opts.contains_key("resume");
    popts.timeout = std::time::Duration::from_millis(get(opts, "net-timeout-ms", 1_000)?);
    popts.deadline = std::time::Duration::from_millis(get(opts, "net-deadline-ms", 30_000)?);
    popts.durable = !opts.contains_key("no-fsync");
    popts.window = get(opts, "window", 1)?;
    if popts.window == 0 {
        return Err("--window must be at least 1".to_string());
    }

    let threads: usize = get(opts, "threads", pprl_runtime::resolve_threads(None))?;
    if threads == 0 {
        return Err("--threads must be at least 1".to_string());
    }
    let pipeline = HybridLinkage::new(config).with_threads(threads);
    let party = pprl_core::run_party(&pipeline, &d1, &d2, &popts).map_err(|e| e.to_string())?;

    // Deployment accounting goes to stderr: stdout stays byte-identical
    // to the single-process report (querier) or empty (holders).
    eprintln!(
        "party: role={role} resumed={} replayed={} live={} net[{}]",
        party.resumed, party.replayed_pairs, party.live_pairs, party.net,
    );
    match &party.outcome {
        Some(outcome) => print_report(outcome, opts),
        None => eprintln!(
            "holder ledger: {} messages, {} bytes, {} encryptions shipped to the querier",
            party.ledger.messages, party.ledger.bytes, party.ledger.encryptions
        ),
    }
    Ok(())
}

/// SIGTERM flips this flag; the serve loop reads it as its drain signal.
/// Declared straight against the platform libc the binary already links —
/// no new dependency. The handler body is async-signal-safe (one atomic
/// store).
#[cfg(unix)]
fn drain_flag() -> &'static std::sync::atomic::AtomicBool {
    use std::sync::atomic::{AtomicBool, Ordering};
    static DRAIN: AtomicBool = AtomicBool::new(false);
    extern "C" fn on_sigterm(_sig: i32) {
        DRAIN.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGTERM: i32 = 15;
    unsafe { signal(SIGTERM, on_sigterm) };
    &DRAIN
}

#[cfg(not(unix))]
fn drain_flag() -> &'static std::sync::atomic::AtomicBool {
    static DRAIN: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);
    &DRAIN
}

/// SIGUSR1 flips this flag; the serve loop polls it and dumps a metrics
/// snapshot to `--metrics-path`, then swaps it back. Same
/// libc-declaration trick as [`drain_flag`].
#[cfg(unix)]
fn metrics_flag() -> &'static std::sync::atomic::AtomicBool {
    use std::sync::atomic::{AtomicBool, Ordering};
    static METRICS: AtomicBool = AtomicBool::new(false);
    extern "C" fn on_sigusr1(_sig: i32) {
        METRICS.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    #[cfg(target_os = "linux")]
    const SIGUSR1: i32 = 10;
    #[cfg(not(target_os = "linux"))]
    const SIGUSR1: i32 = 30; // BSD-lineage numbering (macOS and friends)
    unsafe { signal(SIGUSR1, on_sigusr1) };
    &METRICS
}

#[cfg(not(unix))]
fn metrics_flag() -> &'static std::sync::atomic::AtomicBool {
    static METRICS: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);
    &METRICS
}

/// The linkage daemon: one querier process serving every `--job` over a
/// single listener, with bounded admission and per-job crash recovery.
fn cmd_serve(opts: &Opts) -> Result<(), String> {
    use pprl_core::JobStatus;

    let jobs_raw = opts
        .get("job")
        .ok_or("at least one --job NAME=LEFT,RIGHT is required")?;
    let journal_dir = opts.get("journal-dir").ok_or("--journal-dir DIR is required")?;
    if opts.contains_key("fault-rate") {
        return Err("serve runs over a real network: --fault-rate is rejected".to_string());
    }
    let mut config = build_config(opts)?;
    config.mode = backend_mode(opts)?;
    config.channel = None;
    let threads: usize = get(opts, "threads", pprl_runtime::resolve_threads(None))?;
    if threads == 0 {
        return Err("--threads must be at least 1".to_string());
    }

    let mut jobs = Vec::new();
    for spec in jobs_raw.split('\n') {
        let err = || format!("--job {spec:?}: expected NAME=LEFT,RIGHT");
        let (name, files) = spec.split_once('=').ok_or_else(err)?;
        let (left, right) = files.split_once(',').ok_or_else(err)?;
        let d1 = load_adult(left).map_err(|e| format!("{left}: {e}"))?;
        let d2 = load_adult(right).map_err(|e| format!("{right}: {e}"))?;
        jobs.push(pprl_core::ServeJob {
            name: name.to_string(),
            pipeline: pprl_core::HybridLinkage::new(config.clone()).with_threads(threads),
            left: d1,
            right: d2,
        });
    }

    let ms = |v: u64| std::time::Duration::from_millis(v);
    let sopts = pprl_core::ServeOptions {
        listen: opts
            .get("listen")
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:0".to_string()),
        journal_dir: std::path::PathBuf::from(journal_dir),
        max_jobs: get(opts, "max-jobs", 2)?,
        retry_after: ms(get(opts, "retry-after-ms", 200)?),
        max_crashes: get(opts, "max-crashes", 3)?,
        timeout: ms(get(opts, "net-timeout-ms", 1_000)?),
        net_deadline: ms(get(opts, "net-deadline-ms", 30_000)?),
        durable: !opts.contains_key("no-fsync"),
        pool_prefill: get(opts, "pool-prefill", 0)?,
        pool_threads: threads,
        max_conns: get(opts, "max-conns", 64)?,
        idle_timeout: ms(get(opts, "idle-timeout-ms", 30_000)?),
        silence_timeout: match opts.get("silence-timeout-ms") {
            None => None,
            Some(_) => Some(ms(get(opts, "silence-timeout-ms", 0)?)),
        },
        window: {
            let w: usize = get(opts, "window", 1)?;
            if w == 0 {
                return Err("--window must be at least 1".to_string());
            }
            w
        },
        metrics_path: opts.get("metrics-path").map(std::path::PathBuf::from),
        metrics_signal: opts
            .contains_key("metrics-path")
            .then(metrics_flag),
    };

    let json = opts.contains_key("json");
    let summary = pprl_core::serve::serve(&jobs, &sopts, drain_flag(), &|_job, outcome| {
        render_report(
            outcome.outcome.as_ref().expect("querier outcome present"),
            json,
        )
    })
    .map_err(|e| e.to_string())?;

    // Per-job accounting to stderr, reports to stdout (the persisted
    // `<name>.report` files carry the byte-exact standalone bytes).
    let mut quarantined: Option<String> = None;
    for job in &summary.jobs {
        match &job.status {
            JobStatus::Finished(party) => {
                eprintln!(
                    "serve: job {} finished resumed={} replayed={} live={} net[{}]",
                    job.name, party.resumed, party.replayed_pairs, party.live_pairs, party.net,
                );
            }
            JobStatus::AlreadyDone => {
                eprintln!("serve: job {} already done; report re-served from disk", job.name);
            }
            JobStatus::Quarantined { crashes, last_error } => {
                let why = pprl_core::LinkageError::Quarantined {
                    job: job.name.clone(),
                    crashes: *crashes,
                    last_error: last_error.clone(),
                }
                .to_string();
                eprintln!("serve: {why}");
                quarantined.get_or_insert(why);
            }
            JobStatus::Drained => {
                eprintln!(
                    "serve: job {} drained before starting; it resumes on the next start",
                    job.name
                );
            }
        }
        if let Some(text) = &job.report {
            println!("=== {} ===", job.name);
            print!("{text}");
        }
    }
    eprintln!("serve: drained={} net[{}]", summary.drained, summary.net);
    match quarantined {
        Some(why) => Err(why),
        None => Ok(()),
    }
}

/// A standalone seeded chaos relay: `pprl-link chaosproxy --upstream ADDR
/// --family drop`. Runs until SIGTERM (or `--duration-ms`), then prints a
/// fault census and exits 0 — the relay itself never fails a run.
fn cmd_chaosproxy(opts: &Opts) -> Result<(), String> {
    let upstream: std::net::SocketAddr = opts
        .get("upstream")
        .ok_or("--upstream ADDR is required")?
        .parse()
        .map_err(|e| format!("--upstream: {e}"))?;
    let listen = opts
        .get("listen")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:0".to_string());
    let family = opts.get("family").map(String::as_str).unwrap_or("none");
    let seed: u64 = get(opts, "seed", 1)?;
    let duration: u64 = get(opts, "duration-ms", 0)?;
    let cfg = pprl_net::ChaosConfig::fault_family(family, seed).ok_or_else(|| {
        format!(
            "unknown fault family {family:?}; one of: {}",
            pprl_net::ChaosConfig::FAMILIES.join(", ")
        )
    })?;

    let mut proxy = pprl_net::ChaosProxy::start(&listen, upstream, cfg).map_err(|e| e.to_string())?;
    // Test drivers parse this line to learn the ephemeral port.
    eprintln!(
        "pprl-chaos: listening on {} -> {upstream} family={family} seed={seed}",
        proxy.local_addr()
    );

    let drain = drain_flag();
    let started = std::time::Instant::now();
    let tick = std::time::Duration::from_millis(25);
    while !drain.load(std::sync::atomic::Ordering::SeqCst) {
        if duration > 0 && started.elapsed() >= std::time::Duration::from_millis(duration) {
            break;
        }
        std::thread::sleep(tick);
    }
    let stats = proxy.stats();
    proxy.shutdown();
    eprintln!("pprl-chaos: {stats}");
    Ok(())
}

/// Prints the final report (text or `--json`) for a completed linkage.
fn print_report(outcome: &LinkageOutcome, opts: &Opts) {
    print!("{}", render_report(outcome, opts.contains_key("json")));
}

/// Renders the final report (text or JSON) — the exact bytes `run` and
/// `party` print, and the bytes `serve` persists beside each job's
/// journal and re-serves verbatim after a daemon restart.
fn render_report(outcome: &LinkageOutcome, json: bool) -> String {
    use std::fmt::Write;

    let m = &outcome.metrics;
    let mut out = String::new();

    // Order-independent digest of the declared match set, for comparing
    // runs (e.g. a recovered run against an uninterrupted one).
    let mut matched: Vec<(u32, u32)> = outcome.matched_rows().collect();
    matched.sort_unstable();
    let mut digest = pprl_journal::Fnv1a64::new();
    digest.update_u64(matched.len() as u64);
    for &(ri, si) in &matched {
        digest.update_u64(ri as u64);
        digest.update_u64(si as u64);
    }
    let matched_digest = format!("{:016x}", digest.finish());

    if json {
        let _ = writeln!(
            out,
            "{}",
            serde_json::json!({
                "total_pairs": m.total_pairs,
                "true_matches": m.true_matches,
                "declared_matches": m.declared_matches,
                "true_positives": m.true_positives,
                "precision": m.precision(),
                "recall": m.recall(),
                "f1": m.f1(),
                "blocking_efficiency": m.blocking_efficiency,
                "blocking_matched": m.blocking_matched,
                "smc_matched": m.smc_matched,
                "smc_invocations": m.smc_invocations,
                "smc_budget": m.smc_budget,
                "smc_abandoned": m.smc_abandoned,
                "deadline_abandoned": m.deadline_abandoned,
                "matched_digest": matched_digest,
                "crypto": {
                    "encryptions": outcome.ledger.encryptions,
                    "decryptions": outcome.ledger.decryptions,
                    "scalar_muls": outcome.ledger.scalar_muls,
                    "messages": outcome.ledger.messages,
                    "bytes": outcome.ledger.bytes,
                },
                "degradation": {
                    "pairs_abandoned": outcome.degradation().pairs_abandoned(),
                    "retry_abandoned": outcome.degradation().abandoned.retry_exhausted,
                    "deadline_abandoned": outcome.degradation().abandoned.deadline_expired,
                    "declared_matches": outcome.degradation().declared.len(),
                    "retries_spent": outcome.degradation().retries_spent,
                    "faults_survived": outcome.degradation().faults_survived,
                    "faults_injected": outcome.degradation().injected.total(),
                    "virtual_backoff_ms": outcome.degradation().virtual_backoff_ms,
                },
            })
        );
    } else {
        let _ = writeln!(out, "pairs               : {}", m.total_pairs);
        let _ = writeln!(
            out,
            "blocking efficiency : {:.2}%  ({} matched, {} pairs undecided)",
            100.0 * m.blocking_efficiency,
            m.blocking_matched,
            m.total_pairs - (m.blocking_efficiency * m.total_pairs as f64) as u64
        );
        let _ = writeln!(
            out,
            "SMC                 : {} / {} comparisons, {} matches",
            m.smc_invocations, m.smc_budget, m.smc_matched
        );
        let _ = writeln!(out, "true matches        : {}", m.true_matches);
        let _ = writeln!(out, "declared matches    : {}", m.declared_matches);
        let _ = writeln!(out, "precision           : {:.2}%", 100.0 * m.precision());
        let _ = writeln!(out, "recall              : {:.2}%", 100.0 * m.recall());
        let _ = writeln!(out, "matched digest      : {matched_digest}");
        let led = &outcome.ledger;
        if led.messages > 0 {
            let _ = writeln!(
                out,
                "crypto cost         : {} messages, {} bytes, {} enc, {} dec, {} scalar muls",
                led.messages, led.bytes, led.encryptions, led.decryptions, led.scalar_muls
            );
        }
        let deg = outcome.degradation();
        if deg.injected.total() > 0 || deg.degraded() {
            let _ = writeln!(
                out,
                "transport           : {} faults injected, {} survived, {} retransmissions ({} virtual backoff ms)",
                deg.injected.total(),
                deg.faults_survived,
                deg.retries_spent,
                deg.virtual_backoff_ms
            );
            let _ = writeln!(
                out,
                "degraded pairs      : {} abandoned ({} retry exhaustion, {} deadline expiry; {} declared match by strategy)",
                deg.pairs_abandoned(),
                deg.abandoned.retry_exhausted,
                deg.abandoned.deadline_expired,
                deg.declared.len()
            );
        }
    }
    out
}

fn cmd_anonymize(opts: &Opts) -> Result<(), String> {
    let input = opts.get("input").ok_or("--input FILE is required")?;
    let data = load_adult(input).map_err(|e| format!("{input}: {e}"))?;
    let k: usize = get(opts, "k", 32)?;
    let q: usize = get(opts, "qids", 5)?;
    let method = parse_method(opts.get("method").map(String::as_str).unwrap_or("entropy"))?;
    let qids: Vec<usize> = (0..q).collect();
    let view = Anonymizer::new(method, KAnonymityRequirement(k))
        .anonymize(&data, &qids)
        .map_err(|e| e.to_string())?;

    eprintln!(
        "# prosecutor risk {:.4} (bound 1/k = {:.4}), marketer risk {:.4}",
        pprl_anon::prosecutor_risk(&view),
        1.0 / k as f64,
        pprl_anon::marketer_risk(&view),
    );
    let text = publish_view(&data, &qids, &view);
    if let Some(path) = opts.get("publish") {
        std::fs::write(path, &text).map_err(|e| e.to_string())?;
        println!(
            "published {} classes ({} records, k = {k}, {method:?}) to {path}",
            view.distinct_sequences(),
            data.len()
        );
    } else {
        print!("{text}");
    }
    Ok(())
}

/// Serializes the *publishable* part of a view: generalization sequences
/// and class sizes only — no row identities, no original values.
fn publish_view(
    data: &pprl_data::DataSet,
    qids: &[usize],
    view: &pprl_anon::AnonymizedView,
) -> String {
    let schema = data.schema();
    let header: Vec<&str> = qids.iter().map(|&i| schema.attribute(i).name()).collect();
    let mut out = format!("# pprl-view v1\n# count\t{}\n", header.join("\t"));
    let mut classes: Vec<_> = view.classes().iter().collect();
    classes.sort_by_key(|c| std::cmp::Reverse(c.size()));
    for class in classes {
        let rendered: Vec<String> = class
            .sequence
            .iter()
            .zip(qids)
            .map(|(gv, &qid)| render_genval(schema.attribute(qid).vgh(), gv))
            .collect();
        out.push_str(&format!("{}\t{}\n", class.size(), rendered.join("\t")));
    }
    out
}

/// Parses a published view back into `(class sizes, sequences)` against
/// the Adult schema's VGHs.
fn parse_view(
    path: &str,
    schema: &pprl_data::Schema,
    qids: &[usize],
) -> Result<Vec<(u64, Vec<pprl_anon::GenVal>)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut classes = Vec::new();
    for (no, line) in text.lines().enumerate() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != qids.len() + 1 {
            return Err(format!("{path}:{}: expected {} fields", no + 1, qids.len() + 1));
        }
        let count: u64 = fields[0]
            .parse()
            .map_err(|_| format!("{path}:{}: bad count {:?}", no + 1, fields[0]))?;
        let mut seq = Vec::with_capacity(qids.len());
        for (pos, &qid) in qids.iter().enumerate() {
            seq.push(parse_genval(schema.attribute(qid).vgh(), fields[pos + 1]).map_err(
                |e| format!("{path}:{}: {e}", no + 1),
            )?);
        }
        classes.push((count, seq));
    }
    Ok(classes)
}

fn parse_genval(vgh: &pprl_hierarchy::Vgh, text: &str) -> Result<pprl_anon::GenVal, String> {
    match vgh {
        pprl_hierarchy::Vgh::Categorical(t) => t
            .node_by_label(text)
            .map(pprl_anon::GenVal::Cat)
            .map_err(|e| e.to_string()),
        pprl_hierarchy::Vgh::Continuous(h) => {
            if text == "ANY" {
                let (lo, hi) = h.domain();
                return Ok(pprl_anon::GenVal::Range { lo, hi });
            }
            let inner = text
                .strip_prefix('[')
                .and_then(|s| s.strip_suffix(')'))
                .ok_or_else(|| format!("bad interval {text:?}"))?;
            let (lo, hi) = inner
                .split_once('-')
                .ok_or_else(|| format!("bad interval {text:?}"))?;
            Ok(pprl_anon::GenVal::Range {
                lo: lo.parse().map_err(|_| format!("bad bound {lo:?}"))?,
                hi: hi.parse().map_err(|_| format!("bad bound {hi:?}"))?,
            })
        }
    }
}

/// Blocking from two *published views only* — the step any third party (or
/// either holder) can replicate without plaintext access.
fn cmd_block(opts: &Opts) -> Result<(), String> {
    use pprl_blocking::{slack_decision, MatchingRule, PairLabel};

    let left = opts.get("left-view").ok_or("--left-view FILE is required")?;
    let right = opts.get("right-view").ok_or("--right-view FILE is required")?;
    let theta: f64 = get(opts, "theta", 0.05)?;
    let q: usize = get(opts, "qids", 5)?;
    let qids: Vec<usize> = (0..q).collect();
    let schema = pprl_data::Schema::adult();

    let l = parse_view(left, &schema, &qids)?;
    let r = parse_view(right, &schema, &qids)?;
    let rule = MatchingRule::uniform(&schema, &qids, theta);
    let vghs: Vec<&pprl_hierarchy::Vgh> =
        qids.iter().map(|&i| schema.attribute(i).vgh()).collect();

    let (mut m, mut n, mut u) = (0u64, 0u64, 0u64);
    for (lc, lseq) in &l {
        for (rc, rseq) in &r {
            let pairs = lc * rc;
            match slack_decision(&vghs, &rule, lseq, rseq) {
                PairLabel::Match => m += pairs,
                PairLabel::NonMatch => n += pairs,
                PairLabel::Unknown => u += pairs,
            }
        }
    }
    let total = m + n + u;
    println!("pair space          : {total}");
    println!("provably matching   : {m}");
    println!("provably mismatching: {n}");
    println!("undecided (SMC work): {u}");
    println!(
        "blocking efficiency : {:.2}%",
        100.0 * (m + n) as f64 / total.max(1) as f64
    );
    println!(
        "sufficient allowance: {:.2}% of pairs",
        100.0 * u as f64 / total.max(1) as f64
    );
    Ok(())
}

fn render_genval(vgh: &pprl_hierarchy::Vgh, gv: &pprl_anon::GenVal) -> String {
    match gv {
        pprl_anon::GenVal::Cat(node) => vgh.render(*node),
        pprl_anon::GenVal::Range { lo, hi } => format!("[{lo}-{hi})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opts_parsing() {
        let args: Vec<String> = ["--k", "8", "--json", "--theta", "0.1"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let opts = parse_opts(&args).unwrap();
        assert_eq!(get::<usize>(&opts, "k", 32).unwrap(), 8);
        assert_eq!(get::<f64>(&opts, "theta", 0.05).unwrap(), 0.1);
        assert_eq!(get::<usize>(&opts, "missing", 7).unwrap(), 7);
        assert!(opts.contains_key("json"));
        // Malformed inputs.
        assert!(parse_opts(&["k".to_string()]).is_err());
        assert!(parse_opts(&["--k".to_string()]).is_err());
        let bad = parse_opts(&["--k".to_string(), "x".to_string()]).unwrap();
        assert!(get::<usize>(&bad, "k", 1).is_err());
    }

    #[test]
    fn method_names_resolve() {
        assert!(parse_method("entropy").is_ok());
        assert!(parse_method("tds").is_ok());
        assert!(parse_method("datafly").is_ok());
        assert!(parse_method("mondrian").is_ok());
        assert!(parse_method("magic").is_err());
    }

    #[test]
    fn genval_render_parse_roundtrip() {
        let schema = pprl_data::Schema::adult();
        // Continuous: interval and ANY forms.
        let age = schema.attribute(0).vgh();
        for gv in [
            pprl_anon::GenVal::Range { lo: 17.0, hi: 25.0 },
            pprl_anon::GenVal::Range { lo: 17.0, hi: 113.0 },
        ] {
            let text = render_genval(age, &gv);
            let parsed = parse_genval(age, &text).unwrap();
            assert_eq!(parsed, gv, "{text}");
        }
        assert_eq!(
            parse_genval(age, "ANY").unwrap(),
            pprl_anon::GenVal::Range { lo: 17.0, hi: 113.0 }
        );
        // Categorical: every node label round-trips.
        let edu = schema.attribute(2).vgh();
        for node in 0..edu.as_taxonomy().unwrap().node_count() as u32 {
            let gv = pprl_anon::GenVal::Cat(node);
            let text = render_genval(edu, &gv);
            assert_eq!(parse_genval(edu, &text).unwrap(), gv, "{text}");
        }
        // Garbage rejected.
        assert!(parse_genval(age, "[17-").is_err());
        assert!(parse_genval(age, "17-25").is_err());
        assert!(parse_genval(edu, "NotALabel").is_err());
    }

    #[test]
    fn publish_block_roundtrip_counts_match_engine() {
        use pprl_blocking::{slack_decision, BlockingEngine, MatchingRule, PairLabel};

        // Publish two views to text, parse back, and check the text path's
        // M/N/U pair counts equal the in-memory engine's.
        let scenario = pprl_core::SyntheticScenario::builder()
            .records_per_set(120)
            .seed(3)
            .build();
        let (d1, d2) = scenario.data_sets();
        let qids: Vec<usize> = (0..5).collect();
        let anon = Anonymizer::new(
            AnonymizationMethod::MaxEntropy,
            KAnonymityRequirement(4),
        );
        let v1 = anon.anonymize(&d1, &qids).unwrap();
        let v2 = anon.anonymize(&d2, &qids).unwrap();

        let dir = std::env::temp_dir().join("pprl-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let p1 = dir.join("a.view");
        let p2 = dir.join("b.view");
        std::fs::write(&p1, publish_view(&d1, &qids, &v1)).unwrap();
        std::fs::write(&p2, publish_view(&d2, &qids, &v2)).unwrap();

        let schema = d1.schema();
        let l = parse_view(p1.to_str().unwrap(), schema, &qids).unwrap();
        let r = parse_view(p2.to_str().unwrap(), schema, &qids).unwrap();
        let rule = MatchingRule::uniform(schema, &qids, 0.05);
        let vghs: Vec<&pprl_hierarchy::Vgh> =
            qids.iter().map(|&i| schema.attribute(i).vgh()).collect();
        let (mut m, mut n, mut u) = (0u64, 0u64, 0u64);
        for (lc, lseq) in &l {
            for (rc, rseq) in &r {
                match slack_decision(&vghs, &rule, lseq, rseq) {
                    PairLabel::Match => m += lc * rc,
                    PairLabel::NonMatch => n += lc * rc,
                    PairLabel::Unknown => u += lc * rc,
                }
            }
        }
        let engine = BlockingEngine::new(rule).run(&v1, &v2).unwrap();
        assert_eq!(m, engine.matched_pairs);
        assert_eq!(n, engine.nonmatched_pairs);
        assert_eq!(u, engine.unknown_pairs);
    }
}
