//! Backend-parity acceptance suite for the pluggable comparator seam.
//!
//! Three bars, one per way the refactor could regress:
//!
//! 1. **Paillier behind the trait is the pre-refactor protocol, byte for
//!    byte** — the seeded 120-record run's report *and* journal must
//!    hash to the digests pinned from the seed build. Any drift in
//!    decisions, ledger accounting, or journal frame bytes trips this.
//! 2. **The Bloom backend survives deployment** — a three-process
//!    loopback run (with Bob SIGKILLed mid-session and resumed from his
//!    journal, his querier leg slowed by a delay proxy so the kill lands
//!    mid-walk) produces the exact report of the in-process run.
//! 3. **Mismatched backends are refused, not hung** — a holder launched
//!    with a different `--backend` than the querier exits promptly with
//!    the typed backend-mismatch error.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// FNV-1a-64 digest of the seeded 120-record Paillier report
/// (`synth --records 120 --seed 7`, then `run --allowance-pct 2.0
/// --paillier 256 --threads 1 --fault-rate 0`), pinned from the
/// pre-refactor build.
const SEED_REPORT_FNV: u64 = 0x5d41629d50fc0647;
/// Same run's journal digest (`--journal`, 8239 bytes at the seed).
const SEED_JOURNAL_FNV: u64 = 0x04c5527f75053da1;

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_pprl-link")
}

fn work_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pprl-backend-parity-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn synth(dir: &Path) {
    let status = Command::new(bin())
        .args(["synth", "--records", "120", "--seed", "7", "--out"])
        .arg(dir)
        .status()
        .unwrap();
    assert!(status.success(), "synth failed");
}

/// Shared RUN OPTIONS; `backend_args` selects the comparator.
fn common_args(dir: &Path, backend_args: &[&str]) -> Vec<String> {
    let mut args = vec![
        "--left".to_string(),
        dir.join("d1.csv").display().to_string(),
        "--right".to_string(),
        dir.join("d2.csv").display().to_string(),
        "--allowance-pct".to_string(),
        "2.0".to_string(),
        "--threads".to_string(),
        "1".to_string(),
    ];
    args.extend(backend_args.iter().map(|s| s.to_string()));
    args
}

struct Party {
    child: Child,
    stderr: std::sync::mpsc::Receiver<String>,
}

fn spawn_party(dir: &Path, role: &str, backend_args: &[&str], extra: &[String]) -> Party {
    let mut child = Command::new(bin())
        .arg("party")
        .args(["--role", role])
        .args(common_args(dir, backend_args))
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let pipe = child.stderr.take().unwrap();
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        for line in BufReader::new(pipe).lines().map_while(Result::ok) {
            if tx.send(line).is_err() {
                break;
            }
        }
    });
    Party { child, stderr: rx }
}

impl Party {
    fn listen_addr(&mut self) -> String {
        let deadline = Instant::now() + Duration::from_secs(30);
        while Instant::now() < deadline {
            match self.stderr.recv_timeout(Duration::from_millis(200)) {
                Ok(line) => {
                    if let Some(addr) = line.strip_prefix("pprl-net: ").and_then(|rest| {
                        rest.split(" listening on ").nth(1).map(str::to_string)
                    }) {
                        return addr;
                    }
                }
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
                Err(_) => break,
            }
        }
        panic!("party never announced a listener");
    }

    fn finish(mut self) -> String {
        let status = self.child.wait().unwrap();
        let mut stdout = String::new();
        if let Some(mut pipe) = self.child.stdout.take() {
            use std::io::Read;
            pipe.read_to_string(&mut stdout).unwrap();
        }
        let stderr: Vec<String> = self.stderr.iter().collect();
        if !status.success() {
            panic!("party exited with {status}: {}", stderr.join("\n"));
        }
        stdout
    }
}

/// Bar 1: the Paillier path routed through the `Comparator` trait must
/// reproduce the pre-refactor seed build byte for byte — report and
/// journal both.
#[test]
fn paillier_behind_the_trait_matches_the_seed_digests() {
    let dir = work_dir("seed");
    synth(&dir);
    let journal = dir.join("run.journal");
    let out = Command::new(bin())
        .arg("run")
        .args(common_args(&dir, &["--paillier", "256", "--fault-rate", "0"]))
        .args(["--journal", &journal.display().to_string()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "seed run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        fnv1a64(&out.stdout),
        SEED_REPORT_FNV,
        "the Paillier report drifted from the pre-refactor seed build:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let journal_bytes = std::fs::read(&journal).unwrap();
    assert_eq!(
        fnv1a64(&journal_bytes),
        SEED_JOURNAL_FNV,
        "the Paillier journal drifted from the pre-refactor seed build \
         ({} bytes)",
        journal_bytes.len()
    );
}

/// Bar 2: a three-process Bloom deployment — including a mid-session
/// SIGKILL of Bob and a journal resume — reports exactly what the
/// in-process Bloom run reports.
#[test]
fn bloom_three_process_sigkill_resume_matches_the_local_run() {
    let backend: &[&str] = &["--backend", "bloom"];
    let dir = work_dir("bloom");
    synth(&dir);

    let reference = {
        let out = Command::new(bin())
            .arg("run")
            .args(common_args(&dir, backend))
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "local bloom run failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap()
    };

    let mut query = spawn_party(&dir, "query", backend, &[]);
    let qaddr = query.listen_addr();

    // A delay proxy on Bob's querier leg stretches the walk so the kill
    // below lands mid-session (the CLK exchange finishes a 288-pair walk
    // on raw loopback faster than a poll loop can observe it).
    let mut proxy = Command::new(bin())
        .args(["chaosproxy", "--upstream", &qaddr, "--family", "delay", "--seed", "3"])
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let paddr = {
        let pipe = proxy.stderr.take().unwrap();
        let mut reader = BufReader::new(pipe);
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            assert!(Instant::now() < deadline, "proxy never announced");
            let mut line = String::new();
            if reader.read_line(&mut line).unwrap_or(0) == 0 {
                continue;
            }
            if let Some(rest) = line.strip_prefix("pprl-chaos: listening on ") {
                break rest.split_whitespace().next().unwrap().to_string();
            }
        }
    };

    let mut alice = spawn_party(
        &dir,
        "alice",
        backend,
        &["--connect-querier".into(), qaddr.clone()],
    );
    let aaddr = alice.listen_addr();

    let journal = dir.join("bob.pprlj");
    let bob_args = vec![
        "--connect-querier".to_string(),
        paddr,
        "--connect-alice".to_string(),
        aaddr.clone(),
        "--journal".to_string(),
        journal.display().to_string(),
        "--no-fsync".to_string(),
    ];
    let mut bob = spawn_party(&dir, "bob", backend, &bob_args);

    // SIGKILL Bob once his journal shows real committed pair progress
    // (full journal is ~36 KB; 1 KB is a few dozen pairs in).
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let size = std::fs::metadata(&journal).map(|m| m.len()).unwrap_or(0);
        if size > 1_024 {
            break;
        }
        assert!(Instant::now() < deadline, "bob never made journal progress");
        std::thread::sleep(Duration::from_millis(20));
    }
    bob.child.kill().unwrap();
    let _ = bob.child.wait();

    // Resume him straight at the querier (no proxy: the delay did its
    // job); the peers sit inside their reconnect deadlines.
    let mut resume_args = bob_args;
    resume_args[1] = qaddr;
    resume_args.push("--resume".to_string());
    let bob2 = spawn_party(&dir, "bob", backend, &resume_args);

    let report = query.finish();
    alice.finish();
    bob2.finish();
    let _ = proxy.kill();
    let _ = proxy.wait();
    assert_eq!(
        report, reference,
        "a SIGKILLed-and-resumed Bloom deployment must report byte-identically \
         to the in-process run"
    );
}

/// Bar 3: a holder whose `--backend` differs from the querier's is
/// refused at the Hello handshake with the typed mismatch error — no
/// silent 30-second reconnect hang.
#[test]
fn mismatched_backend_is_refused_with_a_typed_error() {
    let dir = work_dir("mismatch");
    synth(&dir);

    let mut query = spawn_party(&dir, "query", &["--backend", "paillier"], &[]);
    let qaddr = query.listen_addr();

    let out = Command::new(bin())
        .arg("party")
        .args(["--role", "alice"])
        .args(common_args(&dir, &["--backend", "bloom"]))
        .args(["--connect-querier", &qaddr])
        .output()
        .unwrap();
    assert!(
        !out.status.success(),
        "a mismatched holder must exit nonzero"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("comparator backend mismatch"),
        "expected the typed backend-mismatch error, got:\n{stderr}"
    );
    assert!(
        stderr.contains("bloom") && stderr.contains("paillier"),
        "the error must name both backends, got:\n{stderr}"
    );

    query.child.kill().unwrap();
    let _ = query.child.wait();
}
