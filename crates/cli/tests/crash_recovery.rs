//! Kill-recovery harness: spawn the CLI as a child process, SIGKILL it at
//! seeded byte offsets of journal progress, resume, and require the
//! recovered report to be byte-identical to an uninterrupted run — with
//! journal-level proof that no completed SMC pair was executed twice.

use pprl_core::journal_run::K_SMC_OUTCOME;
use pprl_journal::{recover, HEADER_LEN};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_pprl-link");

/// Deterministic offset source (splitmix64) — the "randomized (seeded)"
/// part of the harness, reproducible run to run.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn workdir() -> PathBuf {
    let dir = std::env::temp_dir().join("pprl-crash-recovery");
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// `run` arguments shared by every invocation: the config must be
/// identical or the journal fingerprint rightfully refuses to resume.
fn run_args(dir: &Path, journal: &Path, pace_ms: u64, resume: bool) -> Vec<String> {
    let mut args: Vec<String> = [
        "run",
        "--left",
        dir.join("d1.csv").to_str().unwrap(),
        "--right",
        dir.join("d2.csv").to_str().unwrap(),
        "--k",
        "8",
        "--allowance-pct",
        "3",
        "--checkpoint-every",
        "8",
        "--json",
        "--journal",
        journal.to_str().unwrap(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    args.extend(["--pace-ms".to_string(), pace_ms.to_string()]);
    if resume {
        args.push("--resume".to_string());
    }
    args
}

/// Runs the CLI paced, killing it (SIGKILL on unix) once the journal file
/// reaches `threshold` bytes. Returns `true` if the kill landed, `false`
/// if the child finished first.
fn kill_at_journal_offset(args: &[String], journal: &Path, threshold: u64) -> bool {
    let mut child = Command::new(BIN)
        .args(args)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn pprl-link");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if std::fs::metadata(journal).map_or(false, |m| m.len() >= threshold) {
            child.kill().expect("SIGKILL child");
            child.wait().expect("reap child");
            return true;
        }
        if child.try_wait().expect("poll child").is_some() {
            return false;
        }
        assert!(Instant::now() < deadline, "paced child never progressed");
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Parses the `journal: resumed=.. restored=N replayed=N live=N` stderr
/// accounting line into `(restored, replayed, live)`.
fn parse_accounting(stderr: &str) -> (u64, u64, u64) {
    let line = stderr
        .lines()
        .find(|l| l.starts_with("journal: "))
        .unwrap_or_else(|| panic!("no journal accounting line in stderr: {stderr:?}"));
    let field = |key: &str| -> u64 {
        line.split_whitespace()
            .find_map(|tok| tok.strip_prefix(key))
            .unwrap_or_else(|| panic!("missing {key} in {line:?}"))
            .parse()
            .unwrap()
    };
    (field("restored="), field("replayed="), field("live="))
}

/// The journal must hold exactly one outcome frame per comparison, all for
/// distinct pairs — frame-level proof that resuming never re-ran a
/// completed SMC comparison.
fn assert_no_pair_reexecuted(journal: &Path, invocations: u64) {
    let recovered = recover(journal).expect("recover finished journal");
    let mut outcome_payloads: Vec<Vec<u8>> = recovered
        .frames
        .iter()
        .filter(|f| f.kind == K_SMC_OUTCOME)
        .map(|f| f.payload.clone())
        .collect();
    assert_eq!(
        outcome_payloads.len() as u64,
        invocations,
        "one journal frame per SMC comparison"
    );
    // Distinct (ri, si) coordinates: the payload prefix is the pair.
    outcome_payloads.iter_mut().for_each(|p| p.truncate(8));
    outcome_payloads.sort();
    outcome_payloads.dedup();
    assert_eq!(
        outcome_payloads.len() as u64,
        invocations,
        "no SMC pair appears twice in the journal"
    );
}

#[test]
fn sigkilled_runs_resume_to_the_byte_identical_report() {
    let dir = workdir();
    let synth = Command::new(BIN)
        .args([
            "synth",
            "--records",
            "120",
            "--seed",
            "11",
            "--out",
            dir.to_str().unwrap(),
        ])
        .output()
        .expect("synth scenario");
    assert!(
        synth.status.success(),
        "synth failed: {}",
        String::from_utf8_lossy(&synth.stderr)
    );

    // Ground truth: one uninterrupted journaled run.
    let base_journal = dir.join("base.pprlj");
    let _ = std::fs::remove_file(&base_journal);
    let base = Command::new(BIN)
        .args(run_args(&dir, &base_journal, 0, false))
        .output()
        .expect("baseline run");
    assert!(
        base.status.success(),
        "baseline failed: {}",
        String::from_utf8_lossy(&base.stderr)
    );
    let expected_stdout = base.stdout.clone();
    let report: serde_json::Value =
        serde_json::from_slice(&base.stdout).expect("baseline JSON report");
    let invocations = report["smc_invocations"].as_u64().unwrap();
    assert!(invocations > 0, "scenario must exercise the SMC step");
    let full_len = std::fs::metadata(&base_journal).unwrap().len();
    assert_no_pair_reexecuted(&base_journal, invocations);

    // Four seeded rounds: kill at a random journal offset, sometimes kill
    // a second time deeper in, then resume to completion and compare.
    let mut rng = 0x1cde_2008_u64;
    let mut kills_landed = 0;
    for round in 0..4 {
        let journal = dir.join(format!("crash-{round}.pprlj"));
        let _ = std::fs::remove_file(&journal);
        let span = full_len - HEADER_LEN as u64;
        let first_cut = HEADER_LEN as u64 + splitmix64(&mut rng) % span.max(1);
        let killed = kill_at_journal_offset(&run_args(&dir, &journal, 3, false), &journal, first_cut);
        if killed {
            kills_landed += 1;
            // Half the rounds also die during *recovery* — resume must
            // itself be crash-safe.
            if round % 2 == 0 {
                let second_cut = first_cut + splitmix64(&mut rng) % (full_len - first_cut).max(1);
                if kill_at_journal_offset(
                    &run_args(&dir, &journal, 3, true),
                    &journal,
                    second_cut,
                ) {
                    kills_landed += 1;
                }
            }
        }
        let resume_args = run_args(&dir, &journal, 0, killed);
        let out = Command::new(BIN).args(resume_args).output().expect("resume");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(out.status.success(), "round {round} resume failed: {stderr}");
        assert_eq!(
            out.stdout, expected_stdout,
            "round {round}: recovered report must be byte-identical to the \
             uninterrupted run"
        );
        let (restored, replayed, live) = parse_accounting(&stderr);
        assert_eq!(
            restored + replayed + live,
            invocations,
            "round {round}: every comparison restored, replayed, or run once"
        );
        if killed {
            assert!(
                restored + replayed > 0 || live == invocations,
                "round {round}: a mid-SMC kill must leave resumable progress"
            );
        }
        assert_no_pair_reexecuted(&journal, invocations);
    }
    assert!(
        kills_landed >= 2,
        "harness too weak: only {kills_landed} kills landed mid-run"
    );
}

/// Multi-threaded journaled runs must produce the same report — and the
/// same journal bytes — as single-threaded ones, and survive a SIGKILL
/// mid-run just like the sequential path does.
#[test]
fn parallel_journaled_runs_match_sequential_and_recover() {
    let dir = std::env::temp_dir().join("pprl-crash-recovery-mt");
    std::fs::create_dir_all(&dir).unwrap();
    let synth = Command::new(BIN)
        .args([
            "synth",
            "--records",
            "120",
            "--seed",
            "11",
            "--out",
            dir.to_str().unwrap(),
        ])
        .output()
        .expect("synth scenario");
    assert!(
        synth.status.success(),
        "synth failed: {}",
        String::from_utf8_lossy(&synth.stderr)
    );
    let with_threads = |mut args: Vec<String>, n: &str| {
        args.extend(["--threads".to_string(), n.to_string()]);
        args
    };

    // Sequential uninterrupted run: the reference report and journal.
    let seq_journal = dir.join("seq.pprlj");
    let _ = std::fs::remove_file(&seq_journal);
    let seq = Command::new(BIN)
        .args(with_threads(run_args(&dir, &seq_journal, 0, false), "1"))
        .output()
        .expect("sequential run");
    assert!(
        seq.status.success(),
        "sequential run failed: {}",
        String::from_utf8_lossy(&seq.stderr)
    );
    let report: serde_json::Value =
        serde_json::from_slice(&seq.stdout).expect("sequential JSON report");
    let invocations = report["smc_invocations"].as_u64().unwrap();
    assert!(invocations > 0, "scenario must exercise the SMC step");

    // Parallel uninterrupted run: byte-identical report AND journal.
    let par_journal = dir.join("par.pprlj");
    let _ = std::fs::remove_file(&par_journal);
    let par = Command::new(BIN)
        .args(with_threads(run_args(&dir, &par_journal, 0, false), "4"))
        .output()
        .expect("parallel run");
    assert!(
        par.status.success(),
        "parallel run failed: {}",
        String::from_utf8_lossy(&par.stderr)
    );
    assert_eq!(par.stdout, seq.stdout, "report must not depend on --threads");
    assert_eq!(
        std::fs::read(&par_journal).unwrap(),
        std::fs::read(&seq_journal).unwrap(),
        "journal must be byte-identical at any thread count"
    );

    // SIGKILL a paced parallel run mid-journal, then resume — still with
    // four workers — to the sequential report.
    let full_len = std::fs::metadata(&seq_journal).unwrap().len();
    let journal = dir.join("mt-crash.pprlj");
    let _ = std::fs::remove_file(&journal);
    let cut = HEADER_LEN as u64 + (full_len - HEADER_LEN as u64) / 2;
    let killed = kill_at_journal_offset(
        &with_threads(run_args(&dir, &journal, 3, false), "4"),
        &journal,
        cut,
    );
    let out = Command::new(BIN)
        .args(with_threads(run_args(&dir, &journal, 0, killed), "4"))
        .output()
        .expect("parallel resume");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "parallel resume failed: {stderr}");
    assert_eq!(
        out.stdout, seq.stdout,
        "recovered parallel report must be byte-identical to sequential"
    );
    let (restored, replayed, live) = parse_accounting(&stderr);
    assert_eq!(
        restored + replayed + live,
        invocations,
        "every comparison restored, replayed, or run once"
    );
    assert_no_pair_reexecuted(&journal, invocations);
}

#[test]
fn resume_without_journal_flag_is_refused() {
    let dir = workdir();
    let out = Command::new(BIN)
        .args([
            "run",
            "--left",
            "x.csv",
            "--right",
            "y.csv",
            "--resume",
        ])
        .output()
        .expect("run");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--resume requires --journal"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}
