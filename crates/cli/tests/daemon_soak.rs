//! Chaos soak for the linkage daemon (`pprl-link party serve`).
//!
//! Real OS processes on loopback: one daemon querier serving several
//! concurrent jobs, each job's holders spawned as standalone `party`
//! processes. The acceptance bar:
//!
//! - three jobs through a `--max-jobs 2` daemon: every persisted
//!   `<name>.report` is byte-identical to that job's standalone
//!   single-process run, and the over-admitted job's holders absorbed at
//!   least one typed `Busy` answer before succeeding on retry;
//! - SIGKILL the daemon mid-job and restart it on the same port: the
//!   finished job is re-served from disk with its journal untouched, only
//!   the unfinished job resumes, its report is unchanged, and no
//!   journaled pair appears twice;
//! - SIGTERM drains gracefully: in-flight jobs finish, queued jobs are
//!   left for the next start, exit status 0.

#![cfg(unix)]

use pprl_core::party_run::{K_PARTY_DONE, K_PARTY_KEY, K_PARTY_PAIR};
use pprl_journal::recover;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_pprl-link")
}

fn work_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pprl-daemon-soak-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Synthesizes one job's dataset pair under `dir/<name>/`.
fn synth_job(dir: &Path, name: &str, records: u32, seed: u64) -> PathBuf {
    let job_dir = dir.join(name);
    std::fs::create_dir_all(&job_dir).unwrap();
    let status = Command::new(bin())
        .args(["synth", "--records", &records.to_string(), "--seed", &seed.to_string(), "--out"])
        .arg(&job_dir)
        .status()
        .unwrap();
    assert!(status.success(), "synth {name} failed");
    job_dir
}

/// The RUN OPTIONS every process of every job shares (the fingerprint
/// handshake rejects drift).
fn common_args() -> Vec<String> {
    ["--allowance-pct", "2.0", "--paillier", "256", "--threads", "1"]
        .iter()
        .map(|s| s.to_string())
        .collect()
}

/// The standalone single-process reference report for one job.
fn reference_report(job_dir: &Path) -> String {
    let out = Command::new(bin())
        .arg("run")
        .args(["--left"])
        .arg(job_dir.join("d1.csv"))
        .args(["--right"])
        .arg(job_dir.join("d2.csv"))
        .args(common_args())
        .args(["--fault-rate", "0"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "reference run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap()
}

/// A spawned process with stderr drained on a thread and scanned for the
/// daemon's listener announcement.
struct Proc {
    child: Child,
    stderr: std::sync::mpsc::Receiver<String>,
    collected: Vec<String>,
}

fn spawn(args: Vec<String>) -> Proc {
    let mut child = Command::new(bin())
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let pipe = child.stderr.take().unwrap();
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        for line in BufReader::new(pipe).lines().map_while(Result::ok) {
            if tx.send(line).is_err() {
                break;
            }
        }
    });
    Proc {
        child,
        stderr: rx,
        collected: Vec::new(),
    }
}

impl Proc {
    /// Blocks until the process announces its listener address.
    fn listen_addr(&mut self) -> String {
        let deadline = Instant::now() + Duration::from_secs(30);
        while Instant::now() < deadline {
            match self.stderr.recv_timeout(Duration::from_millis(200)) {
                Ok(line) => {
                    let addr = line.strip_prefix("pprl-net: ").and_then(|rest| {
                        rest.split(" listening on ").nth(1).map(str::to_string)
                    });
                    self.collected.push(line);
                    if let Some(addr) = addr {
                        return addr;
                    }
                }
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
                Err(_) => break,
            }
        }
        panic!("process never announced a listener; stderr: {:?}", self.collected);
    }

    /// Waits for exit, panicking (with stderr) on failure. Returns
    /// `(stdout, stderr lines)`.
    fn finish(mut self) -> (String, Vec<String>) {
        let status = self.child.wait().unwrap();
        let mut stdout = String::new();
        if let Some(mut pipe) = self.child.stdout.take() {
            use std::io::Read;
            pipe.read_to_string(&mut stdout).unwrap();
        }
        // Block until the reader thread hits pipe EOF and drops its sender:
        // the accounting lines a process writes just before exiting may not
        // be in the channel yet when `wait()` returns.
        self.collected.extend(self.stderr.iter());
        if !status.success() {
            panic!("process exited with {status}: {}", self.collected.join("\n"));
        }
        (stdout, self.collected)
    }
}

/// Spawns one job's two holders against the daemon's address.
fn spawn_holders(job_dir: &Path, daemon_addr: &str, extra: &[String]) -> (Proc, Proc) {
    let holder = |role: &str, connect: Vec<String>| {
        let mut args = vec![
            "party".to_string(),
            "--role".to_string(),
            role.to_string(),
            "--left".to_string(),
            job_dir.join("d1.csv").display().to_string(),
            "--right".to_string(),
            job_dir.join("d2.csv").display().to_string(),
        ];
        args.extend(common_args());
        args.extend(connect);
        args.extend(extra.to_vec());
        spawn(args)
    };
    let mut alice = holder(
        "alice",
        vec!["--connect-querier".to_string(), daemon_addr.to_string()],
    );
    let alice_addr = alice.listen_addr();
    let bob = holder(
        "bob",
        vec![
            "--connect-querier".to_string(),
            daemon_addr.to_string(),
            "--connect-alice".to_string(),
            alice_addr,
        ],
    );
    (alice, bob)
}

fn serve_args(dir: &Path, jobs: &[(&str, &Path)], extra: &[&str]) -> Vec<String> {
    let mut args = vec![
        "party".to_string(),
        "serve".to_string(),
        "--journal-dir".to_string(),
        dir.join("journals").display().to_string(),
    ];
    for (name, job_dir) in jobs {
        args.push("--job".to_string());
        args.push(format!(
            "{name}={},{}",
            job_dir.join("d1.csv").display(),
            job_dir.join("d2.csv").display()
        ));
    }
    args.extend(common_args());
    args.extend(extra.iter().map(|s| s.to_string()));
    args
}

fn report_path(dir: &Path, name: &str) -> PathBuf {
    dir.join("journals").join(format!("{name}.report"))
}

fn journal_path(dir: &Path, name: &str) -> PathBuf {
    dir.join("journals").join(format!("{name}.pprlj"))
}

/// Parses `... net[... N busy, ...]` accounting from a stderr line.
fn busy_count(lines: &[String]) -> u64 {
    lines
        .iter()
        .filter_map(|line| {
            let (head, _) = line.split_once(" busy,")?;
            head.rsplit(' ').next()?.parse::<u64>().ok()
        })
        .sum()
}

#[test]
fn daemon_serves_three_concurrent_jobs_with_busy_admission() {
    let dir = work_dir("concurrent");
    let jobs: Vec<(String, PathBuf)> = [("j1", 11u64), ("j2", 12), ("j3", 13)]
        .iter()
        .map(|(name, seed)| (name.to_string(), synth_job(&dir, name, 110, *seed)))
        .collect();
    let references: Vec<String> = jobs.iter().map(|(_, d)| reference_report(d)).collect();

    let job_refs: Vec<(&str, &Path)> = jobs
        .iter()
        .map(|(n, d)| (n.as_str(), d.as_path()))
        .collect();
    let mut daemon = spawn(serve_args(
        &dir,
        &job_refs,
        &["--max-jobs", "2", "--retry-after-ms", "100", "--no-fsync"],
    ));
    let daemon_addr = daemon.listen_addr();

    // All three jobs' holders dial at once; one job is over the
    // admission bound and must ride out Busy answers.
    let holders: Vec<(Proc, Proc)> = jobs
        .iter()
        .map(|(_, job_dir)| spawn_holders(job_dir, &daemon_addr, &[]))
        .collect();

    let (_, daemon_err) = daemon.finish();
    let mut holder_busy = 0;
    for (alice, bob) in holders {
        let (_, a_err) = alice.finish();
        let (_, b_err) = bob.finish();
        holder_busy += busy_count(&a_err) + busy_count(&b_err);
    }

    for ((name, _), reference) in jobs.iter().zip(&references) {
        let report = std::fs::read_to_string(report_path(&dir, name)).unwrap();
        assert_eq!(
            &report, reference,
            "job {name}: daemon report must be byte-identical to the standalone run"
        );
    }
    assert!(
        busy_count(&daemon_err) >= 1,
        "with 3 jobs and --max-jobs 2 the daemon must answer Busy at least once: {daemon_err:?}"
    );
    assert!(
        holder_busy >= 1,
        "some holder must have absorbed a Busy answer and retried"
    );
}

#[test]
fn daemon_sigkilled_mid_job_resumes_only_the_unfinished_job() {
    let dir = work_dir("sigkill");
    let j1 = synth_job(&dir, "j1", 90, 21);
    let j2 = synth_job(&dir, "j2", 130, 22);
    let ref1 = reference_report(&j1);
    let ref2 = reference_report(&j2);

    // Fixed port so the restarted daemon is reachable by the surviving
    // holders; picked by the kernel, then released.
    let port = {
        let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        probe.local_addr().unwrap().port()
    };
    let listen = format!("127.0.0.1:{port}");
    // Serial admission (--max-jobs 1) makes the schedule deterministic:
    // j1 finishes first, then j2 starts and is the one mid-flight.
    let args = serve_args(
        &dir,
        &[("j1", &j1), ("j2", &j2)],
        &[
            "--max-jobs",
            "1",
            "--retry-after-ms",
            "100",
            "--no-fsync",
            "--listen",
            &listen,
            "--net-deadline-ms",
            "120000",
        ],
    );
    let mut daemon = spawn(args.clone());
    let daemon_addr = daemon.listen_addr();

    let long_deadline = ["--net-deadline-ms".to_string(), "120000".to_string()];
    let h1 = spawn_holders(&j1, &daemon_addr, &long_deadline);
    let h2 = spawn_holders(&j2, &daemon_addr, &long_deadline);

    // SIGKILL the daemon once j1 is sealed and j2 shows real progress.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let j1_done = report_path(&dir, "j1").exists();
        let j2_bytes = std::fs::metadata(journal_path(&dir, "j2"))
            .map(|m| m.len())
            .unwrap_or(0);
        if j1_done && j2_bytes > 8_192 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "daemon never reached the kill point (j1 done: {j1_done}, j2 journal: {j2_bytes}B)"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    daemon.child.kill().unwrap();
    let _ = daemon.child.wait();
    let j1_journal_before = std::fs::read(journal_path(&dir, "j1")).unwrap();

    // Restart on the same port; j1's holders are gone (their session
    // finished), j2's holders are stalled inside their reconnect
    // deadlines and pick the session back up.
    let daemon2 = spawn(args);
    let (_, daemon_err) = daemon2.finish();
    h1.0.finish();
    h1.1.finish();
    h2.0.finish();
    h2.1.finish();

    assert_eq!(
        std::fs::read_to_string(report_path(&dir, "j1")).unwrap(),
        ref1,
        "finished job's report must survive the restart unchanged"
    );
    assert_eq!(
        std::fs::read_to_string(report_path(&dir, "j2")).unwrap(),
        ref2,
        "resumed job's report must be byte-identical to the standalone run"
    );
    assert_eq!(
        std::fs::read(journal_path(&dir, "j1")).unwrap(),
        j1_journal_before,
        "a sealed job must not be re-executed (its journal must not grow)"
    );
    assert!(
        daemon_err.iter().any(|l| l.contains("job j1 already done")),
        "restarted daemon must re-serve j1 from disk: {daemon_err:?}"
    );
    assert!(
        daemon_err
            .iter()
            .any(|l| l.contains("job j2 finished") && l.contains("resumed=true")),
        "restarted daemon must resume j2 from its journal: {daemon_err:?}"
    );

    // Journal-level proof that no pair ran twice across the crash: every
    // committed (ri, si) appears exactly once, and the done marker seals
    // the file.
    let recovered = recover(&journal_path(&dir, "j2")).unwrap();
    let mut seen = std::collections::HashSet::new();
    let mut done = 0;
    for frame in &recovered.frames {
        match frame.kind {
            K_PARTY_PAIR => {
                let ri = u32::from_le_bytes(frame.payload[8..12].try_into().unwrap());
                let si = u32::from_le_bytes(frame.payload[12..16].try_into().unwrap());
                assert!(
                    seen.insert((ri, si)),
                    "pair ({ri}, {si}) was journaled twice across the crash"
                );
            }
            K_PARTY_DONE => done += 1,
            K_PARTY_KEY => {}
            other => panic!("unexpected frame kind {other}"),
        }
    }
    assert_eq!(done, 1, "exactly one done marker seals the journal");
}

#[test]
fn sigterm_drains_in_flight_jobs_and_parks_queued_ones() {
    let dir = work_dir("drain");
    let j1 = synth_job(&dir, "j1", 110, 31);
    let j2 = synth_job(&dir, "j2", 90, 32);
    let ref1 = reference_report(&j1);

    let args = serve_args(
        &dir,
        &[("j1", &j1), ("j2", &j2)],
        &["--max-jobs", "1", "--retry-after-ms", "100", "--no-fsync"],
    );
    let mut daemon = spawn(args);
    let daemon_addr = daemon.listen_addr();
    // Only j1's holders show up; j2 stays queued behind --max-jobs 1.
    let (alice, bob) = spawn_holders(&j1, &daemon_addr, &[]);

    // SIGTERM once j1 is demonstrably in flight.
    let deadline = Instant::now() + Duration::from_secs(120);
    while std::fs::metadata(journal_path(&dir, "j1"))
        .map(|m| m.len())
        .unwrap_or(0)
        <= 4_096
    {
        assert!(Instant::now() < deadline, "j1 never made journal progress");
        std::thread::sleep(Duration::from_millis(20));
    }
    let term = Command::new("kill")
        .args(["-TERM", &daemon.child.id().to_string()])
        .status()
        .unwrap();
    assert!(term.success(), "kill -TERM failed");

    // Graceful drain: the daemon finishes j1, never starts j2, exits 0.
    let (_, daemon_err) = daemon.finish();
    alice.finish();
    bob.finish();

    assert_eq!(
        std::fs::read_to_string(report_path(&dir, "j1")).unwrap(),
        ref1,
        "the in-flight job must finish cleanly through the drain"
    );
    assert!(
        !report_path(&dir, "j2").exists() && !journal_path(&dir, "j2").exists(),
        "the queued job must not have started"
    );
    assert!(
        daemon_err.iter().any(|l| l.contains("job j2 drained")),
        "daemon must report the parked job: {daemon_err:?}"
    );
    assert!(
        daemon_err.iter().any(|l| l.contains("drained=true")),
        "daemon must report a drained exit: {daemon_err:?}"
    );
}
