//! Socket-level chaos soak and hostile-peer soak.
//!
//! The chaos soak parks a seeded [`ChaosProxy`] between Bob and the
//! querier and drives a full three-process linkage through every fault
//! family at two seeds each. The acceptance bar is brutal and simple: the
//! querier's report — matched-pair digest *and* cost-ledger byte counts —
//! must be byte-identical to the fault-free single-process run, every
//! time. Retransmits, reconnects, and violations may only ever show up in
//! the off-ledger `NetStats`.
//!
//! The hostile-peer soak floods a serving daemon with garbage dialers,
//! protocol-violating dialers, and a pile of half-open connections while
//! an honest job runs to completion, then drains the daemon with SIGTERM
//! and demands exit status 0.

#![cfg(unix)]

use pprl_net::frame::{encode_frame, K_DATA};
use pprl_net::{ChaosConfig, ChaosProxy};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_pprl-link")
}

fn work_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pprl-net-chaos-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn synth(dir: &Path, records: u32, seed: u64) {
    let status = Command::new(bin())
        .args(["synth", "--records", &records.to_string(), "--seed", &seed.to_string(), "--out"])
        .arg(dir)
        .status()
        .unwrap();
    assert!(status.success(), "synth failed");
}

/// The shared RUN OPTIONS every process (and the reference) uses.
fn common_args(dir: &Path) -> Vec<String> {
    vec![
        "--left".into(),
        dir.join("d1.csv").display().to_string(),
        "--right".into(),
        dir.join("d2.csv").display().to_string(),
        "--allowance-pct".into(),
        "2.0".into(),
        "--paillier".into(),
        "256".into(),
        "--threads".into(),
        "1".into(),
    ]
}

/// The fault-free single-process reference report.
fn reference_report(dir: &Path) -> String {
    let out = Command::new(bin())
        .arg("run")
        .args(common_args(dir))
        .args(["--fault-rate", "0"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "reference run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap()
}

/// A spawned process with stderr drained on a thread (so the child never
/// blocks on a full pipe) and scanned for announcement lines.
struct Proc {
    child: Child,
    stderr: std::sync::mpsc::Receiver<String>,
    collected: Vec<String>,
}

fn spawn_args(args: Vec<String>) -> Proc {
    let mut child = Command::new(bin())
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let pipe = child.stderr.take().unwrap();
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        for line in BufReader::new(pipe).lines().map_while(Result::ok) {
            if tx.send(line).is_err() {
                break;
            }
        }
    });
    Proc {
        child,
        stderr: rx,
        collected: Vec::new(),
    }
}

impl Proc {
    /// Blocks until a stderr line contains `marker`, returning the text
    /// after it up to the next space (or end of line).
    fn await_announce(&mut self, marker: &str) -> String {
        let deadline = Instant::now() + Duration::from_secs(30);
        while Instant::now() < deadline {
            match self.stderr.recv_timeout(Duration::from_millis(200)) {
                Ok(line) => {
                    let found = line.split(marker).nth(1).map(|rest| {
                        rest.split_whitespace().next().unwrap_or(rest).to_string()
                    });
                    self.collected.push(line);
                    if let Some(found) = found {
                        return found;
                    }
                }
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
                Err(_) => break,
            }
        }
        panic!("no {marker:?} announcement; stderr: {:?}", self.collected);
    }

    fn listen_addr(&mut self) -> String {
        self.await_announce(" listening on ")
    }

    /// Waits for exit, panicking (with stderr) on failure. Returns
    /// `(stdout, stderr lines)`.
    fn finish(mut self) -> (String, Vec<String>) {
        let status = self.child.wait().unwrap();
        let mut stdout = String::new();
        if let Some(mut pipe) = self.child.stdout.take() {
            use std::io::Read;
            pipe.read_to_string(&mut stdout).unwrap();
        }
        self.collected.extend(self.stderr.iter());
        if !status.success() {
            panic!("process exited with {status}: {}", self.collected.join("\n"));
        }
        (stdout, self.collected)
    }
}

fn spawn_party(dir: &Path, role: &str, extra: &[String]) -> Proc {
    let mut args = vec!["party".to_string(), "--role".to_string(), role.to_string()];
    args.extend(common_args(dir));
    args.extend(extra.to_vec());
    spawn_args(args)
}

/// Every fault family, two seeds each, full session through the chaos
/// proxy on the Bob↔querier leg: the report never changes by a byte.
#[test]
fn chaos_soak_keeps_the_report_byte_identical_across_every_fault_family() {
    let dir = work_dir("soak");
    synth(&dir, 60, 7);
    let reference = reference_report(&dir);

    let mut injected = 0u64;
    for family in ChaosConfig::FAMILIES {
        for seed in [1u64, 2] {
            // Seed 1 soaks the classic lockstep protocol; seed 2 reruns
            // the same family with a 32-pair send window on the holders —
            // pipelining must be just as chaos-proof, to the byte.
            let window: &[String] = if seed == 1 {
                &[]
            } else {
                &["--window".to_string(), "32".to_string()]
            };
            eprintln!("chaos soak: family={family} seed={seed} window={:?}", window);
            // The querier binds fresh per run; the proxy fronts it for Bob.
            let mut query = spawn_party(&dir, "query", &[]);
            let qaddr: std::net::SocketAddr = query.listen_addr().parse().unwrap();
            let cfg = ChaosConfig::fault_family(family, seed).unwrap();
            let proxy = ChaosProxy::start("127.0.0.1:0", qaddr, cfg).unwrap();

            let mut alice_args = vec!["--connect-querier".to_string(), qaddr.to_string()];
            alice_args.extend(window.iter().cloned());
            let mut alice = spawn_party(&dir, "alice", &alice_args);
            let aaddr = alice.listen_addr();
            let mut bob_args = vec![
                "--connect-querier".to_string(),
                proxy.local_addr().to_string(),
                "--connect-alice".to_string(),
                aaddr,
            ];
            bob_args.extend(window.iter().cloned());
            let bob = spawn_party(&dir, "bob", &bob_args);
            let (report, _) = query.finish();
            alice.finish();
            bob.finish();

            let stats = proxy.stats();
            assert!(
                stats.relayed_bytes > 0,
                "family {family} seed {seed}: the session never crossed the proxy"
            );
            injected += stats.dropped_chunks
                + stats.duplicated_chunks
                + stats.corrupted_chunks
                + stats.resets
                + stats.partitions;
            assert_eq!(
                report, reference,
                "family {family} seed {seed}: the report drifted under chaos \
                 (proxy census: {stats})"
            );
        }
    }
    // The soak must have been a soak: across all fault families and seeds
    // the proxy injected real faults, and not one reached the report.
    assert!(injected > 0, "no fault family ever fired");
}

/// The standalone `pprl-link chaosproxy` subcommand relays a full session,
/// drains on SIGTERM with exit status 0, and prints its fault census.
#[test]
fn chaosproxy_subcommand_relays_a_session_and_drains_on_sigterm() {
    let dir = work_dir("subcommand");
    synth(&dir, 60, 7);
    let reference = reference_report(&dir);

    let mut query = spawn_party(&dir, "query", &[]);
    let qaddr = query.listen_addr();
    let mut proxy = spawn_args(vec![
        "chaosproxy".into(),
        "--upstream".into(),
        qaddr.clone(),
        "--family".into(),
        "split".into(),
        "--seed".into(),
        "3".into(),
    ]);
    let paddr = proxy.listen_addr();

    let mut alice = spawn_party(&dir, "alice", &["--connect-querier".into(), qaddr]);
    let aaddr = alice.listen_addr();
    let bob = spawn_party(
        &dir,
        "bob",
        &["--connect-querier".into(), paddr, "--connect-alice".into(), aaddr],
    );
    let (report, _) = query.finish();
    alice.finish();
    bob.finish();
    assert_eq!(report, reference, "report drifted through the chaosproxy subcommand");

    let term = Command::new("kill")
        .args(["-TERM", &proxy.child.id().to_string()])
        .status()
        .unwrap();
    assert!(term.success(), "kill -TERM failed");
    let (_, proxy_err) = proxy.finish(); // panics unless exit status 0
    assert!(
        proxy_err.iter().any(|l| l.starts_with("pprl-chaos: ") && l.contains("relayed")),
        "proxy never printed its fault census: {proxy_err:?}"
    );
}

/// Parses one counter out of a `net[...]` accounting line, e.g.
/// `field = "refused"` from `"... 2 refused, ..."`.
fn net_field(lines: &[String], field: &str) -> u64 {
    lines
        .iter()
        .filter(|line| line.starts_with("serve: drained="))
        .filter_map(|line| {
            let (head, _) = line.split_once(&format!(" {field}"))?;
            head.rsplit(' ').next()?.parse::<u64>().ok()
        })
        .sum()
}

/// Floods a serving daemon with hostile connections while an honest job
/// completes, then drains with SIGTERM. Honest report byte-identical,
/// hostile load visible only in the daemon's connection accounting.
#[test]
fn hostile_peers_cannot_stall_or_corrupt_a_serving_daemon() {
    let dir = work_dir("hostile");
    let j1 = dir.join("j1");
    let j2 = dir.join("j2");
    for (job_dir, seed) in [(&j1, 41u64), (&j2, 42)] {
        std::fs::create_dir_all(job_dir).unwrap();
        synth(job_dir, 60, seed);
    }
    let reference = reference_report(&j1);

    let mut args = vec![
        "party".to_string(),
        "serve".to_string(),
        "--journal-dir".to_string(),
        dir.join("journals").display().to_string(),
    ];
    for (name, job_dir) in [("j1", &j1), ("j2", &j2)] {
        args.push("--job".to_string());
        args.push(format!(
            "{name}={},{}",
            job_dir.join("d1.csv").display(),
            job_dir.join("d2.csv").display()
        ));
    }
    args.extend(common_args(&j1).into_iter().skip(4)); // shared RUN OPTIONS only
    args.extend(
        [
            "--max-jobs", "1", "--retry-after-ms", "100", "--no-fsync",
            "--max-conns", "10", "--idle-timeout-ms", "2000",
        ]
        .iter()
        .map(|s| s.to_string()),
    );
    let mut daemon = spawn_args(args);
    let daemon_addr = daemon.listen_addr();

    // Wave one: protocol violators — a well-formed data frame where only
    // a hello may appear. Each costs exactly its own connection.
    let mut hostiles: Vec<TcpStream> = Vec::new();
    for _ in 0..3 {
        if let Ok(mut sock) = TcpStream::connect(&daemon_addr) {
            let rogue = encode_frame(K_DATA, &[0u8; 64]);
            let _ = sock.write_all(&rogue);
            hostiles.push(sock);
        }
    }
    // Wave two: garbage bytes that are not even a frame.
    for _ in 0..3 {
        if let Ok(mut sock) = TcpStream::connect(&daemon_addr) {
            let _ = sock.write_all(b"GET / HTTP/1.1\r\nHost: pprl\r\n\r\n");
            hostiles.push(sock);
        }
    }
    // Wave three: a pile of half-open connections that never say anything.
    // More than --max-conns, so the tail must get typed refusals while the
    // head squats on greeter slots until the handshake deadline reaps them.
    for _ in 0..14 {
        if let Ok(sock) = TcpStream::connect(&daemon_addr) {
            hostiles.push(sock);
        }
    }

    // The honest job dials into the middle of the flood and must complete.
    let holder = |role: &str, connect: Vec<String>| {
        let mut args = vec!["party".to_string(), "--role".to_string(), role.to_string()];
        args.extend(common_args(&j1));
        args.extend(connect);
        spawn_args(args)
    };
    let mut alice = holder(
        "alice",
        vec!["--connect-querier".to_string(), daemon_addr.clone()],
    );
    let alice_addr = alice.listen_addr();
    let bob = holder(
        "bob",
        vec![
            "--connect-querier".to_string(),
            daemon_addr,
            "--connect-alice".to_string(),
            alice_addr,
        ],
    );

    // SIGTERM once j1 is demonstrably mid-flight: the drain must finish
    // j1 through the hostile pile, never start j2 (which has no holders),
    // and exit 0.
    let report_file = dir.join("journals").join("j1.report");
    let journal_file = dir.join("journals").join("j1.pprlj");
    let deadline = Instant::now() + Duration::from_secs(180);
    while std::fs::metadata(&journal_file).map(|m| m.len()).unwrap_or(0) <= 4_096 {
        assert!(
            Instant::now() < deadline,
            "honest job never made progress under hostile load"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    let term = Command::new("kill")
        .args(["-TERM", &daemon.child.id().to_string()])
        .status()
        .unwrap();
    assert!(term.success(), "kill -TERM failed");

    let (_, daemon_err) = daemon.finish(); // panics unless exit status 0
    alice.finish();
    bob.finish();
    drop(hostiles);

    assert_eq!(
        std::fs::read_to_string(&report_file).unwrap(),
        reference,
        "the honest job's report must be byte-identical under hostile load"
    );
    assert!(
        net_field(&daemon_err, "violations") >= 1,
        "the rogue data frames must be counted as violations: {daemon_err:?}"
    );
    assert!(
        net_field(&daemon_err, "refused") >= 1,
        "half-open dialers beyond --max-conns must get typed refusals: {daemon_err:?}"
    );
}
