//! Three-process loopback deployment harness.
//!
//! Spawns the querier, Alice, and Bob as real OS processes wired over
//! 127.0.0.1 and asserts the acceptance bar for the networked mode: the
//! querier's report — matched-pair digest *and* cost-ledger byte counts —
//! is byte-identical to the single-process `--threads 1` run, both for a
//! healthy session and after SIGKILLing Bob mid-session and resuming him
//! from his journal.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_pprl-link")
}

fn work_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pprl-net-loopback-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn synth(dir: &Path) {
    let status = Command::new(bin())
        .args(["synth", "--records", "120", "--seed", "7", "--out"])
        .arg(dir)
        .status()
        .unwrap();
    assert!(status.success(), "synth failed");
}

/// The shared RUN OPTIONS every process (and the reference) uses.
fn common_args(dir: &Path) -> Vec<String> {
    vec![
        "--left".into(),
        dir.join("d1.csv").display().to_string(),
        "--right".into(),
        dir.join("d2.csv").display().to_string(),
        "--allowance-pct".into(),
        "2.0".into(),
        "--paillier".into(),
        "256".into(),
        "--threads".into(),
        "1".into(),
    ]
}

/// The single-process reference: the batched wire protocol over the
/// simulated perfect channel (`--fault-rate 0`), sequential.
fn reference_report(dir: &Path) -> String {
    let out = Command::new(bin())
        .arg("run")
        .args(common_args(dir))
        .args(["--fault-rate", "0"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "reference run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap()
}

/// A spawned party with its stderr drained on a thread (so the child
/// never blocks on a full pipe) and scanned for the listener line.
struct Party {
    child: Child,
    stderr: std::sync::mpsc::Receiver<String>,
}

fn spawn_party(dir: &Path, role: &str, extra: &[String]) -> Party {
    let mut child = Command::new(bin())
        .arg("party")
        .args(["--role", role])
        .args(common_args(dir))
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let pipe = child.stderr.take().unwrap();
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        for line in BufReader::new(pipe).lines().map_while(Result::ok) {
            if tx.send(line).is_err() {
                break;
            }
        }
    });
    Party { child, stderr: rx }
}

impl Party {
    /// Blocks until the party announces its listener address.
    fn listen_addr(&mut self) -> String {
        let deadline = Instant::now() + Duration::from_secs(30);
        while Instant::now() < deadline {
            match self.stderr.recv_timeout(Duration::from_millis(200)) {
                Ok(line) => {
                    if let Some(addr) = line.strip_prefix("pprl-net: ").and_then(|rest| {
                        rest.split(" listening on ").nth(1).map(str::to_string)
                    }) {
                        return addr;
                    }
                }
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
                Err(_) => break,
            }
        }
        panic!("party never announced a listener");
    }

    fn finish(mut self) -> (bool, String) {
        let status = self.child.wait().unwrap();
        let mut stdout = String::new();
        if let Some(mut pipe) = self.child.stdout.take() {
            use std::io::Read;
            pipe.read_to_string(&mut stdout).unwrap();
        }
        // Drain stderr to reader-thread EOF, for failure diagnostics —
        // `try_iter` could miss lines written just before exit.
        let stderr: Vec<String> = self.stderr.iter().collect();
        if !status.success() {
            panic!("party exited with {status}: {}", stderr.join("\n"));
        }
        (status.success(), stdout)
    }
}

#[test]
fn three_processes_on_loopback_match_the_single_process_run() {
    let dir = work_dir("healthy");
    synth(&dir);
    let reference = reference_report(&dir);

    let mut query = spawn_party(&dir, "query", &[]);
    let qaddr = query.listen_addr();
    let mut alice = spawn_party(&dir, "alice", &["--connect-querier".into(), qaddr.clone()]);
    let aaddr = alice.listen_addr();
    let bob = spawn_party(
        &dir,
        "bob",
        &[
            "--connect-querier".into(),
            qaddr,
            "--connect-alice".into(),
            aaddr,
        ],
    );

    let (_, report) = query.finish();
    alice.finish();
    bob.finish();
    assert_eq!(
        report, reference,
        "the distributed report (digest and ledger included) must be \
         byte-identical to the single-process run"
    );
}

#[test]
fn bob_killed_mid_session_resumes_from_his_journal() {
    let dir = work_dir("kill");
    synth(&dir);
    let reference = reference_report(&dir);
    let journal = dir.join("bob.pprlj");
    let journal_arg = journal.display().to_string();

    let mut query = spawn_party(&dir, "query", &[]);
    let qaddr = query.listen_addr();
    let mut alice = spawn_party(&dir, "alice", &["--connect-querier".into(), qaddr.clone()]);
    let aaddr = alice.listen_addr();
    let bob_args = vec![
        "--connect-querier".to_string(),
        qaddr,
        "--connect-alice".to_string(),
        aaddr,
        "--journal".to_string(),
        journal_arg,
    ];
    let mut bob = spawn_party(&dir, "bob", &bob_args);

    // SIGKILL Bob once his journal shows real committed progress.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let size = std::fs::metadata(&journal).map(|m| m.len()).unwrap_or(0);
        if size > 8_192 {
            break;
        }
        assert!(Instant::now() < deadline, "bob never made journal progress");
        std::thread::sleep(Duration::from_millis(50));
    }
    bob.child.kill().unwrap();
    let _ = bob.child.wait();

    // Resume him; the querier and Alice are stalled inside their
    // reconnect deadlines and pick the session back up.
    let mut resume_args = bob_args;
    resume_args.push("--resume".to_string());
    let bob2 = spawn_party(&dir, "bob", &resume_args);

    let (_, report) = query.finish();
    alice.finish();
    bob2.finish();
    assert_eq!(
        report, reference,
        "a SIGKILL plus journal resume must not change a byte of the report"
    );
}
