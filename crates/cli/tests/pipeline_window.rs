//! Windowed-pipelining acceptance: the send window is a pure deployment
//! knob.
//!
//! Three angles:
//!
//! 1. **Crash mid-window under chaos** — a three-process session at
//!    `--window 32` with a seeded drop-fault proxy on the Bob↔querier
//!    leg; Bob is SIGKILLed once his journal shows committed progress and
//!    resumed from it. The querier's report must be byte-identical to the
//!    uninterrupted single-process run.
//! 2. **Deterministic unobservability** — the same session at `--window 1`
//!    and `--window 32` produces byte-identical reports *and*
//!    byte-identical holder journals.
//! 3. **Property-based unobservability** — in-process three-party
//!    sessions at proptest-sampled window sizes always reproduce the
//!    lockstep baseline's match digest, protocol ledger, and journal
//!    bytes.

#![cfg(unix)]

use pprl_core::{HybridLinkage, LinkageConfig, PartyOptions, PartyOutcome, Role};
use pprl_net::{ChaosConfig, ChaosProxy};
use pprl_smc::{SmcAllowance, SmcMode};
use std::io::{BufRead, BufReader};
use std::net::{SocketAddr, TcpListener};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_pprl-link")
}

fn work_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pprl-pipeline-window-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn synth(dir: &Path) {
    let status = Command::new(bin())
        .args(["synth", "--records", "60", "--seed", "7", "--out"])
        .arg(dir)
        .status()
        .unwrap();
    assert!(status.success(), "synth failed");
}

/// The shared RUN OPTIONS every process (and the reference) uses.
fn common_args(dir: &Path) -> Vec<String> {
    vec![
        "--left".into(),
        dir.join("d1.csv").display().to_string(),
        "--right".into(),
        dir.join("d2.csv").display().to_string(),
        "--allowance-pct".into(),
        "2.0".into(),
        "--paillier".into(),
        "256".into(),
        "--threads".into(),
        "1".into(),
    ]
}

/// The fault-free single-process reference report.
fn reference_report(dir: &Path) -> String {
    let out = Command::new(bin())
        .arg("run")
        .args(common_args(dir))
        .args(["--fault-rate", "0"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "reference run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap()
}

/// A spawned party with its stderr drained on a thread.
struct Party {
    child: Child,
    stderr: std::sync::mpsc::Receiver<String>,
}

fn spawn_party(dir: &Path, role: &str, extra: &[String]) -> Party {
    let mut child = Command::new(bin())
        .arg("party")
        .args(["--role", role])
        .args(common_args(dir))
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let pipe = child.stderr.take().unwrap();
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        for line in BufReader::new(pipe).lines().map_while(Result::ok) {
            if tx.send(line).is_err() {
                break;
            }
        }
    });
    Party { child, stderr: rx }
}

impl Party {
    fn listen_addr(&mut self) -> String {
        let deadline = Instant::now() + Duration::from_secs(30);
        while Instant::now() < deadline {
            match self.stderr.recv_timeout(Duration::from_millis(200)) {
                Ok(line) => {
                    if let Some(addr) = line.strip_prefix("pprl-net: ").and_then(|rest| {
                        rest.split(" listening on ").nth(1).map(str::to_string)
                    }) {
                        return addr;
                    }
                }
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
                Err(_) => break,
            }
        }
        panic!("party never announced a listener");
    }

    fn finish(mut self) -> String {
        let status = self.child.wait().unwrap();
        let mut stdout = String::new();
        if let Some(mut pipe) = self.child.stdout.take() {
            use std::io::Read;
            pipe.read_to_string(&mut stdout).unwrap();
        }
        let stderr: Vec<String> = self.stderr.iter().collect();
        if !status.success() {
            panic!("party exited with {status}: {}", stderr.join("\n"));
        }
        stdout
    }
}

/// SIGKILL Bob mid-window under seeded drop faults, resume from his
/// journal: the querier's report never changes by a byte.
#[test]
fn sigkill_mid_window_with_chaos_resumes_byte_identical() {
    let dir = work_dir("sigkill");
    synth(&dir);
    let reference = reference_report(&dir);
    let journal = dir.join("bob.pprlj");
    let window_args = |extra: &[&str]| -> Vec<String> {
        let mut v: Vec<String> = vec!["--window".into(), "32".into()];
        v.extend(extra.iter().map(|s| s.to_string()));
        v
    };

    let mut query = spawn_party(&dir, "query", &[]);
    let qaddr: SocketAddr = query.listen_addr().parse().unwrap();
    // Seeded drop faults on the Bob↔querier leg: retransmits and
    // reconnects land *inside* an occupied 32-pair window.
    let cfg = ChaosConfig::fault_family("drop", 1).unwrap();
    let proxy = ChaosProxy::start("127.0.0.1:0", qaddr, cfg).unwrap();

    let mut alice = spawn_party(
        &dir,
        "alice",
        &window_args(&["--connect-querier", &qaddr.to_string()]),
    );
    let aaddr = alice.listen_addr();
    let bob_args = window_args(&[
        "--connect-querier",
        &proxy.local_addr().to_string(),
        "--connect-alice",
        &aaddr,
        "--journal",
        &journal.display().to_string(),
    ]);
    let mut bob = spawn_party(&dir, "bob", &bob_args);

    // Kill Bob once his journal shows real committed pair progress. The
    // budget is generous because debug-profile Paillier keygen alone can
    // eat tens of seconds on a loaded machine; release exits this loop at
    // the first committed window.
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let size = std::fs::metadata(&journal).map(|m| m.len()).unwrap_or(0);
        if size > 4_096 {
            break;
        }
        assert!(Instant::now() < deadline, "bob never made journal progress");
        std::thread::sleep(Duration::from_millis(20));
    }
    bob.child.kill().unwrap();
    let _ = bob.child.wait();

    // Resume him through the same chaos proxy.
    let mut resume_args = bob_args;
    resume_args.push("--resume".to_string());
    let bob2 = spawn_party(&dir, "bob", &resume_args);

    let report = query.finish();
    alice.finish();
    bob2.finish();
    assert!(
        proxy.stats().dropped_chunks > 0,
        "the chaos leg never dropped anything; the soak was not a soak"
    );
    assert_eq!(
        report, reference,
        "SIGKILL at window 32 under drop faults must not change the report"
    );
}

/// Runs one full three-process session with Bob journaled at the given
/// window; returns `(querier report, bob journal bytes)`.
fn run_session_at_window(dir: &Path, window: usize, tag: &str) -> (String, Vec<u8>) {
    let journal = dir.join(format!("bob-{tag}.pprlj"));
    let w = window.to_string();
    let mut query = spawn_party(dir, "query", &[]);
    let qaddr = query.listen_addr();
    let mut alice = spawn_party(
        dir,
        "alice",
        &[
            "--connect-querier".into(),
            qaddr.clone(),
            "--window".into(),
            w.clone(),
        ],
    );
    let aaddr = alice.listen_addr();
    let bob = spawn_party(
        dir,
        "bob",
        &[
            "--connect-querier".into(),
            qaddr,
            "--connect-alice".into(),
            aaddr,
            "--window".into(),
            w,
            "--journal".into(),
            journal.display().to_string(),
            "--no-fsync".into(),
        ],
    );
    let report = query.finish();
    alice.finish();
    bob.finish();
    (report, std::fs::read(&journal).unwrap())
}

/// Lockstep and window-32 sessions must be indistinguishable in both the
/// querier's report and the holder's journal bytes.
#[test]
fn window_size_is_unobservable_in_report_and_journal_bytes() {
    let dir = work_dir("unobservable");
    synth(&dir);
    let reference = reference_report(&dir);

    let (report_w1, journal_w1) = run_session_at_window(&dir, 1, "w1");
    let (report_w32, journal_w32) = run_session_at_window(&dir, 32, "w32");
    assert_eq!(report_w1, reference, "lockstep drifted from single-process");
    assert_eq!(report_w32, reference, "window 32 drifted from single-process");
    assert_eq!(
        journal_w1, journal_w32,
        "the holder journal must be byte-identical at any window"
    );
}

/// One in-process three-party session (threads over loopback TCP) at the
/// given window, Bob journaled. Returns the querier outcome digest inputs
/// and Bob's journal bytes.
fn in_process_session(window: usize, journal: &Path) -> (Vec<(u32, u32)>, u64, u64, Vec<u8>) {
    let scenario = pprl_core::SyntheticScenario::builder()
        .records_per_set(40)
        .seed(7)
        .build();
    let (d1, d2) = scenario.data_sets();
    let mut config = LinkageConfig::paper_defaults()
        .with_allowance(SmcAllowance::Fraction(0.02));
    config.mode = SmcMode::PaillierBatched {
        modulus_bits: 256,
        seed: 42,
        pack: false,
    };
    config.channel = None;

    let reserve = || {
        TcpListener::bind("127.0.0.1:0")
            .and_then(|l| l.local_addr())
            .expect("loopback bind")
    };
    let q_addr = reserve();
    let a_addr = reserve();
    let journal = journal.to_path_buf();
    let bob_journal = journal.clone();
    let spawn = |role: Role, f: Box<dyn FnOnce(&mut PartyOptions) + Send>| {
        let config = config.clone();
        let (d1, d2) = (d1.clone(), d2.clone());
        std::thread::spawn(move || -> PartyOutcome {
            let pipeline = HybridLinkage::new(config).with_threads(1);
            let mut popts = PartyOptions::new(role);
            popts.window = window;
            popts.durable = false;
            f(&mut popts);
            pprl_core::run_party(&pipeline, &d1, &d2, &popts).expect("party run")
        })
    };
    let query = spawn(
        Role::Query,
        Box::new(move |p| p.listen = Some(q_addr.to_string())),
    );
    let alice = spawn(
        Role::Alice,
        Box::new(move |p| {
            p.listen = Some(a_addr.to_string());
            p.querier_addr = Some(q_addr);
        }),
    );
    let bob = spawn(
        Role::Bob,
        Box::new(move |p| {
            p.querier_addr = Some(q_addr);
            p.alice_addr = Some(a_addr);
            p.journal = Some(bob_journal);
        }),
    );
    let q_out = query.join().expect("querier thread");
    alice.join().expect("alice thread");
    let b_out = bob.join().expect("bob thread");
    assert!(b_out.outcome.is_none(), "holders never learn decisions");

    let outcome = q_out.outcome.expect("querier outcome");
    let mut matched: Vec<(u32, u32)> = outcome.matched_rows().collect();
    matched.sort_unstable();
    (
        matched,
        outcome.ledger.messages,
        outcome.ledger.bytes,
        std::fs::read(&journal).expect("bob journal"),
    )
}

/// The lockstep baseline, computed once and shared by every proptest case.
fn lockstep_baseline() -> &'static (Vec<(u32, u32)>, u64, u64, Vec<u8>) {
    static BASELINE: OnceLock<(Vec<(u32, u32)>, u64, u64, Vec<u8>)> = OnceLock::new();
    BASELINE.get_or_init(|| {
        let dir = work_dir("prop-baseline");
        in_process_session(1, &dir.join("bob.pprlj"))
    })
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig {
        cases: 4, // each case is a full three-party TCP session
        .. proptest::prelude::ProptestConfig::default()
    })]

    /// Any sampled window size reproduces the lockstep baseline exactly:
    /// same match set, same protocol ledger, same journal bytes.
    #[test]
    fn any_window_size_reproduces_the_lockstep_session(window in 2usize..48) {
        let baseline = lockstep_baseline();
        let dir = work_dir(&format!("prop-w{window}"));
        let got = in_process_session(window, &dir.join("bob.pprlj"));
        proptest::prop_assert_eq!(&got.0, &baseline.0, "match set drifted");
        proptest::prop_assert_eq!(got.1, baseline.1, "ledger messages drifted");
        proptest::prop_assert_eq!(got.2, baseline.2, "ledger bytes drifted");
        proptest::prop_assert_eq!(&got.3, &baseline.3, "journal bytes drifted");
    }
}
