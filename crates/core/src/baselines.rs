//! The two baselines the paper positions itself against (§I):
//!
//! * **Pure cryptographic** — run the SMC protocol on every record pair.
//!   Exact (precision = recall = 1) but the cost is the full `|R|·|S|`
//!   pair space.
//! * **Pure sanitization** — decide every pair from the anonymized views
//!   alone: declare M class pairs matching, and classify U class pairs by
//!   thresholding their expected distances ("perturbing sensitive data at
//!   the expense of degrading matching accuracy").

use crate::truth::{count_matches_in_class_pair, GroundTruth};
use crate::LinkageError;
use pprl_anon::{AnonymizationMethod, Anonymizer, KAnonymityRequirement};
use pprl_blocking::{BlockingEngine, MatchingRule};
use pprl_data::DataSet;
use pprl_hierarchy::Vgh;
use pprl_smc::expected::expected_vector;
use serde::{Deserialize, Serialize};

/// Quality/cost summary of a baseline run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BaselineReport {
    /// Baseline name.
    pub name: String,
    /// SMC invocations required.
    pub smc_invocations: u64,
    /// Precision achieved.
    pub precision: f64,
    /// Recall achieved.
    pub recall: f64,
}

/// Pure-SMC baseline: cost is the whole pair space, accuracy is perfect.
/// (No crypto actually runs — the report is analytic; the per-invocation
/// cost comes from the criterion benches.)
pub fn pure_smc(r: &DataSet, s: &DataSet) -> BaselineReport {
    BaselineReport {
        name: "pure-smc".into(),
        smc_invocations: r.len() as u64 * s.len() as u64,
        precision: 1.0,
        recall: 1.0,
    }
}

/// Pure-sanitization baseline: no SMC at all. Pairs provably matching via
/// the slack rule are declared; unknown class pairs are classified by
/// expected distance against the thresholds (`EDᵢ ≤ θᵢ` for all i).
pub fn pure_sanitization(
    r: &DataSet,
    s: &DataSet,
    qids: &[usize],
    rule: &MatchingRule,
    k: usize,
    method: AnonymizationMethod,
) -> Result<BaselineReport, LinkageError> {
    let anonymizer = Anonymizer::new(method, KAnonymityRequirement(k));
    let r_view = anonymizer.anonymize(r, qids)?;
    let s_view = anonymizer.anonymize(s, qids)?;
    let blocking = BlockingEngine::new(rule.clone()).run(&r_view, &s_view)?;

    let schema = r.schema();
    let vghs: Vec<&Vgh> = qids.iter().map(|&q| schema.attribute(q).vgh()).collect();

    // Declared = all M pairs + U class pairs passing the ED threshold test.
    let mut declared = blocking.matched_pairs;
    let mut true_positives = blocking.matched_pairs; // M pairs are sound
    for pref in &blocking.unknown {
        let a = &r_view.classes()[pref.r_class as usize].sequence;
        let b = &s_view.classes()[pref.s_class as usize].sequence;
        let eds = expected_vector(&vghs, &rule.distances, a, b);
        let predicted_match = eds
            .iter()
            .zip(&rule.thetas)
            .all(|(ed, theta)| ed <= theta);
        if predicted_match {
            declared += pref.pairs;
            true_positives += count_matches_in_class_pair(
                r,
                s,
                qids,
                rule,
                &r_view.classes()[pref.r_class as usize].rows,
                &s_view.classes()[pref.s_class as usize].rows,
                0,
            );
        }
    }

    let truth = GroundTruth::compute(r, s, qids, rule);
    let precision = if declared == 0 {
        1.0
    } else {
        true_positives as f64 / declared as f64
    };
    let recall = if truth.total_matches() == 0 {
        1.0
    } else {
        true_positives as f64 / truth.total_matches() as f64
    };
    Ok(BaselineReport {
        name: format!("pure-sanitization(k={k})"),
        smc_invocations: 0,
        precision,
        recall,
    })
}

/// Secure set intersection (Agrawal et al. \[15\], the paper's §VII
/// comparator): commutative-encryption equality join on the exact QID
/// tuple. Precision is 1 (equal tuples have distance 0 on every attribute)
/// but *near* matches — the whole point of distance-threshold linkage —
/// are structurally invisible, and cost still scales with both tables.
///
/// The report is computed from plaintext tuple equality, which the
/// commutative protocol decides exactly (`tests/` validate the real
/// [`pprl_crypto::commutative::intersect_encrypted`] against it); the
/// exponentiation count is the protocol's actual cost: `2(|R| + |S|)`.
pub fn secure_set_intersection(
    r: &DataSet,
    s: &DataSet,
    qids: &[usize],
    rule: &MatchingRule,
) -> BaselineReport {
    use std::collections::HashMap;
    let mut index: HashMap<Vec<u64>, u64> = HashMap::new();
    for rec in s.records() {
        *index.entry(tuple_key(rec, qids)).or_insert(0) += 1;
    }
    let mut matched = 0u64;
    for rec in r.records() {
        if let Some(&count) = index.get(&tuple_key(rec, qids)) {
            matched += count;
        }
    }
    let truth = GroundTruth::compute(r, s, qids, rule);
    let recall = if truth.total_matches() == 0 {
        1.0
    } else {
        matched as f64 / truth.total_matches() as f64
    };
    BaselineReport {
        name: "secure-set-intersection".into(),
        // One hash-encrypt + one re-encrypt per element on each side.
        smc_invocations: 2 * (r.len() as u64 + s.len() as u64),
        precision: 1.0,
        recall,
    }
}

/// Serializes the exact matching tuple of a record (equality key).
pub fn tuple_key(rec: &pprl_data::Record, qids: &[usize]) -> Vec<u64> {
    qids.iter()
        .map(|&q| match rec.value(q) {
            pprl_data::Value::Cat(p) => p as u64,
            pprl_data::Value::Num(v) => (v * 1000.0).round() as u64,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::SyntheticScenario;

    const QIDS: [usize; 5] = [0, 1, 2, 3, 4];

    #[test]
    fn pure_smc_costs_the_whole_pair_space() {
        let (d1, d2) = SyntheticScenario::builder()
            .records_per_set(100)
            .seed(3)
            .build()
            .data_sets();
        let report = pure_smc(&d1, &d2);
        assert_eq!(report.smc_invocations, 10_000);
        assert_eq!(report.precision, 1.0);
        assert_eq!(report.recall, 1.0);
    }

    #[test]
    fn set_intersection_misses_near_matches() {
        let (d1, d2) = SyntheticScenario::builder()
            .records_per_set(200)
            .seed(7)
            .build()
            .data_sets();
        let rule = MatchingRule::uniform(d1.schema(), &QIDS, 0.05);
        let report = secure_set_intersection(&d1, &d2, &QIDS, &rule);
        assert_eq!(report.precision, 1.0);
        // The d3 overlap guarantees exact duplicates, so recall > 0, but
        // age-window matches are missed, so recall < 1.
        assert!(report.recall > 0.0);
        assert!(report.recall < 1.0, "near matches must be missed");
        assert_eq!(report.smc_invocations, 2 * (200 + 200));
    }

    #[test]
    fn analytic_intersection_equals_real_commutative_protocol() {
        use pprl_crypto::commutative::intersect_encrypted;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let (d1, d2) = SyntheticScenario::builder()
            .records_per_set(40)
            .seed(9)
            .build()
            .data_sets();
        let encode = |ds: &DataSet| -> Vec<Vec<u8>> {
            ds.records()
                .iter()
                .map(|r| {
                    tuple_key(r, &QIDS)
                        .iter()
                        .flat_map(|v| v.to_be_bytes())
                        .collect()
                })
                .collect()
        };
        let mut rng = StdRng::seed_from_u64(31);
        let (pairs, cost) = intersect_encrypted(&encode(&d1), &encode(&d2), &mut rng);
        // Plaintext reference count.
        let mut expected = 0usize;
        for r in d1.records() {
            for s in d2.records() {
                if tuple_key(r, &QIDS) == tuple_key(s, &QIDS) {
                    expected += 1;
                }
            }
        }
        assert_eq!(pairs.len(), expected);
        assert_eq!(cost.exponentiations, 2 * (40 + 40));
    }

    #[test]
    fn pure_sanitization_degrades_recall_as_k_grows() {
        let (d1, d2) = SyntheticScenario::builder()
            .records_per_set(240)
            .seed(5)
            .build()
            .data_sets();
        let rule = MatchingRule::uniform(d1.schema(), &QIDS, 0.05);
        let run = |k: usize| {
            pure_sanitization(&d1, &d2, &QIDS, &rule, k, AnonymizationMethod::MaxEntropy)
                .unwrap()
        };
        let fine = run(2);
        let coarse = run(64);
        assert_eq!(fine.smc_invocations, 0);
        // Heavier perturbation should not improve recall.
        assert!(
            coarse.recall <= fine.recall + 0.05,
            "recall k=64 ({:.3}) vs k=2 ({:.3})",
            coarse.recall,
            fine.recall
        );
    }
}
