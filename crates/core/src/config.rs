//! Pipeline configuration.

use pprl_anon::{AnonymizationMethod, KAnonymityRequirement};
use pprl_blocking::MatchingRule;
use pprl_data::Schema;
use pprl_smc::{
    ChannelConfig, DeadlineBudget, LabelingStrategy, SelectionHeuristic, SmcAllowance, SmcMode,
};

/// Everything the three participants agree on before the protocol runs.
///
/// Each data holder picks its own anonymization method and `k`
/// (the paper: "Participants can choose different anonymization methods,
/// anonymity levels, quasi-identifier attribute sets" — we require the QID
/// *set* to match so the released sequences are comparable, as the
/// experiments do).
#[derive(Clone, Debug)]
pub struct LinkageConfig {
    /// QID attribute indices (also the matching attributes).
    pub qids: Vec<usize>,
    /// Uniform matching threshold θ (used when `custom_rule` is `None`).
    pub theta: f64,
    /// Full per-attribute rule override.
    pub custom_rule: Option<MatchingRule>,
    /// First holder's anonymization method.
    pub method_r: AnonymizationMethod,
    /// Second holder's anonymization method.
    pub method_s: AnonymizationMethod,
    /// First holder's anonymity requirement.
    pub k_r: KAnonymityRequirement,
    /// Second holder's anonymity requirement.
    pub k_s: KAnonymityRequirement,
    /// SMC candidate ordering.
    pub heuristic: SelectionHeuristic,
    /// SMC budget.
    pub allowance: SmcAllowance,
    /// Leftover labeling strategy (§V-B; the paper uses strategy 1).
    pub strategy: LabelingStrategy,
    /// Oracle (sweeps) or real Paillier execution.
    pub mode: SmcMode,
    /// Simulated network under the batched wire protocol (`None` = the
    /// historical perfect in-process hand-off).
    pub channel: Option<ChannelConfig>,
    /// Wall-clock (or virtual) budget for the SMC step; on expiry the
    /// remaining in-allowance pairs are abandoned to the labeling strategy
    /// instead of compared.
    pub deadline: DeadlineBudget,
}

impl LinkageConfig {
    /// The paper's §VI defaults: QIDs = {age, workclass, education,
    /// marital-status, occupation}, θᵢ = 0.05, k = 32 for both holders,
    /// MaxEntropy anonymization, SMC allowance = 1.5 %, maximize-precision
    /// strategy.
    pub fn paper_defaults() -> Self {
        LinkageConfig {
            qids: vec![0, 1, 2, 3, 4],
            theta: 0.05,
            custom_rule: None,
            method_r: AnonymizationMethod::MaxEntropy,
            method_s: AnonymizationMethod::MaxEntropy,
            k_r: KAnonymityRequirement(32),
            k_s: KAnonymityRequirement(32),
            heuristic: SelectionHeuristic::MinAvgFirst,
            allowance: SmcAllowance::paper_default(),
            strategy: LabelingStrategy::MaximizePrecision,
            mode: SmcMode::Oracle,
            channel: None,
            deadline: DeadlineBudget::None,
        }
    }

    /// Sets the same `k` for both holders.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k_r = KAnonymityRequirement(k);
        self.k_s = KAnonymityRequirement(k);
        self
    }

    /// Sets the uniform matching threshold.
    pub fn with_theta(mut self, theta: f64) -> Self {
        self.theta = theta;
        self
    }

    /// Uses the top-`q` QIDs of the Adult order (Figs. 6–7 sweeps).
    pub fn with_qid_count(mut self, q: usize) -> Self {
        self.qids = (0..q).collect();
        self
    }

    /// Sets the SMC allowance.
    pub fn with_allowance(mut self, allowance: SmcAllowance) -> Self {
        self.allowance = allowance;
        self
    }

    /// Sets the selection heuristic.
    pub fn with_heuristic(mut self, heuristic: SelectionHeuristic) -> Self {
        self.heuristic = heuristic;
        self
    }

    /// Sets the anonymization method for both holders.
    pub fn with_method(mut self, method: AnonymizationMethod) -> Self {
        self.method_r = method;
        self.method_s = method;
        self
    }

    /// Sets the leftover labeling strategy.
    pub fn with_strategy(mut self, strategy: LabelingStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the SMC execution mode.
    pub fn with_mode(mut self, mode: SmcMode) -> Self {
        self.mode = mode;
        self
    }

    /// Runs the batched wire protocol over a simulated network (fault
    /// injection + retries). Only meaningful with
    /// [`SmcMode::PaillierBatched`].
    pub fn with_channel(mut self, channel: ChannelConfig) -> Self {
        self.channel = Some(channel);
        self
    }

    /// Caps how long the SMC step may run (see [`DeadlineBudget`]).
    pub fn with_deadline(mut self, deadline: DeadlineBudget) -> Self {
        self.deadline = deadline;
        self
    }

    /// Resolves the matching rule against a schema.
    pub fn rule(&self, schema: &Schema) -> MatchingRule {
        self.custom_rule
            .clone()
            .unwrap_or_else(|| MatchingRule::uniform(schema, &self.qids, self.theta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_vi() {
        let c = LinkageConfig::paper_defaults();
        assert_eq!(c.qids, vec![0, 1, 2, 3, 4]);
        assert_eq!(c.theta, 0.05);
        assert_eq!(c.k_r.k(), 32);
        assert_eq!(c.k_s.k(), 32);
        assert!(matches!(c.allowance, SmcAllowance::Fraction(f) if (f - 0.015).abs() < 1e-12));
        assert_eq!(c.strategy, LabelingStrategy::MaximizePrecision);
    }

    #[test]
    fn builder_methods_compose() {
        let c = LinkageConfig::paper_defaults()
            .with_k(8)
            .with_theta(0.1)
            .with_qid_count(3)
            .with_heuristic(SelectionHeuristic::MaxLast);
        assert_eq!(c.k_r.k(), 8);
        assert_eq!(c.theta, 0.1);
        assert_eq!(c.qids, vec![0, 1, 2]);
        assert_eq!(c.heuristic, SelectionHeuristic::MaxLast);
    }

    #[test]
    fn rule_resolution_uses_uniform_theta() {
        let c = LinkageConfig::paper_defaults();
        let schema = Schema::adult();
        let rule = c.rule(&schema);
        assert_eq!(rule.thetas, vec![0.05; 5]);
    }
}
