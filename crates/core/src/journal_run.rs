//! Crash-safe linkage runs on top of the durable run journal.
//!
//! [`run_journaled`] executes the same protocol as [`HybridLinkage::run`]
//! while recording its progress — config fingerprint, per-chunk blocking
//! tallies, every per-pair SMC outcome, periodic [`SmcSession`]
//! checkpoints — as checksummed frames in a `pprl-journal` file.
//! [`resume`] rebuilds a killed run from that file: the cheap,
//! deterministic phases (anonymization, blocking) are recomputed and
//! *verified* against the journaled tallies (catching input drift), the
//! expensive SMC phase is restored from the latest checkpoint and replayed
//! from the outcome frames — no completed comparison is ever re-executed —
//! and execution continues live from the exact pair the crash interrupted.
//!
//! Durability contract (see `DESIGN.md` §"Failure model"): each outcome is
//! appended with a single flushed `write(2)`, so a SIGKILL at any byte
//! offset loses at most the one frame that was mid-write; torn tails are
//! detected by checksum and truncated on resume. A resumed run therefore
//! re-executes at most one comparison, and its final match set and metrics
//! are identical to an uninterrupted run (asserted by the kill-recovery
//! harness in `crates/cli/tests/crash_recovery.rs`).

use crate::pipeline::{check_schemas, StagedArtifacts};
use crate::{HybridLinkage, LinkageError, LinkageOutcome};
use pprl_anon::Anonymizer;
use pprl_blocking::{BlockingChunk, BlockingEngine};
use pprl_data::{DataSet, Value};
use pprl_journal::{Fnv1a64, Frame, JournalWriter};
use pprl_smc::{AbandonReason, PairDecision, PairEvent, SmcSession};
use std::path::Path;

/// Frame kind: informational config snapshot (`Debug` text of the
/// [`crate::LinkageConfig`]); the binding check is the header fingerprint.
pub const K_CONFIG: u8 = 1;
/// Frame kind: one blocking chunk's `(index, M, N, U)` record-pair tallies.
pub const K_BLOCKING_CHUNK: u8 = 2;
/// Frame kind: blocking-phase totals (total/M/N/U/suppressed pairs).
pub const K_BLOCKING_DONE: u8 = 3;
/// Frame kind: one per-pair SMC outcome (`ri`, `si`, decision code).
pub const K_SMC_OUTCOME: u8 = 4;
/// Frame kind: a serialized [`SmcSession`] checkpoint
/// (`pprl_smc::codec` binary payload).
pub const K_SMC_CHECKPOINT: u8 = 5;
/// Frame kind: the run completed; the journal is a full transcript.
pub const K_DONE: u8 = 6;

/// Tuning knobs for a journaled run.
#[derive(Clone, Copy, Debug)]
pub struct JournalOptions {
    /// Append a session checkpoint every this many SMC outcomes
    /// (`0` = only the implicit recovery-by-replay, no checkpoints).
    pub checkpoint_every: u64,
    /// Artificial delay per live SMC outcome, in milliseconds. Test-only
    /// knob: it widens the window the kill-recovery harness shoots at.
    pub pace_ms: u64,
    /// R classes per blocking chunk (fingerprinted: a journal written
    /// with one chunk width cannot be resumed with another).
    pub chunk_r_classes: usize,
    /// Fsync the journal on creation (file + parent directory) and at
    /// every checkpoint frame, surviving machine crashes, not just
    /// process kills. `false` keeps kill-only tests and benchmarks fast.
    /// Not fingerprinted: durability is a deployment choice, not a
    /// protocol one.
    pub durable: bool,
}

impl Default for JournalOptions {
    fn default() -> Self {
        JournalOptions {
            checkpoint_every: 64,
            pace_ms: 0,
            chunk_r_classes: 8,
            durable: true,
        }
    }
}

/// A [`LinkageOutcome`] plus the journal's account of how it was reached.
#[derive(Debug)]
pub struct JournaledOutcome {
    /// The linkage result — identical to what [`HybridLinkage::run`]
    /// produces for the same inputs, crash or no crash.
    pub outcome: LinkageOutcome,
    /// Whether this run resumed an existing journal.
    pub resumed: bool,
    /// Comparisons restored wholesale from the latest checkpoint.
    pub restored_pairs: u64,
    /// Comparisons re-applied from outcome frames (no crypto re-executed).
    pub replayed_pairs: u64,
    /// Comparisons actually performed by this process.
    pub live_pairs: u64,
}

/// Runs the pipeline from scratch, journaling progress to `path`
/// (truncating any file already there).
pub fn run_journaled(
    pipeline: &HybridLinkage,
    r: &DataSet,
    s: &DataSet,
    path: &Path,
    opts: &JournalOptions,
) -> Result<JournaledOutcome, LinkageError> {
    let fp = fingerprint(pipeline, r, s, opts);
    let mut writer = JournalWriter::create_with(path, fp, opts.durable)?;
    let cfg_text = format!("{:?}", pipeline.config());
    writer.append(K_CONFIG, cfg_text.as_bytes())?;
    execute(pipeline, r, s, writer, &[], false, opts)
}

/// Resumes a journaled run from `path`: verifies the fingerprint, truncates
/// a torn tail, skips completed work, and finishes the job.
pub fn resume(
    pipeline: &HybridLinkage,
    r: &DataSet,
    s: &DataSet,
    path: &Path,
    opts: &JournalOptions,
) -> Result<JournaledOutcome, LinkageError> {
    let fp = fingerprint(pipeline, r, s, opts);
    let (recovered, writer) = JournalWriter::resume_with(path, fp, opts.durable)?;
    execute(pipeline, r, s, writer, &recovered.frames, true, opts)
}

/// Journal frames parsed into phase-level progress.
struct Progress {
    /// `chunk_index → (M, N, U)` tallies already journaled.
    chunk_tallies: Vec<Option<(u64, u64, u64)>>,
    /// Journaled blocking totals, if the phase completed.
    blocking_done: Option<[u64; 5]>,
    /// Every journaled per-pair outcome, in append order.
    outcomes: Vec<PairEvent>,
    /// The latest session checkpoint.
    checkpoint: Option<SmcSession>,
    /// Whether the journal records a completed run.
    done: bool,
}

fn parse_progress(frames: &[Frame], n_chunks: u32) -> Result<Progress, LinkageError> {
    let mut progress = Progress {
        chunk_tallies: vec![None; n_chunks as usize],
        blocking_done: None,
        outcomes: Vec::new(),
        checkpoint: None,
        done: false,
    };
    for frame in frames {
        match frame.kind {
            K_CONFIG => {}
            K_BLOCKING_CHUNK => {
                let p = &frame.payload;
                if p.len() != 28 {
                    return Err(LinkageError::Journal(format!(
                        "blocking-chunk frame has {} bytes, expected 28",
                        p.len()
                    )));
                }
                let index = u32::from_le_bytes(p[0..4].try_into().unwrap());
                let tallies = (
                    u64::from_le_bytes(p[4..12].try_into().unwrap()),
                    u64::from_le_bytes(p[12..20].try_into().unwrap()),
                    u64::from_le_bytes(p[20..28].try_into().unwrap()),
                );
                match progress.chunk_tallies.get_mut(index as usize) {
                    Some(slot) => *slot = Some(tallies),
                    None => {
                        return Err(LinkageError::Journal(format!(
                            "journaled blocking chunk {index} out of range ({n_chunks} chunks)"
                        )))
                    }
                }
            }
            K_BLOCKING_DONE => {
                let p = &frame.payload;
                if p.len() != 40 {
                    return Err(LinkageError::Journal(format!(
                        "blocking-done frame has {} bytes, expected 40",
                        p.len()
                    )));
                }
                let mut totals = [0u64; 5];
                for (i, t) in totals.iter_mut().enumerate() {
                    *t = u64::from_le_bytes(p[i * 8..i * 8 + 8].try_into().unwrap());
                }
                progress.blocking_done = Some(totals);
            }
            K_SMC_OUTCOME => progress.outcomes.push(decode_outcome(&frame.payload)?),
            K_SMC_CHECKPOINT => {
                let session: SmcSession = pprl_smc::decode_session(&frame.payload)
                    .map_err(|e| LinkageError::Journal(format!("bad checkpoint frame: {e}")))?;
                progress.checkpoint = Some(session);
            }
            K_DONE => progress.done = true,
            other => {
                return Err(LinkageError::Journal(format!(
                    "unknown frame kind {other} (journal written by a newer version?)"
                )))
            }
        }
    }
    Ok(progress)
}

fn execute(
    pipeline: &HybridLinkage,
    r: &DataSet,
    s: &DataSet,
    mut writer: JournalWriter,
    prior: &[Frame],
    resumed: bool,
    opts: &JournalOptions,
) -> Result<JournaledOutcome, LinkageError> {
    let cfg = pipeline.config();
    check_schemas(r, s)?;
    let rule = cfg.rule(r.schema());

    // Steps 1–2 are cheap and deterministic: recompute rather than store,
    // and use the journaled tallies purely as a drift check.
    let r_view = Anonymizer::new(cfg.method_r, cfg.k_r).anonymize(r, &cfg.qids)?;
    let s_view = Anonymizer::new(cfg.method_s, cfg.k_s).anonymize(s, &cfg.qids)?;

    let engine = BlockingEngine::new(rule.clone());
    let per = opts.chunk_r_classes.max(1);
    let n_chunks = engine.chunk_count(&r_view, per);
    let progress = parse_progress(prior, n_chunks)?;

    // Chunks are computed across the configured workers but verified and
    // journaled in index order, so the frame sequence is byte-identical
    // to a sequential run.
    let indexes: Vec<u32> = (0..n_chunks).collect();
    let computed = pprl_runtime::par_map(&indexes, pipeline.threads(), |_, &index| {
        engine.run_chunk(&r_view, &s_view, index, per)
    });
    let mut chunks: Vec<BlockingChunk> = Vec::with_capacity(n_chunks as usize);
    for (index, result) in (0..n_chunks).zip(computed) {
        let chunk = result?;
        match progress.chunk_tallies[index as usize] {
            Some(journaled) if journaled != chunk.tallies() => {
                return Err(LinkageError::Journal(format!(
                    "blocking chunk {index} tallies {:?} disagree with journaled {:?}: \
                     the inputs changed since the journal was written",
                    chunk.tallies(),
                    journaled
                )));
            }
            Some(_) => {}
            None => writer.append(K_BLOCKING_CHUNK, &encode_chunk(&chunk))?,
        }
        chunks.push(chunk);
    }
    let blocking = engine.assemble(&r_view, &s_view, chunks)?;
    let totals = [
        blocking.total_pairs,
        blocking.matched_pairs,
        blocking.nonmatched_pairs,
        blocking.unknown_pairs,
        blocking.suppressed_pairs,
    ];
    match progress.blocking_done {
        Some(journaled) if journaled != totals => {
            return Err(LinkageError::Journal(format!(
                "blocking totals {totals:?} disagree with journaled {journaled:?}"
            )));
        }
        Some(_) => {}
        None => {
            let mut payload = Vec::with_capacity(40);
            for t in totals {
                payload.extend_from_slice(&t.to_le_bytes());
            }
            writer.append(K_BLOCKING_DONE, &payload)?;
        }
    }

    // Step 3 — SMC, restored from the newest checkpoint, replayed from the
    // outcome frames past it, then continued live.
    let step = pipeline.smc_step();
    let restored = progress.checkpoint.as_ref().map_or(0, |c| c.invocations);
    let mut runner = match progress.checkpoint {
        Some(session) => step.resume(
            session,
            r,
            s,
            &r_view,
            &s_view,
            &blocking.unknown,
            &rule,
            blocking.total_pairs,
        )?,
        None => step.start(
            r,
            s,
            &r_view,
            &s_view,
            &blocking.unknown,
            &rule,
            blocking.total_pairs,
        )?,
    };
    for event in progress.outcomes.iter().skip(restored as usize) {
        runner.replay_pair_event(event)?;
    }
    let replayed = runner.replayed_pairs();

    let mut live = 0u64;
    let mut since_checkpoint = 0u64;
    let threads = pipeline.threads();
    if threads > 1 && runner.parallelizable() {
        pipeline.prefill_pool(&mut runner, &blocking);
        // Batch size = checkpoint cadence: each batch's checkpoint then
        // lands after exactly the same outcome count as the sequential
        // loop's, keeping the journal byte-identical at any thread
        // count. Tradeoff vs the sequential path: a crash re-executes at
        // most one *batch* of comparisons instead of at most one.
        let batch = if opts.checkpoint_every > 0 {
            opts.checkpoint_every
        } else {
            256
        };
        loop {
            let events = runner.step_pair_events_parallel(batch, threads)?;
            if events.is_empty() {
                break;
            }
            for event in &events {
                journal_outcome(
                    &mut writer,
                    &mut runner,
                    event,
                    opts,
                    &mut live,
                    &mut since_checkpoint,
                )?;
            }
        }
    } else {
        while let Some(event) = runner.step_pair_event()? {
            journal_outcome(
                &mut writer,
                &mut runner,
                &event,
                opts,
                &mut live,
                &mut since_checkpoint,
            )?;
        }
    }
    let smc = runner.finish();
    if !progress.done {
        writer.append(K_DONE, &[])?;
    }
    writer.sync()?;

    let outcome =
        pipeline.finalize(r, s, &rule, StagedArtifacts { r_view, s_view, blocking, smc });
    Ok(JournaledOutcome {
        outcome,
        resumed,
        restored_pairs: restored,
        replayed_pairs: replayed,
        live_pairs: live,
    })
}

/// Appends one SMC outcome frame plus its periodic checkpoint and test
/// pacing — the shared per-event tail of the sequential and batched
/// journaling loops.
fn journal_outcome(
    writer: &mut JournalWriter,
    runner: &mut pprl_smc::SmcRunner<'_>,
    event: &PairEvent,
    opts: &JournalOptions,
    live: &mut u64,
    since_checkpoint: &mut u64,
) -> Result<(), LinkageError> {
    writer.append(K_SMC_OUTCOME, &encode_outcome(event))?;
    *live += 1;
    *since_checkpoint += 1;
    if opts.checkpoint_every > 0 && *since_checkpoint >= opts.checkpoint_every {
        let session = runner.checkpoint();
        writer.append(K_SMC_CHECKPOINT, &pprl_smc::encode_session(&session))?;
        // A checkpoint that is not on stable storage is not a checkpoint.
        writer.sync()?;
        *since_checkpoint = 0;
    }
    if opts.pace_ms > 0 {
        std::thread::sleep(std::time::Duration::from_millis(opts.pace_ms));
    }
    Ok(())
}

fn encode_chunk(chunk: &BlockingChunk) -> Vec<u8> {
    let (m, n, u) = chunk.tallies();
    let mut payload = Vec::with_capacity(28);
    payload.extend_from_slice(&chunk.chunk_index.to_le_bytes());
    payload.extend_from_slice(&m.to_le_bytes());
    payload.extend_from_slice(&n.to_le_bytes());
    payload.extend_from_slice(&u.to_le_bytes());
    payload
}

/// Encodes one pair outcome (shared with the party journals).
pub(crate) fn encode_outcome(event: &PairEvent) -> Vec<u8> {
    let code: u8 = match event.decision {
        PairDecision::NonMatch => 0,
        PairDecision::Matched => 1,
        PairDecision::Abandoned(AbandonReason::RetryExhausted) => 2,
        PairDecision::Abandoned(AbandonReason::DeadlineExpired) => 3,
    };
    let mut payload = Vec::with_capacity(9);
    payload.extend_from_slice(&event.ri.to_le_bytes());
    payload.extend_from_slice(&event.si.to_le_bytes());
    payload.push(code);
    payload
}

/// Decodes one pair outcome (shared with the party journals).
pub(crate) fn decode_outcome(payload: &[u8]) -> Result<PairEvent, LinkageError> {
    if payload.len() != 9 {
        return Err(LinkageError::Journal(format!(
            "outcome frame has {} bytes, expected 9",
            payload.len()
        )));
    }
    let decision = match payload[8] {
        0 => PairDecision::NonMatch,
        1 => PairDecision::Matched,
        2 => PairDecision::Abandoned(AbandonReason::RetryExhausted),
        3 => PairDecision::Abandoned(AbandonReason::DeadlineExpired),
        code => {
            return Err(LinkageError::Journal(format!(
                "outcome frame has unknown decision code {code}"
            )))
        }
    };
    Ok(PairEvent {
        ri: u32::from_le_bytes(payload[0..4].try_into().unwrap()),
        si: u32::from_le_bytes(payload[4..8].try_into().unwrap()),
        decision,
    })
}

/// Job fingerprint: configuration (via its `Debug` form — stable within a
/// build, which is the resumption boundary that matters), the chunk plan
/// width, and the full content of both datasets. A journal resumes only
/// against the byte-identical job that wrote it. Networked parties
/// exchange the same fingerprint in their handshake (`party_run`), so a
/// shared-scenario deployment fails fast if one party's inputs drifted.
pub(crate) fn fingerprint(
    pipeline: &HybridLinkage,
    r: &DataSet,
    s: &DataSet,
    opts: &JournalOptions,
) -> u64 {
    let mut h = Fnv1a64::new();
    h.update(format!("{:?}", pipeline.config()).as_bytes());
    h.update_u64(opts.chunk_r_classes.max(1) as u64);
    for data in [r, s] {
        h.update(data.name().as_bytes());
        h.update_u64(data.len() as u64);
        for record in data.records() {
            h.update_u64(record.id());
            h.update_u64(record.class() as u64);
            for value in record.values() {
                match value {
                    Value::Cat(p) => {
                        h.update_u64(0);
                        h.update_u64(*p as u64);
                    }
                    Value::Num(x) => {
                        h.update_u64(1);
                        h.update_u64(x.to_bits());
                    }
                }
            }
        }
    }
    h.finish()
}
