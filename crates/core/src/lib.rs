//! # pprl-core — the hybrid private record linkage pipeline
//!
//! The paper's primary contribution, assembled from the substrate crates:
//!
//! ```text
//! R ──anonymize(k_R)──► R' ─┐
//!                           ├─ blocking (sdr: M/N/U) ─► SMC step (budget,
//! S ──anonymize(k_S)──► S' ─┘                            heuristic) ─► labels
//! ```
//!
//! [`HybridLinkage::run`] executes the full protocol simulation and scores
//! it against brute-force-verified ground truth. The paper's three-way
//! trade-off shows up directly in [`LinkageConfig`]: `k` buys privacy,
//! [`pprl_smc::SmcAllowance`] caps cost, and [`LinkageMetrics::recall`]
//! reports the accuracy that remains (precision is structurally 100 % under
//! the default *maximize precision* strategy).
//!
//! Baselines for the paper's comparisons live in [`baselines`]: the pure
//! cryptographic approach (every pair through SMC) and the pure
//! sanitization approach (decide everything from the anonymized views).

pub mod baselines;
mod config;
pub mod journal_run;
mod metrics;
pub mod party_run;
mod pipeline;
mod scenario;
pub mod serve;
mod truth;

pub use config::LinkageConfig;
pub use journal_run::{JournalOptions, JournaledOutcome};
pub use metrics::LinkageMetrics;
pub use party_run::{run_party, PartyOptions, PartyOutcome};
pub use pipeline::{HybridLinkage, LinkageOutcome};
pub use serve::{JobReport, JobStatus, ServeJob, ServeOptions, ServeSummary};
pub use scenario::{SyntheticScenario, SyntheticScenarioBuilder};
pub use truth::{count_matches_in_class_pair, GroundTruth};
pub use pprl_net::{NetStats, Role};

/// Errors from the pipeline.
#[derive(Debug)]
pub enum LinkageError {
    /// The two inputs disagree structurally.
    SchemaMismatch,
    /// Anonymization failed.
    Anon(pprl_anon::AnonError),
    /// Blocking failed.
    Blocking(pprl_blocking::BlockingError),
    /// The SMC step failed.
    Smc(pprl_smc::SmcError),
    /// The run journal is unreadable, belongs to a different job, or
    /// disagrees with the recomputed work it claims to record.
    Journal(String),
    /// A networked party run was misconfigured or lost a peer it could
    /// not degrade around (see [`party_run`]).
    Net(String),
    /// A daemon job crashed repeatedly and was benched while the rest of
    /// the fleet kept running (see [`serve`]).
    Quarantined {
        /// The quarantined job's name.
        job: String,
        /// Worker attempts consumed before the bench.
        crashes: u32,
        /// The last crash or error, rendered.
        last_error: String,
    },
}

impl std::fmt::Display for LinkageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkageError::SchemaMismatch => write!(f, "input schemas differ"),
            LinkageError::Anon(e) => write!(f, "anonymization: {e}"),
            LinkageError::Blocking(e) => write!(f, "blocking: {e}"),
            LinkageError::Smc(e) => write!(f, "smc: {e}"),
            LinkageError::Journal(why) => write!(f, "journal: {why}"),
            LinkageError::Net(why) => write!(f, "net: {why}"),
            LinkageError::Quarantined {
                job,
                crashes,
                last_error,
            } => write!(
                f,
                "job {job:?} quarantined after {crashes} failed attempts: {last_error}"
            ),
        }
    }
}

impl std::error::Error for LinkageError {}

impl From<pprl_anon::AnonError> for LinkageError {
    fn from(e: pprl_anon::AnonError) -> Self {
        LinkageError::Anon(e)
    }
}

impl From<pprl_blocking::BlockingError> for LinkageError {
    fn from(e: pprl_blocking::BlockingError) -> Self {
        LinkageError::Blocking(e)
    }
}

impl From<pprl_smc::SmcError> for LinkageError {
    fn from(e: pprl_smc::SmcError) -> Self {
        LinkageError::Smc(e)
    }
}

impl From<pprl_journal::JournalError> for LinkageError {
    fn from(e: pprl_journal::JournalError) -> Self {
        LinkageError::Journal(e.to_string())
    }
}
