//! Linkage quality and cost metrics.

use serde::{Deserialize, Serialize};

/// Scorecard for one pipeline run, in the paper's terms: precision (always
/// 1 under strategy 1), recall ("the percentage of record pairs correctly
/// labeled as match among all pairs satisfying the decision rule", §VI),
/// blocking efficiency, and the SMC cost actually spent.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LinkageMetrics {
    /// `|R| · |S|`.
    pub total_pairs: u64,
    /// Pairs satisfying the decision rule (ground truth).
    pub true_matches: u64,
    /// Pairs the protocol declared matching.
    pub declared_matches: u64,
    /// Declared matches that are truly matching.
    pub true_positives: u64,
    /// Pairs decided by blocking alone (M + N) / total.
    pub blocking_efficiency: f64,
    /// Matches found by the blocking step.
    pub blocking_matched: u64,
    /// Matches found by the SMC step.
    pub smc_matched: u64,
    /// SMC record-pair comparisons performed.
    pub smc_invocations: u64,
    /// SMC budget that was available.
    pub smc_budget: u64,
    /// Matches declared by the leftover labeling strategy (0 under
    /// maximize-precision).
    pub leftover_declared: u64,
    /// SMC record pairs abandoned after transport retry exhaustion and
    /// decided by the labeling strategy instead of the protocol (0 on a
    /// reliable channel).
    pub smc_abandoned: u64,
    /// SMC record pairs abandoned because the deadline budget expired
    /// before they could be compared (0 without a deadline).
    pub deadline_abandoned: u64,
}

impl LinkageMetrics {
    /// Precision: `tp / declared` (1.0 when nothing was declared).
    pub fn precision(&self) -> f64 {
        if self.declared_matches == 0 {
            1.0
        } else {
            self.true_positives as f64 / self.declared_matches as f64
        }
    }

    /// Recall: `tp / true_matches` (1.0 when there is nothing to find).
    pub fn recall(&self) -> f64 {
        if self.true_matches == 0 {
            1.0
        } else {
            self.true_positives as f64 / self.true_matches as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// SMC cost as a fraction of the pair space (the paper's x-axis in
    /// Fig. 8).
    pub fn smc_cost_fraction(&self) -> f64 {
        if self.total_pairs == 0 {
            0.0
        } else {
            self.smc_invocations as f64 / self.total_pairs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerate_cases() {
        let m = LinkageMetrics::default();
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.smc_cost_fraction(), 0.0);
    }

    #[test]
    fn arithmetic() {
        let m = LinkageMetrics {
            total_pairs: 1000,
            true_matches: 100,
            declared_matches: 80,
            true_positives: 80,
            smc_invocations: 15,
            ..LinkageMetrics::default()
        };
        assert_eq!(m.precision(), 1.0);
        assert!((m.recall() - 0.8).abs() < 1e-12);
        assert!((m.f1() - 2.0 * 0.8 / 1.8).abs() < 1e-12);
        assert!((m.smc_cost_fraction() - 0.015).abs() < 1e-12);
    }

    #[test]
    fn imperfect_precision() {
        let m = LinkageMetrics {
            true_matches: 10,
            declared_matches: 20,
            true_positives: 10,
            ..LinkageMetrics::default()
        };
        assert!((m.precision() - 0.5).abs() < 1e-12);
        assert_eq!(m.recall(), 1.0);
    }
}
