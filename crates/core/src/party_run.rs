//! One party of a genuinely distributed three-process linkage run.
//!
//! [`run_party`] is the networked counterpart of
//! [`journal_run::run_journaled`]: the querying party and the two data
//! holders each run this function in their own OS process, connected over
//! TCP by `pprl-net`. The deployment is *shared-scenario*: every party
//! loads the identical inputs and configuration, recomputes the cheap
//! deterministic phases (anonymization, blocking, the pair walk) locally,
//! and only the protocol's ciphertext messages cross a process boundary —
//! Alice's batched shares to Bob, Bob's masked results to the querier, the
//! querier's public key to both. The handshake exchanges the same job
//! fingerprint the run journal uses, so a party whose inputs drifted is
//! rejected before any ciphertext moves.
//!
//! ## Ledger parity
//!
//! The acceptance bar for this mode is byte-for-byte cost parity: the
//! querier's final report (its own ledger merged with the two holder
//! ledgers shipped home at session end) must equal the single-process
//! `--threads 1` run's. Each data message is recorded once by its creator,
//! each ack once by its receiver; retransmissions, reconnects, and
//! duplicate re-acks are deployment noise kept in
//! [`NetStats`](pprl_net::NetStats), never in the
//! [`CostLedger`](pprl_crypto::CostLedger).
//!
//! ## Crash–resume
//!
//! Each party journals its durable per-pair state — the ledger *delta* and
//! its link watermark — before releasing its upstream sender (the
//! journal-then-ack ordering of [`PeerChannel::commit_ack`]). A party
//! killed mid-session restarts with `--resume`, replays its journal, and
//! rejoins at its watermark; peers recover the lost acks from the resumed
//! hello or by retransmitting into the dedup screen. The merged ledgers
//! still reconcile to exactly one recording per message.
//!
//! [`PeerChannel::commit_ack`]: pprl_net::PeerChannel::commit_ack

use crate::journal_run::{self, JournalOptions};
use crate::pipeline::{check_schemas, StagedArtifacts};
use crate::{HybridLinkage, LinkageError, LinkageOutcome};
use pprl_anon::Anonymizer;
use pprl_blocking::BlockingEngine;
use pprl_crypto::paillier::PublicKey;
use pprl_crypto::protocol::message::ProtocolMessage;
use pprl_crypto::protocol::transport::ENVELOPE_OVERHEAD;
use pprl_crypto::protocol::{alice_record_message, bob_record_message};
use pprl_crypto::CostLedger;
use pprl_data::DataSet;
use pprl_journal::{Frame, JournalWriter};
use pprl_net::{Backend, Hello, NetError, NetStats, PeerChannel, ReconnectPolicy, Role, SessionMux};
use pprl_smc::{DeadlineBudget, PairEvent, RemoteParty, SmcError, SmcMode};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Frame kind: the public-key broadcast committed — ledger delta (96
/// bytes) followed by the raw key message (empty on the querier, which
/// derives the key from the seed).
pub const K_PARTY_KEY: u8 = 20;
/// Frame kind: one committed pair — link watermark `u64`, `ri`/`si`
/// `u32`, decision code `u8` (as in `journal_run`), ledger delta (96
/// bytes).
pub const K_PARTY_PAIR: u8 = 21;
/// Frame kind: the job finished and its report was emitted (empty
/// payload). Written by the serve daemon *after* the report file is
/// durable, so a restarted daemon re-serves finished jobs from disk
/// instead of re-executing them.
pub const K_PARTY_DONE: u8 = 22;

const PAIR_FRAME_LEN: usize = 8 + 4 + 4 + 1 + CostLedger::WIRE_LEN;

/// How one party process joins the session.
#[derive(Clone, Debug)]
pub struct PartyOptions {
    /// Which of the three protocol roles this process plays.
    pub role: Role,
    /// Listen address (querier: for both holders; Alice: for Bob).
    /// Use port `0` for an ephemeral port; the bound address is
    /// announced on stderr as `pprl-net: <role> listening on <addr>`.
    pub listen: Option<String>,
    /// The querier's address (required for Alice and Bob).
    pub querier_addr: Option<SocketAddr>,
    /// Alice's address (required for Bob).
    pub alice_addr: Option<SocketAddr>,
    /// Durable per-party journal; `None` runs without crash recovery.
    pub journal: Option<PathBuf>,
    /// Resume from the journal instead of truncating it.
    pub resume: bool,
    /// Socket read/write timeout (one poll slice, not the give-up bound).
    pub timeout: Duration,
    /// Total time one operation may wait on a peer (reconnects included)
    /// before the session degrades or fails.
    pub deadline: Duration,
    /// Journal durability: fsync on create and at commit points (see
    /// [`pprl_journal::JournalWriter`]). `false` keeps kill-only tests
    /// fast.
    pub durable: bool,
    /// Silence watchdog: when set, caps every channel's reconnect
    /// deadline at this value *and* turns a peer that stays dark into a
    /// hard session error instead of a degraded pair. Daemon jobs set it
    /// so the supervisor's crash-requeue machinery retries the whole job
    /// from its journal when the peer comes back; one-shot runs leave it
    /// `None` and keep the graceful degradation of PR 5.
    pub silence: Option<Duration>,
    /// Send window: how many record pairs a data holder keeps in flight
    /// to its downstream peer before blocking on the journal-gated ack.
    /// `1` (the default) is the classic lockstep protocol — one pair per
    /// round trip, byte-identical to earlier revisions. Larger windows
    /// pipeline the pair stream so throughput stops scaling with RTT; the
    /// commit/journal ordering is unchanged (acks release oldest-first),
    /// so reports and ledgers are byte-identical at any window. A pure
    /// deployment knob: never fingerprinted, may differ per party.
    pub window: usize,
}

impl PartyOptions {
    /// Defaults for `role`: ephemeral listener, 1 s polls, 30 s deadline.
    pub fn new(role: Role) -> Self {
        PartyOptions {
            role,
            listen: None,
            querier_addr: None,
            alice_addr: None,
            journal: None,
            resume: false,
            timeout: Duration::from_secs(1),
            deadline: Duration::from_secs(30),
            durable: true,
            silence: None,
            window: 1,
        }
    }
}

/// What one party process knows when its session ends.
#[derive(Debug)]
pub struct PartyOutcome {
    /// The full linkage outcome — querier only; the holders never learn
    /// the decisions (that is the protocol's point).
    pub outcome: Option<LinkageOutcome>,
    /// This party's own protocol ledger. On the querier this is already
    /// merged into `outcome.ledger` along with both holders' ledgers.
    pub ledger: CostLedger,
    /// Wire accounting across this party's channels (off-ledger).
    pub net: NetStats,
    /// Whether this process resumed an existing journal.
    pub resumed: bool,
    /// Pairs restored from the journal without re-executing crypto.
    pub replayed_pairs: u64,
    /// Pairs this process actually worked.
    pub live_pairs: u64,
}

/// The fingerprinted comparator backend, resolved for networked
/// deployment: which wire protocol the three processes run, plus the
/// backend-specific knobs each party needs locally.
#[derive(Clone, Copy, Debug)]
pub(crate) enum WireMode {
    /// Batched Paillier (§V-A): the shared key-derivation seed and
    /// whether Bob's replies are slot-packed.
    Paillier {
        /// Keypair/encryption-randomness derivation seed.
        seed: u64,
        /// Slot-packed replies (fingerprinted; all parties agree).
        pack: bool,
    },
    /// q-gram CLK exchange ([`pprl_bloom`]) with these parameters.
    Bloom(pprl_bloom::ClkParams),
}

impl WireMode {
    /// The backend byte every channel announces in its [`Hello`]; a
    /// peer launched with a different `--backend` is refused with a
    /// typed [`NetError::BackendMismatch`] before any payload moves.
    pub(crate) fn backend(&self) -> Backend {
        match self {
            WireMode::Paillier { .. } => Backend::Paillier,
            WireMode::Bloom(_) => Backend::Bloom,
        }
    }
}

/// Validates the pipeline configuration for networked deployment and
/// resolves its [`WireMode`].
///
/// A wall-clock [`DeadlineBudget`] *is* allowed (unlike earlier
/// revisions): only the querier's clock is consulted, and once it expires
/// the querier abandons its remaining pairs locally while *draining* the
/// oblivious holders — acking their stragglers off-ledger so they finish
/// their deterministic walks and ship their ledgers home (see
/// [`PeerChannel::drain_stragglers`]). One clock decides; nobody drifts.
pub(crate) fn wire_mode(pipeline: &HybridLinkage) -> Result<WireMode, LinkageError> {
    let cfg = pipeline.config();
    let mode = match cfg.mode {
        SmcMode::PaillierBatched { seed, pack, .. } => WireMode::Paillier { seed, pack },
        SmcMode::Bloom { params } => WireMode::Bloom(params),
        _ => {
            return Err(LinkageError::Net(
                "party mode requires a networked backend: batched Paillier or bloom".into(),
            ))
        }
    };
    if cfg.channel.is_some() {
        return Err(LinkageError::Net(
            "party mode uses a real network; drop the simulated channel".into(),
        ));
    }
    Ok(mode)
}

/// Opens (or resumes) a per-party journal; the hello must announce the
/// restored watermark, so this happens before any connection.
pub(crate) fn open_party_journal(
    journal: Option<&PathBuf>,
    resume: bool,
    fp: u64,
    durable: bool,
) -> Result<(PartyProgress, Option<JournalWriter>), LinkageError> {
    match journal {
        None => Ok((PartyProgress::default(), None)),
        Some(path) if resume => {
            let (recovered, writer) = JournalWriter::resume_with(path, fp, durable)?;
            Ok((parse_party_frames(&recovered.frames)?, Some(writer)))
        }
        Some(path) => Ok((
            PartyProgress::default(),
            Some(JournalWriter::create_with(path, fp, durable)?),
        )),
    }
}

/// Runs one party of the distributed session to completion.
pub fn run_party(
    pipeline: &HybridLinkage,
    r: &DataSet,
    s: &DataSet,
    opts: &PartyOptions,
) -> Result<PartyOutcome, LinkageError> {
    match opts.role {
        Role::Query => {
            let wire = wire_mode(pipeline)?;
            let listen = opts.listen.as_deref().unwrap_or("127.0.0.1:0");
            let mux =
                Arc::new(SessionMux::bind(listen, Some(opts.timeout)).map_err(net_err)?);
            mux.set_identity(Role::Query, wire.backend());
            announce(&mux, Role::Query);
            let (mut outcome, _writer) = querier_job(pipeline, r, s, opts, mux.clone(), None)?;
            outcome.net.merge(&mux.stats());
            Ok(outcome)
        }
        Role::Alice | Role::Bob => {
            let wire = wire_mode(pipeline)?;
            let cfg = pipeline.config();
            check_schemas(r, s)?;
            let rule = cfg.rule(r.schema());
            let fp = journal_run::fingerprint(pipeline, r, s, &JournalOptions::default());
            let (progress, writer) =
                open_party_journal(opts.journal.as_ref(), opts.resume, fp, opts.durable)?;
            let resumed = opts.resume;

            // Steps 1–2, replicated deterministically by every party.
            let r_view = Anonymizer::new(cfg.method_r, cfg.k_r).anonymize(r, &cfg.qids)?;
            let s_view = Anonymizer::new(cfg.method_s, cfg.k_s).anonymize(s, &cfg.qids)?;
            let blocking = BlockingEngine::new(rule.clone()).run_parallel(
                &r_view,
                &s_view,
                pipeline.threads(),
            )?;
            let session = Session::new(fp, wire, opts);
            let runner = pipeline.smc_step().start(
                r,
                s,
                &r_view,
                &s_view,
                &blocking.unknown,
                &rule,
                blocking.total_pairs,
            )?;
            let (ledger, stats, replayed, live) =
                run_holder(runner, &session, opts, progress, writer)?;
            Ok(PartyOutcome {
                outcome: None,
                ledger,
                net: stats,
                resumed,
                replayed_pairs: replayed,
                live_pairs: live,
            })
        }
    }
}

/// The querier's whole job against a caller-supplied listener: journal
/// open/replay, deterministic phases, the networked session, the merged
/// report. This is the unit a [`serve`](crate::serve) daemon runs per
/// admitted job (sharing one gated mux and a warm keypair across jobs);
/// [`run_party`] wraps it for the one-shot CLI. Returns the journal
/// writer so the daemon can append its done-marker after the report is
/// durable. The mux's own stats are *not* merged here — a daemon shares
/// the mux across jobs; one-shot callers merge it themselves.
pub(crate) fn querier_job(
    pipeline: &HybridLinkage,
    r: &DataSet,
    s: &DataSet,
    opts: &PartyOptions,
    mux: Arc<SessionMux>,
    warm: Option<&pprl_crypto::Keypair>,
) -> Result<(PartyOutcome, Option<JournalWriter>), LinkageError> {
    let wire = wire_mode(pipeline)?;
    let cfg = pipeline.config();
    check_schemas(r, s)?;
    let rule = cfg.rule(r.schema());
    let fp = journal_run::fingerprint(pipeline, r, s, &JournalOptions::default());
    let (progress, writer) =
        open_party_journal(opts.journal.as_ref(), opts.resume, fp, opts.durable)?;
    let resumed = opts.resume;

    let r_view = Anonymizer::new(cfg.method_r, cfg.k_r).anonymize(r, &cfg.qids)?;
    let s_view = Anonymizer::new(cfg.method_s, cfg.k_s).anonymize(s, &cfg.qids)?;
    let blocking =
        BlockingEngine::new(rule.clone()).run_parallel(&r_view, &s_view, pipeline.threads())?;
    let session = Session::new(fp, wire, opts);
    let step = pipeline.smc_step();

    let (outcome, stats, replayed, live, writer) = run_querier(
        pipeline, r, s, &rule, r_view, s_view, blocking, step, &session, progress, writer, mux,
        warm,
    )?;
    let ledger = outcome.ledger.clone();
    Ok((
        PartyOutcome {
            outcome: Some(outcome),
            ledger,
            net: stats,
            resumed,
            replayed_pairs: replayed,
            live_pairs: live,
        },
        writer,
    ))
}

/// Connection parameters shared by every channel this party opens.
struct Session {
    fp: u64,
    wire: WireMode,
    timeout: Option<Duration>,
    policy: ReconnectPolicy,
    /// Whether a dark peer fails the session (daemon silence watchdog)
    /// instead of degrading the pair.
    fail_on_silence: bool,
}

impl Session {
    fn new(fp: u64, wire: WireMode, opts: &PartyOptions) -> Self {
        Session {
            fp,
            wire,
            timeout: Some(opts.timeout),
            policy: ReconnectPolicy {
                retry: pprl_crypto::protocol::RetryPolicy::default(),
                // The silence watchdog tightens every per-operation wait:
                // a dark peer surfaces after the watchdog window, not the
                // (typically longer) reconnect deadline.
                deadline: opts
                    .silence
                    .map_or(opts.deadline, |s| s.min(opts.deadline)),
            },
            fail_on_silence: opts.silence.is_some(),
        }
    }

    fn hello(&self, role: Role, progress: &PartyProgress) -> Hello {
        let mut hello = Hello::new(role, self.wire.backend(), self.fp);
        hello.watermark = progress.watermark();
        hello.have_key = progress.key.is_some();
        hello
    }
}

/// Recovered party-journal state.
#[derive(Default)]
pub(crate) struct PartyProgress {
    /// Key-broadcast frame: the ledger delta and the raw key message.
    key: Option<(CostLedger, Vec<u8>)>,
    /// Committed pairs in append order: watermark, event, ledger delta.
    pairs: Vec<(u64, PairEvent, CostLedger)>,
    /// Whether a [`K_PARTY_DONE`] marker closed the journal: the job
    /// finished and its report file is durable on disk.
    pub(crate) done: bool,
}

impl PartyProgress {
    fn watermark(&self) -> u64 {
        self.pairs.last().map_or(0, |(wm, _, _)| *wm)
    }

    /// The restored ledger: every journaled delta, in order.
    fn restored_ledger(&self) -> CostLedger {
        let mut ledger = CostLedger::new();
        if let Some((delta, _)) = &self.key {
            ledger.merge(delta);
        }
        for (_, _, delta) in &self.pairs {
            ledger.merge(delta);
        }
        ledger
    }
}

pub(crate) fn parse_party_frames(frames: &[Frame]) -> Result<PartyProgress, LinkageError> {
    let mut progress = PartyProgress::default();
    for frame in frames {
        match frame.kind {
            K_PARTY_DONE => progress.done = true,
            K_PARTY_KEY => {
                let p = &frame.payload;
                if p.len() < CostLedger::WIRE_LEN {
                    return Err(LinkageError::Journal(format!(
                        "key frame has {} bytes, expected at least {}",
                        p.len(),
                        CostLedger::WIRE_LEN
                    )));
                }
                let delta = CostLedger::decode(&p[..CostLedger::WIRE_LEN])
                    .ok_or_else(|| LinkageError::Journal("bad key-frame ledger".into()))?;
                progress.key = Some((delta, p[CostLedger::WIRE_LEN..].to_vec()));
            }
            K_PARTY_PAIR => {
                let p = &frame.payload;
                if p.len() != PAIR_FRAME_LEN {
                    return Err(LinkageError::Journal(format!(
                        "pair frame has {} bytes, expected {PAIR_FRAME_LEN}",
                        p.len()
                    )));
                }
                let watermark = u64::from_le_bytes(p[0..8].try_into().unwrap());
                let event = journal_run::decode_outcome(&p[8..17])?;
                let delta = CostLedger::decode(&p[17..])
                    .ok_or_else(|| LinkageError::Journal("bad pair-frame ledger".into()))?;
                progress.pairs.push((watermark, event, delta));
            }
            other => {
                return Err(LinkageError::Journal(format!(
                    "unknown party-journal frame kind {other}"
                )))
            }
        }
    }
    Ok(progress)
}

fn encode_pair_frame(watermark: u64, event: &PairEvent, delta: &CostLedger) -> Vec<u8> {
    let mut payload = Vec::with_capacity(PAIR_FRAME_LEN);
    payload.extend_from_slice(&watermark.to_le_bytes());
    payload.extend_from_slice(&journal_run::encode_outcome(event));
    payload.extend_from_slice(&delta.encode());
    payload
}

fn append(
    writer: &mut Option<JournalWriter>,
    kind: u8,
    payload: &[u8],
) -> Result<(), LinkageError> {
    if let Some(w) = writer.as_mut() {
        w.append(kind, payload)?;
    }
    Ok(())
}

fn net_err(e: NetError) -> LinkageError {
    LinkageError::Net(e.to_string())
}

fn delta_of(now: &CostLedger, before: &CostLedger) -> Result<CostLedger, LinkageError> {
    now.delta_since(before)
        .ok_or_else(|| LinkageError::Net("cost ledger moved backwards".into()))
}

pub(crate) fn announce(mux: &SessionMux, role: Role) {
    // Test drivers parse this line to learn the ephemeral port.
    eprintln!("pprl-net: {role} listening on {}", mux.local_addr());
}

// ---------------------------------------------------------------------------
// Querier
// ---------------------------------------------------------------------------

/// The querier's live connections plus the one-pair commit buffer: the
/// accepted-but-unacked envelope whose ack is released only after the
/// pair is journaled.
struct QuerierNet {
    alice: PeerChannel,
    bob: PeerChannel,
    /// `true` when the key broadcast was restored from the journal (its
    /// cost is already in the restored ledger and must not re-record).
    restored_broadcast: bool,
    /// Daemon silence watchdog: a dark peer fails the job (so the serve
    /// supervisor requeues it) instead of degrading the pair.
    fail_on_silence: bool,
    pending: Option<pprl_net::IncomingData>,
}

impl QuerierNet {
    /// Releases the buffered ack (the pair is now durable).
    fn commit(&mut self) {
        if let Some(incoming) = self.pending.take() {
            self.bob.commit_ack(&incoming);
        }
    }
}

/// [`RemoteParty`] over shared querier state, so `run_querier` keeps a
/// handle for journal-ordered ack commits and the end-of-session ledger
/// exchange after the runner takes ownership of the backend.
struct SharedParty(Arc<Mutex<QuerierNet>>);

impl SharedParty {
    fn lock(&self) -> Result<std::sync::MutexGuard<'_, QuerierNet>, SmcError> {
        self.0
            .lock()
            .map_err(|_| SmcError::Internal("querier net state poisoned"))
    }
}

fn smc_net_err(e: NetError) -> SmcError {
    SmcError::SessionMismatch(format!("remote party unreachable: {e}"))
}

impl RemoteParty for SharedParty {
    fn broadcast_key(
        &mut self,
        key_message: &[u8],
        ledger: &mut CostLedger,
    ) -> Result<(), SmcError> {
        let mut guard = self.lock()?;
        let net = &mut *guard;
        if net.restored_broadcast {
            // The journaled key frame is only ever written after both
            // holders acked the broadcast — and each holder journals the
            // key *before* acking — so a restored session has nothing to
            // send and its cost already lives in the journaled delta.
            // Reaching for the holders here would also deadlock a resumed
            // daemon: a mid-pipeline holder has no reason to re-dial the
            // querier until its own next operation touches this link.
            return Ok(());
        }
        for holder in [&mut net.alice, &mut net.bob] {
            // One key message per holder, recorded exactly once. Delivery
            // is independently idempotent — send_data skips the wire when
            // the holder's (re)connect hello already shows the key.
            ledger.record_message(key_message.len());
            holder.send_data(0, key_message).map_err(smc_net_err)?;
        }
        Ok(())
    }

    fn bob_message(
        &mut self,
        pair_id: u64,
        ledger: &mut CostLedger,
    ) -> Result<Option<Vec<u8>>, SmcError> {
        let mut net = self.lock()?;
        net.commit(); // safety: never hold two unacked pairs
        match net.bob.recv_data() {
            Ok(incoming) => {
                if incoming.pair_id != pair_id {
                    return Err(SmcError::SessionMismatch(format!(
                        "Bob sent pair {} while the querier expected {pair_id}: \
                         the deterministic walks diverged",
                        incoming.pair_id
                    )));
                }
                // Record the ack now (inside this pair's ledger delta);
                // the wire ack leaves in `commit` once the pair is
                // journaled.
                ledger.record_message(ENVELOPE_OVERHEAD);
                let payload = incoming.payload.clone();
                net.pending = Some(incoming);
                Ok(Some(payload))
            }
            // Under the daemon silence watchdog a dark peer is a job
            // failure — the supervisor requeues the whole job from its
            // journal, which resumes cleanly when the peer returns.
            Err(NetError::PeerGone(why)) if net.fail_on_silence => {
                Err(SmcError::SessionMismatch(format!(
                    "peer went silent past the watchdog window: {why}"
                )))
            }
            // A peer that stays gone degrades this pair like a
            // retry-exhausted exchange; the session continues.
            Err(NetError::PeerGone(_)) => Ok(None),
            Err(e) => Err(smc_net_err(e)),
        }
    }

    fn resume_pair_watermark(&self) -> u64 {
        self.lock().map(|net| net.bob.watermark()).unwrap_or(0)
    }
}

#[allow(clippy::too_many_arguments)]
fn run_querier(
    pipeline: &HybridLinkage,
    r: &DataSet,
    s: &DataSet,
    rule: &pprl_blocking::MatchingRule,
    r_view: pprl_anon::AnonymizedView,
    s_view: pprl_anon::AnonymizedView,
    blocking: pprl_blocking::BlockingOutcome,
    step: pprl_smc::SmcStep,
    session: &Session,
    progress: PartyProgress,
    mut writer: Option<JournalWriter>,
    mux: Arc<SessionMux>,
    warm: Option<&pprl_crypto::Keypair>,
) -> Result<(LinkageOutcome, NetStats, u64, u64, Option<JournalWriter>), LinkageError> {
    // Warm-state reuse across daemon jobs: a cached keypair (keyed by the
    // mode's Paillier parameters) skips the prime search — the expensive
    // part of session setup.
    let mut runner = step.start_warm(
        r,
        s,
        &r_view,
        &s_view,
        &blocking.unknown,
        rule,
        blocking.total_pairs,
        warm,
    )?;
    // Lazy accepts: the querier must not block on either holder before it
    // knows which one will speak first. A fresh session connects both at
    // the key broadcast anyway; a *resumed* session may find Alice
    // mid-pipeline with no reason to re-dial until her ledger send (she
    // blocks on Bob, who blocks on us), so each channel claims its
    // holder's dial only when an operation actually needs the link.
    let hello = session.hello(Role::Query, &progress);
    let alice = PeerChannel::accept_lazy(
        Arc::clone(&mux),
        hello,
        Role::Alice,
        session.timeout,
        session.policy,
    );
    let bob = PeerChannel::accept_lazy(
        Arc::clone(&mux),
        hello,
        Role::Bob,
        session.timeout,
        session.policy,
    );

    // Replay the journal: decisions re-applied, per-pair cost deltas
    // merged, no crypto re-executed.
    for (_, event, delta) in &progress.pairs {
        runner.replay_pair_event_with_costs(event, delta)?;
    }
    if let Some((delta, _)) = &progress.key {
        runner.absorb_remote_costs(delta);
    }
    let replayed = runner.replayed_pairs();
    let mut watermark = progress.watermark();

    let net = Arc::new(Mutex::new(QuerierNet {
        alice,
        bob,
        restored_broadcast: progress.key.is_some(),
        fail_on_silence: session.fail_on_silence,
        pending: None,
    }));
    let before_key = runner.ledger().clone();
    runner.connect_remote(Box::new(SharedParty(Arc::clone(&net))))?;
    // The key frame exists for the Paillier broadcast; the CLK exchange
    // has no session-setup message, so its journal holds pair frames
    // only — a resumed bloom job must replay to the same bytes a clean
    // run writes.
    if progress.key.is_none() && matches!(session.wire, WireMode::Paillier { .. }) {
        let delta = delta_of(runner.ledger(), &before_key)?;
        append(&mut writer, K_PARTY_KEY, &delta.encode())?;
        // The broadcast is on the wire; a crash before this frame is
        // durable would re-record its cost on resume.
        if let Some(w) = writer.as_mut() {
            w.sync()?;
        }
    }
    // The CLK exchange has no setup broadcast, but both holders dial this
    // querier eagerly at startup and block on the hello reply — which the
    // Paillier key send would have produced as a side effect. Answer the
    // dials explicitly at session open. A *resumed* session skips this:
    // mid-pipeline holders only re-dial when their own next operation
    // touches this link (claiming eagerly here would deadlock on Alice,
    // whose next querier operation is the end-of-run ledger send).
    if matches!(session.wire, WireMode::Bloom(_)) && progress.pairs.is_empty() {
        let mut guard = net
            .lock()
            .map_err(|_| LinkageError::Net("querier net state poisoned".into()))?;
        let fresh = &mut *guard;
        fresh.alice.ensure_connected().map_err(net_err)?;
        fresh.bob.ensure_connected().map_err(net_err)?;
    }

    let mut live = 0u64;
    loop {
        let before = runner.ledger().clone();
        let Some(event) = runner.step_pair_event()? else {
            break;
        };
        live += 1;
        let delta = delta_of(runner.ledger(), &before)?;
        let guard = net
            .lock()
            .map_err(|_| LinkageError::Net("querier net state poisoned".into()))?;
        if let Some(pending) = &guard.pending {
            watermark = pending.pair_id;
        }
        drop(guard);
        // Journal, then release Bob's ack: a crash between the two is
        // healed by Bob retransmitting into the restored dedup screen.
        append(
            &mut writer,
            K_PARTY_PAIR,
            &encode_pair_frame(watermark, &event, &delta),
        )?;
        net.lock()
            .map_err(|_| LinkageError::Net("querier net state poisoned".into()))?
            .commit();
    }
    if let Some(w) = writer.as_mut() {
        w.sync()?;
    }

    // Session end: both holders ship their ledgers home; merged, the
    // report must equal the single-process run's.
    let mut guard = net
        .lock()
        .map_err(|_| LinkageError::Net("querier net state poisoned".into()))?;
    guard.commit();
    if !matches!(pipeline.config().deadline, DeadlineBudget::None) {
        // A deadline is the querier's alone: the holders walk their full
        // deterministic pair sequence regardless. Drain their stragglers
        // off-ledger so they reach their own send_ledger instead of
        // retransmitting forever at a silent peer.
        guard.alice.drain_stragglers();
        guard.bob.drain_stragglers();
    }
    let alice_ledger = guard.alice.recv_ledger().map_err(net_err)?;
    let bob_ledger = guard.bob.recv_ledger().map_err(net_err)?;
    let mut stats = guard.alice.stats;
    stats.merge(&guard.bob.stats);
    drop(guard);
    runner.absorb_remote_costs(&alice_ledger);
    runner.absorb_remote_costs(&bob_ledger);

    let smc = runner.finish();
    let outcome = pipeline.finalize(r, s, rule, StagedArtifacts { r_view, s_view, blocking, smc });
    Ok((outcome, stats, replayed, live, writer))
}

// ---------------------------------------------------------------------------
// Data holders
// ---------------------------------------------------------------------------

fn run_holder(
    runner: pprl_smc::SmcRunner<'_>,
    session: &Session,
    opts: &PartyOptions,
    progress: PartyProgress,
    writer: Option<JournalWriter>,
) -> Result<(CostLedger, NetStats, u64, u64), LinkageError> {
    let role = opts.role;
    let querier_addr = opts
        .querier_addr
        .ok_or_else(|| LinkageError::Net(format!("{role} needs the querier's address")))?;
    let hello = session.hello(role, &progress);

    // Topology: the querier listens for both holders; Alice listens for
    // Bob, so the share messages never transit the querier.
    let (querier, data, mux) = match role {
        Role::Alice => {
            let listen = opts.listen.as_deref().unwrap_or("127.0.0.1:0");
            let mux = Arc::new(SessionMux::bind(listen, session.timeout).map_err(net_err)?);
            mux.set_identity(role, session.wire.backend());
            announce(&mux, role);
            let querier = PeerChannel::connect(
                querier_addr,
                hello,
                Role::Query,
                session.timeout,
                session.policy,
            )
            .map_err(net_err)?;
            // Lazy: Bob only dials Alice after his own querier handshake
            // completes, and the (equally lazy) querier only claims Bob's
            // dial after Alice acked the key broadcast — so Alice must get
            // to that ack without blocking on Bob here. Her first pair
            // send claims Bob's connection when it arrives.
            let bob = PeerChannel::accept_lazy(
                Arc::clone(&mux),
                hello,
                Role::Bob,
                session.timeout,
                session.policy,
            );
            (querier, bob, Some(mux))
        }
        Role::Bob => {
            let alice_addr = opts
                .alice_addr
                .ok_or_else(|| LinkageError::Net("Bob needs Alice's address".into()))?;
            let querier = PeerChannel::connect(
                querier_addr,
                hello,
                Role::Query,
                session.timeout,
                session.policy,
            )
            .map_err(net_err)?;
            let alice = PeerChannel::connect(
                alice_addr,
                hello,
                Role::Alice,
                session.timeout,
                session.policy,
            )
            .map_err(net_err)?;
            (querier, alice, None)
        }
        Role::Query => unreachable!("querier handled by run_querier"),
    };

    match session.wire {
        WireMode::Paillier { seed, pack } => run_holder_paillier(
            runner, session, opts, progress, writer, querier, data, mux, seed, pack,
        ),
        WireMode::Bloom(params) => run_holder_bloom(
            runner, session, opts, progress, writer, querier, data, mux, params,
        ),
    }
}

/// The batched-Paillier holder: receive the key broadcast, then walk the
/// pair sequence exchanging ciphertext messages (lockstep or windowed).
#[allow(clippy::too_many_arguments)]
fn run_holder_paillier(
    mut runner: pprl_smc::SmcRunner<'_>,
    session: &Session,
    opts: &PartyOptions,
    progress: PartyProgress,
    mut writer: Option<JournalWriter>,
    mut querier: PeerChannel,
    mut data: PeerChannel,
    mux: Option<Arc<SessionMux>>,
    seed: u64,
    pack: bool,
) -> Result<(CostLedger, NetStats, u64, u64), LinkageError> {
    let role = opts.role;
    let mut ledger = progress.restored_ledger();
    let restored_watermark = progress.watermark();
    let replayed = progress.pairs.len() as u64;

    // The public key: from the journal on resume, else from the wire.
    let key_bytes = match &progress.key {
        Some((_, bytes)) => bytes.clone(),
        None => {
            let before = ledger.clone();
            let incoming = querier.recv_data().map_err(net_err)?;
            if incoming.pair_id != 0 {
                return Err(LinkageError::Net(format!(
                    "expected the key broadcast, got pair {}",
                    incoming.pair_id
                )));
            }
            ledger.record_message(ENVELOPE_OVERHEAD);
            let delta = delta_of(&ledger, &before)?;
            let mut payload = delta.encode().to_vec();
            payload.extend_from_slice(&incoming.payload);
            append(&mut writer, K_PARTY_KEY, &payload)?;
            querier.commit_ack(&incoming);
            incoming.payload
        }
    };
    let pk = decode_public_key(&key_bytes)?;

    // Per-party encryption randomness: ciphertext bytes legitimately
    // differ from the single-process run, sizes and counts cannot.
    let mut rng = StdRng::seed_from_u64(seed ^ (0x9e37_79b9 + role as u64));

    // `window == 1` takes the exact lockstep path below; `window > 1`
    // pipelines: the holder keeps up to `window` pairs in flight to its
    // downstream peer, journaling each pair only when its ack arrives —
    // acks release oldest-first ([`PeerChannel::take_acked_prefix`]), so
    // the journal stays an in-order contiguous prefix and the resume
    // watermark semantics are unchanged at any window.
    let window = opts.window.max(1);
    let crypto_err = |e: pprl_crypto::CryptoError| LinkageError::Smc(SmcError::Crypto(e));

    let mut live = 0u64;
    let mut ordinal = 0u64;
    if window == 1 {
        while let Some(walked) = runner.walk_next_encoded()? {
            let Some(encoded) = walked.encoded else {
                continue; // trivial match: decided locally, no messages
            };
            ordinal += 1;
            if ordinal <= restored_watermark {
                continue; // journaled before the crash; costs already restored
            }
            let before = ledger.clone();
            let event = PairEvent {
                ri: walked.ri,
                si: walked.si,
                decision: pprl_smc::PairDecision::NonMatch, // placeholder: holders never learn
            };
            match role {
                Role::Alice => {
                    if pack {
                        pprl_crypto::protocol::validate_packable_values(&encoded.a_vals)
                            .map_err(crypto_err)?;
                    }
                    let message =
                        alice_record_message(&pk, &encoded.a_vals, &mut rng, &mut ledger)
                            .map_err(crypto_err)?;
                    // Lockstep: Bob acks only after the querier committed the
                    // pair, so one in-flight message is the whole send window.
                    data.send_data(ordinal, &message).map_err(net_err)?;
                    let delta = delta_of(&ledger, &before)?;
                    append(
                        &mut writer,
                        K_PARTY_PAIR,
                        &encode_pair_frame(ordinal, &event, &delta),
                    )?;
                }
                Role::Bob => {
                    let incoming = data.recv_data().map_err(net_err)?;
                    if incoming.pair_id != ordinal {
                        return Err(LinkageError::Net(format!(
                            "Alice sent pair {} while Bob expected {ordinal}: \
                             the deterministic walks diverged",
                            incoming.pair_id
                        )));
                    }
                    let message = bob_reply(&pk, &incoming.payload, &encoded, pack, &mut rng, &mut ledger)?;
                    querier.send_data(ordinal, &message).map_err(net_err)?;
                    // Record Alice's ack inside this pair's delta, journal,
                    // then release it — the two-phase commit_ack ordering.
                    ledger.record_message(ENVELOPE_OVERHEAD);
                    let delta = delta_of(&ledger, &before)?;
                    append(
                        &mut writer,
                        K_PARTY_PAIR,
                        &encode_pair_frame(ordinal, &event, &delta),
                    )?;
                    data.commit_ack(&incoming);
                }
                Role::Query => unreachable!(),
            }
            live += 1;
        }
    } else {
        // Pipelined: submit up to `window` pairs before blocking on the
        // oldest ack. Per-pair ledger deltas are computed at production
        // time and journaled at commit time — deltas merge commutatively,
        // so the restored ledger equals the lockstep run's bytes.
        let max_unacked = window - 1;
        match role {
            Role::Alice => {
                let mut pending: VecDeque<(u64, PairEvent, CostLedger)> = VecDeque::new();
                while let Some(walked) = runner.walk_next_encoded()? {
                    let Some(encoded) = walked.encoded else {
                        continue;
                    };
                    ordinal += 1;
                    if ordinal <= restored_watermark {
                        continue;
                    }
                    let before = ledger.clone();
                    if pack {
                        pprl_crypto::protocol::validate_packable_values(&encoded.a_vals)
                            .map_err(crypto_err)?;
                    }
                    let message =
                        alice_record_message(&pk, &encoded.a_vals, &mut rng, &mut ledger)
                            .map_err(crypto_err)?;
                    let event = PairEvent {
                        ri: walked.ri,
                        si: walked.si,
                        decision: pprl_smc::PairDecision::NonMatch,
                    };
                    let delta = delta_of(&ledger, &before)?;
                    data.submit_data(ordinal, &message);
                    pending.push_back((ordinal, event, delta));
                    // Admit the next pair once occupancy dips below the
                    // window; flushes coalesce queued envelopes per frame.
                    data.pump_window(max_unacked).map_err(net_err)?;
                    commit_acked_alice(&mut data, &mut pending, &mut writer)?;
                    live += 1;
                }
                data.flush_window().map_err(net_err)?;
                commit_acked_alice(&mut data, &mut pending, &mut writer)?;
                if !pending.is_empty() {
                    return Err(LinkageError::Net(format!(
                        "{} pairs left unacknowledged after the window flush",
                        pending.len()
                    )));
                }
            }
            Role::Bob => {
                let mut pending: VecDeque<PendingBobCommit> = VecDeque::new();
                while let Some(walked) = runner.walk_next_encoded()? {
                    let Some(encoded) = walked.encoded else {
                        continue;
                    };
                    ordinal += 1;
                    if ordinal <= restored_watermark {
                        continue;
                    }
                    let before = ledger.clone();
                    // Wait for Alice in slices, probing the querier leg
                    // between them. A quiet Alice can mean *our* downstream
                    // died: she halts at her own window cap until Bob's
                    // acks flow, and those acks wait on the querier's — so
                    // a dead querier connection must be retransmitted and
                    // reconnected here, below the window cap, or all three
                    // parties deadlock (the blocking pump only escalates
                    // once occupancy exceeds the cap, which a stalled
                    // Alice can never push it past).
                    let incoming = {
                        let wait = std::time::Instant::now();
                        loop {
                            if let Some(incoming) =
                                data.try_recv_data().map_err(net_err)?
                            {
                                break incoming;
                            }
                            querier.probe_window().map_err(net_err)?;
                            commit_acked_bob(
                                &mut querier,
                                &mut data,
                                &mut pending,
                                &mut writer,
                            )?;
                            if wait.elapsed() >= session.policy.deadline {
                                return Err(net_err(NetError::PeerGone(format!(
                                    "no data from alice within {:?}",
                                    session.policy.deadline
                                ))));
                            }
                        }
                    };
                    if incoming.pair_id != ordinal {
                        return Err(LinkageError::Net(format!(
                            "Alice sent pair {} while Bob expected {ordinal}: \
                             the deterministic walks diverged",
                            incoming.pair_id
                        )));
                    }
                    let message =
                        bob_reply(&pk, &incoming.payload, &encoded, pack, &mut rng, &mut ledger)?;
                    querier.submit_data(ordinal, &message);
                    // Alice's ack is metered in this pair's delta now; the
                    // wire ack leaves at commit time, after the journal.
                    ledger.record_message(ENVELOPE_OVERHEAD);
                    let event = PairEvent {
                        ri: walked.ri,
                        si: walked.si,
                        decision: pprl_smc::PairDecision::NonMatch,
                    };
                    let delta = delta_of(&ledger, &before)?;
                    pending.push_back(PendingBobCommit {
                        ordinal,
                        incoming,
                        event,
                        delta,
                    });
                    querier.pump_window(max_unacked).map_err(net_err)?;
                    commit_acked_bob(&mut querier, &mut data, &mut pending, &mut writer)?;
                    live += 1;
                }
                querier.flush_window().map_err(net_err)?;
                commit_acked_bob(&mut querier, &mut data, &mut pending, &mut writer)?;
                if !pending.is_empty() {
                    return Err(LinkageError::Net(format!(
                        "{} pairs left unacknowledged after the window flush",
                        pending.len()
                    )));
                }
            }
            Role::Query => unreachable!(),
        }
    }
    if let Some(w) = writer.as_mut() {
        w.sync()?;
    }

    // Ship the ledger home so the querier's report reaches cost parity.
    querier.send_ledger(&ledger).map_err(net_err)?;

    let mut stats = querier.stats;
    stats.merge(&data.stats);
    if let Some(mux) = &mux {
        stats.merge(&mux.stats());
    }
    Ok((ledger, stats, replayed, live))
}

/// The CLK holder: no session setup (nothing to broadcast), then the
/// same walk/journal/ack machinery as Paillier with the ciphertext
/// exchange replaced by one fixed-width filter message (Alice → Bob) and
/// one tally message (Bob → querier) per pair. Every CLK pair is
/// non-trivial, so ordinals run gap-free over the walk.
///
/// Ledger parity: Alice records her filter message, Bob records his
/// tally message plus Alice's ack, the querier records Bob's ack — four
/// recordings per pair, exactly what the local [`pprl_smc`] bloom
/// backend mirrors, so the merged report is byte-identical.
#[allow(clippy::too_many_arguments)]
fn run_holder_bloom(
    mut runner: pprl_smc::SmcRunner<'_>,
    session: &Session,
    opts: &PartyOptions,
    progress: PartyProgress,
    mut writer: Option<JournalWriter>,
    mut querier: PeerChannel,
    mut data: PeerChannel,
    mux: Option<Arc<SessionMux>>,
    params: pprl_bloom::ClkParams,
) -> Result<(CostLedger, NetStats, u64, u64), LinkageError> {
    let role = opts.role;
    let mut ledger = progress.restored_ledger();
    let restored_watermark = progress.watermark();
    let replayed = progress.pairs.len() as u64;
    let side = if role == Role::Alice {
        pprl_bloom::SIDE_A
    } else {
        pprl_bloom::SIDE_B
    };
    let window = opts.window.max(1);

    let mut live = 0u64;
    let mut ordinal = 0u64;
    if window == 1 {
        while let Some(walked) = runner.walk_next_clk(&params, side)? {
            ordinal += 1;
            if ordinal <= restored_watermark {
                continue; // journaled before the crash; costs already restored
            }
            let before = ledger.clone();
            let event = PairEvent {
                ri: walked.ri,
                si: walked.si,
                decision: pprl_smc::PairDecision::NonMatch, // placeholder: holders never learn
            };
            match role {
                Role::Alice => {
                    let message = pprl_bloom::wire::encode_clk(&walked.clk, walked.flips);
                    ledger.record_message(message.len());
                    data.send_data(ordinal, &message).map_err(net_err)?;
                    let delta = delta_of(&ledger, &before)?;
                    append(
                        &mut writer,
                        K_PARTY_PAIR,
                        &encode_pair_frame(ordinal, &event, &delta),
                    )?;
                }
                Role::Bob => {
                    let incoming = data.recv_data().map_err(net_err)?;
                    if incoming.pair_id != ordinal {
                        return Err(LinkageError::Net(format!(
                            "Alice sent pair {} while Bob expected {ordinal}: \
                             the deterministic walks diverged",
                            incoming.pair_id
                        )));
                    }
                    let message =
                        bob_dice_reply(&params, &incoming.payload, &walked, &mut ledger)?;
                    querier.send_data(ordinal, &message).map_err(net_err)?;
                    ledger.record_message(ENVELOPE_OVERHEAD);
                    let delta = delta_of(&ledger, &before)?;
                    append(
                        &mut writer,
                        K_PARTY_PAIR,
                        &encode_pair_frame(ordinal, &event, &delta),
                    )?;
                    data.commit_ack(&incoming);
                }
                Role::Query => unreachable!(),
            }
            live += 1;
        }
    } else {
        let max_unacked = window - 1;
        match role {
            Role::Alice => {
                let mut pending: VecDeque<(u64, PairEvent, CostLedger)> = VecDeque::new();
                while let Some(walked) = runner.walk_next_clk(&params, side)? {
                    ordinal += 1;
                    if ordinal <= restored_watermark {
                        continue;
                    }
                    let before = ledger.clone();
                    let message = pprl_bloom::wire::encode_clk(&walked.clk, walked.flips);
                    ledger.record_message(message.len());
                    let event = PairEvent {
                        ri: walked.ri,
                        si: walked.si,
                        decision: pprl_smc::PairDecision::NonMatch,
                    };
                    let delta = delta_of(&ledger, &before)?;
                    data.submit_data(ordinal, &message);
                    pending.push_back((ordinal, event, delta));
                    data.pump_window(max_unacked).map_err(net_err)?;
                    commit_acked_alice(&mut data, &mut pending, &mut writer)?;
                    live += 1;
                }
                data.flush_window().map_err(net_err)?;
                commit_acked_alice(&mut data, &mut pending, &mut writer)?;
                if !pending.is_empty() {
                    return Err(LinkageError::Net(format!(
                        "{} pairs left unacknowledged after the window flush",
                        pending.len()
                    )));
                }
            }
            Role::Bob => {
                let mut pending: VecDeque<PendingBobCommit> = VecDeque::new();
                while let Some(walked) = runner.walk_next_clk(&params, side)? {
                    ordinal += 1;
                    if ordinal <= restored_watermark {
                        continue;
                    }
                    let before = ledger.clone();
                    // Slice the wait as in the Paillier path: a quiet
                    // Alice can mean *our* querier leg died (see the
                    // deadlock note there).
                    let incoming = {
                        let wait = std::time::Instant::now();
                        loop {
                            if let Some(incoming) = data.try_recv_data().map_err(net_err)? {
                                break incoming;
                            }
                            querier.probe_window().map_err(net_err)?;
                            commit_acked_bob(&mut querier, &mut data, &mut pending, &mut writer)?;
                            if wait.elapsed() >= session.policy.deadline {
                                return Err(net_err(NetError::PeerGone(format!(
                                    "no data from alice within {:?}",
                                    session.policy.deadline
                                ))));
                            }
                        }
                    };
                    if incoming.pair_id != ordinal {
                        return Err(LinkageError::Net(format!(
                            "Alice sent pair {} while Bob expected {ordinal}: \
                             the deterministic walks diverged",
                            incoming.pair_id
                        )));
                    }
                    let message =
                        bob_dice_reply(&params, &incoming.payload, &walked, &mut ledger)?;
                    querier.submit_data(ordinal, &message);
                    ledger.record_message(ENVELOPE_OVERHEAD);
                    let event = PairEvent {
                        ri: walked.ri,
                        si: walked.si,
                        decision: pprl_smc::PairDecision::NonMatch,
                    };
                    let delta = delta_of(&ledger, &before)?;
                    pending.push_back(PendingBobCommit {
                        ordinal,
                        incoming,
                        event,
                        delta,
                    });
                    querier.pump_window(max_unacked).map_err(net_err)?;
                    commit_acked_bob(&mut querier, &mut data, &mut pending, &mut writer)?;
                    live += 1;
                }
                querier.flush_window().map_err(net_err)?;
                commit_acked_bob(&mut querier, &mut data, &mut pending, &mut writer)?;
                if !pending.is_empty() {
                    return Err(LinkageError::Net(format!(
                        "{} pairs left unacknowledged after the window flush",
                        pending.len()
                    )));
                }
            }
            Role::Query => unreachable!(),
        }
    }
    if let Some(w) = writer.as_mut() {
        w.sync()?;
    }

    querier.send_ledger(&ledger).map_err(net_err)?;

    let mut stats = querier.stats;
    stats.merge(&data.stats);
    if let Some(mux) = &mux {
        stats.merge(&mux.stats());
    }
    Ok((ledger, stats, replayed, live))
}

/// Bob's CLK reply for one pair: decode Alice's filter, tally Dice
/// counts against his own, and ship the tallies (never his filter) to
/// the querier with the combined DP flip count.
fn bob_dice_reply(
    params: &pprl_bloom::ClkParams,
    alice_payload: &[u8],
    walked: &pprl_smc::WalkedClk,
    ledger: &mut CostLedger,
) -> Result<Vec<u8>, LinkageError> {
    let (a_clk, a_flips) = pprl_bloom::wire::decode_clk(alice_payload, params.filter_len)
        .map_err(|e| LinkageError::Net(format!("Alice's CLK message rejected: {e}")))?;
    let counts = pprl_bloom::DiceCounts::of(&a_clk, &walked.clk)
        .ok_or_else(|| LinkageError::Net("clk filter lengths diverged".into()))?;
    let message = pprl_bloom::wire::encode_dice(&pprl_bloom::wire::DiceMsg {
        a_ones: counts.a_ones,
        b_ones: counts.b_ones,
        common: counts.common,
        flips: a_flips.saturating_add(walked.flips),
    });
    ledger.record_message(message.len());
    Ok(message)
}

/// Bob's reply for one pair: scalar or slot-packed, per the fingerprinted
/// mode. Identical decisions either way; only modpows and bytes differ.
fn bob_reply<R: rand::RngCore>(
    pk: &PublicKey,
    alice_message: &[u8],
    encoded: &pprl_smc::EncodedPair,
    pack: bool,
    rng: &mut R,
    ledger: &mut CostLedger,
) -> Result<Vec<u8>, LinkageError> {
    let result = if pack {
        pprl_crypto::protocol::bob_record_message_packed(
            pk,
            alice_message,
            &encoded.b_vals,
            &encoded.thresholds,
            rng,
            ledger,
        )
    } else {
        bob_record_message(
            pk,
            alice_message,
            &encoded.b_vals,
            &encoded.thresholds,
            rng,
            ledger,
        )
    };
    result.map_err(|e| LinkageError::Smc(SmcError::Crypto(e)))
}

/// One of windowed Bob's produced-but-uncommitted pairs: everything the
/// commit needs once the querier's ack releases it.
struct PendingBobCommit {
    ordinal: u64,
    incoming: pprl_net::IncomingData,
    event: PairEvent,
    delta: CostLedger,
}

/// Journals every pair the downstream ack released, oldest-first. The
/// released ids are exactly the submit-order prefix, so the journal and
/// the resume watermark stay contiguous at any window.
fn commit_acked_alice(
    data: &mut PeerChannel,
    pending: &mut VecDeque<(u64, PairEvent, CostLedger)>,
    writer: &mut Option<JournalWriter>,
) -> Result<(), LinkageError> {
    for id in data.take_acked_prefix() {
        let Some((ordinal, event, delta)) = pending.pop_front() else {
            return Err(LinkageError::Net(format!(
                "pair {id} acked with nothing pending commit"
            )));
        };
        if ordinal != id {
            return Err(LinkageError::Net(format!(
                "ack release order diverged: got pair {id}, expected {ordinal}"
            )));
        }
        append(writer, K_PARTY_PAIR, &encode_pair_frame(ordinal, &event, &delta))?;
    }
    Ok(())
}

/// As [`commit_acked_alice`], plus the second half of Bob's two-phase
/// commit: journal the pair, *then* release Alice's buffered ack.
fn commit_acked_bob(
    querier: &mut PeerChannel,
    data: &mut PeerChannel,
    pending: &mut VecDeque<PendingBobCommit>,
    writer: &mut Option<JournalWriter>,
) -> Result<(), LinkageError> {
    for id in querier.take_acked_prefix() {
        let Some(commit) = pending.pop_front() else {
            return Err(LinkageError::Net(format!(
                "pair {id} acked with nothing pending commit"
            )));
        };
        if commit.ordinal != id {
            return Err(LinkageError::Net(format!(
                "ack release order diverged: got pair {id}, expected {}",
                commit.ordinal
            )));
        }
        append(
            writer,
            K_PARTY_PAIR,
            &encode_pair_frame(commit.ordinal, &commit.event, &commit.delta),
        )?;
        data.commit_ack(&commit.incoming);
    }
    Ok(())
}

fn decode_public_key(bytes: &[u8]) -> Result<PublicKey, LinkageError> {
    match ProtocolMessage::decode(bytes) {
        Ok(ProtocolMessage::PublicKey { n }) => PublicKey::from_modulus(n)
            .map_err(|e| LinkageError::Net(format!("broadcast key rejected: {e}"))),
        Ok(_) => Err(LinkageError::Net(
            "key broadcast carried a non-key message".into(),
        )),
        Err(e) => Err(LinkageError::Net(format!("bad key broadcast: {e}"))),
    }
}
