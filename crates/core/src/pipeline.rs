//! The hybrid linkage pipeline (paper §III overview).

use crate::config::LinkageConfig;
use crate::metrics::LinkageMetrics;
use crate::truth::{count_matches_in_class_pair, GroundTruth};
use crate::LinkageError;
use pprl_anon::{AnonymizedView, Anonymizer};
use pprl_blocking::{BlockingEngine, BlockingOutcome, MatchingRule, PairLabel};
use pprl_crypto::CostLedger;
use pprl_data::DataSet;
use pprl_hierarchy::Vgh;
use pprl_smc::expected::expected_vector;
use pprl_smc::{label_leftovers, SmcReport, SmcStep};

/// The configured pipeline.
#[derive(Clone, Debug)]
pub struct HybridLinkage {
    config: LinkageConfig,
    /// Worker threads for the blocking scan and the SMC pair batches.
    /// Deliberately *not* part of [`LinkageConfig`]: results are
    /// byte-identical at every thread count, so the journal fingerprint
    /// (which hashes the config) must not change with it — a journal
    /// written sequentially resumes under `--threads 8` and vice versa.
    threads: usize,
}

/// Everything a run produces: the published views, the per-step outcomes,
/// and the evaluation against ground truth.
#[derive(Debug)]
pub struct LinkageOutcome {
    /// First holder's published view.
    pub r_view: AnonymizedView,
    /// Second holder's published view.
    pub s_view: AnonymizedView,
    /// Blocking-step outcome.
    pub blocking: BlockingOutcome,
    /// SMC-step report.
    pub smc: SmcReport,
    /// Strategy labels for the leftover class pairs, aligned with
    /// `smc.leftovers`.
    pub leftover_labels: Vec<PairLabel>,
    /// Quality and cost metrics.
    pub metrics: LinkageMetrics,
    /// Crypto cost ledger (meaningful in Paillier mode).
    pub ledger: CostLedger,
}

impl LinkageOutcome {
    /// The SMC step's graceful-degradation accounting: pairs abandoned
    /// after retry exhaustion, faults survived, retransmissions spent.
    /// All zeros unless the run was configured with a faulty channel.
    pub fn degradation(&self) -> &pprl_smc::DegradationReport {
        &self.smc.degradation
    }

    /// Enumerates the linkage *result*: every record-row pair `(row in R,
    /// row in S)` declared matching — blocking-step matches (expanded from
    /// class pairs) followed by SMC-step matches. Under the default
    /// maximize-precision strategy with an exact backend every yielded
    /// pair is a true match; the approximate Bloom backend can yield
    /// false positives (see `LinkageMetrics::true_positives`).
    pub fn matched_rows(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        let from_blocking = self.blocking.matched.iter().flat_map(move |pref| {
            let rc = &self.r_view.classes()[pref.r_class as usize];
            let sc = &self.s_view.classes()[pref.s_class as usize];
            rc.rows
                .iter()
                .flat_map(move |&ri| sc.rows.iter().map(move |&si| (ri, si)))
        });
        from_blocking.chain(self.smc.matched_pairs.iter().copied())
    }
}

/// The mid-pipeline products of steps 1–3 (anonymization, blocking, SMC)
/// that [`HybridLinkage::finalize`] scores and assembles into an outcome.
pub(crate) struct StagedArtifacts {
    pub(crate) r_view: AnonymizedView,
    pub(crate) s_view: AnonymizedView,
    pub(crate) blocking: BlockingOutcome,
    pub(crate) smc: SmcReport,
}

impl HybridLinkage {
    /// Builds the pipeline from a configuration (sequential by default —
    /// the legacy single-threaded path, bit-for-bit).
    pub fn new(config: LinkageConfig) -> Self {
        HybridLinkage { config, threads: 1 }
    }

    /// Sets the worker-thread count for blocking and SMC (clamped to at
    /// least 1; `1` is the legacy sequential path). Output is identical
    /// at every thread count — only wall-clock time changes.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configuration.
    pub fn config(&self) -> &LinkageConfig {
        &self.config
    }

    /// Runs the full protocol simulation of `r` against `s`.
    pub fn run(&self, r: &DataSet, s: &DataSet) -> Result<LinkageOutcome, LinkageError> {
        let cfg = &self.config;
        check_schemas(r, s)?;
        let schema = r.schema();
        let rule = cfg.rule(schema);

        // Step 1 — each holder anonymizes independently (§III).
        let r_view =
            Anonymizer::new(cfg.method_r, cfg.k_r).anonymize(r, &cfg.qids)?;
        let s_view =
            Anonymizer::new(cfg.method_s, cfg.k_s).anonymize(s, &cfg.qids)?;

        // Step 2 — blocking on the published views (chunked across the
        // configured workers; byte-identical to the sequential scan).
        let blocking =
            BlockingEngine::new(rule.clone()).run_parallel(&r_view, &s_view, self.threads)?;

        // Step 3 — SMC step under the allowance.
        let step = self.smc_step();
        let mut runner = step.start(
            r,
            s,
            &r_view,
            &s_view,
            &blocking.unknown,
            &rule,
            blocking.total_pairs,
        )?;
        if self.threads > 1 {
            self.prefill_pool(&mut runner, &blocking);
        }
        runner.run_to_completion_parallel(self.threads)?;
        let smc = runner.finish();

        Ok(self.finalize(r, s, &rule, StagedArtifacts { r_view, s_view, blocking, smc }))
    }

    /// Sizes and attaches the shared Paillier randomizer pool for a
    /// parallel run: enough `rⁿ mod n²` values for the expected
    /// encryption demand, capped so over-provisioning never costs more
    /// exponentiations than the run performs. A no-op in oracle mode or
    /// under a transported channel (the runner declines the pool).
    pub(crate) fn prefill_pool(
        &self,
        runner: &mut pprl_smc::SmcRunner<'_>,
        blocking: &BlockingOutcome,
    ) {
        let cfg = &self.config;
        let seed = match cfg.mode {
            pprl_smc::SmcMode::Paillier { seed, .. }
            | pprl_smc::SmcMode::PaillierBatched { seed, .. } => seed,
            pprl_smc::SmcMode::Oracle | pprl_smc::SmcMode::Bloom { .. } => return,
        };
        let unknown_total: u64 = blocking.unknown.iter().map(|p| p.pairs).sum();
        let budget = cfg
            .allowance
            .budget_pairs(blocking.total_pairs)
            .min(unknown_total.saturating_add(blocking.suppressed_pairs));
        // ~2 encryptions per attribute per pair in the batched protocol.
        let per_pair = (cfg.qids.len() as u64).saturating_mul(2).max(1);
        let count = budget.saturating_mul(per_pair).min(4096) as usize;
        runner.prefill_randomizers(count, self.threads, seed ^ 0x7261_6e64_706f_6f6c);
    }

    /// The SMC step exactly as [`run`](Self::run) configures it (shared
    /// with the journaled runner, which drives it pair by pair).
    pub(crate) fn smc_step(&self) -> SmcStep {
        let cfg = &self.config;
        SmcStep {
            heuristic: cfg.heuristic,
            allowance: cfg.allowance,
            strategy: cfg.strategy,
            mode: cfg.mode,
            channel: cfg.channel,
            deadline: cfg.deadline,
        }
    }

    /// Steps 4–5 of the protocol (leftover labeling, ground-truth scoring)
    /// and outcome assembly — shared by [`run`](Self::run) and the
    /// journaled runner so both paths score identically.
    pub(crate) fn finalize(
        &self,
        r: &DataSet,
        s: &DataSet,
        rule: &MatchingRule,
        staged: StagedArtifacts,
    ) -> LinkageOutcome {
        let StagedArtifacts { r_view, s_view, blocking, smc } = staged;
        let cfg = &self.config;
        let schema = r.schema();

        // Step 4 — leftover labeling (§V-B).
        let vghs: Vec<&Vgh> = cfg.qids.iter().map(|&q| schema.attribute(q).vgh()).collect();
        let avg_ed = |pref: &pprl_blocking::ClassPairRef| -> f64 {
            let a = &r_view.classes()[pref.r_class as usize].sequence;
            let b = &s_view.classes()[pref.s_class as usize].sequence;
            let eds = expected_vector(&vghs, &rule.distances, a, b);
            eds.iter().sum::<f64>() / eds.len().max(1) as f64
        };
        let leftover_scores: Vec<f64> =
            smc.leftovers.iter().map(|l| avg_ed(&l.class_pair)).collect();
        let examined_scores: Vec<f64> =
            smc.examined.iter().map(|e| avg_ed(&e.class_pair)).collect();
        let leftover_labels = label_leftovers(
            cfg.strategy,
            &smc.leftovers,
            &leftover_scores,
            &smc.examined,
            &examined_scores,
        );

        // Step 5 — evaluate against ground truth.
        let truth = GroundTruth::compute(r, s, &cfg.qids, rule);
        let metrics = self.score(
            r, s, rule, &r_view, &s_view, &blocking, &smc, &leftover_labels, &truth,
        );

        let ledger = smc.ledger.clone();
        LinkageOutcome {
            r_view,
            s_view,
            blocking,
            smc,
            leftover_labels,
            metrics,
            ledger,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn score(
        &self,
        r: &DataSet,
        s: &DataSet,
        rule: &MatchingRule,
        r_view: &AnonymizedView,
        s_view: &AnonymizedView,
        blocking: &BlockingOutcome,
        smc: &SmcReport,
        leftover_labels: &[PairLabel],
        truth: &GroundTruth,
    ) -> LinkageMetrics {
        let cfg = &self.config;
        let smc_matched = smc.matched_pairs.len() as u64;
        // Exact backends decide by the matching rule itself, so every SMC
        // match is a true positive by construction (the paper's 100 %
        // precision guarantee). An approximate backend (Dice over CLK
        // filters) can declare false positives; score its matches against
        // the rule so the reported precision is honest.
        let smc_tp = if cfg.mode.is_exact() {
            smc_matched
        } else {
            smc.matched_pairs
                .iter()
                .filter(|&&(ri, si)| {
                    pprl_blocking::records_match(
                        r.schema(),
                        &cfg.qids,
                        rule,
                        &r.records()[ri as usize],
                        &s.records()[si as usize],
                    )
                })
                .count() as u64
        };

        // Pairs the transport abandoned and the strategy declared matching
        // (maximize-recall only; maximize-precision abandons to non-match,
        // so degradation can never cost precision).
        let mut degraded_declared = 0u64;
        let mut degraded_tp = 0u64;
        for &(ri, si) in &smc.degradation.declared {
            degraded_declared += 1;
            if pprl_blocking::records_match(
                r.schema(),
                &cfg.qids,
                rule,
                &r.records()[ri as usize],
                &s.records()[si as usize],
            ) {
                degraded_tp += 1;
            }
        }

        // Leftovers the strategy declared matching (strategies 2 and 3).
        let mut leftover_declared = 0u64;
        let mut leftover_tp = 0u64;

        // Suppressed-record pairs the budget never reached carry no
        // generalization features; under maximize-recall they are declared
        // matching like every other leftover.
        let leftover_suppressed = smc.suppressed_total - smc.suppressed_examined;
        if leftover_suppressed > 0
            && matches!(cfg.strategy, pprl_smc::LabelingStrategy::MaximizeRecall)
        {
            leftover_declared += leftover_suppressed;
            let total = count_suppressed_matches(r, s, &cfg.qids, rule, r_view, s_view);
            leftover_tp += total - smc.suppressed_matched;
        }
        for (leftover, label) in smc.leftovers.iter().zip(leftover_labels) {
            if *label == PairLabel::Match {
                let remaining = leftover.class_pair.pairs - leftover.skip;
                leftover_declared += remaining;
                leftover_tp += count_matches_in_class_pair(
                    r,
                    s,
                    &cfg.qids,
                    rule,
                    &r_view.classes()[leftover.class_pair.r_class as usize].rows,
                    &s_view.classes()[leftover.class_pair.s_class as usize].rows,
                    leftover.skip,
                );
            }
        }

        LinkageMetrics {
            total_pairs: blocking.total_pairs,
            true_matches: truth.total_matches(),
            declared_matches: blocking.matched_pairs
                + smc_matched
                + leftover_declared
                + degraded_declared,
            true_positives: blocking.matched_pairs + smc_tp + leftover_tp + degraded_tp,
            blocking_efficiency: blocking.efficiency(),
            blocking_matched: blocking.matched_pairs,
            smc_matched,
            smc_invocations: smc.invocations,
            smc_budget: smc.budget,
            leftover_declared,
            smc_abandoned: smc.degradation.abandoned.retry_exhausted,
            deadline_abandoned: smc.degradation.abandoned.deadline_expired,
        }
    }
}

/// True matches inside the suppressed region:
/// `(suppressed_R × all_S) ∪ (covered_R × suppressed_S)`.
fn count_suppressed_matches(
    r: &DataSet,
    s: &DataSet,
    qids: &[usize],
    rule: &MatchingRule,
    r_view: &AnonymizedView,
    s_view: &AnonymizedView,
) -> u64 {
    use pprl_blocking::records_match;
    let schema = r.schema();
    let mut r_sup = vec![false; r.len()];
    for &row in r_view.suppressed() {
        r_sup[row as usize] = true;
    }
    let mut count = 0u64;
    for &ri in r_view.suppressed() {
        for srec in s.records() {
            if records_match(schema, qids, rule, &r.records()[ri as usize], srec) {
                count += 1;
            }
        }
    }
    for &si in s_view.suppressed() {
        for (ri, rrec) in r.records().iter().enumerate() {
            if r_sup[ri] {
                continue;
            }
            if records_match(schema, qids, rule, rrec, &s.records()[si as usize]) {
                count += 1;
            }
        }
    }
    count
}

pub(crate) fn check_schemas(r: &DataSet, s: &DataSet) -> Result<(), LinkageError> {
    let (a, b) = (r.schema(), s.schema());
    if a.arity() != b.arity() {
        return Err(LinkageError::SchemaMismatch);
    }
    for i in 0..a.arity() {
        let (x, y) = (a.attribute(i), b.attribute(i));
        if x.name() != y.name() || x.kind() != y.kind() {
            return Err(LinkageError::SchemaMismatch);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::SyntheticScenario;
    use pprl_smc::{LabelingStrategy, SmcAllowance};

    fn scenario(n: usize, seed: u64) -> (DataSet, DataSet) {
        SyntheticScenario::builder()
            .records_per_set(n)
            .seed(seed)
            .build()
            .data_sets()
    }

    #[test]
    fn paper_defaults_run_end_to_end() {
        let (d1, d2) = scenario(300, 91);
        let outcome = HybridLinkage::new(LinkageConfig::paper_defaults())
            .run(&d1, &d2)
            .unwrap();
        // 100 % precision is structural under maximize-precision.
        assert_eq!(outcome.metrics.precision(), 1.0);
        assert!(outcome.metrics.true_matches > 0, "d3 guarantees matches");
        assert!(outcome.metrics.recall() > 0.0);
        assert!(outcome.metrics.blocking_efficiency > 0.5);
        assert!(outcome.metrics.smc_invocations <= outcome.metrics.smc_budget);
    }

    #[test]
    fn unlimited_allowance_reaches_full_recall() {
        let (d1, d2) = scenario(200, 93);
        let cfg = LinkageConfig::paper_defaults().with_allowance(SmcAllowance::Unlimited);
        let outcome = HybridLinkage::new(cfg).run(&d1, &d2).unwrap();
        assert_eq!(outcome.metrics.recall(), 1.0);
        assert_eq!(outcome.metrics.precision(), 1.0);
    }

    #[test]
    fn zero_allowance_still_perfectly_precise() {
        let (d1, d2) = scenario(200, 95);
        let cfg = LinkageConfig::paper_defaults().with_allowance(SmcAllowance::Pairs(0));
        let outcome = HybridLinkage::new(cfg).run(&d1, &d2).unwrap();
        assert_eq!(outcome.metrics.precision(), 1.0);
        // Blocking alone still matches the provable pairs.
        assert_eq!(
            outcome.metrics.true_positives,
            outcome.metrics.blocking_matched
        );
    }

    #[test]
    fn recall_is_monotone_in_allowance() {
        let (d1, d2) = scenario(250, 97);
        let recall_at = |pairs: u64| {
            let cfg =
                LinkageConfig::paper_defaults().with_allowance(SmcAllowance::Pairs(pairs));
            HybridLinkage::new(cfg).run(&d1, &d2).unwrap().metrics.recall()
        };
        let (r0, r1, r2) = (recall_at(0), recall_at(2_000), recall_at(200_000));
        assert!(r0 <= r1 + 1e-12, "recall({r0}) <= recall({r1})");
        assert!(r1 <= r2 + 1e-12, "recall({r1}) <= recall({r2})");
    }

    #[test]
    fn maximize_recall_strategy_reaches_full_recall() {
        let (d1, d2) = scenario(150, 99);
        let cfg = LinkageConfig::paper_defaults()
            .with_allowance(SmcAllowance::Pairs(100))
            .with_strategy(LabelingStrategy::MaximizeRecall);
        let outcome = HybridLinkage::new(cfg).run(&d1, &d2).unwrap();
        assert_eq!(outcome.metrics.recall(), 1.0, "strategy 2 finds all matches");
        assert!(
            outcome.metrics.precision() < 1.0,
            "…at the price of precision (paper §V-B)"
        );
    }

    #[test]
    fn matched_rows_enumerates_exactly_the_true_positives() {
        use pprl_blocking::records_match;
        let (d1, d2) = scenario(150, 103);
        let cfg = LinkageConfig::paper_defaults()
            .with_k(4)
            .with_allowance(SmcAllowance::Unlimited);
        let out = HybridLinkage::new(cfg.clone()).run(&d1, &d2).unwrap();
        let rows: Vec<(u32, u32)> = out.matched_rows().collect();
        assert_eq!(rows.len() as u64, out.metrics.true_positives);
        // Every enumerated pair really matches.
        let schema = d1.schema();
        let rule = cfg.rule(schema);
        for &(ri, si) in rows.iter().take(200) {
            assert!(records_match(
                schema,
                &cfg.qids,
                &rule,
                &d1.records()[ri as usize],
                &d2.records()[si as usize]
            ));
        }
        // No duplicates.
        let mut sorted = rows.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), rows.len());
    }

    #[test]
    fn thread_count_never_changes_the_outcome() {
        let (d1, d2) = scenario(200, 105);
        let cfg = LinkageConfig::paper_defaults();
        let base = HybridLinkage::new(cfg.clone()).run(&d1, &d2).unwrap();
        let base_rows: Vec<(u32, u32)> = base.matched_rows().collect();
        for threads in [2usize, 4, 8] {
            let out = HybridLinkage::new(cfg.clone())
                .with_threads(threads)
                .run(&d1, &d2)
                .unwrap();
            assert_eq!(out.metrics, base.metrics, "threads={threads}");
            assert_eq!(
                out.leftover_labels, base.leftover_labels,
                "threads={threads}"
            );
            let rows: Vec<(u32, u32)> = out.matched_rows().collect();
            assert_eq!(rows, base_rows, "threads={threads}");
        }
    }

    #[test]
    fn parallel_paillier_pipeline_matches_sequential_ledger() {
        // Real crypto end to end: four workers sharing a pre-filled
        // randomizer pool must reproduce the sequential metrics, match
        // set, AND cost ledger — the pool moves *when* exponentiations
        // happen, never how many the protocol accounts for.
        let (d1, d2) = scenario(80, 107);
        let mut cfg =
            LinkageConfig::paper_defaults().with_allowance(SmcAllowance::Pairs(40));
        cfg.mode = pprl_smc::SmcMode::PaillierBatched {
            modulus_bits: 256,
            seed: 9,
            pack: false,
        };
        let base = HybridLinkage::new(cfg.clone()).run(&d1, &d2).unwrap();
        let par = HybridLinkage::new(cfg)
            .with_threads(4)
            .run(&d1, &d2)
            .unwrap();
        assert_eq!(par.metrics, base.metrics);
        assert_eq!(par.ledger, base.ledger, "pool must stay off-ledger");
        assert_eq!(
            par.matched_rows().collect::<Vec<_>>(),
            base.matched_rows().collect::<Vec<_>>()
        );
    }

    #[test]
    fn mismatched_schemas_rejected() {
        let (d1, _) = scenario(60, 101);
        let other = pprl_data::DataSet::new(
            "other",
            pprl_data::Schema::new(
                vec![pprl_hierarchy::AdultAttribute::Age.vgh()],
                vec!["a".into()],
            ),
            vec![],
        )
        .unwrap();
        let err = HybridLinkage::new(LinkageConfig::paper_defaults())
            .run(&d1, &other)
            .unwrap_err();
        assert!(matches!(err, LinkageError::SchemaMismatch));
    }
}
