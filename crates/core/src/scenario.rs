//! Convenience builder for the paper's experimental setup.

use pprl_data::partition::paper_partition;
use pprl_data::synth::{generate, SynthConfig};
use pprl_data::DataSet;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A reproducible two-holder scenario: a synthetic Adult-like source split
/// via the paper's `d1/d2/d3 → D1/D2` construction (§VI).
#[derive(Clone, Debug)]
pub struct SyntheticScenario {
    d1: DataSet,
    d2: DataSet,
}

impl SyntheticScenario {
    /// Starts a builder.
    pub fn builder() -> SyntheticScenarioBuilder {
        SyntheticScenarioBuilder::default()
    }

    /// The paper-scale scenario: 30,162 source records → two sets of
    /// 20,108. Heavy; sweeps usually scale down via
    /// [`SyntheticScenarioBuilder::records_per_set`].
    pub fn paper_scale(seed: u64) -> Self {
        SyntheticScenario::builder()
            .records_per_set(20_108)
            .seed(seed)
            .build()
    }

    /// The two linkage inputs `(D1, D2)`.
    pub fn data_sets(&self) -> (DataSet, DataSet) {
        (self.d1.clone(), self.d2.clone())
    }
}

/// Builder for [`SyntheticScenario`].
#[derive(Clone, Debug)]
pub struct SyntheticScenarioBuilder {
    records_per_set: usize,
    seed: u64,
}

impl Default for SyntheticScenarioBuilder {
    fn default() -> Self {
        SyntheticScenarioBuilder {
            records_per_set: 2_000,
            seed: 42,
        }
    }
}

impl SyntheticScenarioBuilder {
    /// Records per linkage input (each input is `2/3` source thirds, so the
    /// source has `3·n/2` records). The paper uses 20,108.
    pub fn records_per_set(mut self, n: usize) -> Self {
        self.records_per_set = n;
        self
    }

    /// Generation and partitioning seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the scenario.
    pub fn build(self) -> SyntheticScenario {
        let third = self.records_per_set / 2;
        let source = generate(&SynthConfig {
            records: third * 3,
            seed: self.seed,
        });
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(1));
        let (d1, d2) = paper_partition(&source, &mut rng);
        SyntheticScenario { d1, d2 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_requested_sizes() {
        let s = SyntheticScenario::builder()
            .records_per_set(300)
            .seed(7)
            .build();
        let (d1, d2) = s.data_sets();
        assert_eq!(d1.len(), 300);
        assert_eq!(d2.len(), 300);
    }

    #[test]
    fn deterministic_given_seed() {
        let ids = |seed| {
            let (d1, _) = SyntheticScenario::builder()
                .records_per_set(100)
                .seed(seed)
                .build()
                .data_sets();
            d1.records().iter().map(|r| r.id()).collect::<Vec<_>>()
        };
        assert_eq!(ids(5), ids(5));
        assert_ne!(ids(5), ids(6));
    }
}
