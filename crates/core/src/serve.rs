//! Linkage-as-a-service: a long-lived querier daemon that serves many
//! linkage jobs over one listener.
//!
//! [`serve`] promotes the one-shot [`run_party`](crate::run_party)
//! querier into a multi-job server. One [`SessionMux`] accepts every
//! holder connection; an admission gate routes each `Hello` by its job
//! fingerprint:
//!
//! - **running job** → accepted into the job's session mailboxes;
//! - **queued job** (the daemon is at `--max-jobs` concurrency) → answered
//!   with a typed `Busy { retry_after }` frame; the holder's reconnect
//!   loop absorbs it and redials after the hinted pause;
//! - **unknown, finished, or quarantined job** → refused.
//!
//! ## Per-job crash containment
//!
//! Every job runs on its own worker thread under `catch_unwind`, with its
//! own journal under the daemon's `journal_dir`. A worker that panics or
//! errors is restarted from its journal up to `max_crashes` attempts; a
//! job that keeps crashing is *quarantined* — reported as
//! [`LinkageError::Quarantined`] — while every other job keeps running.
//! One poisoned job cannot corrupt another: journals are per-job files,
//! and the shared mux only ever hands a connection to the session whose
//! fingerprint it carries.
//!
//! ## Restart and replay
//!
//! A finished job's report is written to `journal_dir/<name>.report`
//! (fsynced when durable) *before* a [`K_PARTY_DONE`] marker seals its
//! journal. A restarted daemon therefore re-serves finished jobs from
//! disk byte-identically without re-executing a single pair, and resumes
//! only unfinished journals at their watermarks.
//!
//! ## Warm state
//!
//! Paillier prime generation — the expensive part of session setup — runs
//! once per distinct `(modulus_bits, seed)` and is reused by every job
//! with those parameters ([`SmcStep::start_warm`]); the cached keypair
//! carries an optional pre-filled [`RandomizerPool`] shared by all its
//! clones.
//!
//! ## Graceful drain
//!
//! When the caller's `drain` flag flips (the CLI wires it to `SIGTERM`),
//! the daemon stops starting queued jobs, lets in-flight jobs finish and
//! seal their journals, and returns; still-queued jobs come back as
//! [`JobStatus::Drained`] and resume on the next start.
//!
//! [`K_PARTY_DONE`]: crate::party_run::K_PARTY_DONE
//! [`SmcStep::start_warm`]: pprl_smc::SmcStep::start_warm
//! [`RandomizerPool`]: pprl_crypto::RandomizerPool

use crate::journal_run::{self, JournalOptions};
use crate::party_run::{
    announce, parse_party_frames, querier_job, wire_mode, PartyOptions, PartyOutcome,
    K_PARTY_DONE,
};
use crate::{HybridLinkage, LinkageError};
use pprl_crypto::Keypair;
use pprl_data::DataSet;
use pprl_net::{Admission, AdmissionGate, Backend, MuxLimits, NetStats, Role, SessionMux};
use pprl_smc::SmcMode;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, VecDeque};
use std::fs::File;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// One linkage job the daemon should serve: a named pipeline over its two
/// input sets. Every party of the job must be configured identically —
/// the shared-scenario fingerprint in the handshake enforces it.
pub struct ServeJob {
    /// Stable name; also the stem of the job's journal and report files.
    pub name: String,
    /// The configured pipeline (batched Paillier, no simulated channel).
    pub pipeline: HybridLinkage,
    /// Left input.
    pub left: DataSet,
    /// Right input.
    pub right: DataSet,
}

/// Daemon knobs.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Listener bind address for every job's holders.
    pub listen: String,
    /// Directory for per-job journals (`<name>.pprlj`) and finished
    /// reports (`<name>.report`).
    pub journal_dir: PathBuf,
    /// Concurrent session bound; excess holders get `Busy`.
    pub max_jobs: usize,
    /// The pause hinted inside a `Busy` answer.
    pub retry_after: Duration,
    /// Worker attempts (crash or error) before a job is quarantined.
    pub max_crashes: u32,
    /// Socket poll timeout (one slice, not the give-up bound).
    pub timeout: Duration,
    /// Per-operation reconnect deadline inside each session.
    pub net_deadline: Duration,
    /// Fsync journals and reports at commit points; `false` keeps
    /// kill-only tests fast.
    pub durable: bool,
    /// Pre-fill this many Paillier randomizers into each cached keypair's
    /// shared pool (`0` skips the pool).
    pub pool_prefill: usize,
    /// Threads for the pool pre-fill.
    pub pool_threads: usize,
    /// Discard a handshaken connection nobody claimed within this long
    /// (the mux idle reaper; see [`MuxLimits::idle_timeout`]).
    pub idle_timeout: Duration,
    /// Ceiling on connections inside their handshake at once; beyond it
    /// the listener answers a typed `Busy` and closes
    /// ([`MuxLimits::max_conns`]).
    pub max_conns: usize,
    /// Per-job silence watchdog: when set, a running job whose peer stays
    /// dark this long *fails* (instead of degrading pairs) so the
    /// supervisor requeues it through the crash-recovery machinery —
    /// the job resumes from its journal when the peer returns, up to
    /// `max_crashes` attempts.
    pub silence_timeout: Option<Duration>,
    /// Send window handed to every job's [`PartyOptions`]. The querier
    /// side of the protocol is ack-driven either way, so this is future
    /// proofing plus CLI symmetry with `party run --window`.
    pub window: usize,
    /// When set, the daemon writes a per-job metrics snapshot (status,
    /// wall time, pairs/sec, wire accounting, peak send-window
    /// occupancy) to this path at drain/completion — and whenever
    /// `metrics_signal` flips (the CLI wires that to `SIGUSR1`).
    pub metrics_path: Option<PathBuf>,
    /// On-demand dump trigger; the supervisor polls it and swaps it back
    /// to `false` after writing `metrics_path`. `'static` because the
    /// natural producer is an async signal handler flipping a static
    /// atomic (tests can `Box::leak` one).
    pub metrics_signal: Option<&'static AtomicBool>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            listen: "127.0.0.1:0".to_string(),
            journal_dir: PathBuf::from("."),
            max_jobs: 2,
            retry_after: Duration::from_millis(200),
            max_crashes: 3,
            timeout: Duration::from_secs(1),
            net_deadline: Duration::from_secs(30),
            durable: true,
            pool_prefill: 0,
            pool_threads: 1,
            idle_timeout: Duration::from_secs(30),
            max_conns: 64,
            silence_timeout: None,
            window: 1,
            metrics_path: None,
            metrics_signal: None,
        }
    }
}

/// How one job ended, inside a [`ServeSummary`].
#[derive(Debug)]
pub enum JobStatus {
    /// Ran (or resumed) to completion in this daemon process. Boxed:
    /// an outcome is ~1 KiB and the other variants are a few words.
    Finished(Box<PartyOutcome>),
    /// Sealed by a previous daemon process; its report was re-served
    /// from disk without re-executing any pair.
    AlreadyDone,
    /// Crashed `crashes` times and was benched; the rest of the fleet
    /// kept running. See [`LinkageError::Quarantined`].
    Quarantined {
        /// Worker attempts consumed.
        crashes: u32,
        /// The last crash or error, rendered.
        last_error: String,
    },
    /// Never started: the daemon drained first. Resumes next start.
    Drained,
}

/// One job's slice of the daemon's final accounting.
#[derive(Debug)]
pub struct JobReport {
    /// The job's name.
    pub name: String,
    /// Its shared-scenario fingerprint.
    pub fingerprint: u64,
    /// The rendered report text (fresh or re-served), when finished.
    pub report: Option<String>,
    /// How the job ended.
    pub status: JobStatus,
}

/// Everything a drained or completed daemon knows.
#[derive(Debug)]
pub struct ServeSummary {
    /// Per-job outcomes, in submission order.
    pub jobs: Vec<JobReport>,
    /// The shared listener's wire accounting (handshakes, busys).
    pub net: NetStats,
    /// Whether the daemon exited because its drain flag flipped.
    pub drained: bool,
}

/// What the admission gate knows about a fingerprint.
#[derive(Clone, Copy, PartialEq)]
enum GateState {
    /// Known job waiting for a worker slot: answer `Busy`.
    Queued,
    /// Worker live: route to its mailboxes.
    Running,
    /// Finished or quarantined: refuse.
    Closed,
}

/// Per-job bookkeeping the supervisor loop owns.
struct JobSlot {
    fingerprint: u64,
    journal: PathBuf,
    report: PathBuf,
    crashes: u32,
    status: Option<JobStatus>,
    report_text: Option<String>,
    /// When the current (or last) worker attempt was spawned.
    started: Option<std::time::Instant>,
    /// Wall time of the attempt that finished the job.
    elapsed: Option<Duration>,
}

/// Renders one metrics snapshot: a line per job plus the shared
/// listener's accounting. Plain `key=value` text so shell tooling can
/// grep it without a parser.
fn render_metrics(slots: &[JobSlot], jobs: &[ServeJob], listener: &NetStats) -> String {
    let mut out = String::new();
    use std::fmt::Write as _;
    for (slot, job) in slots.iter().zip(jobs) {
        let _ = write!(out, "job name={} fingerprint={:016x}", job.name, slot.fingerprint);
        match &slot.status {
            None if slot.started.is_some() => {
                let running = slot
                    .started
                    .map(|t| t.elapsed().as_secs_f64())
                    .unwrap_or(0.0);
                let _ = write!(out, " status=running elapsed_s={running:.3}");
            }
            None => {
                let _ = write!(out, " status=queued");
            }
            Some(JobStatus::Finished(outcome)) => {
                let secs = slot.elapsed.map(|d| d.as_secs_f64()).unwrap_or(0.0);
                let pairs = outcome.live_pairs + outcome.replayed_pairs;
                let rate = if secs > 0.0 { outcome.live_pairs as f64 / secs } else { 0.0 };
                let net = &outcome.net;
                let comp = outcome
                    .outcome
                    .as_ref()
                    .map(|o| o.smc.comparator)
                    .unwrap_or_default();
                let _ = write!(
                    out,
                    " status=finished elapsed_s={secs:.3} pairs={pairs} \
                     live_pairs={} replayed_pairs={} pairs_per_sec={rate:.1} \
                     backend={} pairs_compared={} clk_bits={} dp_flips={} \
                     bytes_sent={} bytes_received={} frames_sent={} \
                     frames_received={} retransmits={} reconnects={} \
                     batches_sent={} batched_envelopes={} max_window={}",
                    outcome.live_pairs,
                    outcome.replayed_pairs,
                    comp.backend,
                    comp.pairs_compared,
                    comp.clk_bits_exchanged,
                    comp.dp_flips,
                    net.bytes_sent,
                    net.bytes_received,
                    net.frames_sent,
                    net.frames_received,
                    net.retransmits,
                    net.reconnects,
                    net.batches_sent,
                    net.batched_envelopes,
                    net.max_window,
                );
            }
            Some(JobStatus::AlreadyDone) => {
                let _ = write!(out, " status=already-done");
            }
            Some(JobStatus::Quarantined { crashes, .. }) => {
                let _ = write!(out, " status=quarantined crashes={crashes}");
            }
            Some(JobStatus::Drained) => {
                let _ = write!(out, " status=drained");
            }
        }
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "listener frames_sent={} frames_received={} bytes_sent={} \
         bytes_received={} busy={} refused={} reaped={}",
        listener.frames_sent,
        listener.frames_received,
        listener.bytes_sent,
        listener.bytes_received,
        listener.busy,
        listener.refused,
        listener.reaped,
    );
    out
}

fn check_name(name: &str) -> Result<(), LinkageError> {
    let ok = !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'));
    if ok {
        Ok(())
    } else {
        Err(LinkageError::Net(format!(
            "job name {name:?} is not filesystem-safe (use [A-Za-z0-9._-])"
        )))
    }
}

/// Writes a finished job's report with the same durability contract as
/// its journal: contents fsynced, then the directory entry.
fn write_report(path: &Path, text: &str, durable: bool) -> Result<(), LinkageError> {
    let io = |e: std::io::Error| LinkageError::Journal(format!("{}: {e}", path.display()));
    let mut file = File::create(path).map_err(io)?;
    file.write_all(text.as_bytes()).map_err(io)?;
    if durable {
        file.sync_data().map_err(io)?;
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            File::open(parent).and_then(|d| d.sync_all()).map_err(io)?;
        }
    }
    Ok(())
}

/// Best-effort metrics write: a failed dump is reported and ignored —
/// observability must never take a serving daemon down.
fn dump_metrics(path: &Path, slots: &[JobSlot], jobs: &[ServeJob], listener: &NetStats) {
    let text = render_metrics(slots, jobs, listener);
    if let Err(e) = std::fs::write(path, text) {
        eprintln!("pprl-serve: metrics write {}: {e}", path.display());
    }
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("worker panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("worker panicked: {s}")
    } else {
        "worker panicked".to_string()
    }
}

/// Exclusive advisory lock on a journal directory, held for the daemon's
/// lifetime. Dropping it (or dying) releases the lock: `flock(2)` locks
/// belong to the open file description, so a crashed daemon never leaves
/// a stale lock behind.
#[derive(Debug)]
struct DirLock {
    _file: Option<File>,
}

/// Takes `journal_dir/.pprl-serve.lock` with a non-blocking exclusive
/// `flock(2)`, refusing to start when another daemon already serves this
/// directory — two daemons appending to the same per-job journals would
/// interleave frames and corrupt both. On non-Unix targets the lock is a
/// no-op (the journal layer's own recovery still bounds the damage).
#[cfg(unix)]
fn lock_journal_dir(dir: &Path) -> Result<DirLock, LinkageError> {
    use std::os::fd::AsRawFd;
    const LOCK_EX: i32 = 2;
    const LOCK_NB: i32 = 4;
    extern "C" {
        fn flock(fd: i32, operation: i32) -> i32;
    }
    let path = dir.join(".pprl-serve.lock");
    let file = File::options()
        .create(true)
        .truncate(false)
        .write(true)
        .open(&path)
        .map_err(|e| LinkageError::Journal(format!("{}: {e}", path.display())))?;
    if unsafe { flock(file.as_raw_fd(), LOCK_EX | LOCK_NB) } != 0 {
        return Err(LinkageError::Journal(format!(
            "{}: another serve daemon holds this journal directory ({})",
            path.display(),
            std::io::Error::last_os_error()
        )));
    }
    Ok(DirLock { _file: Some(file) })
}

#[cfg(not(unix))]
fn lock_journal_dir(_dir: &Path) -> Result<DirLock, LinkageError> {
    Ok(DirLock { _file: None })
}

/// Runs the multi-job party server until every job is finished,
/// quarantined, or the `drain` flag flips. `render` turns a finished
/// querier outcome into the report text persisted beside the journal and
/// re-served verbatim after a restart.
pub fn serve(
    jobs: &[ServeJob],
    opts: &ServeOptions,
    drain: &AtomicBool,
    render: &(dyn Fn(&ServeJob, &PartyOutcome) -> String + Sync),
) -> Result<ServeSummary, LinkageError> {
    if opts.max_jobs == 0 {
        return Err(LinkageError::Net("--max-jobs must be at least 1".into()));
    }
    if jobs.is_empty() {
        return Err(LinkageError::Net("serve needs at least one job".into()));
    }
    std::fs::create_dir_all(&opts.journal_dir)
        .map_err(|e| LinkageError::Journal(format!("{}: {e}", opts.journal_dir.display())))?;
    // Held until serve returns; a second daemon pointed at the same
    // journal directory fails fast here instead of corrupting journals.
    let _dirlock = lock_journal_dir(&opts.journal_dir)?;

    // Admit-table setup: fingerprint each job, detect journals sealed by
    // a previous daemon process, and queue the rest. No worker threads
    // exist yet, so the table is built bare and locked only afterwards.
    let mut slots = Vec::with_capacity(jobs.len());
    let mut params = Vec::with_capacity(jobs.len());
    let mut gate_states: HashMap<u64, GateState> = HashMap::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut backend: Option<Backend> = None;
    for (i, job) in jobs.iter().enumerate() {
        check_name(&job.name)?;
        let wire = wire_mode(&job.pipeline)?; // fail fast on a misconfigured job
        // One daemon announces one comparator backend in its handshakes
        // (the listener refuses mismatched dialers before routing), so a
        // mixed fleet must be split across daemons.
        match backend {
            None => backend = Some(wire.backend()),
            Some(b) if b != wire.backend() => {
                return Err(LinkageError::Net(format!(
                    "job {:?} runs the {} backend but this daemon already \
                     admitted a {b} job; serve one backend per daemon",
                    job.name,
                    wire.backend(),
                )))
            }
            Some(_) => {}
        }
        // Warm keypairs apply to Paillier jobs only; a CLK job has no
        // session crypto to pre-compute.
        params.push(match job.pipeline.config().mode {
            SmcMode::PaillierBatched {
                modulus_bits, seed, ..
            } => Some((modulus_bits, seed)),
            _ => None,
        });
        let fp = journal_run::fingerprint(
            &job.pipeline,
            &job.left,
            &job.right,
            &JournalOptions::default(),
        );
        let mut slot = JobSlot {
            fingerprint: fp,
            journal: opts.journal_dir.join(format!("{}.pprlj", job.name)),
            report: opts.journal_dir.join(format!("{}.report", job.name)),
            crashes: 0,
            status: None,
            report_text: None,
            started: None,
            elapsed: None,
        };
        if slot.journal.exists() {
            let recovered = pprl_journal::recover(&slot.journal)?;
            if recovered.fingerprint != fp {
                return Err(LinkageError::Journal(format!(
                    "journal {} belongs to a different job (fingerprint {:016x}, \
                     job {:?} has {fp:016x})",
                    slot.journal.display(),
                    recovered.fingerprint,
                    job.name
                )));
            }
            if parse_party_frames(&recovered.frames)?.done {
                // Sealed: the done marker is only ever written after the
                // report file is durable, so this read cannot miss.
                let text = std::fs::read_to_string(&slot.report).map_err(|e| {
                    LinkageError::Journal(format!("{}: {e}", slot.report.display()))
                })?;
                slot.report_text = Some(text);
                slot.status = Some(JobStatus::AlreadyDone);
            }
        }
        let state = gate_states.insert(
            fp,
            if slot.status.is_some() {
                GateState::Closed
            } else {
                GateState::Queued
            },
        );
        if state.is_some() {
            return Err(LinkageError::Net(format!(
                "jobs {:?} and an earlier job share fingerprint {fp:016x}: \
                 identical inputs and config are one job, not two",
                job.name
            )));
        }
        if slot.status.is_none() {
            queue.push_back(i);
        }
        slots.push(slot);
    }
    let table = Arc::new(Mutex::new(gate_states));

    let gate: AdmissionGate = {
        let table = Arc::clone(&table);
        let retry_after = opts.retry_after;
        Arc::new(move |hello| {
            let state = table
                .lock()
                .ok()
                .and_then(|t| t.get(&hello.fingerprint).copied());
            match state {
                Some(GateState::Running) => Admission::Accept,
                Some(GateState::Queued) => Admission::Busy { retry_after },
                Some(GateState::Closed) | None => Admission::Refuse,
            }
        })
    };
    let limits = MuxLimits {
        max_conns: opts.max_conns,
        idle_timeout: Some(opts.idle_timeout),
        ..MuxLimits::default()
    };
    let mux = Arc::new(
        SessionMux::bind_supervised(&opts.listen, Some(opts.timeout), Some(gate), limits)
            .map_err(|e| LinkageError::Net(e.to_string()))?,
    );
    if let Some(b) = backend {
        mux.set_identity(Role::Query, b);
    }
    announce(&mux, Role::Query);

    let set_state = |fp: u64, state: GateState| {
        if let Ok(mut t) = table.lock() {
            t.insert(fp, state);
        }
    };

    // Warm keypairs: prime generation once per distinct Paillier
    // parameters, pool attached before the first clone so every job
    // shares it.
    let mut warm: HashMap<(usize, u64), Arc<Keypair>> = HashMap::new();
    let mut warm_keys = |bits: usize, seed: u64| -> Arc<Keypair> {
        Arc::clone(warm.entry((bits, seed)).or_insert_with(|| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut keys = Keypair::generate(&mut rng, bits);
            if opts.pool_prefill > 0 {
                let pool = pprl_crypto::RandomizerPool::prefill(
                    keys.public(),
                    opts.pool_prefill,
                    opts.pool_threads.max(1),
                    seed,
                );
                let _ = keys.attach_pool(pool);
            }
            Arc::new(keys)
        }))
    };

    let (tx, rx) = mpsc::channel::<(usize, Result<PartyOutcome, String>)>();
    std::thread::scope(|scope| -> Result<(), LinkageError> {
        let mut active = 0usize;
        loop {
            while active < opts.max_jobs && !drain.load(Ordering::SeqCst) {
                let Some(i) = queue.pop_front() else { break };
                let (Some(job), Some(slot), Some(&warm_params)) =
                    (jobs.get(i), slots.get_mut(i), params.get(i))
                else {
                    break; // the queue only ever holds indices it was built from
                };
                slot.started = Some(std::time::Instant::now());
                let keys = warm_params.map(|(bits, seed)| warm_keys(bits, seed));
                let mut popts = PartyOptions::new(Role::Query);
                popts.journal = Some(slot.journal.clone());
                popts.resume = slot.journal.exists();
                popts.timeout = opts.timeout;
                popts.deadline = opts.net_deadline;
                popts.durable = opts.durable;
                popts.silence = opts.silence_timeout;
                popts.window = opts.window;
                set_state(slot.fingerprint, GateState::Running);
                let tx = tx.clone();
                let mux = Arc::clone(&mux);
                let report_path = slot.report.clone();
                let durable = opts.durable;
                active += 1;
                scope.spawn(move || {
                    let attempt = catch_unwind(AssertUnwindSafe(|| {
                        querier_job(
                            &job.pipeline,
                            &job.left,
                            &job.right,
                            &popts,
                            mux,
                            keys.as_deref(),
                        )
                    }));
                    let sealed = match attempt {
                        Ok(Ok((outcome, writer))) => {
                            // Two-phase finish: report durable first, then
                            // the done marker. A crash between the two
                            // re-runs the (fully journaled) job, which
                            // replays instantly and rewrites the same
                            // bytes.
                            let text = render(job, &outcome);
                            write_report(&report_path, &text, durable)
                                .and_then(|()| {
                                    if let Some(mut w) = writer {
                                        w.append(K_PARTY_DONE, &[])?;
                                        w.sync()?;
                                    }
                                    Ok(())
                                })
                                .map(|()| outcome)
                                .map_err(|e| e.to_string())
                        }
                        Ok(Err(e)) => Err(e.to_string()),
                        Err(payload) => Err(panic_text(payload)),
                    };
                    let _ = tx.send((i, sealed));
                });
            }
            if active == 0 {
                break;
            }
            // Poll instead of blocking so an on-demand metrics request
            // (SIGUSR1 via `metrics_signal`) is served while jobs run.
            // recv can only fail once every sender is gone, and the
            // original `tx` outlives the loop — but stay panic-free.
            let received = loop {
                match rx.recv_timeout(Duration::from_millis(200)) {
                    Ok(msg) => break Some(msg),
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        if let (Some(path), Some(flag)) =
                            (opts.metrics_path.as_deref(), opts.metrics_signal)
                        {
                            if flag.swap(false, Ordering::SeqCst) {
                                dump_metrics(path, &slots, jobs, &mux.stats());
                            }
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => break None,
                }
            };
            let Some((i, sealed)) = received else { break };
            active -= 1;
            let (Some(slot), Some(job)) = (slots.get_mut(i), jobs.get(i)) else {
                continue; // workers only ever report indices they were given
            };
            slot.elapsed = slot.started.map(|t| t.elapsed());
            match sealed {
                Ok(outcome) => {
                    set_state(slot.fingerprint, GateState::Closed);
                    slot.report_text = Some(render(job, &outcome));
                    slot.status = Some(JobStatus::Finished(Box::new(outcome)));
                }
                Err(why) => {
                    slot.crashes += 1;
                    eprintln!(
                        "pprl-serve: job {:?} attempt {} failed: {why}",
                        job.name, slot.crashes
                    );
                    if slot.crashes >= opts.max_crashes {
                        set_state(slot.fingerprint, GateState::Closed);
                        slot.status = Some(JobStatus::Quarantined {
                            crashes: slot.crashes,
                            last_error: why,
                        });
                    } else {
                        set_state(slot.fingerprint, GateState::Queued);
                        queue.push_back(i);
                    }
                }
            }
        }
        Ok(())
    })?;

    let drained = drain.load(Ordering::SeqCst);
    // The drain/completion snapshot: always written when a metrics path
    // is configured, whether or not a signal ever fired.
    if let Some(path) = opts.metrics_path.as_deref() {
        dump_metrics(path, &slots, jobs, &mux.stats());
    }
    let reports = slots
        .into_iter()
        .zip(jobs)
        .map(|(slot, job)| JobReport {
            name: job.name.clone(),
            fingerprint: slot.fingerprint,
            report: slot.report_text,
            status: slot.status.unwrap_or(JobStatus::Drained),
        })
        .collect();
    Ok(ServeSummary {
        jobs: reports,
        net: mux.stats(),
        drained,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pprl-serve-lock-{}-{tag}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    #[cfg(unix)]
    #[test]
    fn journal_dir_lock_excludes_second_holder() {
        let dir = scratch_dir("exclusive");
        let first = lock_journal_dir(&dir).expect("first lock succeeds");
        let second = lock_journal_dir(&dir);
        assert!(
            matches!(second, Err(LinkageError::Journal(ref m)) if m.contains("another serve daemon")),
            "second lock on a held directory must fail: {second:?}"
        );
        drop(first);
        lock_journal_dir(&dir).expect("lock is free again after release");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_dir_lock_is_reentrant_across_directories() {
        let a = scratch_dir("dir-a");
        let b = scratch_dir("dir-b");
        let _la = lock_journal_dir(&a).expect("lock dir a");
        let _lb = lock_journal_dir(&b).expect("independent dir b locks fine");
        let _ = std::fs::remove_dir_all(&a);
        let _ = std::fs::remove_dir_all(&b);
    }
}
