//! Ground truth: the exact set size of truly matching record pairs.
//!
//! Used only for *evaluation* (recall cannot be measured without it) —
//! the protocol itself never touches plaintext across parties outside the
//! SMC step.
//!
//! With θ < 1, Hamming attributes must be *equal* for a pair to match, so
//! matches are counted by bucketing on the exact-match attribute tuple and
//! resolving the remaining attributes inside each bucket — O(|R| + |S|)
//! buckets instead of the |R|·|S| brute force (which the tests still use
//! as the specification on small inputs).

use pprl_blocking::{records_match, AttrDistance, MatchingRule};
use pprl_data::{DataSet, Record};

/// Exact match statistics for one pair of data sets under one rule.
#[derive(Clone, Debug)]
pub struct GroundTruth {
    total_matches: u64,
}

impl GroundTruth {
    /// Counts the truly matching pairs.
    pub fn compute(r: &DataSet, s: &DataSet, qids: &[usize], rule: &MatchingRule) -> Self {
        let schema = r.schema();

        // Attribute positions that force exact equality (Hamming, θ < 1).
        let exact: Vec<usize> = qids
            .iter()
            .enumerate()
            .filter(|&(pos, _)| {
                rule.distances[pos] == AttrDistance::Hamming && rule.thetas[pos] < 1.0
            })
            .map(|(pos, &q)| {
                let _ = q;
                pos
            })
            .collect();
        // Residual positions that still need a within-bucket check: every
        // non-Hamming attribute. (Hamming with θ ≥ 1 is always satisfied;
        // Hamming with θ < 1 became part of the bucket key.)
        let residual: Vec<usize> = (0..qids.len())
            .filter(|&pos| rule.distances[pos] != AttrDistance::Hamming)
            .collect();

        // Bucket S by the exact tuple.
        use std::collections::HashMap;
        let key_of = |rec: &Record| -> Vec<u32> {
            exact.iter().map(|&pos| rec.value(qids[pos]).as_cat()).collect()
        };
        let mut buckets: HashMap<Vec<u32>, Vec<u32>> = HashMap::new();
        for (i, rec) in s.records().iter().enumerate() {
            buckets.entry(key_of(rec)).or_default().push(i as u32);
        }

        // Fast path: exactly one residual attribute, and it is normalized
        // Euclidean → sort each bucket by it and count by binary search.
        let fast = residual.len() == 1
            && rule.distances[residual[0]] == AttrDistance::NormalizedEuclidean;
        let mut sorted_vals: HashMap<&[u32], Vec<f64>> = HashMap::new();
        let mut window = 0.0;
        if fast {
            let pos = residual[0];
            let q = qids[pos];
            let norm = schema
                .attribute(q)
                .vgh()
                .as_intervals()
                .expect("Euclidean attr is continuous")
                .norm_factor();
            window = rule.thetas[pos] * norm;
            for (key, rows) in &buckets {
                let mut vals: Vec<f64> = rows
                    .iter()
                    .map(|&i| s.records()[i as usize].value(q).as_num())
                    .collect();
                vals.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                sorted_vals.insert(key.as_slice(), vals);
            }
        }

        // Count in parallel over R (pprl-runtime's scoped work queue —
        // the sum is order-independent, so any thread count agrees with
        // the brute-force specification).
        let threads = pprl_runtime::resolve_threads(None).min(r.len().max(1));
        let chunk = r.len().div_ceil(threads.max(1)).max(1);
        let record_chunks: Vec<&[Record]> = r.records().chunks(chunk).collect();
        let total: u64 = pprl_runtime::par_map(&record_chunks, threads, |_, records| {
            let mut count = 0u64;
            for rec in *records {
                let key = key_of(rec);
                let Some(rows) = buckets.get(&key) else {
                    continue;
                };
                if fast {
                    let vals = &sorted_vals[key.as_slice()];
                    let v = rec.value(qids[residual[0]]).as_num();
                    let lo = vals.partition_point(|&x| x < v - window);
                    let hi = vals.partition_point(|&x| x <= v + window);
                    count += (hi - lo) as u64;
                } else if residual.is_empty() {
                    count += rows.len() as u64;
                } else {
                    for &si in rows {
                        if records_match(schema, qids, rule, rec, &s.records()[si as usize]) {
                            count += 1;
                        }
                    }
                }
            }
            count
        })
        .into_iter()
        .sum();

        GroundTruth {
            total_matches: total,
        }
    }

    /// Brute-force specification (quadratic) — kept for validation.
    pub fn brute_force(r: &DataSet, s: &DataSet, qids: &[usize], rule: &MatchingRule) -> Self {
        let schema = r.schema();
        let mut total = 0u64;
        for rr in r.records() {
            for ss in s.records() {
                if records_match(schema, qids, rule, rr, ss) {
                    total += 1;
                }
            }
        }
        GroundTruth {
            total_matches: total,
        }
    }

    /// Number of truly matching record pairs.
    pub fn total_matches(&self) -> u64 {
        self.total_matches
    }
}

/// Counts true matches inside one class pair, skipping the first `skip`
/// record pairs in row-major order (those were already examined by SMC).
pub fn count_matches_in_class_pair(
    r: &DataSet,
    s: &DataSet,
    qids: &[usize],
    rule: &MatchingRule,
    r_rows: &[u32],
    s_rows: &[u32],
    skip: u64,
) -> u64 {
    let schema = r.schema();
    let mut seen = 0u64;
    let mut count = 0u64;
    for &ri in r_rows {
        for &si in s_rows {
            if seen < skip {
                seen += 1;
                continue;
            }
            if records_match(
                schema,
                qids,
                rule,
                &r.records()[ri as usize],
                &s.records()[si as usize],
            ) {
                count += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use pprl_data::synth::{generate, SynthConfig};

    const QIDS: [usize; 5] = [0, 1, 2, 3, 4];

    #[test]
    fn fast_path_matches_brute_force() {
        let a = generate(&SynthConfig {
            records: 300,
            seed: 81,
        });
        let b = generate(&SynthConfig {
            records: 300,
            seed: 82,
        });
        for theta in [0.01, 0.05, 0.1] {
            let rule = MatchingRule::uniform(a.schema(), &QIDS, theta);
            let fast = GroundTruth::compute(&a, &b, &QIDS, &rule);
            let brute = GroundTruth::brute_force(&a, &b, &QIDS, &rule);
            assert_eq!(
                fast.total_matches(),
                brute.total_matches(),
                "theta={theta}"
            );
        }
    }

    #[test]
    fn identical_sets_have_at_least_diagonal_matches() {
        let a = generate(&SynthConfig {
            records: 120,
            seed: 83,
        });
        let rule = MatchingRule::uniform(a.schema(), &QIDS, 0.05);
        let truth = GroundTruth::compute(&a, &a, &QIDS, &rule);
        assert!(truth.total_matches() >= 120, "every record matches itself");
    }

    #[test]
    fn categorical_only_rule_uses_bucket_counting() {
        let a = generate(&SynthConfig {
            records: 200,
            seed: 84,
        });
        let b = generate(&SynthConfig {
            records: 200,
            seed: 85,
        });
        let qids = [1usize, 2, 3];
        let rule = MatchingRule::uniform(a.schema(), &qids, 0.05);
        let fast = GroundTruth::compute(&a, &b, &qids, &rule);
        let brute = GroundTruth::brute_force(&a, &b, &qids, &rule);
        assert_eq!(fast.total_matches(), brute.total_matches());
    }

    #[test]
    fn class_pair_counting_respects_skip() {
        let a = generate(&SynthConfig {
            records: 30,
            seed: 86,
        });
        let rule = MatchingRule::uniform(a.schema(), &QIDS, 0.05);
        let rows: Vec<u32> = (0..30).collect();
        let all = count_matches_in_class_pair(&a, &a, &QIDS, &rule, &rows, &rows, 0);
        let skipped = count_matches_in_class_pair(&a, &a, &QIDS, &rule, &rows, &rows, 900);
        assert_eq!(skipped, 0, "skipping everything leaves nothing");
        let half = count_matches_in_class_pair(&a, &a, &QIDS, &rule, &rows, &rows, 450);
        assert!(half <= all);
    }
}
