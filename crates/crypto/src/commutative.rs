//! Commutative encryption (Pohlig–Hellman exponentiation cipher) and the
//! secure set-intersection protocol of Agrawal, Evfimievski, Srikant
//! (SIGMOD'03) — the paper's reference \[15\] and the classic *pure
//! cryptographic* approach to private exact-match linkage.
//!
//! Each party holds a secret exponent `e` over a fixed safe-prime group;
//! `E_e(x) = H(x)^e mod p` where `H` hashes into the quadratic-residue
//! subgroup. Encryption commutes — `E_a(E_b(x)) = E_b(E_a(x))` — so two
//! parties can compare doubly-encrypted values for equality without either
//! learning the other's plaintexts.
//!
//! The paper positions the hybrid method against exactly this family (§VII):
//! "Secure set intersection methods deal with *exact matching* and are too
//! expensive to be applied to large databases due to their reliance on
//! cryptography." The [`intersect_encrypted`] baseline demonstrates both
//! limitations measurably: cost scales with the full table sizes, and any
//! near match (e.g. ages 1 year apart) is missed.

use crate::sha256::sha256;
use pprl_bignum::{random_below, BigUint};
use rand::RngCore;

/// The RFC 3526 1536-bit MODP group modulus — a well-known safe prime
/// (`p = 2q + 1` with `q` prime), so squaring maps any hash into the
/// prime-order subgroup of quadratic residues.
const RFC3526_1536_HEX: &str = concat!(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1",
    "29024E088A67CC74020BBEA63B139B22514A08798E3404DD",
    "EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245",
    "E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED",
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D",
    "C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F",
    "83655D23DCA3AD961C62F356208552BB9ED529077096966D",
    "670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF"
);

/// The shared group for commutative encryption.
#[derive(Clone, Debug)]
pub struct CommutativeGroup {
    p: BigUint,
    /// `q = (p − 1) / 2`, the order of the quadratic-residue subgroup.
    q: BigUint,
}

impl Default for CommutativeGroup {
    fn default() -> Self {
        Self::rfc3526_1536()
    }
}

impl CommutativeGroup {
    /// The standard 1536-bit group.
    pub fn rfc3526_1536() -> Self {
        // pprl:allow(panic-path): parses a compile-time hex constant, exercised by every test
        let p = BigUint::from_hex(RFC3526_1536_HEX).expect("constant parses");
        let q = p.shr(1);
        CommutativeGroup { p, q }
    }

    /// Hashes an arbitrary byte string into the quadratic-residue subgroup.
    pub fn hash_to_group(&self, value: &[u8]) -> BigUint {
        // Expand SHA-256 output to the group size by counter-mode hashing,
        // reduce mod p, then square into the QR subgroup.
        let mut wide = Vec::with_capacity(6 * 32);
        for counter in 0u8..6 {
            let mut input = value.to_vec();
            input.push(counter);
            wide.extend_from_slice(&sha256(&input));
        }
        let x = BigUint::from_bytes_be(&wide).rem(&self.p);
        // Avoid the degenerate elements 0, ±1.
        let x = if x.is_zero() || x.is_one() {
            BigUint::from_u64(4)
        } else {
            x
        };
        x.mod_mul(&x, &self.p)
    }
}

/// A party's secret commutative-encryption key.
#[derive(Clone, Debug)]
pub struct CommutativeKey {
    group: CommutativeGroup,
    exponent: BigUint,
}

impl CommutativeKey {
    /// Samples a fresh secret exponent in `[1, q)` coprime to `q`.
    pub fn generate<R: RngCore + ?Sized>(group: &CommutativeGroup, rng: &mut R) -> Self {
        loop {
            let e = random_below(rng, &group.q);
            if !e.is_zero() && e.gcd(&group.q).is_one() {
                return CommutativeKey {
                    group: group.clone(),
                    exponent: e,
                };
            }
        }
    }

    /// Encrypts a raw plaintext byte string (hash-then-exponentiate).
    ///
    /// The exponent is this party's long-lived secret key, so the
    /// exponentiation uses the constant-time ladder: across a run every
    /// element is raised to the *same* secret, which is exactly the
    /// repeated-measurement setting timing attacks need.
    pub fn encrypt_value(&self, value: &[u8]) -> BigUint {
        let h = self.group.hash_to_group(value);
        h.mod_pow_ct(&self.exponent, &self.group.p)
    }

    /// Re-encrypts an already-encrypted group element (the commuting layer).
    pub fn encrypt_element(&self, element: &BigUint) -> BigUint {
        element.mod_pow_ct(&self.exponent, &self.group.p)
    }
}

/// Counts of cryptographic work done by [`intersect_encrypted`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IntersectionCost {
    /// Modular exponentiations performed across both parties.
    pub exponentiations: u64,
    /// Group elements exchanged.
    pub elements_exchanged: u64,
}

/// The AgES-style two-party intersection on equality keys: returns the
/// index pairs `(i, j)` with `a_values[i] == b_values[j]` (as plaintexts),
/// computed only on doubly-encrypted values.
pub fn intersect_encrypted<R: RngCore + ?Sized>(
    a_values: &[Vec<u8>],
    b_values: &[Vec<u8>],
    rng: &mut R,
) -> (Vec<(u32, u32)>, IntersectionCost) {
    let group = CommutativeGroup::default();
    let ka = CommutativeKey::generate(&group, rng);
    let kb = CommutativeKey::generate(&group, rng);
    let mut cost = IntersectionCost::default();

    // A → B: E_a(x); B → A: E_b(E_a(x)); and symmetrically.
    let ea: Vec<BigUint> = a_values.iter().map(|v| ka.encrypt_value(v)).collect();
    let eb: Vec<BigUint> = b_values.iter().map(|v| kb.encrypt_value(v)).collect();
    cost.exponentiations += (ea.len() + eb.len()) as u64;
    cost.elements_exchanged += (ea.len() + eb.len()) as u64;

    let eab: Vec<BigUint> = ea.iter().map(|e| kb.encrypt_element(e)).collect();
    let eba: Vec<BigUint> = eb.iter().map(|e| ka.encrypt_element(e)).collect();
    cost.exponentiations += (eab.len() + eba.len()) as u64;
    cost.elements_exchanged += (eab.len() + eba.len()) as u64;

    // Equality of double encryptions ⇔ equality of plaintexts.
    use std::collections::HashMap;
    let mut index: HashMap<Vec<u8>, Vec<u32>> = HashMap::new();
    for (j, e) in eba.iter().enumerate() {
        index.entry(e.to_bytes_be()).or_default().push(j as u32);
    }
    let mut matches = Vec::new();
    for (i, e) in eab.iter().enumerate() {
        // pprl:allow(secret-taint): comparing doubly-encrypted values is
        // the protocol's public output — equality of E_a(E_b(x)) is
        // exactly what both parties agree to learn (AgES step 3)
        if let Some(js) = index.get(&e.to_bytes_be()) {
            for &j in js {
                matches.push((i as u32, j));
            }
        }
    }
    matches.sort_unstable();
    (matches, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn encryption_commutes() {
        let mut rng = StdRng::seed_from_u64(11);
        let group = CommutativeGroup::default();
        let ka = CommutativeKey::generate(&group, &mut rng);
        let kb = CommutativeKey::generate(&group, &mut rng);
        let x = b"hello world";
        let ab = kb.encrypt_element(&ka.encrypt_value(x));
        let ba = ka.encrypt_element(&kb.encrypt_value(x));
        assert_eq!(ab, ba);
    }

    #[test]
    fn different_plaintexts_stay_different() {
        let mut rng = StdRng::seed_from_u64(12);
        let group = CommutativeGroup::default();
        let k = CommutativeKey::generate(&group, &mut rng);
        assert_ne!(k.encrypt_value(b"alice"), k.encrypt_value(b"bob"));
    }

    #[test]
    fn intersection_finds_exact_matches_only() {
        let mut rng = StdRng::seed_from_u64(13);
        let a: Vec<Vec<u8>> = ["smith|35", "jones|41", "garcia|29"]
            .iter()
            .map(|s| s.as_bytes().to_vec())
            .collect();
        let b: Vec<Vec<u8>> = ["garcia|29", "smith|36", "jones|41"]
            .iter()
            .map(|s| s.as_bytes().to_vec())
            .collect();
        let (matches, cost) = intersect_encrypted(&a, &b, &mut rng);
        // smith|35 vs smith|36 (one year apart) is NOT found — the exact-
        // match limitation the hybrid approach overcomes.
        assert_eq!(matches, vec![(1, 2), (2, 0)]);
        assert_eq!(cost.exponentiations, 12);
    }

    #[test]
    fn duplicate_values_produce_all_pairs() {
        let mut rng = StdRng::seed_from_u64(14);
        let a = vec![b"x".to_vec(), b"x".to_vec()];
        let b = vec![b"x".to_vec()];
        let (matches, _) = intersect_encrypted(&a, &b, &mut rng);
        assert_eq!(matches, vec![(0, 0), (1, 0)]);
    }

    #[test]
    fn hash_lands_in_qr_subgroup() {
        // h = x² mod p must satisfy h^q ≡ 1 (mod p).
        let group = CommutativeGroup::default();
        let h = group.hash_to_group(b"subgroup test");
        assert_eq!(h.mod_pow(&group.q, &group.p), BigUint::one());
    }
}
