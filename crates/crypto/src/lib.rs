//! # pprl-crypto — Paillier cryptosystem and secure linkage protocols
//!
//! The cryptographic half of the hybrid private-record-linkage method
//! (paper §V-A): a from-scratch implementation of the Paillier
//! homomorphic public-key cryptosystem (Paillier, Eurocrypt '99 — the
//! paper's reference \[18\]) plus the three-party secure squared-Euclidean-
//! distance protocol built on it.
//!
//! ## The protocol (paper §V-A)
//!
//! The querying party generates a Paillier key pair and publishes the
//! public key. For a record pair (r, s) held by data holders Alice and Bob:
//!
//! 1. Alice sends Bob `Enc(r²)` and `Enc(−2r)`.
//! 2. Bob computes `Enc(r²) ⊕ₕ (Enc(−2r) ⊗ₕ s) ⊕ₕ Enc(s²) = Enc((r−s)²)`
//!    using only the homomorphic operations, re-randomizes, and forwards
//!    the result to the querying party.
//! 3. The querying party decrypts and learns `(r−s)²` — and nothing else.
//!
//! A *masked comparison* variant ([`protocol::compare`]) reveals only
//! whether `(r−s)² ≤ t` rather than the distance itself, matching the
//! paper's remark that "secure distance evaluation could be combined with
//! secure comparison to not to reveal even the distance result".
//!
//! ## Example
//!
//! ```
//! use pprl_crypto::paillier::Keypair;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let keys = Keypair::generate(&mut rng, 512); // 512-bit n for test speed
//! let (pk, sk) = keys.split();
//!
//! let c1 = pk.encrypt_u64(30, &mut rng).unwrap();
//! let c2 = pk.encrypt_u64(12, &mut rng).unwrap();
//! let sum = pk.add(&c1, &c2);
//! assert_eq!(sk.decrypt_u64(&sum).unwrap(), 42);
//! ```

pub mod commutative;
pub mod paillier;
pub mod pool;
pub mod protocol;
pub mod sha256;

pub use commutative::{CommutativeGroup, CommutativeKey};
pub use paillier::{Ciphertext, Keypair, PrivateKey, PublicKey};
pub use pool::RandomizerPool;
pub use protocol::cost::CostLedger;
pub use sha256::sha256;

/// Errors surfaced by cryptographic operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// The ciphertext is not a valid element of Z*_{n²}.
    InvalidCiphertext,
    /// The plaintext does not fit the message space Z_n.
    PlaintextTooLarge,
    /// Decrypted value does not fit the requested native type.
    ValueOutOfRange,
    /// A protocol message arrived out of order or malformed.
    Protocol(String),
    /// Key material is inconsistent (e.g. p == q).
    InvalidKey(String),
}

impl std::fmt::Display for CryptoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CryptoError::InvalidCiphertext => write!(f, "invalid ciphertext"),
            CryptoError::PlaintextTooLarge => write!(f, "plaintext exceeds message space"),
            CryptoError::ValueOutOfRange => write!(f, "decrypted value out of range"),
            CryptoError::Protocol(s) => write!(f, "protocol error: {s}"),
            CryptoError::InvalidKey(s) => write!(f, "invalid key: {s}"),
        }
    }
}

impl std::error::Error for CryptoError {}
