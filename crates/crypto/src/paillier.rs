//! The Paillier public-key cryptosystem (Paillier, Eurocrypt '99).
//!
//! Parameters follow the paper's experimental setup: a 1024-bit modulus
//! `n = p·q` by default (two 512-bit primes), generator `g = n + 1` (which
//! makes encryption one modular exponentiation), and CRT-accelerated
//! decryption.
//!
//! *Message space*: `Z_n`. Signed values are encoded by wrapping modulo `n`
//! (values above `n/2` decode as negative), which is what lets the secure
//! distance protocol ship `Enc(−2r)`.

use crate::CryptoError;
use pprl_bignum::{prime, random_below, BigUint, Montgomery};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// A Paillier ciphertext: an element of `Z*_{n²}`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ciphertext(pub(crate) BigUint);

impl Ciphertext {
    /// Raw access to the underlying group element.
    pub fn as_biguint(&self) -> &BigUint {
        &self.0
    }

    /// Rebuilds a ciphertext from a raw group element (validated on use).
    pub fn from_biguint(v: BigUint) -> Self {
        Ciphertext(v)
    }
}

/// Paillier public key: the modulus `n` plus precomputed helpers.
#[derive(Clone, Debug)]
pub struct PublicKey {
    n: BigUint,
    n2: BigUint,
    /// `n/2`, the signed-decoding threshold.
    half_n: BigUint,
    /// Montgomery context for `n²` — reused by every encryption and
    /// homomorphic scalar multiplication.
    mont_n2: Montgomery,
    /// Optional pre-filled stock of `rⁿ mod n²` randomizers. Shared by
    /// reference: clones of this key (one per SMC worker) draw from the
    /// same pool. `None` keeps the legacy compute-inline path.
    pool: Option<std::sync::Arc<crate::pool::RandomizerPool>>,
}

impl PublicKey {
    fn new(n: BigUint) -> Result<Self, CryptoError> {
        let n2 = n.square();
        let half_n = n.shr(1);
        // An even (or trivial) modulus has no Montgomery context. This is
        // reachable from the wire via `from_modulus`, so it must be an
        // error, not a panic: a malicious key broadcast must not abort us.
        let mont_n2 = Montgomery::new(&n2)
            .map_err(|_| CryptoError::InvalidKey("modulus must be odd and > 1".into()))?;
        Ok(PublicKey {
            n,
            n2,
            half_n,
            mont_n2,
            pool: None,
        })
    }

    /// Rebuilds a public key from a transmitted modulus (the key broadcast
    /// carries only `n`; every helper is derivable from it). Fails on a
    /// degenerate modulus rather than trusting the sender.
    pub fn from_modulus(n: BigUint) -> Result<Self, CryptoError> {
        PublicKey::new(n)
    }

    /// The modulus `n`.
    pub fn n(&self) -> &BigUint {
        &self.n
    }

    /// `n²`, the ciphertext-space modulus.
    pub fn n_squared(&self) -> &BigUint {
        &self.n2
    }

    /// Byte width of the fixed-width ciphertext wire encoding (the byte
    /// length of `n²`). Padding every ciphertext to this width keeps
    /// message sizes independent of the randomizer: no ciphertext-length
    /// side channel, and byte accounting that is reproducible run to run
    /// (randomizers from a pool encode to the same size as inline ones).
    pub fn ciphertext_width(&self) -> usize {
        self.n2.to_bytes_be().len()
    }

    /// Bit length of the modulus (the "key size" in the paper's terms).
    pub fn key_bits(&self) -> usize {
        self.n.bits()
    }

    /// Byte length sufficient to hold any ciphertext (serialization).
    pub fn ciphertext_bytes(&self) -> usize {
        self.n2.bits().div_ceil(8)
    }

    /// Encrypts a reduced plaintext `m ∈ Z_n`.
    ///
    /// With `g = n + 1`: `c = (1 + m·n) · rⁿ mod n²`. The `rⁿ` factor
    /// comes from the attached [`crate::RandomizerPool`] when one is
    /// present and non-empty (two modular products total); otherwise it
    /// is computed inline from `rng` (one exponentiation), exactly as
    /// before pooling existed.
    pub fn encrypt<R: RngCore + ?Sized>(
        &self,
        m: &BigUint,
        rng: &mut R,
    ) -> Result<Ciphertext, CryptoError> {
        if m >= &self.n {
            return Err(CryptoError::PlaintextTooLarge);
        }
        let rn = self.next_rn(rng);
        // (1 + m·n) mod n² — no reduction dance needed since m < n.
        let gm = &(m.mul(&self.n)) + &BigUint::one();
        let c = gm.mod_mul(&rn, &self.n2);
        Ok(Ciphertext(c))
    }

    /// Attaches a pre-filled randomizer pool. Fails if the pool was
    /// filled for a different modulus (its `rⁿ` values would be garbage
    /// here). Clones made *after* attachment share the pool.
    pub fn attach_pool(
        &mut self,
        pool: std::sync::Arc<crate::pool::RandomizerPool>,
    ) -> Result<(), CryptoError> {
        // pprl:allow(secret-taint): modulus equality is a public
        // configuration check (n is the public key), not key material
        if pool.modulus() != &self.n {
            return Err(CryptoError::InvalidKey(
                "randomizer pool was filled for a different modulus".into(),
            ));
        }
        self.pool = Some(pool);
        Ok(())
    }

    /// The attached randomizer pool, if any.
    pub fn pool(&self) -> Option<&std::sync::Arc<crate::pool::RandomizerPool>> {
        self.pool.as_ref()
    }

    /// A fresh randomizer factor `rⁿ mod n²` computed inline.
    pub(crate) fn fresh_rn<R: RngCore + ?Sized>(&self, rng: &mut R) -> BigUint {
        let r = self.sample_unit(rng);
        self.mont_n2.pow(&r, &self.n)
    }

    /// Next randomizer factor: pooled when available, inline otherwise.
    fn next_rn<R: RngCore + ?Sized>(&self, rng: &mut R) -> BigUint {
        // pprl:allow(secret-taint): the branch reads pool *occupancy*
        // (attached? empty?), never the randomizer values themselves
        match self.pool.as_ref().and_then(|p| p.take()) {
            Some(rn) => rn,
            None => self.fresh_rn(rng),
        }
    }

    /// Encrypts a `u64` plaintext. Fails only if the plaintext does not
    /// fit the modulus (possible with sub-64-bit test keys).
    pub fn encrypt_u64<R: RngCore + ?Sized>(
        &self,
        m: u64,
        rng: &mut R,
    ) -> Result<Ciphertext, CryptoError> {
        self.encrypt(&BigUint::from_u64(m), rng)
    }

    /// Encrypts a signed value by wrapping into `Z_n`
    /// (negative `v` encodes as `n − |v|`).
    pub fn encrypt_i64<R: RngCore + ?Sized>(
        &self,
        v: i64,
        rng: &mut R,
    ) -> Result<Ciphertext, CryptoError> {
        let m = self.encode_i64(v);
        self.encrypt(&m, rng)
    }

    /// Signed-to-`Z_n` encoding.
    pub fn encode_i64(&self, v: i64) -> BigUint {
        if v >= 0 {
            BigUint::from_u64(v as u64)
        } else {
            &self.n - &BigUint::from_u64(v.unsigned_abs())
        }
    }

    /// Samples a uniformly random unit `r ∈ Z*_n`.
    fn sample_unit<R: RngCore + ?Sized>(&self, rng: &mut R) -> BigUint {
        loop {
            let r = random_below(rng, &self.n);
            if !r.is_zero() && r.gcd(&self.n).is_one() {
                return r;
            }
        }
    }

    /// Checks that a ciphertext is a valid element of `Z*_{n²}`.
    pub fn validate(&self, c: &Ciphertext) -> Result<(), CryptoError> {
        if c.0.is_zero() || c.0 >= self.n2 || !c.0.gcd(&self.n).is_one() {
            return Err(CryptoError::InvalidCiphertext);
        }
        Ok(())
    }

    // ----- homomorphic operations (paper §V-A requirements 1 and 2) -----

    /// `Enc(m₁) ⊕ₕ Enc(m₂) = Enc(m₁ + m₂)`: ciphertext multiplication.
    pub fn add(&self, c1: &Ciphertext, c2: &Ciphertext) -> Ciphertext {
        Ciphertext(c1.0.mod_mul(&c2.0, &self.n2))
    }

    /// `Enc(m) ⊕ₕ plain`: add a plaintext constant without encrypting it
    /// (multiplies by `g^k = 1 + k·n`).
    pub fn add_plain(&self, c: &Ciphertext, k: &BigUint) -> Ciphertext {
        let gk = &(k.rem(&self.n).mul(&self.n)) + &BigUint::one();
        Ciphertext(c.0.mod_mul(&gk, &self.n2))
    }

    /// `k ⊗ₕ Enc(m) = Enc(k·m)`: ciphertext exponentiation.
    ///
    /// The scalar is a party's private record value in the secure
    /// distance protocol (Bob raises `Enc(−2r)` to his `s`), so the
    /// exponentiation uses the constant-time ladder.
    pub fn mul_plain(&self, c: &Ciphertext, k: &BigUint) -> Ciphertext {
        Ciphertext(self.mont_n2.pow_ct(&c.0, &k.rem(&self.n)))
    }

    /// Scalar multiplication by a `u64`.
    pub fn mul_plain_u64(&self, c: &Ciphertext, k: u64) -> Ciphertext {
        self.mul_plain(c, &BigUint::from_u64(k))
    }

    /// `Enc(−m)` from `Enc(m)` (scalar multiply by `n − 1 ≡ −1`).
    pub fn negate(&self, c: &Ciphertext) -> Ciphertext {
        let minus_one = &self.n - &BigUint::one();
        self.mul_plain(c, &minus_one)
    }

    /// Fresh randomness: `c · rⁿ mod n²` re-randomizes without changing the
    /// plaintext. Bob applies this before forwarding `Enc((r−s)²)` so the
    /// querying party cannot correlate it with Alice's original ciphertexts.
    pub fn rerandomize<R: RngCore + ?Sized>(&self, c: &Ciphertext, rng: &mut R) -> Ciphertext {
        let rn = self.next_rn(rng);
        Ciphertext(c.0.mod_mul(&rn, &self.n2))
    }

    /// Signed decoding threshold (`n / 2`).
    pub(crate) fn half_n(&self) -> &BigUint {
        &self.half_n
    }
}

/// Paillier private key with CRT decryption state.
///
/// Key limbs are zeroized on drop (best-effort: clones and intermediate
/// arithmetic buffers are outside its control, but the long-lived copy
/// is scrubbed).
// pprl:secret
#[derive(Clone)]
pub struct PrivateKey {
    public: PublicKey,
    p: BigUint,
    q: BigUint,
    p2: BigUint,
    q2: BigUint,
    /// `hp = L_p(g^(p−1) mod p²)⁻¹ mod p`.
    hp: BigUint,
    /// `hq = L_q(g^(q−1) mod q²)⁻¹ mod q`.
    hq: BigUint,
    /// `p⁻¹ mod q` for CRT recombination.
    p_inv_q: BigUint,
    mont_p2: Montgomery,
    mont_q2: Montgomery,
}

// pprl:allow(secret-leak): redacting impl — reveals only the modulus size
impl std::fmt::Debug for PrivateKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrivateKey")
            .field("key_bits", &self.public.key_bits())
            .finish_non_exhaustive()
    }
}

impl Drop for PrivateKey {
    fn drop(&mut self) {
        self.p.zeroize();
        self.q.zeroize();
        self.p2.zeroize();
        self.q2.zeroize();
        self.hp.zeroize();
        self.hq.zeroize();
        self.p_inv_q.zeroize();
        self.mont_p2.zeroize();
        self.mont_q2.zeroize();
    }
}

impl PrivateKey {
    /// The matching public key.
    pub fn public(&self) -> &PublicKey {
        &self.public
    }

    /// Decrypts to the reduced plaintext `m ∈ Z_n` using CRT
    /// (≈4× faster than the direct `λ`-exponentiation mod `n²`).
    pub fn decrypt(&self, c: &Ciphertext) -> Result<BigUint, CryptoError> {
        self.public.validate(c)?;
        let p_minus_1 = &self.p - &BigUint::one();
        let q_minus_1 = &self.q - &BigUint::one();

        // m_p = L_p(c^(p−1) mod p²) · hp mod p. The exponents p−1 and
        // q−1 are key material: the ladder keeps the exponentiation's
        // runtime independent of their bit patterns.
        let cp = self.mont_p2.pow_ct(&c.0.rem(&self.p2), &p_minus_1);
        let lp = l_function(&cp, &self.p);
        let mp = lp.mod_mul(&self.hp, &self.p);

        let cq = self.mont_q2.pow_ct(&c.0.rem(&self.q2), &q_minus_1);
        let lq = l_function(&cq, &self.q);
        let mq = lq.mod_mul(&self.hq, &self.q);

        // CRT: m = m_p + p·((m_q − m_p)·p⁻¹ mod q)
        let diff = mq.mod_sub(&mp, &self.q);
        let t = diff.mod_mul(&self.p_inv_q, &self.q);
        Ok(&mp + &self.p.mul(&t))
    }

    /// Decrypts to `u64`, failing if the plaintext does not fit.
    pub fn decrypt_u64(&self, c: &Ciphertext) -> Result<u64, CryptoError> {
        self.decrypt(c)?
            .to_u64()
            .ok_or(CryptoError::ValueOutOfRange)
    }

    /// Decrypts with signed decoding: plaintexts above `n/2` are negative.
    pub fn decrypt_i64(&self, c: &Ciphertext) -> Result<i64, CryptoError> {
        let m = self.decrypt(c)?;
        signed_decode(&m, &self.public.n, self.public.half_n())
    }
}

/// Signed decoding of a reduced plaintext `m ∈ Z_n`: values above `n/2`
/// decode as `−(n − m)`, and either sign is rejected when its magnitude
/// exceeds `i64::MAX` (so `i64::MIN` deliberately does not round-trip,
/// matching the encoder's `unsigned_abs` range).
///
/// Branch-free: both the positive and the wrapped-negative candidate are
/// fully computed, then one is chosen by mask arithmetic. The only
/// control-flow decision is the final `Ok`/`Err` — the function's public
/// outcome.
// pprl:secret(m)
pub(crate) fn signed_decode(
    m: &BigUint,
    n: &BigUint,
    half_n: &BigUint,
) -> Result<i64, CryptoError> {
    // neg = 1 exactly when m > n/2; m == n/2 stays positive.
    let neg = half_n.ct_lt(m);
    let mask = neg.wrapping_neg();
    // The wrapped magnitude n − m (m < n always; the unwrap arm is dead,
    // and for m = 0 the wrapped candidate is discarded by the mask).
    let wrapped = n.checked_sub(m).unwrap_or_else(|_| BigUint::zero());
    let mag = (wrapped.low_u64() & mask) | (m.low_u64() & !mask);
    let over = (wrapped.hi64_nonzero() & mask) | (m.hi64_nonzero() & !mask) | (mag >> 63);
    // Two's-complement negation by mask: value = neg ? −mag : mag.
    let smask = mask as i64;
    let value = ((mag as i64) ^ smask).wrapping_sub(smask);
    // pprl:allow(secret-taint, const-time): the in-range check is the function's public Ok/Err outcome, evaluated once after both candidates are fully computed
    (over == 0).then_some(value).ok_or(CryptoError::ValueOutOfRange)
}

/// `L(x) = (x − 1) / n` — exact division by construction.
fn l_function(x: &BigUint, n: &BigUint) -> BigUint {
    let x_minus_1 = x - &BigUint::one();
    &x_minus_1 / n
}

/// A freshly generated key pair.
// pprl:secret
#[derive(Clone)]
pub struct Keypair {
    private: PrivateKey,
}

// pprl:allow(secret-leak): redacting impl — delegates to the redacted key
impl std::fmt::Debug for Keypair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Keypair").field("private", &self.private).finish()
    }
}

impl Keypair {
    /// Generates a key pair with an (approximately) `modulus_bits`-bit `n`.
    ///
    /// The paper's experiments use `modulus_bits = 1024`; tests use smaller
    /// keys for speed. Primes are forced to differ.
    pub fn generate<R: RngCore + ?Sized>(rng: &mut R, modulus_bits: usize) -> Keypair {
        assert!(modulus_bits >= 128, "modulus must be at least 128 bits");
        let half = modulus_bits / 2;
        let p = prime::gen_prime(rng, half);
        let q = loop {
            let q = prime::gen_prime(rng, half);
            if q != p {
                break q;
            }
        };
        // pprl:allow(panic-path): gen_prime returns odd primes and p ≠ q is
        // forced above, so from_primes cannot fail on this input
        Keypair::from_primes(p, q).expect("generated primes are valid")
    }

    /// Builds a key pair from explicit primes (used by tests and
    /// known-answer vectors). Errors if `p == q` or either is even.
    pub fn from_primes(p: BigUint, q: BigUint) -> Result<Keypair, CryptoError> {
        if p == q {
            return Err(CryptoError::InvalidKey("p == q".into()));
        }
        if p.is_even() || q.is_even() {
            return Err(CryptoError::InvalidKey("primes must be odd".into()));
        }
        let n = p.mul(&q);
        let public = PublicKey::new(n.clone())?;

        let p2 = p.square();
        let q2 = q.square();
        let mont_p2 = Montgomery::new(&p2)
            .map_err(|_| CryptoError::InvalidKey("p² must be odd".into()))?;
        let mont_q2 = Montgomery::new(&q2)
            .map_err(|_| CryptoError::InvalidKey("q² must be odd".into()))?;

        // g = n + 1; hp = L_p(g^(p−1) mod p²)⁻¹ mod p. Same secret
        // exponents as decryption, so same constant-time ladder.
        let g = &n + &BigUint::one();
        let p_minus_1 = &p - &BigUint::one();
        let q_minus_1 = &q - &BigUint::one();
        let gp = mont_p2.pow_ct(&g.rem(&p2), &p_minus_1);
        let hp = l_function(&gp, &p)
            .mod_inverse(&p)
            .map_err(|_| CryptoError::InvalidKey("L_p(g^(p-1)) not invertible".into()))?;
        let gq = mont_q2.pow_ct(&g.rem(&q2), &q_minus_1);
        let hq = l_function(&gq, &q)
            .mod_inverse(&q)
            .map_err(|_| CryptoError::InvalidKey("L_q(g^(q-1)) not invertible".into()))?;
        let p_inv_q = p
            .mod_inverse(&q)
            .map_err(|_| CryptoError::InvalidKey("p not invertible mod q".into()))?;

        Ok(Keypair {
            private: PrivateKey {
                public,
                p,
                q,
                p2,
                q2,
                hp,
                hq,
                p_inv_q,
                mont_p2,
                mont_q2,
            },
        })
    }

    /// Splits into `(public, private)` halves.
    pub fn split(self) -> (PublicKey, PrivateKey) {
        (self.private.public.clone(), self.private)
    }

    /// Attaches a randomizer pool to this keypair's public half (see
    /// [`PublicKey::attach_pool`]).
    pub fn attach_pool(
        &mut self,
        pool: std::sync::Arc<crate::pool::RandomizerPool>,
    ) -> Result<(), CryptoError> {
        self.private.public.attach_pool(pool)
    }

    /// Borrow the public key.
    pub fn public(&self) -> &PublicKey {
        &self.private.public
    }

    /// Borrow the private key.
    pub fn private(&self) -> &PrivateKey {
        &self.private
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_keys(seed: u64) -> (PublicKey, PrivateKey) {
        let mut rng = StdRng::seed_from_u64(seed);
        Keypair::generate(&mut rng, 256).split()
    }

    #[test]
    fn roundtrip_small_values() {
        let (pk, sk) = test_keys(1);
        let mut rng = StdRng::seed_from_u64(2);
        for m in [0u64, 1, 2, 41, 1000, u32::MAX as u64, u64::MAX] {
            let c = pk.encrypt_u64(m, &mut rng).unwrap();
            assert_eq!(sk.decrypt_u64(&c).unwrap(), m, "m={m}");
        }
    }

    #[test]
    fn roundtrip_signed_values() {
        let (pk, sk) = test_keys(3);
        let mut rng = StdRng::seed_from_u64(4);
        for v in [0i64, 1, -1, -42, 42, i32::MIN as i64, i32::MAX as i64] {
            let c = pk.encrypt_i64(v, &mut rng).unwrap();
            assert_eq!(sk.decrypt_i64(&c).unwrap(), v, "v={v}");
        }
    }

    /// The pre-rewrite signed decoding: compare-and-branch. Kept here as
    /// the semantic reference for the branch-free [`signed_decode`].
    fn reference_signed_decode(
        m: &BigUint,
        n: &BigUint,
        half_n: &BigUint,
    ) -> Result<i64, CryptoError> {
        let (mag, neg) = if m > half_n {
            (n.checked_sub(m).expect("m < n"), true)
        } else {
            (m.clone(), false)
        };
        match mag.to_u64() {
            Some(v) if v <= i64::MAX as u64 => {
                Ok(if neg { -(v as i64) } else { v as i64 })
            }
            _ => Err(CryptoError::ValueOutOfRange),
        }
    }

    #[test]
    fn signed_decode_matches_branchy_reference_at_boundaries() {
        // Synthetic moduli: one wider than 64 bits (so |v| = i64::MAX and
        // the first out-of-range magnitude both occur on each sign), one
        // narrower (every magnitude fits, the wrap path dominates).
        let wide = &(&BigUint::one().shl(80) + &BigUint::from_u64(0x1234_5679)); // odd
        let narrow = &BigUint::from_u64(1_000_003);
        let imax = BigUint::from_u64(i64::MAX as u64);
        let imax1 = &imax + &BigUint::one();
        for n in [wide, narrow] {
            let half_n = n.shr(1);
            let candidates = [
                BigUint::zero(),
                BigUint::one(),
                half_n.clone(),
                &half_n + &BigUint::one(),
                half_n.checked_sub(&BigUint::one()).unwrap(),
                n.checked_sub(&BigUint::one()).unwrap(),
                imax.clone(),
                imax1.clone(),
                n.checked_sub(&imax).unwrap_or_else(|_| BigUint::zero()),
                n.checked_sub(&imax1).unwrap_or_else(|_| BigUint::zero()),
            ];
            for m in candidates.iter().filter(|m| *m < n) {
                let got = signed_decode(m, n, &half_n);
                let want = reference_signed_decode(m, n, &half_n);
                assert_eq!(got, want, "n={n:?} m={m:?}");
            }
        }
    }

    #[test]
    fn ciphertexts_are_randomized() {
        let (pk, _) = test_keys(5);
        let mut rng = StdRng::seed_from_u64(6);
        let c1 = pk.encrypt_u64(7, &mut rng).unwrap();
        let c2 = pk.encrypt_u64(7, &mut rng).unwrap();
        assert_ne!(c1, c2, "semantic security: same plaintext, fresh randomness");
    }

    #[test]
    fn additive_homomorphism() {
        let (pk, sk) = test_keys(7);
        let mut rng = StdRng::seed_from_u64(8);
        let c1 = pk.encrypt_u64(123, &mut rng).unwrap();
        let c2 = pk.encrypt_u64(877, &mut rng).unwrap();
        assert_eq!(sk.decrypt_u64(&pk.add(&c1, &c2)).unwrap(), 1000);
    }

    #[test]
    fn plaintext_addition() {
        let (pk, sk) = test_keys(9);
        let mut rng = StdRng::seed_from_u64(10);
        let c = pk.encrypt_u64(5, &mut rng).unwrap();
        let c5 = pk.add_plain(&c, &BigUint::from_u64(37));
        assert_eq!(sk.decrypt_u64(&c5).unwrap(), 42);
    }

    #[test]
    fn scalar_multiplication() {
        let (pk, sk) = test_keys(11);
        let mut rng = StdRng::seed_from_u64(12);
        let c = pk.encrypt_u64(6, &mut rng).unwrap();
        assert_eq!(sk.decrypt_u64(&pk.mul_plain_u64(&c, 7)).unwrap(), 42);
        assert_eq!(sk.decrypt_u64(&pk.mul_plain_u64(&c, 0)).unwrap(), 0);
    }

    #[test]
    fn negation_wraps_signed() {
        let (pk, sk) = test_keys(13);
        let mut rng = StdRng::seed_from_u64(14);
        let c = pk.encrypt_u64(30, &mut rng).unwrap();
        assert_eq!(sk.decrypt_i64(&pk.negate(&c)).unwrap(), -30);
    }

    #[test]
    fn rerandomize_preserves_plaintext() {
        let (pk, sk) = test_keys(15);
        let mut rng = StdRng::seed_from_u64(16);
        let c = pk.encrypt_u64(99, &mut rng).unwrap();
        let c2 = pk.rerandomize(&c, &mut rng);
        assert_ne!(c, c2);
        assert_eq!(sk.decrypt_u64(&c2).unwrap(), 99);
    }

    #[test]
    fn plaintext_too_large_rejected() {
        let (pk, _) = test_keys(17);
        let mut rng = StdRng::seed_from_u64(18);
        let too_big = pk.n().clone();
        assert_eq!(
            pk.encrypt(&too_big, &mut rng).unwrap_err(),
            CryptoError::PlaintextTooLarge
        );
    }

    #[test]
    fn corrupted_ciphertext_rejected() {
        let (pk, sk) = test_keys(19);
        // Zero and n² are not valid group elements.
        assert!(sk.decrypt(&Ciphertext::from_biguint(BigUint::zero())).is_err());
        assert!(sk
            .decrypt(&Ciphertext::from_biguint(pk.n_squared().clone()))
            .is_err());
        // A multiple of n is not a unit.
        assert!(sk.decrypt(&Ciphertext::from_biguint(pk.n().clone())).is_err());
    }

    #[test]
    fn wrong_key_decrypts_to_garbage() {
        let (pk1, _) = test_keys(20);
        let (_, sk2) = test_keys(21);
        let mut rng = StdRng::seed_from_u64(22);
        let c = pk1.encrypt_u64(42, &mut rng).unwrap();
        // Either validation fails or the plaintext is wrong; it must never
        // silently round-trip the original value.
        if let Ok(m) = sk2.decrypt(&c) { assert_ne!(m.to_u64(), Some(42)) }
    }

    #[test]
    fn from_primes_rejects_degenerate_keys() {
        let p = BigUint::from_u64(0xFFFF_FFFF_FFFF_FFC5);
        assert!(Keypair::from_primes(p.clone(), p.clone()).is_err());
        assert!(Keypair::from_primes(BigUint::from_u64(4), p).is_err());
    }

    #[test]
    fn pooled_encrypt_roundtrips_and_rerandomizes() {
        let mut rng = StdRng::seed_from_u64(25);
        let mut keys = Keypair::generate(&mut rng, 256);
        let pool = crate::pool::RandomizerPool::prefill(keys.public(), 6, 2, 99);
        keys.attach_pool(pool.clone()).unwrap();
        let (pk, sk) = keys.split();
        // 6 pooled draws serve the first six operations…
        for m in [0u64, 7, 1000] {
            let c = pk.encrypt_u64(m, &mut rng).unwrap();
            assert_eq!(sk.decrypt_u64(&c).unwrap(), m);
        }
        let c = pk.encrypt_u64(5, &mut rng).unwrap();
        let c2 = pk.rerandomize(&c, &mut rng);
        assert_ne!(c, c2);
        assert_eq!(sk.decrypt_u64(&c2).unwrap(), 5);
        assert_eq!(pool.hits(), 5);
        // …and an exhausted pool degrades to the inline path.
        let c = pk.encrypt_u64(41, &mut rng).unwrap();
        let c3 = pk.encrypt_u64(41, &mut rng).unwrap();
        assert_ne!(c, c3, "inline fallback still randomizes");
        assert_eq!(sk.decrypt_u64(&c3).unwrap(), 41);
        assert!(pool.misses() >= 1);
    }

    #[test]
    fn pool_for_wrong_modulus_is_rejected() {
        let (mut pk1, _) = test_keys(26);
        let (pk2, _) = test_keys(27);
        let pool = crate::pool::RandomizerPool::prefill(&pk2, 1, 1, 3);
        assert!(pk1.attach_pool(pool).is_err());
    }

    #[test]
    fn homomorphic_squared_difference_identity() {
        // The algebra the secure distance protocol relies on:
        // Enc(a²) ⊕ (Enc(−2a) ⊗ b) ⊕ Enc(b²) = Enc((a−b)²).
        let (pk, sk) = test_keys(23);
        let mut rng = StdRng::seed_from_u64(24);
        let (a, b) = (37u64, 21u64);
        let ca2 = pk.encrypt_u64(a * a, &mut rng).unwrap();
        let cm2a = pk.encrypt_i64(-2 * a as i64, &mut rng).unwrap();
        let cb2 = pk.encrypt_u64(b * b, &mut rng).unwrap();
        let cross = pk.mul_plain_u64(&cm2a, b);
        let result = pk.add(&pk.add(&ca2, &cross), &cb2);
        assert_eq!(sk.decrypt_u64(&result).unwrap(), (a - b) * (a - b));
    }
}
