//! Pre-filled randomizer pool for Paillier encryption.
//!
//! With `g = n + 1`, encrypting costs one cheap product `(1 + m·n)` plus
//! one expensive exponentiation `rⁿ mod n²`. The exponentiation does not
//! depend on the plaintext, so it can be hoisted off the hot path
//! entirely: fill a pool of `rⁿ` values concurrently up front, and a
//! hot-path [`crate::PublicKey::encrypt`] becomes two modular products.
//!
//! Pool entries are *secret until consumed*: revealing the `rⁿ` used for
//! a ciphertext `c = (1 + m·n)·rⁿ` reveals the plaintext. The pool
//! therefore never derives `Debug`/`Serialize`, redacts its manual
//! `Debug`, and zeroizes unconsumed entries on drop.

use crate::paillier::PublicKey;
use pprl_bignum::BigUint;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// A stock of precomputed Paillier randomizer factors `rⁿ mod n²`,
/// bound to the modulus they were generated for.
// pprl:secret
pub struct RandomizerPool {
    /// The public modulus `n` the entries belong to (attachment check).
    n: BigUint,
    entries: Mutex<Vec<BigUint>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

// pprl:allow(secret-leak): redacting impl — reveals only pool accounting
impl std::fmt::Debug for RandomizerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RandomizerPool")
            .field("remaining", &self.remaining())
            .field("hits", &self.hits.load(Ordering::Relaxed))
            .field("misses", &self.misses.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Drop for RandomizerPool {
    fn drop(&mut self) {
        let entries = match self.entries.get_mut() {
            Ok(e) => e,
            Err(poisoned) => poisoned.into_inner(),
        };
        for e in entries.iter_mut() {
            e.zeroize();
        }
        entries.clear();
    }
}

impl RandomizerPool {
    /// Fills a pool with `count` fresh `rⁿ mod n²` values, computed on up
    /// to `threads` workers. Each worker derives its own RNG stream from
    /// `seed`; pooled randomizers never influence protocol *decisions*,
    /// only ciphertext bytes, so the stream split is free to vary with
    /// the worker count.
    pub fn prefill(pk: &PublicKey, count: usize, threads: usize, seed: u64) -> Arc<Self> {
        let slots: Vec<u64> = (0..count as u64).collect();
        let entries = pprl_runtime::par_map_init(
            &slots,
            threads,
            |worker| StdRng::seed_from_u64(splitmix64(seed ^ (worker as u64).wrapping_mul(0xA5A5_5A5A_F00D_CAFE))),
            |rng, _, _| pk.fresh_rn(rng),
        );
        Arc::new(RandomizerPool {
            n: pk.n().clone(),
            entries: Mutex::new(entries),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// Pops one precomputed randomizer, or records a miss (caller falls
    /// back to computing `rⁿ` inline).
    pub(crate) fn take(&self) -> Option<BigUint> {
        let mut entries = self.lock_entries();
        // pprl:allow(secret-taint): hit/miss depends on pool occupancy —
        // operational state — not on any randomizer's value
        match entries.pop() {
            Some(rn) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(rn)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// The modulus the pool was filled for.
    pub(crate) fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// Entries still available.
    pub fn remaining(&self) -> usize {
        self.lock_entries().len()
    }

    /// Encryptions served from the pool so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Encryptions that found the pool empty and fell back inline.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Locks the entry stock, recovering from a poisoned lock (a worker
    /// that panicked mid-`take` leaves a usable, merely shorter, pool).
    fn lock_entries(&self) -> MutexGuard<'_, Vec<BigUint>> {
        // pprl:allow(secret-taint): lock-poisoning recovery branches on
        // mutex state, not on the pooled values
        match self.entries.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// splitmix64 finalizer — decorrelates per-worker RNG seeds.
fn splitmix64(v: u64) -> u64 {
    let mut z = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Keypair;

    fn test_pk(seed: u64) -> PublicKey {
        let mut rng = StdRng::seed_from_u64(seed);
        Keypair::generate(&mut rng, 256).split().0
    }

    #[test]
    fn prefill_produces_valid_randomizers() {
        let pk = test_pk(31);
        let pool = RandomizerPool::prefill(&pk, 8, 4, 77);
        assert_eq!(pool.remaining(), 8);
        // Every entry must be a unit mod n² (gcd with n is 1).
        for _ in 0..8 {
            let rn = pool.take().expect("pool should have an entry left");
            assert!(rn.gcd(pk.n()).is_one());
            assert!(&rn < pk.n_squared());
        }
        assert_eq!(pool.hits(), 8);
        assert_eq!(pool.misses(), 0);
        assert!(pool.take().is_none());
        assert_eq!(pool.misses(), 1);
    }

    #[test]
    fn pool_size_is_exact_at_any_thread_count() {
        let pk = test_pk(33);
        for threads in [1usize, 2, 3, 8] {
            let pool = RandomizerPool::prefill(&pk, 5, threads, 9);
            assert_eq!(pool.remaining(), 5, "threads={threads}");
        }
    }
}
