//! Masked secure comparison: reveal *whether* `(a−b)² ≤ t`, not the
//! distance itself.
//!
//! The paper notes that "such secure distance evaluation could be combined
//! with secure comparison to not to reveal even the distance result". This
//! module implements the classic multiplicative-masking realization: Bob
//! computes `Enc(ρ·((a−b)² − t))` for a random positive mask `ρ`, so the
//! querying party learns only the sign of `(a−b)² − t`.
//!
//! **Leakage caveat** (documented, as in the literature): the opened value
//! is `ρ·(d² − t)`, whose magnitude is randomized but not perfectly hiding —
//! it reveals ~log ρ bits of `|d² − t|`'s order of magnitude. A full DGK/
//! Veugen comparison would close this; the hybrid method's security goal
//! (§V: reveal only the linkage result and the anonymized data sets) is
//! already met because only the sign is used downstream.

use crate::paillier::{Ciphertext, PrivateKey, PublicKey};
use crate::protocol::cost::CostLedger;
use crate::protocol::distance::{alice_prepare, bob_combine, AliceShare};
use crate::CryptoError;
use pprl_bignum::BigUint;
use rand::RngCore;

/// Mask width in bits. `ρ ∈ [1, 2^48)` keeps `ρ·|d² − t| < 2^113`, far below
/// `n/2` for the ≥ 256-bit moduli this crate generates. Shared with the
/// slot-packed variant ([`pack`](crate::protocol::pack)), whose slot width
/// budget is derived from the same mask width.
pub(crate) const MASK_BITS: usize = 48;

/// Bob's side: from Alice's share, his value `b`, and the public threshold
/// `t` (the squared matching threshold `⌊(θᵢ·norm)²⌋`), produce
/// `Enc(ρ·((a−b)² − t))`.
pub fn bob_combine_masked<R: RngCore + ?Sized>(
    pk: &PublicKey,
    share: &AliceShare,
    b: u64,
    threshold: u64,
    rng: &mut R,
    ledger: &mut CostLedger,
) -> Result<Ciphertext, CryptoError> {
    let enc_d2 = bob_combine(pk, share, b, rng, ledger)?;
    // Enc(d² − t): add the encoding of −t.
    let minus_t = if threshold == 0 {
        BigUint::zero()
    } else {
        pk.n()
            .checked_sub(&BigUint::from_u64(threshold))
            .map_err(|_| CryptoError::PlaintextTooLarge)?
    };
    let shifted = pk.add_plain(&enc_d2, &minus_t);
    // Multiply by a random positive mask.
    let rho = &pprl_bignum::random_bits(rng, MASK_BITS) + 1u64;
    let masked = pk.mul_plain(&shifted, &rho);
    ledger.homomorphic_adds += 1;
    ledger.scalar_muls += 1;
    Ok(masked)
}

/// Querying party's side: open the masked value; non-positive ⇒ match.
pub fn querier_reveal_match(
    sk: &PrivateKey,
    enc_masked: &Ciphertext,
    ledger: &mut CostLedger,
) -> Result<bool, CryptoError> {
    ledger.decryptions += 1;
    let m = sk.decrypt(enc_masked)?;
    // Signed decoding: values above n/2 are negative ⇒ d² < t ⇒ match;
    // zero ⇒ d² == t ⇒ match (the decision rule is d ≤ θ).
    let negative = m > *sk.public().half_n();
    Ok(negative || m.is_zero())
}

/// End-to-end masked threshold match: `(a − b)² ≤ t` with only the bit
/// revealed. Charges one SMC invocation.
pub fn secure_threshold_match<R: RngCore + ?Sized>(
    pk: &PublicKey,
    sk: &PrivateKey,
    a: u64,
    b: u64,
    threshold: u64,
    rng: &mut R,
    ledger: &mut CostLedger,
) -> Result<bool, CryptoError> {
    let share = alice_prepare(pk, a, rng, ledger)?;
    let masked = bob_combine_masked(pk, &share, b, threshold, rng, ledger)?;
    ledger.invocations += 1;
    querier_reveal_match(sk, &masked, ledger)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paillier::Keypair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (PublicKey, PrivateKey, StdRng) {
        let mut rng = StdRng::seed_from_u64(47);
        let (pk, sk) = Keypair::generate(&mut rng, 256).split();
        (pk, sk, rng)
    }

    #[test]
    fn matches_inside_threshold() {
        let (pk, sk, mut rng) = setup();
        let mut ledger = CostLedger::new();
        // |5-3| = 2, d² = 4 ≤ t = 16 ⇒ match.
        assert!(secure_threshold_match(&pk, &sk, 5, 3, 16, &mut rng, &mut ledger).unwrap());
    }

    #[test]
    fn rejects_outside_threshold() {
        let (pk, sk, mut rng) = setup();
        let mut ledger = CostLedger::new();
        // d² = 100 > 16 ⇒ mismatch.
        assert!(!secure_threshold_match(&pk, &sk, 20, 10, 16, &mut rng, &mut ledger).unwrap());
    }

    #[test]
    fn boundary_is_a_match() {
        let (pk, sk, mut rng) = setup();
        let mut ledger = CostLedger::new();
        // d² = 16 == t ⇒ match (decision rule is ≤).
        assert!(secure_threshold_match(&pk, &sk, 7, 3, 16, &mut rng, &mut ledger).unwrap());
    }

    #[test]
    fn equality_with_zero_threshold() {
        // The Hamming case: t = 0, match iff equal.
        let (pk, sk, mut rng) = setup();
        let mut ledger = CostLedger::new();
        assert!(secure_threshold_match(&pk, &sk, 9, 9, 0, &mut rng, &mut ledger).unwrap());
        assert!(!secure_threshold_match(&pk, &sk, 9, 8, 0, &mut rng, &mut ledger).unwrap());
    }

    #[test]
    fn agrees_with_plaintext_over_random_inputs() {
        let (pk, sk, mut rng) = setup();
        let mut ledger = CostLedger::new();
        for i in 0..25u64 {
            let a = (i * 7) % 50;
            let b = (i * 13) % 50;
            let t = (i * 3) % 40;
            let expected = a.abs_diff(b).pow(2) <= t;
            let got =
                secure_threshold_match(&pk, &sk, a, b, t, &mut rng, &mut ledger).unwrap();
            assert_eq!(got, expected, "a={a} b={b} t={t}");
        }
    }
}
