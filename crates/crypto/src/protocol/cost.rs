//! Cost accounting for the SMC step.
//!
//! The paper reduces its cost model to "the number of SMC protocol
//! invocations" after measuring that one 1024-bit secure distance costs
//! ~0.43 s while the entire blocking step costs ~1.35 s. The ledger keeps
//! the finer-grained counters too, so the experiment harness can translate
//! invocation counts back into CPU time / bandwidth for any key size.

use serde::{Deserialize, Serialize};

/// Mutable tally of cryptographic work and communication.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostLedger {
    /// Paillier encryptions performed.
    pub encryptions: u64,
    /// Paillier decryptions performed.
    pub decryptions: u64,
    /// Homomorphic ciphertext additions (modular multiplications).
    pub homomorphic_adds: u64,
    /// Homomorphic scalar multiplications (modular exponentiations).
    pub scalar_muls: u64,
    /// Ciphertext re-randomizations.
    pub rerandomizations: u64,
    /// Protocol messages exchanged.
    pub messages: u64,
    /// Total bytes across all messages.
    pub bytes: u64,
    /// Complete SMC protocol invocations (one attribute comparison each —
    /// the unit the paper's *SMC allowance* is expressed in).
    pub invocations: u64,
    /// Frame retransmissions performed by the reliable link.
    pub retries: u64,
    /// Frames discarded because envelope framing/checksum validation failed.
    pub corrupt_dropped: u64,
    /// Duplicate or stale frames detected and discarded without processing.
    pub duplicates_discarded: u64,
    /// Bytes sent again due to retransmission (not counted in `bytes`).
    pub bytes_retransmitted: u64,
}

impl CostLedger {
    /// Fresh, empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a sent message of `len` bytes.
    pub fn record_message(&mut self, len: usize) {
        self.messages += 1;
        self.bytes += len as u64;
    }

    /// Folds another ledger into this one.
    pub fn merge(&mut self, other: &CostLedger) {
        self.encryptions += other.encryptions;
        self.decryptions += other.decryptions;
        self.homomorphic_adds += other.homomorphic_adds;
        self.scalar_muls += other.scalar_muls;
        self.rerandomizations += other.rerandomizations;
        self.messages += other.messages;
        self.bytes += other.bytes;
        self.invocations += other.invocations;
        self.retries += other.retries;
        self.corrupt_dropped += other.corrupt_dropped;
        self.duplicates_discarded += other.duplicates_discarded;
        self.bytes_retransmitted += other.bytes_retransmitted;
    }

    /// Total modular exponentiations — the dominant cost driver
    /// (each encryption, scalar multiplication, and re-randomization is one).
    pub fn exponentiations(&self) -> u64 {
        self.encryptions + self.scalar_muls + self.rerandomizations
    }
}

impl std::fmt::Display for CostLedger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} invocations | {} enc, {} dec, {} hom-add, {} scalar-mul, {} rerand | {} msgs / {} bytes",
            self.invocations,
            self.encryptions,
            self.decryptions,
            self.homomorphic_adds,
            self.scalar_muls,
            self.rerandomizations,
            self.messages,
            self.bytes
        )?;
        if self.retries + self.corrupt_dropped + self.duplicates_discarded > 0 {
            write!(
                f,
                " | {} retries / {} retransmitted bytes, {} corrupt dropped, {} dups discarded",
                self.retries,
                self.bytes_retransmitted,
                self.corrupt_dropped,
                self.duplicates_discarded
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_every_field() {
        let mut a = CostLedger {
            encryptions: 1,
            decryptions: 2,
            homomorphic_adds: 3,
            scalar_muls: 4,
            rerandomizations: 5,
            messages: 6,
            bytes: 7,
            invocations: 8,
            retries: 9,
            corrupt_dropped: 10,
            duplicates_discarded: 11,
            bytes_retransmitted: 12,
        };
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.encryptions, 2);
        assert_eq!(a.bytes, 14);
        assert_eq!(a.invocations, 16);
        assert_eq!(a.retries, 18);
        assert_eq!(a.corrupt_dropped, 20);
        assert_eq!(a.duplicates_discarded, 22);
        assert_eq!(a.bytes_retransmitted, 24);
    }

    #[test]
    fn exponentiation_count() {
        let ledger = CostLedger {
            encryptions: 2,
            scalar_muls: 1,
            rerandomizations: 1,
            ..CostLedger::default()
        };
        assert_eq!(ledger.exponentiations(), 4);
    }

    #[test]
    fn record_message_tracks_rounds_and_bytes() {
        let mut ledger = CostLedger::new();
        ledger.record_message(100);
        ledger.record_message(28);
        assert_eq!(ledger.messages, 2);
        assert_eq!(ledger.bytes, 128);
    }
}
