//! Cost accounting for the SMC step.
//!
//! The paper reduces its cost model to "the number of SMC protocol
//! invocations" after measuring that one 1024-bit secure distance costs
//! ~0.43 s while the entire blocking step costs ~1.35 s. The ledger keeps
//! the finer-grained counters too, so the experiment harness can translate
//! invocation counts back into CPU time / bandwidth for any key size.

use serde::{Deserialize, Serialize};

/// Mutable tally of cryptographic work and communication.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostLedger {
    /// Paillier encryptions performed.
    pub encryptions: u64,
    /// Paillier decryptions performed.
    pub decryptions: u64,
    /// Homomorphic ciphertext additions (modular multiplications).
    pub homomorphic_adds: u64,
    /// Homomorphic scalar multiplications (modular exponentiations).
    pub scalar_muls: u64,
    /// Ciphertext re-randomizations.
    pub rerandomizations: u64,
    /// Protocol messages exchanged.
    pub messages: u64,
    /// Total bytes across all messages.
    pub bytes: u64,
    /// Complete SMC protocol invocations (one attribute comparison each —
    /// the unit the paper's *SMC allowance* is expressed in).
    pub invocations: u64,
    /// Frame retransmissions performed by the reliable link.
    pub retries: u64,
    /// Frames discarded because envelope framing/checksum validation failed.
    pub corrupt_dropped: u64,
    /// Duplicate or stale frames detected and discarded without processing.
    pub duplicates_discarded: u64,
    /// Bytes sent again due to retransmission (not counted in `bytes`).
    pub bytes_retransmitted: u64,
}

impl CostLedger {
    /// Fresh, empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a sent message of `len` bytes.
    pub fn record_message(&mut self, len: usize) {
        self.messages += 1;
        self.bytes += len as u64;
    }

    /// Folds another ledger into this one.
    pub fn merge(&mut self, other: &CostLedger) {
        self.encryptions += other.encryptions;
        self.decryptions += other.decryptions;
        self.homomorphic_adds += other.homomorphic_adds;
        self.scalar_muls += other.scalar_muls;
        self.rerandomizations += other.rerandomizations;
        self.messages += other.messages;
        self.bytes += other.bytes;
        self.invocations += other.invocations;
        self.retries += other.retries;
        self.corrupt_dropped += other.corrupt_dropped;
        self.duplicates_discarded += other.duplicates_discarded;
        self.bytes_retransmitted += other.bytes_retransmitted;
    }

    /// Total modular exponentiations — the dominant cost driver
    /// (each encryption, scalar multiplication, and re-randomization is one).
    pub fn exponentiations(&self) -> u64 {
        self.encryptions + self.scalar_muls + self.rerandomizations
    }

    /// Field order of the fixed-width wire codec (and of [`merge`]).
    const FIELDS: usize = 12;

    /// Encoded size of [`encode`](Self::encode): twelve `u64` counters.
    pub const WIRE_LEN: usize = Self::FIELDS * 8;

    /// Serializes the ledger as twelve little-endian `u64`s — the
    /// serde-free codec used by journal frames and the networked parties'
    /// end-of-session cost summaries.
    pub fn encode(&self) -> [u8; Self::WIRE_LEN] {
        let fields = [
            self.encryptions,
            self.decryptions,
            self.homomorphic_adds,
            self.scalar_muls,
            self.rerandomizations,
            self.messages,
            self.bytes,
            self.invocations,
            self.retries,
            self.corrupt_dropped,
            self.duplicates_discarded,
            self.bytes_retransmitted,
        ];
        let mut out = [0u8; Self::WIRE_LEN];
        for (chunk, field) in out.chunks_exact_mut(8).zip(fields) {
            chunk.copy_from_slice(&field.to_le_bytes());
        }
        out
    }

    /// Decodes a ledger serialized by [`encode`](Self::encode); `None` on
    /// any length mismatch.
    pub fn decode(data: &[u8]) -> Option<Self> {
        if data.len() != Self::WIRE_LEN {
            return None;
        }
        let mut fields = [0u64; Self::FIELDS];
        for (field, chunk) in fields.iter_mut().zip(data.chunks_exact(8)) {
            *field = u64::from_le_bytes(chunk.try_into().ok()?);
        }
        let [encryptions, decryptions, homomorphic_adds, scalar_muls, rerandomizations, messages, bytes, invocations, retries, corrupt_dropped, duplicates_discarded, bytes_retransmitted] =
            fields;
        Some(CostLedger {
            encryptions,
            decryptions,
            homomorphic_adds,
            scalar_muls,
            rerandomizations,
            messages,
            bytes,
            invocations,
            retries,
            corrupt_dropped,
            duplicates_discarded,
            bytes_retransmitted,
        })
    }

    /// Field-wise difference `self − earlier` — the cost charged since the
    /// `earlier` snapshot was taken. Counters are monotone, so a snapshot
    /// taken before some work is always ≤ one taken after; `None` when
    /// that invariant is violated (the snapshots are unrelated).
    pub fn delta_since(&self, earlier: &CostLedger) -> Option<CostLedger> {
        Some(CostLedger {
            encryptions: self.encryptions.checked_sub(earlier.encryptions)?,
            decryptions: self.decryptions.checked_sub(earlier.decryptions)?,
            homomorphic_adds: self.homomorphic_adds.checked_sub(earlier.homomorphic_adds)?,
            scalar_muls: self.scalar_muls.checked_sub(earlier.scalar_muls)?,
            rerandomizations: self.rerandomizations.checked_sub(earlier.rerandomizations)?,
            messages: self.messages.checked_sub(earlier.messages)?,
            bytes: self.bytes.checked_sub(earlier.bytes)?,
            invocations: self.invocations.checked_sub(earlier.invocations)?,
            retries: self.retries.checked_sub(earlier.retries)?,
            corrupt_dropped: self.corrupt_dropped.checked_sub(earlier.corrupt_dropped)?,
            duplicates_discarded: self
                .duplicates_discarded
                .checked_sub(earlier.duplicates_discarded)?,
            bytes_retransmitted: self
                .bytes_retransmitted
                .checked_sub(earlier.bytes_retransmitted)?,
        })
    }
}

impl std::fmt::Display for CostLedger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} invocations | {} enc, {} dec, {} hom-add, {} scalar-mul, {} rerand | {} msgs / {} bytes",
            self.invocations,
            self.encryptions,
            self.decryptions,
            self.homomorphic_adds,
            self.scalar_muls,
            self.rerandomizations,
            self.messages,
            self.bytes
        )?;
        if self.retries + self.corrupt_dropped + self.duplicates_discarded > 0 {
            write!(
                f,
                " | {} retries / {} retransmitted bytes, {} corrupt dropped, {} dups discarded",
                self.retries,
                self.bytes_retransmitted,
                self.corrupt_dropped,
                self.duplicates_discarded
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_every_field() {
        let mut a = CostLedger {
            encryptions: 1,
            decryptions: 2,
            homomorphic_adds: 3,
            scalar_muls: 4,
            rerandomizations: 5,
            messages: 6,
            bytes: 7,
            invocations: 8,
            retries: 9,
            corrupt_dropped: 10,
            duplicates_discarded: 11,
            bytes_retransmitted: 12,
        };
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.encryptions, 2);
        assert_eq!(a.bytes, 14);
        assert_eq!(a.invocations, 16);
        assert_eq!(a.retries, 18);
        assert_eq!(a.corrupt_dropped, 20);
        assert_eq!(a.duplicates_discarded, 22);
        assert_eq!(a.bytes_retransmitted, 24);
    }

    #[test]
    fn exponentiation_count() {
        let ledger = CostLedger {
            encryptions: 2,
            scalar_muls: 1,
            rerandomizations: 1,
            ..CostLedger::default()
        };
        assert_eq!(ledger.exponentiations(), 4);
    }

    #[test]
    fn record_message_tracks_rounds_and_bytes() {
        let mut ledger = CostLedger::new();
        ledger.record_message(100);
        ledger.record_message(28);
        assert_eq!(ledger.messages, 2);
        assert_eq!(ledger.bytes, 128);
    }

    #[test]
    fn wire_codec_roundtrips_every_field() {
        let ledger = CostLedger {
            encryptions: 1,
            decryptions: 2,
            homomorphic_adds: 3,
            scalar_muls: 4,
            rerandomizations: 5,
            messages: 6,
            bytes: u64::MAX,
            invocations: 8,
            retries: 9,
            corrupt_dropped: 10,
            duplicates_discarded: 11,
            bytes_retransmitted: 12,
        };
        let encoded = ledger.encode();
        assert_eq!(encoded.len(), CostLedger::WIRE_LEN);
        assert_eq!(CostLedger::decode(&encoded), Some(ledger));
        assert_eq!(CostLedger::decode(&encoded[..95]), None);
        assert_eq!(CostLedger::decode(&[]), None);
    }

    #[test]
    fn delta_recovers_incremental_cost() {
        let mut before = CostLedger::new();
        before.record_message(10);
        before.encryptions = 4;
        let mut after = before.clone();
        after.record_message(30);
        after.encryptions = 7;
        let delta = after.delta_since(&before).unwrap();
        assert_eq!(delta.messages, 1);
        assert_eq!(delta.bytes, 30);
        assert_eq!(delta.encryptions, 3);
        // Merging the delta back reproduces the later snapshot.
        let mut rebuilt = before.clone();
        rebuilt.merge(&delta);
        assert_eq!(rebuilt, after);
        // Unrelated snapshots (later < earlier) are rejected.
        assert_eq!(before.delta_since(&after), None);
    }
}
