//! Secure squared-Euclidean-distance building block (paper §V-A).
//!
//! `d(r.aᵢ, s.aᵢ)² = (r.aᵢ − s.aᵢ)² = r.aᵢ² − 2·r.aᵢ·s.aᵢ + s.aᵢ²` is
//! computed under encryption: Alice contributes `Enc(a²)` and `Enc(−2a)`,
//! Bob folds in his own value with one scalar multiplication and one
//! encryption, and only the querying party can open the result.

use crate::paillier::{Ciphertext, PrivateKey, PublicKey};
use crate::protocol::cost::CostLedger;
use crate::CryptoError;
use rand::RngCore;

/// Alice's per-attribute contribution.
#[derive(Clone, Debug)]
pub struct AliceShare {
    /// `Enc(a²)`.
    pub enc_a_squared: Ciphertext,
    /// `Enc(−2a)` (signed encoding mod `n`).
    pub enc_minus_2a: Ciphertext,
}

/// Step 1 — Alice encrypts her value's share of the expansion.
///
/// Fails with [`CryptoError::PlaintextTooLarge`] if the modulus is too
/// small for `a²` or `2a` (only possible with absurdly undersized keys).
pub fn alice_prepare<R: RngCore + ?Sized>(
    pk: &PublicKey,
    a: u64,
    rng: &mut R,
    ledger: &mut CostLedger,
) -> Result<AliceShare, CryptoError> {
    let a_sq = (a as u128) * (a as u128);
    let enc_a_squared = pk.encrypt(&pprl_bignum::BigUint::from_u128(a_sq), rng)?;
    // −2a encoded as n − 2a (avoids i64 overflow for large a).
    let minus_2a = if a == 0 {
        pprl_bignum::BigUint::zero()
    } else {
        let two_a = pprl_bignum::BigUint::from_u128(2 * a as u128);
        pk.n()
            .checked_sub(&two_a)
            .map_err(|_| CryptoError::PlaintextTooLarge)?
    };
    let enc_minus_2a = pk.encrypt(&minus_2a, rng)?;
    ledger.encryptions += 2;
    Ok(AliceShare {
        enc_a_squared,
        enc_minus_2a,
    })
}

/// Step 2 — Bob combines Alice's share with his own value:
/// `Enc(a²) ⊕ (Enc(−2a) ⊗ b) ⊕ Enc(b²) = Enc((a−b)²)`, re-randomized.
pub fn bob_combine<R: RngCore + ?Sized>(
    pk: &PublicKey,
    share: &AliceShare,
    b: u64,
    rng: &mut R,
    ledger: &mut CostLedger,
) -> Result<Ciphertext, CryptoError> {
    let b_sq = (b as u128) * (b as u128);
    let enc_b_squared = pk.encrypt(&pprl_bignum::BigUint::from_u128(b_sq), rng)?;
    let cross = pk.mul_plain(&share.enc_minus_2a, &pprl_bignum::BigUint::from_u64(b));
    let sum = pk.add(&pk.add(&share.enc_a_squared, &cross), &enc_b_squared);
    let result = pk.rerandomize(&sum, rng);
    ledger.encryptions += 1;
    ledger.scalar_muls += 1;
    ledger.homomorphic_adds += 2;
    ledger.rerandomizations += 1;
    Ok(result)
}

/// Step 3 — the querying party opens the squared distance.
pub fn querier_reveal(
    sk: &PrivateKey,
    enc_distance: &Ciphertext,
    ledger: &mut CostLedger,
) -> Result<u64, CryptoError> {
    ledger.decryptions += 1;
    let m = sk.decrypt(enc_distance)?;
    m.to_u64().ok_or(CryptoError::ValueOutOfRange)
}

/// End-to-end single-attribute protocol run (ciphertext level; see
/// [`super::party`] for the byte-level version).
///
/// Returns `(a − b)²` as learned by the querying party and charges one SMC
/// invocation to the ledger.
pub fn secure_squared_distance<R: RngCore + ?Sized>(
    pk: &PublicKey,
    sk: &PrivateKey,
    a: u64,
    b: u64,
    rng: &mut R,
    ledger: &mut CostLedger,
) -> Result<u64, CryptoError> {
    let share = alice_prepare(pk, a, rng, ledger)?;
    let combined = bob_combine(pk, &share, b, rng, ledger)?;
    ledger.invocations += 1;
    querier_reveal(sk, &combined, ledger)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paillier::Keypair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (PublicKey, PrivateKey, StdRng) {
        let mut rng = StdRng::seed_from_u64(31);
        let (pk, sk) = Keypair::generate(&mut rng, 256).split();
        (pk, sk, rng)
    }

    #[test]
    fn distance_is_exact() {
        let (pk, sk, mut rng) = setup();
        let mut ledger = CostLedger::new();
        for (a, b) in [(5u64, 3u64), (3, 5), (7, 7), (0, 9), (1000, 1)] {
            let d = secure_squared_distance(&pk, &sk, a, b, &mut rng, &mut ledger).unwrap();
            let expected = a.abs_diff(b).pow(2);
            assert_eq!(d, expected, "a={a} b={b}");
        }
        assert_eq!(ledger.invocations, 5);
    }

    #[test]
    fn large_values_do_not_overflow_message_space() {
        let (pk, sk, mut rng) = setup();
        let mut ledger = CostLedger::new();
        let (a, b) = (u32::MAX as u64, 17u64);
        let d = secure_squared_distance(&pk, &sk, a, b, &mut rng, &mut ledger).unwrap();
        assert_eq!(d as u128, (a - b) as u128 * (a - b) as u128);
    }

    #[test]
    fn ledger_counts_protocol_work() {
        let (pk, sk, mut rng) = setup();
        let mut ledger = CostLedger::new();
        secure_squared_distance(&pk, &sk, 10, 4, &mut rng, &mut ledger).unwrap();
        assert_eq!(ledger.encryptions, 3); // a², −2a, b²
        assert_eq!(ledger.scalar_muls, 1);
        assert_eq!(ledger.homomorphic_adds, 2);
        assert_eq!(ledger.rerandomizations, 1);
        assert_eq!(ledger.decryptions, 1);
    }

    #[test]
    fn bob_cannot_learn_alice_value() {
        // Sanity property: Bob's view is two ciphertexts that differ between
        // protocol runs even for identical inputs (semantic security).
        let (pk, _, mut rng) = setup();
        let mut ledger = CostLedger::new();
        let s1 = alice_prepare(&pk, 42, &mut rng, &mut ledger).unwrap();
        let s2 = alice_prepare(&pk, 42, &mut rng, &mut ledger).unwrap();
        assert_ne!(s1.enc_a_squared, s2.enc_a_squared);
        assert_ne!(s1.enc_minus_2a, s2.enc_minus_2a);
    }
}
