//! Length-prefixed binary framing for protocol messages.
//!
//! Every message is `tag: u8` followed by tag-specific fields; big integers
//! are `u32` length + big-endian bytes. The framing is deliberately dumb —
//! the point is that the party state machines in [`super::party`] exchange
//! *bytes*, so communication cost is measured on the real wire format.

use crate::paillier::Ciphertext;
use crate::CryptoError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use pprl_bignum::BigUint;

/// Wire messages of the secure distance / comparison protocols.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolMessage {
    /// Querying party → data holders: the Paillier public key (modulus `n`).
    PublicKey { n: BigUint },
    /// Alice → Bob: `Enc(a²)` and `Enc(−2a)` for one attribute.
    AliceShare {
        enc_a_squared: Ciphertext,
        enc_minus_2a: Ciphertext,
    },
    /// Bob → querying party: re-randomized `Enc((a−b)²)`.
    DistanceResult { enc_distance: Ciphertext },
    /// Bob → querying party: masked `Enc(ρ·((a−b)² − t))`.
    ComparisonResult { enc_masked: Ciphertext },
}

const TAG_PUBLIC_KEY: u8 = 1;
const TAG_ALICE_SHARE: u8 = 2;
const TAG_DISTANCE_RESULT: u8 = 3;
const TAG_COMPARISON_RESULT: u8 = 4;

impl ProtocolMessage {
    /// Encodes to the wire format.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            ProtocolMessage::PublicKey { n } => {
                buf.put_u8(TAG_PUBLIC_KEY);
                put_biguint(&mut buf, n);
            }
            ProtocolMessage::AliceShare {
                enc_a_squared,
                enc_minus_2a,
            } => {
                buf.put_u8(TAG_ALICE_SHARE);
                put_biguint(&mut buf, enc_a_squared.as_biguint());
                put_biguint(&mut buf, enc_minus_2a.as_biguint());
            }
            ProtocolMessage::DistanceResult { enc_distance } => {
                buf.put_u8(TAG_DISTANCE_RESULT);
                put_biguint(&mut buf, enc_distance.as_biguint());
            }
            ProtocolMessage::ComparisonResult { enc_masked } => {
                buf.put_u8(TAG_COMPARISON_RESULT);
                put_biguint(&mut buf, enc_masked.as_biguint());
            }
        }
        buf.freeze()
    }

    /// Decodes from the wire format.
    pub fn decode(mut data: &[u8]) -> Result<Self, CryptoError> {
        if data.is_empty() {
            return Err(CryptoError::Protocol("empty message".into()));
        }
        let tag = data.get_u8();
        let msg = match tag {
            TAG_PUBLIC_KEY => ProtocolMessage::PublicKey {
                n: get_biguint(&mut data)?,
            },
            TAG_ALICE_SHARE => ProtocolMessage::AliceShare {
                enc_a_squared: Ciphertext::from_biguint(get_biguint(&mut data)?),
                enc_minus_2a: Ciphertext::from_biguint(get_biguint(&mut data)?),
            },
            TAG_DISTANCE_RESULT => ProtocolMessage::DistanceResult {
                enc_distance: Ciphertext::from_biguint(get_biguint(&mut data)?),
            },
            TAG_COMPARISON_RESULT => ProtocolMessage::ComparisonResult {
                enc_masked: Ciphertext::from_biguint(get_biguint(&mut data)?),
            },
            other => {
                return Err(CryptoError::Protocol(format!("unknown tag {other}")));
            }
        };
        if !data.is_empty() {
            return Err(CryptoError::Protocol(format!(
                "{} trailing bytes",
                data.len()
            )));
        }
        Ok(msg)
    }
}

fn put_biguint(buf: &mut BytesMut, v: &BigUint) {
    let bytes = v.to_bytes_be();
    buf.put_u32(bytes.len() as u32);
    buf.put_slice(&bytes);
}

fn get_biguint(data: &mut &[u8]) -> Result<BigUint, CryptoError> {
    if data.len() < 4 {
        return Err(CryptoError::Protocol("truncated length prefix".into()));
    }
    let len = data.get_u32() as usize;
    if data.len() < len {
        return Err(CryptoError::Protocol(format!(
            "truncated payload: want {len}, have {}",
            data.len()
        )));
    }
    let bytes = data
        .get(..len)
        .ok_or_else(|| CryptoError::Protocol("truncated payload".into()))?;
    let v = BigUint::from_bytes_be(bytes);
    data.advance(len);
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(hex: &str) -> BigUint {
        BigUint::from_hex(hex).unwrap()
    }

    #[test]
    fn public_key_roundtrip() {
        let msg = ProtocolMessage::PublicKey {
            n: big("deadbeefcafebabe0123"),
        };
        assert_eq!(ProtocolMessage::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn alice_share_roundtrip() {
        let msg = ProtocolMessage::AliceShare {
            enc_a_squared: Ciphertext::from_biguint(big("aa11")),
            enc_minus_2a: Ciphertext::from_biguint(big("bb22")),
        };
        assert_eq!(ProtocolMessage::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn result_roundtrips() {
        for msg in [
            ProtocolMessage::DistanceResult {
                enc_distance: Ciphertext::from_biguint(big("cc33")),
            },
            ProtocolMessage::ComparisonResult {
                enc_masked: Ciphertext::from_biguint(big("dd44")),
            },
        ] {
            assert_eq!(ProtocolMessage::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn malformed_messages_rejected() {
        assert!(ProtocolMessage::decode(&[]).is_err());
        assert!(ProtocolMessage::decode(&[99]).is_err());
        // Truncated length prefix.
        assert!(ProtocolMessage::decode(&[TAG_PUBLIC_KEY, 0, 0]).is_err());
        // Length prefix longer than payload.
        assert!(ProtocolMessage::decode(&[TAG_PUBLIC_KEY, 0, 0, 0, 9, 1]).is_err());
        // Trailing garbage.
        let mut ok = ProtocolMessage::PublicKey { n: big("01") }.encode().to_vec();
        ok.push(0);
        assert!(ProtocolMessage::decode(&ok).is_err());
    }
}
