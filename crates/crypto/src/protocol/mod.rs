//! The three-party secure comparison protocols of paper §V-A.
//!
//! Participants:
//! * **Querying party** — owns the Paillier key pair, learns only the final
//!   result (a squared distance, or just a match bit in the masked variant).
//! * **Alice / Bob** — the data holders; each sees only ciphertexts and its
//!   own inputs.
//!
//! Two granularities are provided:
//! * [`distance`] / [`compare`] — single-attribute building blocks operating
//!   directly on ciphertexts.
//! * [`party`] — byte-level state machines that exchange framed
//!   [`message::ProtocolMessage`]s, so integration tests exercise exactly
//!   what would cross the wire, and [`cost::CostLedger`] can meter bytes
//!   and rounds the way the paper meters SMC cost.

pub mod compare;
pub mod cost;
pub mod distance;
pub mod message;
pub mod pack;
pub mod party;
pub mod record;
pub mod retry;
pub mod transport;

pub use compare::secure_threshold_match;
pub use distance::secure_squared_distance;
pub use pack::{
    bob_record_message_packed, querier_reveal_record_packed, validate_packable,
    validate_packable_values, PackingPlan,
};
pub use party::{DataHolder, QueryingParty};
pub use record::{alice_record_message, bob_record_message, querier_reveal_record};
pub use retry::{ReliableLink, RetryPolicy};
pub use transport::{
    Envelope, FaultConfig, FaultStats, FaultyTransport, LocalTransport, PartyId, Transport,
    TransportError,
};
