//! Slot-packed record comparison: several attributes per Paillier ciphertext.
//!
//! The scalar record protocol ([`record`](crate::protocol::record)) spends
//! one ciphertext — one `mul_plain` modpow, one rerandomization modpow, and
//! `ciphertext_width` wire bytes — per attribute of Bob's reply. For a
//! 1024-bit modulus carrying 24-bit attribute values that is enormous
//! headroom going to waste. This module packs the masked comparison results
//! of several attributes **slot-wise into one plaintext**:
//!
//! ```text
//! m = Σᵢ 2^(W·i) · ( ρᵢ·(dᵢ² − tᵢ) + 2^(W−1) )        W = SLOT_BITS
//! ```
//!
//! Each slot holds a masked comparison plus a `2^(W−1)` offset that keeps
//! the slot non-negative, so the whole sum is an ordinary non-negative
//! integer below `n` and slots never bleed into each other. The querying
//! party decrypts **one ciphertext per chunk** and reads each slot's sign
//! from its offset: slot value `≤ 2^(W−1)` ⇔ `dᵢ² ≤ tᵢ` ⇔ attribute match.
//!
//! ## Width budget
//!
//! With attribute values `< 2^VALUE_BITS`, squared distances and squared
//! thresholds fit `2·VALUE_BITS` bits; the mask `ρ ∈ [1, 2^MASK_BITS]`
//! multiplies that; one more bit covers the sign offset and one the carry
//! head-room: `W = MASK_BITS + 2·VALUE_BITS + 2`. A key packs
//! `(key_bits − 2)/W` slots per ciphertext so the packed sum stays under
//! `n` for any modulus of the advertised size (1024-bit → 10 slots,
//! 256-bit test keys → 2 slots).
//!
//! ## Cost
//!
//! Per attribute the scalar path pays 1 encryption + 2 scalar muls
//! (mask + rerandomize are both modpows) and a full ciphertext on the
//! wire. Packed, the rerandomization and the wire bytes amortize over the
//! chunk, and the slot shift `2^(W·i)` is folded into the single mask
//! multiplication (`ρᵢ·2^(W·i)` is one exponent), so it costs no extra
//! modpow. Alice's message is unchanged — packing compresses only Bob's
//! reply and the querier's decryptions.
//!
//! The packed and scalar protocols decide every pair identically (see the
//! equivalence proptest below); only costs and message bytes differ, which
//! is why the `pack` knob participates in the job fingerprint.

use crate::paillier::{Ciphertext, PrivateKey, PublicKey};
use crate::protocol::compare::MASK_BITS;
use crate::protocol::cost::CostLedger;
use crate::protocol::record::{
    expect_empty, expect_tag, get_biguint, get_count, put_ciphertext, RecordShareMessage,
};
use crate::CryptoError;
use bytes::{BufMut, Bytes, BytesMut};
use pprl_bignum::BigUint;
use rand::RngCore;

/// Attribute values (and therefore distances) must fit this many bits to
/// be packable: `v < 2^24`. The executor's encodings stay far below this
/// (categorical indices and `value × 1000` scaled numerics).
pub const VALUE_BITS: usize = 24;

/// Slot width in bits: mask, squared magnitude, sign offset, carry room.
pub const SLOT_BITS: usize = MASK_BITS + 2 * VALUE_BITS + 2;

const TAG_RECORD_PACKED: u8 = 18;

/// How a given key packs attributes into ciphertexts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PackingPlan {
    /// Bits per slot (always [`SLOT_BITS`]; carried for self-description).
    pub slot_bits: usize,
    /// Slots one plaintext holds: `(key_bits − 2) / slot_bits`.
    pub slots_per_ct: usize,
}

impl PackingPlan {
    /// Derives the plan from the key size. Fails if the modulus cannot
    /// hold even one slot (keys below ~100 bits, which the crate never
    /// generates).
    pub fn for_key(pk: &PublicKey) -> Result<Self, CryptoError> {
        let slots_per_ct = pk.key_bits().saturating_sub(2) / SLOT_BITS;
        if slots_per_ct == 0 {
            return Err(CryptoError::Protocol(format!(
                "{}-bit key too small for one {SLOT_BITS}-bit slot",
                pk.key_bits()
            )));
        }
        Ok(PackingPlan {
            slot_bits: SLOT_BITS,
            slots_per_ct,
        })
    }

    /// Ciphertexts needed to carry `attrs` packed attributes.
    pub fn ct_count(&self, attrs: usize) -> usize {
        attrs.div_ceil(self.slots_per_ct)
    }
}

/// Checks that values are small enough to pack (`< 2^VALUE_BITS`). Each
/// data holder runs this over *its own* attributes — neither can check the
/// other's, so overflow by a dishonest holder degrades only correctness,
/// never privacy (the honest-but-curious model the paper assumes).
pub fn validate_packable_values(values: &[u64]) -> Result<(), CryptoError> {
    if values.iter().any(|&v| v >> VALUE_BITS != 0) {
        return Err(CryptoError::ValueOutOfRange);
    }
    Ok(())
}

/// Checks Bob's inputs: his values, plus the public squared thresholds
/// (`< 2^(2·VALUE_BITS)`, the largest squared distance a packable value
/// pair can produce).
pub fn validate_packable(values: &[u64], thresholds: &[u64]) -> Result<(), CryptoError> {
    validate_packable_values(values)?;
    if thresholds.iter().any(|&t| t >> (2 * VALUE_BITS) != 0) {
        return Err(CryptoError::ValueOutOfRange);
    }
    Ok(())
}

/// Packs slot values (each `< 2^slot_bits`) into one integer:
/// `Σᵢ slots[i]·2^(slot_bits·i)`. Pure arithmetic, so the proptests can
/// pin down `unpack_slots ∘ pack_slots = id` independently of any key.
pub fn pack_slots(slots: &[BigUint], slot_bits: usize) -> BigUint {
    slots
        .iter()
        .enumerate()
        .fold(BigUint::zero(), |acc, (i, s)| &acc + &s.shl(slot_bits * i))
}

/// Splits a packed integer back into its first `count` slot values.
pub fn unpack_slots(packed: &BigUint, count: usize, slot_bits: usize) -> Vec<BigUint> {
    (0..count)
        .map(|i| {
            let shifted = packed.shr(slot_bits * i);
            let high = shifted.shr(slot_bits).shl(slot_bits);
            // `high ≤ shifted` by construction, so the subtraction cannot
            // fail; fall back to zero rather than panicking in this crate.
            shifted.checked_sub(&high).unwrap_or_else(|_| BigUint::zero())
        })
        .collect()
}

/// Bob's packed reply: the slot count lets the querier recover how many
/// slots the final (possibly partial) ciphertext carries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PackedResultMessage {
    /// Total packed attribute slots across all ciphertexts.
    pub total_slots: u16,
    /// One ciphertext per chunk of `slots_per_ct` attributes.
    pub cts: Vec<Ciphertext>,
}

impl PackedResultMessage {
    /// Encodes to the wire format, padding each ciphertext to `width`
    /// bytes so message sizes depend only on the arity.
    pub fn encode(&self, width: usize) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u8(TAG_RECORD_PACKED);
        buf.put_u16(self.total_slots);
        buf.put_u16(self.cts.len() as u16);
        for c in &self.cts {
            put_ciphertext(&mut buf, c.as_biguint(), width);
        }
        buf.freeze()
    }

    /// Decodes from the wire format.
    pub fn decode(mut data: &[u8]) -> Result<Self, CryptoError> {
        expect_tag(&mut data, TAG_RECORD_PACKED)?;
        let total_slots = get_count(&mut data)? as u16;
        let ct_count = get_count(&mut data)?;
        let mut cts = Vec::with_capacity(ct_count);
        for _ in 0..ct_count {
            cts.push(Ciphertext::from_biguint(get_biguint(&mut data)?));
        }
        expect_empty(data)?;
        Ok(PackedResultMessage { total_slots, cts })
    }
}

/// Bob's step, packed: consume Alice's (unchanged) share message and fold
/// every chunk of `slots_per_ct` attributes into one ciphertext.
pub fn bob_record_message_packed<R: RngCore + ?Sized>(
    pk: &PublicKey,
    alice_message: &[u8],
    values: &[u64],
    thresholds: &[u64],
    rng: &mut R,
    ledger: &mut CostLedger,
) -> Result<Vec<u8>, CryptoError> {
    let plan = PackingPlan::for_key(pk)?;
    validate_packable(values, thresholds)?;
    let share_msg = RecordShareMessage::decode(alice_message)?;
    if share_msg.shares.len() != values.len() || values.len() != thresholds.len() {
        return Err(CryptoError::Protocol(format!(
            "arity mismatch: {} shares, {} values, {} thresholds",
            share_msg.shares.len(),
            values.len(),
            thresholds.len()
        )));
    }
    if values.is_empty() {
        return Err(CryptoError::Protocol("no attributes to pack".into()));
    }
    let attrs: Vec<(&(Ciphertext, Ciphertext), u64, u64)> = share_msg
        .shares
        .iter()
        .zip(values)
        .zip(thresholds)
        .map(|((share, &b), &t)| (share, b, t))
        .collect();
    let half_slot = BigUint::one().shl(SLOT_BITS - 1);
    let mut cts = Vec::with_capacity(plan.ct_count(values.len()));
    for chunk in attrs.chunks(plan.slots_per_ct) {
        let mut acc: Option<Ciphertext> = None;
        for (i, ((a2, m2a), b, t)) in chunk.iter().enumerate() {
            pk.validate(a2)?;
            pk.validate(m2a)?;
            // Enc(d²) from Alice's share and Bob's value, as in the
            // scalar path but *without* a per-attribute rerandomization —
            // one rerandomization per chunk covers the whole sum.
            let b_sq = (*b as u128) * (*b as u128);
            let enc_b_squared = pk.encrypt(&BigUint::from_u128(b_sq), rng)?;
            let cross = pk.mul_plain(m2a, &BigUint::from_u64(*b));
            let sum = pk.add(&pk.add(a2, &cross), &enc_b_squared);
            ledger.encryptions += 1;
            ledger.scalar_muls += 1;
            ledger.homomorphic_adds += 2;
            // Enc(d² − t).
            let shifted = if *t == 0 {
                sum
            } else {
                let minus_t = pk
                    .n()
                    .checked_sub(&BigUint::from_u64(*t))
                    .map_err(|_| CryptoError::PlaintextTooLarge)?;
                ledger.homomorphic_adds += 1;
                pk.add_plain(&sum, &minus_t)
            };
            // The slot shift rides inside the mask multiplication:
            // ρᵢ·2^(W·i) is a single scalar, so shifting costs no extra
            // modpow over the scalar path's masking step.
            let rho = &pprl_bignum::random_bits(rng, MASK_BITS) + 1u64;
            let masked = pk.mul_plain(&shifted, &rho.shl(SLOT_BITS * i));
            ledger.scalar_muls += 1;
            acc = Some(match acc {
                Some(prev) => {
                    ledger.homomorphic_adds += 1;
                    pk.add(&prev, &masked)
                }
                None => masked,
            });
        }
        let acc = acc.ok_or_else(|| CryptoError::Protocol("empty packing chunk".into()))?;
        // Per-slot sign offsets, added in one plaintext addition; they
        // lift every slot into [0, 2^W), so the packed sum is an exact
        // non-negative integer below n and slots cannot interfere.
        let offset = pack_slots(&vec![half_slot.clone(); chunk.len()], SLOT_BITS);
        let lifted = pk.add_plain(&acc, &offset);
        ledger.homomorphic_adds += 1;
        cts.push(pk.rerandomize(&lifted, rng));
        ledger.rerandomizations += 1;
    }
    let msg = PackedResultMessage {
        total_slots: values.len() as u16,
        cts,
    }
    .encode(pk.ciphertext_width());
    ledger.record_message(msg.len());
    Ok(msg.to_vec())
}

/// Querying party's step, packed: one decryption per chunk, then each
/// slot's offset-relative sign decides its attribute. The pair matches
/// iff every slot does (the same conjunction as the scalar path, with
/// every ciphertext decrypted regardless for constant-work behavior).
pub fn querier_reveal_record_packed(
    sk: &PrivateKey,
    bob_message: &[u8],
    ledger: &mut CostLedger,
) -> Result<bool, CryptoError> {
    let plan = PackingPlan::for_key(sk.public())?;
    let msg = PackedResultMessage::decode(bob_message)?;
    let total = msg.total_slots as usize;
    if total == 0 {
        return Err(CryptoError::Protocol("packed message with no slots".into()));
    }
    if msg.cts.len() != plan.ct_count(total) {
        return Err(CryptoError::Protocol(format!(
            "{} ciphertexts cannot carry {} slots at {} per ciphertext",
            msg.cts.len(),
            total,
            plan.slots_per_ct
        )));
    }
    let half_slot = BigUint::one().shl(SLOT_BITS - 1);
    let mut all = true;
    let mut remaining = total;
    for c in &msg.cts {
        ledger.decryptions += 1;
        let m = sk.decrypt(c)?;
        let in_this_ct = remaining.min(plan.slots_per_ct);
        for slot in unpack_slots(&m, in_this_ct, SLOT_BITS) {
            // slot = ρ·(d² − t) + 2^(W−1): at most the offset ⇔ d² ≤ t.
            if slot > half_slot {
                all = false;
                // Keep going: constant work per message either way.
            }
        }
        remaining -= in_this_ct;
    }
    Ok(all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paillier::Keypair;
    use crate::protocol::record::{alice_record_message, bob_record_message, querier_reveal_record};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::OnceLock;

    // Keygen dominates test time; the properties are all under a fixed key.
    fn shared_keys() -> &'static Keypair {
        static KEYS: OnceLock<Keypair> = OnceLock::new();
        KEYS.get_or_init(|| {
            let mut rng = StdRng::seed_from_u64(91);
            Keypair::generate(&mut rng, 256)
        })
    }

    #[test]
    fn plan_for_the_test_key_packs_two_slots() {
        let plan = PackingPlan::for_key(shared_keys().public()).unwrap();
        assert_eq!(plan.slot_bits, 98, "W = 48 mask + 2·24 value + 2");
        assert_eq!(plan.slots_per_ct, 2, "(256 − 2) / 98");
        assert_eq!(plan.ct_count(1), 1);
        assert_eq!(plan.ct_count(2), 1);
        assert_eq!(plan.ct_count(3), 2, "q = 3 spills into a second ct");
    }

    #[test]
    fn packed_protocol_matches_scalar_protocol_on_the_record_cases() {
        let keys = shared_keys();
        let (pk, sk) = (keys.public(), keys.private());
        let mut rng = StdRng::seed_from_u64(1091);
        let thresholds = [0u64, 0, 23]; // q = 3: multi-ciphertext chunking
        let cases = [
            ([5u64, 7, 40], [5u64, 7, 44], true),
            ([5, 7, 40], [5, 7, 45], false),
            ([5, 7, 40], [6, 7, 40], false),
            ([5, 7, 40], [5, 7, 40], true),
        ];
        for (a, b, expected) in cases {
            let mut scalar = CostLedger::new();
            let mut packed = CostLedger::new();
            let m_alice = alice_record_message(pk, &a, &mut rng, &mut scalar).unwrap();
            let m_bob =
                bob_record_message(pk, &m_alice, &b, &thresholds, &mut rng, &mut scalar).unwrap();
            let got_scalar = querier_reveal_record(sk, &m_bob, &mut scalar).unwrap();
            let m_alice_p = alice_record_message(pk, &a, &mut rng, &mut packed).unwrap();
            let m_bob_p =
                bob_record_message_packed(pk, &m_alice_p, &b, &thresholds, &mut rng, &mut packed)
                    .unwrap();
            let got_packed = querier_reveal_record_packed(sk, &m_bob_p, &mut packed).unwrap();
            assert_eq!(got_packed, expected, "a={a:?} b={b:?}");
            assert_eq!(got_packed, got_scalar);
            // The savings the module exists for: fewer result bytes, fewer
            // modpows, fewer decryptions.
            assert!(m_bob_p.len() < m_bob.len(), "packed reply must be smaller");
            assert_eq!(packed.decryptions, 2, "one per ciphertext, not per attr");
            assert_eq!(scalar.decryptions, 3);
            assert_eq!(packed.rerandomizations, 2, "one per chunk");
            assert_eq!(scalar.rerandomizations, 3);
        }
    }

    #[test]
    fn unpackable_inputs_are_rejected_upfront() {
        let keys = shared_keys();
        let pk = keys.public();
        let mut rng = StdRng::seed_from_u64(2);
        let mut ledger = CostLedger::new();
        assert!(validate_packable_values(&[1 << VALUE_BITS]).is_err());
        assert!(validate_packable_values(&[(1 << VALUE_BITS) - 1]).is_ok());
        assert!(validate_packable(&[1], &[1 << (2 * VALUE_BITS)]).is_err());
        assert!(validate_packable(&[1], &[(1 << (2 * VALUE_BITS)) - 1]).is_ok());
        // An oversized Bob value fails the packed combine even though the
        // scalar path would accept it.
        let m_alice = alice_record_message(pk, &[1], &mut rng, &mut ledger).unwrap();
        assert!(bob_record_message_packed(
            pk,
            &m_alice,
            &[1 << VALUE_BITS],
            &[0],
            &mut rng,
            &mut ledger
        )
        .is_err());
    }

    #[test]
    fn malformed_packed_messages_are_rejected() {
        let keys = shared_keys();
        let (pk, sk) = (keys.public(), keys.private());
        let mut rng = StdRng::seed_from_u64(3);
        let mut ledger = CostLedger::new();
        let m_alice = alice_record_message(pk, &[4, 9, 2], &mut rng, &mut ledger).unwrap();
        let m_bob = bob_record_message_packed(
            pk,
            &m_alice,
            &[4, 9, 2],
            &[0, 0, 50],
            &mut rng,
            &mut ledger,
        )
        .unwrap();
        // Roundtrip sanity first.
        let decoded = PackedResultMessage::decode(&m_bob).unwrap();
        assert_eq!(decoded.total_slots, 3);
        assert_eq!(decoded.cts.len(), 2);
        assert_eq!(decoded.encode(pk.ciphertext_width()).to_vec(), m_bob);
        // Truncation, trailing bytes, wrong tag.
        assert!(PackedResultMessage::decode(&m_bob[..m_bob.len() - 2]).is_err());
        let mut extended = m_bob.clone();
        extended.push(0);
        assert!(PackedResultMessage::decode(&extended).is_err());
        assert!(PackedResultMessage::decode(&[]).is_err());
        assert!(querier_reveal_record_packed(sk, &m_alice, &mut ledger).is_err());
        // Slot/ciphertext arithmetic that does not add up.
        let mut wrong = decoded.clone();
        wrong.total_slots = 5;
        let bytes = wrong.encode(pk.ciphertext_width());
        assert!(querier_reveal_record_packed(sk, &bytes, &mut ledger).is_err());
        let zero = PackedResultMessage {
            total_slots: 0,
            cts: vec![],
        }
        .encode(pk.ciphertext_width());
        assert!(querier_reveal_record_packed(sk, &zero, &mut ledger).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn pack_unpack_is_identity(
            raw in prop::collection::vec((any::<u64>(), any::<u64>()), 1..12),
        ) {
            // Mask each value into the slot range; 128 random bits cover
            // the 98-bit slot with headroom to spare.
            let slots: Vec<BigUint> = raw
                .iter()
                .map(|&(hi, lo)| {
                    let full = BigUint::from_u128(((hi as u128) << 64) | lo as u128);
                    let high = full.shr(SLOT_BITS).shl(SLOT_BITS);
                    full.checked_sub(&high).unwrap()
                })
                .collect();
            let packed = pack_slots(&slots, SLOT_BITS);
            prop_assert_eq!(unpack_slots(&packed, slots.len(), SLOT_BITS), slots);
        }

        #[test]
        fn packed_decision_equals_scalar_decision(
            pairs in prop::collection::vec(
                (0u64..1 << VALUE_BITS, 0u64..1 << VALUE_BITS, 0u64..1 << (2 * VALUE_BITS)),
                1..6,
            ),
            seed in any::<u64>(),
        ) {
            let keys = shared_keys();
            let (pk, sk) = (keys.public(), keys.private());
            let mut rng = StdRng::seed_from_u64(seed);
            let a: Vec<u64> = pairs.iter().map(|p| p.0).collect();
            let b: Vec<u64> = pairs.iter().map(|p| p.1).collect();
            let t: Vec<u64> = pairs.iter().map(|p| p.2).collect();
            let mut ledger = CostLedger::new();
            let m_alice = alice_record_message(pk, &a, &mut rng, &mut ledger).unwrap();
            let m_scalar =
                bob_record_message(pk, &m_alice, &b, &t, &mut rng, &mut ledger).unwrap();
            let m_packed =
                bob_record_message_packed(pk, &m_alice, &b, &t, &mut rng, &mut ledger).unwrap();
            let want = querier_reveal_record(sk, &m_scalar, &mut ledger).unwrap();
            let got = querier_reveal_record_packed(sk, &m_packed, &mut ledger).unwrap();
            let plain = pairs
                .iter()
                .all(|&(a, b, t)| a.abs_diff(b).pow(2) <= t);
            prop_assert_eq!(got, want);
            prop_assert_eq!(got, plain);
        }
    }
}
