//! Byte-level three-party state machines.
//!
//! These wrap the ciphertext-level building blocks of [`super::distance`]
//! and [`super::compare`] behind the actual wire format, so that the
//! integration tests and the cost model exercise exactly the messages the
//! paper's participants would exchange:
//!
//! ```text
//! Querier ──(1) public key──────────────► Alice, Bob
//! Alice   ──(2) Enc(a²), Enc(−2a)───────► Bob
//! Bob     ──(3) Enc((a−b)²) rerandomized─► Querier
//! ```

use crate::paillier::{Keypair, PrivateKey, PublicKey};
use crate::protocol::compare::{bob_combine_masked, querier_reveal_match};
use crate::protocol::cost::CostLedger;
use crate::protocol::distance::{alice_prepare, bob_combine, querier_reveal, AliceShare};
use crate::protocol::message::ProtocolMessage;
use crate::CryptoError;
use pprl_bignum::BigUint;
use rand::RngCore;

/// The querying party: owns the key pair, opens results.
pub struct QueryingParty {
    keys: Keypair,
}

impl QueryingParty {
    /// Generates a fresh key pair of `modulus_bits` (1024 in the paper).
    pub fn new<R: RngCore + ?Sized>(rng: &mut R, modulus_bits: usize) -> Self {
        QueryingParty {
            keys: Keypair::generate(rng, modulus_bits),
        }
    }

    /// Wraps an existing key pair.
    pub fn with_keys(keys: Keypair) -> Self {
        QueryingParty { keys }
    }

    /// Message (1): the public key, broadcast to both data holders.
    pub fn public_key_message(&self, ledger: &mut CostLedger) -> Vec<u8> {
        let msg = ProtocolMessage::PublicKey {
            n: self.keys.public().n().clone(),
        }
        .encode();
        ledger.record_message(msg.len());
        msg.to_vec()
    }

    /// Opens message (3) as a squared distance.
    pub fn reveal_distance(
        &self,
        message: &[u8],
        ledger: &mut CostLedger,
    ) -> Result<u64, CryptoError> {
        match ProtocolMessage::decode(message)? {
            ProtocolMessage::DistanceResult { enc_distance } => {
                querier_reveal(self.private(), &enc_distance, ledger)
            }
            other => Err(CryptoError::Protocol(format!(
                "expected DistanceResult, got {other:?}"
            ))),
        }
    }

    /// Opens message (3) in the masked-comparison variant as a match bit.
    pub fn reveal_match(
        &self,
        message: &[u8],
        ledger: &mut CostLedger,
    ) -> Result<bool, CryptoError> {
        match ProtocolMessage::decode(message)? {
            ProtocolMessage::ComparisonResult { enc_masked } => {
                querier_reveal_match(self.private(), &enc_masked, ledger)
            }
            other => Err(CryptoError::Protocol(format!(
                "expected ComparisonResult, got {other:?}"
            ))),
        }
    }

    fn private(&self) -> &PrivateKey {
        self.keys.private()
    }
}

/// A data holder (Alice or Bob), initialized from the key broadcast.
pub struct DataHolder {
    pk: PublicKey,
}

impl DataHolder {
    /// Consumes message (1) and installs the public key.
    pub fn from_key_message(message: &[u8]) -> Result<Self, CryptoError> {
        match ProtocolMessage::decode(message)? {
            ProtocolMessage::PublicKey { n } => {
                if n.bits() < 128 {
                    return Err(CryptoError::InvalidKey(format!(
                        "modulus too small ({} bits)",
                        n.bits()
                    )));
                }
                Ok(DataHolder {
                    pk: rebuild_public_key(n)?,
                })
            }
            other => Err(CryptoError::Protocol(format!(
                "expected PublicKey, got {other:?}"
            ))),
        }
    }

    /// The installed public key.
    pub fn public_key(&self) -> &PublicKey {
        &self.pk
    }

    /// Alice's message (2) for value `a`.
    pub fn alice_message<R: RngCore + ?Sized>(
        &self,
        a: u64,
        rng: &mut R,
        ledger: &mut CostLedger,
    ) -> Result<Vec<u8>, CryptoError> {
        let share = alice_prepare(&self.pk, a, rng, ledger)?;
        let msg = ProtocolMessage::AliceShare {
            enc_a_squared: share.enc_a_squared,
            enc_minus_2a: share.enc_minus_2a,
        }
        .encode();
        ledger.record_message(msg.len());
        Ok(msg.to_vec())
    }

    /// Bob's message (3) for value `b`: the re-randomized encrypted distance.
    pub fn bob_distance_message<R: RngCore + ?Sized>(
        &self,
        alice_message: &[u8],
        b: u64,
        rng: &mut R,
        ledger: &mut CostLedger,
    ) -> Result<Vec<u8>, CryptoError> {
        let share = self.decode_share(alice_message)?;
        let enc_distance = bob_combine(&self.pk, &share, b, rng, ledger)?;
        let msg = ProtocolMessage::DistanceResult { enc_distance }.encode();
        ledger.record_message(msg.len());
        Ok(msg.to_vec())
    }

    /// Bob's message (3) in the masked-comparison variant.
    pub fn bob_comparison_message<R: RngCore + ?Sized>(
        &self,
        alice_message: &[u8],
        b: u64,
        threshold: u64,
        rng: &mut R,
        ledger: &mut CostLedger,
    ) -> Result<Vec<u8>, CryptoError> {
        let share = self.decode_share(alice_message)?;
        let enc_masked = bob_combine_masked(&self.pk, &share, b, threshold, rng, ledger)?;
        let msg = ProtocolMessage::ComparisonResult { enc_masked }.encode();
        ledger.record_message(msg.len());
        Ok(msg.to_vec())
    }

    fn decode_share(&self, message: &[u8]) -> Result<AliceShare, CryptoError> {
        match ProtocolMessage::decode(message)? {
            ProtocolMessage::AliceShare {
                enc_a_squared,
                enc_minus_2a,
            } => {
                // Validate before computing on attacker-controlled bytes.
                self.pk.validate(&enc_a_squared)?;
                self.pk.validate(&enc_minus_2a)?;
                Ok(AliceShare {
                    enc_a_squared,
                    enc_minus_2a,
                })
            }
            other => Err(CryptoError::Protocol(format!(
                "expected AliceShare, got {other:?}"
            ))),
        }
    }
}

/// Reconstructs public-key helpers from the transmitted modulus. An even
/// or degenerate modulus is a protocol error, not a panic — the sender
/// controls these bytes.
fn rebuild_public_key(n: BigUint) -> Result<PublicKey, CryptoError> {
    PublicKey::from_modulus(n)
}

/// Runs the full wire protocol for one attribute pair and returns the
/// squared distance. Useful end-to-end harness for tests and benches.
pub fn run_wire_protocol<R: RngCore + ?Sized>(
    querier: &QueryingParty,
    a: u64,
    b: u64,
    rng: &mut R,
    ledger: &mut CostLedger,
) -> Result<u64, CryptoError> {
    let key_msg = querier.public_key_message(ledger);
    let alice = DataHolder::from_key_message(&key_msg)?;
    let bob = DataHolder::from_key_message(&key_msg)?;
    let m2 = alice.alice_message(a, rng, ledger)?;
    let m3 = bob.bob_distance_message(&m2, b, rng, ledger)?;
    ledger.invocations += 1;
    querier.reveal_distance(&m3, ledger)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn querier(seed: u64) -> (QueryingParty, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = QueryingParty::new(&mut rng, 256);
        (q, rng)
    }

    #[test]
    fn wire_protocol_end_to_end() {
        let (q, mut rng) = querier(61);
        let mut ledger = CostLedger::new();
        let d = run_wire_protocol(&q, 30, 18, &mut rng, &mut ledger).unwrap();
        assert_eq!(d, 144);
        // 1 key broadcast + Alice share + Bob result = 3 messages.
        assert_eq!(ledger.messages, 3);
        assert!(ledger.bytes > 0);
        assert_eq!(ledger.invocations, 1);
    }

    #[test]
    fn comparison_variant_end_to_end() {
        let (q, mut rng) = querier(62);
        let mut ledger = CostLedger::new();
        let key_msg = q.public_key_message(&mut ledger);
        let alice = DataHolder::from_key_message(&key_msg).unwrap();
        let bob = DataHolder::from_key_message(&key_msg).unwrap();
        let m2 = alice.alice_message(40, &mut rng, &mut ledger).unwrap();
        let m3 = bob
            .bob_comparison_message(&m2, 38, 9, &mut rng, &mut ledger)
            .unwrap();
        assert!(q.reveal_match(&m3, &mut ledger).unwrap()); // d²=4 ≤ 9
        let m3 = bob
            .bob_comparison_message(&m2, 20, 9, &mut rng, &mut ledger)
            .unwrap();
        assert!(!q.reveal_match(&m3, &mut ledger).unwrap()); // d²=400 > 9
    }

    #[test]
    fn out_of_order_messages_rejected() {
        let (q, mut rng) = querier(63);
        let mut ledger = CostLedger::new();
        let key_msg = q.public_key_message(&mut ledger);
        let alice = DataHolder::from_key_message(&key_msg).unwrap();
        let m2 = alice.alice_message(1, &mut rng, &mut ledger).unwrap();
        // Feeding Alice's message where a result is expected must error.
        assert!(q.reveal_distance(&m2, &mut ledger).is_err());
        // Feeding the key message to Bob's combine must error.
        assert!(alice
            .bob_distance_message(&key_msg, 1, &mut rng, &mut ledger)
            .is_err());
        // A data holder cannot be built from a non-key message.
        assert!(DataHolder::from_key_message(&m2).is_err());
    }

    #[test]
    fn invalid_group_elements_rejected() {
        // An AliceShare carrying a non-unit (zero, or a multiple of n) must
        // fail Bob's validation before any homomorphic computation runs.
        let (q, mut rng) = querier(64);
        let mut ledger = CostLedger::new();
        let key_msg = q.public_key_message(&mut ledger);
        let alice = DataHolder::from_key_message(&key_msg).unwrap();
        let bob = DataHolder::from_key_message(&key_msg).unwrap();
        let good = alice.alice_message(5, &mut rng, &mut ledger).unwrap();
        let share = match ProtocolMessage::decode(&good).unwrap() {
            ProtocolMessage::AliceShare { enc_minus_2a, .. } => enc_minus_2a,
            _ => unreachable!(),
        };
        for bad in [
            crate::paillier::Ciphertext::from_biguint(BigUint::zero()),
            crate::paillier::Ciphertext::from_biguint(bob.public_key().n().clone()),
        ] {
            let forged = ProtocolMessage::AliceShare {
                enc_a_squared: bad,
                enc_minus_2a: share.clone(),
            }
            .encode();
            let result = bob.bob_distance_message(&forged, 3, &mut rng, &mut ledger);
            assert!(result.is_err());
        }
    }

    #[test]
    fn undersized_modulus_rejected() {
        let msg = ProtocolMessage::PublicKey {
            n: BigUint::from_u64(12345),
        }
        .encode();
        assert!(DataHolder::from_key_message(&msg).is_err());
    }
}
