//! Record-level protocol: one wire exchange decides a whole record pair.
//!
//! The paper's SMC allowance is counted in *record-pair* comparisons, each
//! of which spans every matching attribute. Running the single-attribute
//! protocol q times costs 3q messages; this module batches all q attribute
//! shares into one Alice message and all q masked comparisons into one Bob
//! message, so a record-pair comparison is exactly three messages
//! regardless of arity.
//!
//! Leakage note: the querying party learns *which* attributes failed, not
//! just the conjunction — strictly less than the distance-revealing §V-A
//! variant (which exposes every attribute's exact distance), strictly more
//! than an ideal single-bit functionality. The ideal variant needs a
//! secure AND across attribute comparisons (garbled circuits / DGK),
//! which the paper also leaves to generic SMC.

use crate::paillier::{Ciphertext, PrivateKey, PublicKey};
use crate::protocol::compare::{bob_combine_masked, querier_reveal_match};
use crate::protocol::cost::CostLedger;
use crate::protocol::distance::{alice_prepare, AliceShare};
use crate::CryptoError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use pprl_bignum::BigUint;
use rand::RngCore;

/// Alice's batched message: per attribute, `Enc(aᵢ²)` and `Enc(−2aᵢ)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecordShareMessage {
    /// One share per matching attribute.
    pub shares: Vec<(Ciphertext, Ciphertext)>,
}

/// Bob's batched reply: per attribute, the masked comparison result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecordResultMessage {
    /// One masked `Enc(ρᵢ·((aᵢ−bᵢ)² − tᵢ))` per attribute.
    pub masked: Vec<Ciphertext>,
}

const TAG_RECORD_SHARE: u8 = 16;
const TAG_RECORD_RESULT: u8 = 17;

impl RecordShareMessage {
    /// Encodes to the wire format. Every ciphertext is padded to `width`
    /// bytes ([`PublicKey::ciphertext_width`]) so message sizes depend
    /// only on the arity, never on randomizer values.
    pub fn encode(&self, width: usize) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u8(TAG_RECORD_SHARE);
        buf.put_u16(self.shares.len() as u16);
        for (a2, m2a) in &self.shares {
            put_ciphertext(&mut buf, a2.as_biguint(), width);
            put_ciphertext(&mut buf, m2a.as_biguint(), width);
        }
        buf.freeze()
    }

    /// Decodes from the wire format.
    pub fn decode(mut data: &[u8]) -> Result<Self, CryptoError> {
        expect_tag(&mut data, TAG_RECORD_SHARE)?;
        let count = get_count(&mut data)?;
        let mut shares = Vec::with_capacity(count);
        for _ in 0..count {
            let a2 = Ciphertext::from_biguint(get_biguint(&mut data)?);
            let m2a = Ciphertext::from_biguint(get_biguint(&mut data)?);
            shares.push((a2, m2a));
        }
        expect_empty(data)?;
        Ok(RecordShareMessage { shares })
    }
}

impl RecordResultMessage {
    /// Encodes to the wire format, padding each ciphertext to `width`
    /// bytes (see [`RecordShareMessage::encode`]).
    pub fn encode(&self, width: usize) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u8(TAG_RECORD_RESULT);
        buf.put_u16(self.masked.len() as u16);
        for c in &self.masked {
            put_ciphertext(&mut buf, c.as_biguint(), width);
        }
        buf.freeze()
    }

    /// Decodes from the wire format.
    pub fn decode(mut data: &[u8]) -> Result<Self, CryptoError> {
        expect_tag(&mut data, TAG_RECORD_RESULT)?;
        let count = get_count(&mut data)?;
        let mut masked = Vec::with_capacity(count);
        for _ in 0..count {
            masked.push(Ciphertext::from_biguint(get_biguint(&mut data)?));
        }
        expect_empty(data)?;
        Ok(RecordResultMessage { masked })
    }
}

/// Alice's step: batch every attribute's share into one message.
pub fn alice_record_message<R: RngCore + ?Sized>(
    pk: &PublicKey,
    values: &[u64],
    rng: &mut R,
    ledger: &mut CostLedger,
) -> Result<Vec<u8>, CryptoError> {
    let mut shares = Vec::with_capacity(values.len());
    for &a in values {
        let share = alice_prepare(pk, a, rng, ledger)?;
        shares.push((share.enc_a_squared, share.enc_minus_2a));
    }
    let msg = RecordShareMessage { shares }.encode(pk.ciphertext_width());
    ledger.record_message(msg.len());
    Ok(msg.to_vec())
}

/// Bob's step: fold in his values and thresholds, one masked comparison per
/// attribute, all in one reply.
pub fn bob_record_message<R: RngCore + ?Sized>(
    pk: &PublicKey,
    alice_message: &[u8],
    values: &[u64],
    thresholds: &[u64],
    rng: &mut R,
    ledger: &mut CostLedger,
) -> Result<Vec<u8>, CryptoError> {
    let share_msg = RecordShareMessage::decode(alice_message)?;
    if share_msg.shares.len() != values.len() || values.len() != thresholds.len() {
        return Err(CryptoError::Protocol(format!(
            "arity mismatch: {} shares, {} values, {} thresholds",
            share_msg.shares.len(),
            values.len(),
            thresholds.len()
        )));
    }
    let mut masked = Vec::with_capacity(values.len());
    for (((a2, m2a), &b), &t) in share_msg.shares.iter().zip(values).zip(thresholds) {
        pk.validate(a2)?;
        pk.validate(m2a)?;
        let share = AliceShare {
            enc_a_squared: a2.clone(),
            enc_minus_2a: m2a.clone(),
        };
        masked.push(bob_combine_masked(pk, &share, b, t, rng, ledger)?);
    }
    let msg = RecordResultMessage { masked }.encode(pk.ciphertext_width());
    ledger.record_message(msg.len());
    Ok(msg.to_vec())
}

/// Querying party's step: the record pair matches iff *every* attribute's
/// masked comparison is non-positive (the decision rule's conjunction).
pub fn querier_reveal_record(
    sk: &PrivateKey,
    bob_message: &[u8],
    ledger: &mut CostLedger,
) -> Result<bool, CryptoError> {
    let result = RecordResultMessage::decode(bob_message)?;
    let mut all = true;
    for c in &result.masked {
        if !querier_reveal_match(sk, c, ledger)? {
            all = false;
            // Keep decrypting: constant message-count behavior, and the
            // ledger charges each attribute either way.
        }
    }
    Ok(all)
}

pub(crate) fn put_ciphertext(buf: &mut BytesMut, v: &BigUint, width: usize) {
    let bytes = v.to_bytes_be_padded(width);
    buf.put_u32(bytes.len() as u32);
    buf.put_slice(&bytes);
}

pub(crate) fn get_biguint(data: &mut &[u8]) -> Result<BigUint, CryptoError> {
    if data.len() < 4 {
        return Err(CryptoError::Protocol("truncated length prefix".into()));
    }
    let len = data.get_u32() as usize;
    if data.len() < len {
        return Err(CryptoError::Protocol("truncated payload".into()));
    }
    let bytes = data
        .get(..len)
        .ok_or_else(|| CryptoError::Protocol("truncated payload".into()))?;
    let v = BigUint::from_bytes_be(bytes);
    data.advance(len);
    Ok(v)
}

pub(crate) fn expect_tag(data: &mut &[u8], tag: u8) -> Result<(), CryptoError> {
    if data.is_empty() {
        return Err(CryptoError::Protocol("empty message".into()));
    }
    let got = data.get_u8();
    if got != tag {
        return Err(CryptoError::Protocol(format!(
            "expected tag {tag}, got {got}"
        )));
    }
    Ok(())
}

pub(crate) fn get_count(data: &mut &[u8]) -> Result<usize, CryptoError> {
    if data.len() < 2 {
        return Err(CryptoError::Protocol("truncated count".into()));
    }
    Ok(data.get_u16() as usize)
}

pub(crate) fn expect_empty(data: &[u8]) -> Result<(), CryptoError> {
    if data.is_empty() {
        Ok(())
    } else {
        Err(CryptoError::Protocol(format!(
            "{} trailing bytes",
            data.len()
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paillier::Keypair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (PublicKey, PrivateKey, StdRng) {
        let mut rng = StdRng::seed_from_u64(91);
        let (pk, sk) = Keypair::generate(&mut rng, 256).split();
        (pk, sk, rng)
    }

    /// Full record comparison in exactly 2 data messages (plus the key
    /// broadcast handled elsewhere).
    #[test]
    fn record_protocol_matches_plaintext_rule() {
        let (pk, sk, mut rng) = setup();
        let thresholds = [0u64, 0, 23]; // two equality attrs + one windowed
        let cases = [
            ([5u64, 7, 40], [5u64, 7, 44], true),   // all within
            ([5, 7, 40], [5, 7, 45], false),        // window exceeded (25 > 23)
            ([5, 7, 40], [6, 7, 40], false),        // first attr differs
            ([5, 7, 40], [5, 7, 40], true),         // identical
        ];
        for (a, b, expected) in cases {
            let mut ledger = CostLedger::new();
            let m_alice = alice_record_message(&pk, &a, &mut rng, &mut ledger).unwrap();
            let m_bob =
                bob_record_message(&pk, &m_alice, &b, &thresholds, &mut rng, &mut ledger)
                    .unwrap();
            let got = querier_reveal_record(&sk, &m_bob, &mut ledger).unwrap();
            assert_eq!(got, expected, "a={a:?} b={b:?}");
            assert_eq!(ledger.messages, 2, "batched: one message each way");
        }
    }

    #[test]
    fn arity_mismatch_rejected() {
        let (pk, _, mut rng) = setup();
        let mut ledger = CostLedger::new();
        let m_alice = alice_record_message(&pk, &[1, 2], &mut rng, &mut ledger).unwrap();
        let err = bob_record_message(&pk, &m_alice, &[1], &[0], &mut rng, &mut ledger);
        assert!(err.is_err());
        let err = bob_record_message(&pk, &m_alice, &[1, 2], &[0], &mut rng, &mut ledger);
        assert!(err.is_err());
    }

    #[test]
    fn message_roundtrips_and_rejects_garbage() {
        let (pk, _, mut rng) = setup();
        let mut ledger = CostLedger::new();
        let m = alice_record_message(&pk, &[3, 4, 5], &mut rng, &mut ledger).unwrap();
        let decoded = RecordShareMessage::decode(&m).unwrap();
        assert_eq!(decoded.shares.len(), 3);
        assert_eq!(
            RecordShareMessage::decode(&m)
                .unwrap()
                .encode(pk.ciphertext_width())
                .to_vec(),
            m
        );
        // Wrong tag, truncation, trailing bytes.
        assert!(RecordResultMessage::decode(&m).is_err());
        assert!(RecordShareMessage::decode(&m[..m.len() - 3]).is_err());
        let mut extended = m.clone();
        extended.push(0);
        assert!(RecordShareMessage::decode(&extended).is_err());
        assert!(RecordShareMessage::decode(&[]).is_err());
    }

    #[test]
    fn invalid_share_elements_rejected() {
        let (pk, _, mut rng) = setup();
        let mut ledger = CostLedger::new();
        let forged = RecordShareMessage {
            shares: vec![(
                Ciphertext::from_biguint(BigUint::zero()),
                Ciphertext::from_biguint(BigUint::from_u64(7)),
            )],
        }
        .encode(pk.ciphertext_width());
        assert!(bob_record_message(&pk, &forged, &[1], &[0], &mut rng, &mut ledger).is_err());
    }
}
