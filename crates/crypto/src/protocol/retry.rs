//! Reliable delivery over an unreliable [`Transport`]: bounded retries,
//! deterministic exponential backoff with jitter, duplicate suppression.
//!
//! [`ReliableLink::deliver`] performs one *exchange*: a data frame travels
//! from sender to receiver, the receiver acks it, and the sender retries
//! (up to [`RetryPolicy::max_retries`] times) until the ack arrives. The
//! [`Envelope`] sequence number lets the receiver discard retransmitted
//! duplicates — crucially *without* decrypting them twice — and re-ack, so
//! a lost ack costs one retransmission, never a double-processed payload.
//!
//! Time is virtual: backoff delays are computed (deterministically, from a
//! seeded RNG) and accumulated in [`ReliableLink::virtual_elapsed_ms`]
//! rather than slept, so chaos tests run at full speed and the experiment
//! harness can still report latency cost.

use crate::protocol::cost::CostLedger;
use crate::protocol::transport::{Envelope, FrameKind, PartyId, Transport, TransportError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Bounded-retry policy with exponential backoff.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Retransmissions allowed after the first attempt.
    pub max_retries: u32,
    /// Backoff before the first retransmission (doubles each retry).
    pub base_delay_ms: u64,
    /// Backoff ceiling.
    pub max_delay_ms: u64,
    /// Random jitter added to each backoff, as a fraction of it in `[0, 1]`.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 8,
            base_delay_ms: 10,
            max_delay_ms: 5_000,
            jitter: 0.2,
        }
    }
}

impl RetryPolicy {
    /// No retries at all: one attempt, then give up.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            ..Self::default()
        }
    }

    /// Default policy with a different retry budget.
    pub fn with_retries(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            ..Self::default()
        }
    }

    /// Backoff before retransmission `attempt` (1-based): exponential,
    /// capped, plus seeded jitter. Deterministic for a given RNG state.
    pub fn backoff_ms(&self, attempt: u32, rng: &mut StdRng) -> u64 {
        let shift = attempt.saturating_sub(1).min(16);
        let base = self
            .base_delay_ms
            .saturating_mul(1u64 << shift)
            .min(self.max_delay_ms);
        let jitter = (base as f64 * self.jitter.clamp(0.0, 1.0) * rng.gen::<f64>()) as u64;
        (base + jitter).min(self.max_delay_ms)
    }

    /// [`backoff_ms`](Self::backoff_ms) for callers without a `rand`
    /// dependency (the stdlib-only socket layer): the jitter fraction is
    /// drawn from a caller-threaded splitmix64 state instead of an RNG.
    /// Same shape, same bounds, equally deterministic for a given state.
    pub fn backoff_ms_seeded(&self, attempt: u32, state: &mut u64) -> u64 {
        let shift = attempt.saturating_sub(1).min(16);
        let base = self
            .base_delay_ms
            .saturating_mul(1u64 << shift)
            .min(self.max_delay_ms);
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        // 53 uniform bits → a fraction in [0, 1), as `gen::<f64>()` does.
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
        let jitter = (base as f64 * self.jitter.clamp(0.0, 1.0) * unit) as u64;
        (base + jitter).min(self.max_delay_ms)
    }
}

/// Per-receiver duplicate-detection state plus the sender-side retry loop.
///
/// One link instance drives all three parties of the in-process protocol
/// simulation; in a real deployment each party would hold its half of this
/// state, but the wire behavior (frames, retransmissions, acks) is
/// identical, which is what the cost ledger meters.
pub struct ReliableLink<T: Transport> {
    transport: T,
    policy: RetryPolicy,
    rng: StdRng,
    next_seq: u64,
    /// Highest sequence number each party has accepted (duplicate filter).
    last_accepted: [Option<u64>; 3],
    /// Accumulated (virtual, not slept) backoff time.
    virtual_elapsed_ms: u64,
}

impl<T: Transport> ReliableLink<T> {
    /// Wraps `transport` with the given policy; `seed` drives the jitter.
    pub fn new(transport: T, policy: RetryPolicy, seed: u64) -> Self {
        ReliableLink {
            transport,
            policy,
            rng: StdRng::seed_from_u64(seed),
            next_seq: 0,
            last_accepted: [None; 3],
            virtual_elapsed_ms: 0,
        }
    }

    /// The underlying transport (e.g. to harvest [`FaultStats`]).
    ///
    /// [`FaultStats`]: crate::protocol::transport::FaultStats
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// Total backoff time accumulated so far.
    pub fn virtual_elapsed_ms(&self) -> u64 {
        self.virtual_elapsed_ms
    }

    /// Returns and resets the accumulated backoff time.
    pub fn take_virtual_elapsed_ms(&mut self) -> u64 {
        std::mem::take(&mut self.virtual_elapsed_ms)
    }

    /// Reliably delivers `payload` from `from` to `to` under the link's
    /// default policy. See [`Self::deliver_with`].
    pub fn deliver(
        &mut self,
        from: PartyId,
        to: PartyId,
        pair_id: u64,
        payload: Vec<u8>,
        ledger: &mut CostLedger,
    ) -> Result<Vec<u8>, TransportError> {
        let policy = self.policy;
        self.deliver_with(policy, from, to, pair_id, payload, ledger)
    }

    /// Reliably delivers `payload` from `from` to `to` under an explicit
    /// policy, returning the payload as the receiver accepted it.
    ///
    /// The ledger records every retransmission (`retries`,
    /// `bytes_retransmitted`), every frame rejected by the envelope
    /// checksum (`corrupt_dropped`), and every duplicate suppressed
    /// (`duplicates_discarded`); ack frames count as ordinary messages.
    /// The *initial* data transmission is not re-counted here — the
    /// protocol functions that built the payload already recorded it.
    pub fn deliver_with(
        &mut self,
        policy: RetryPolicy,
        from: PartyId,
        to: PartyId,
        pair_id: u64,
        payload: Vec<u8>,
        ledger: &mut CostLedger,
    ) -> Result<Vec<u8>, TransportError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let frame = Envelope::data(pair_id, seq, payload).encode();
        let attempts = policy.max_retries.saturating_add(1);
        let mut delivered: Option<Vec<u8>> = None;
        let mut acked = false;

        for attempt in 0..attempts {
            if attempt > 0 {
                ledger.retries += 1;
                ledger.bytes_retransmitted += frame.len() as u64;
                self.virtual_elapsed_ms += policy.backoff_ms(attempt, &mut self.rng);
            }
            self.transport.send(from, to, frame.clone());

            // Receiver side: drain the line, accept the first fresh copy,
            // ack everything that carries a valid envelope.
            while let Some((_, raw)) = self.transport.recv(to) {
                let env = match Envelope::decode(&raw) {
                    Ok(env) => env,
                    Err(_) => {
                        ledger.corrupt_dropped += 1;
                        continue;
                    }
                };
                if env.kind != FrameKind::Data {
                    // A stray ack routed to the receiver: stale, discard.
                    ledger.duplicates_discarded += 1;
                    continue;
                }
                // pprl:allow(panic-path): PartyId::index() is 0..3 by construction, matching the array
                let filter = &mut self.last_accepted[to.index()];
                let already_seen = filter.is_some_and(|top| env.seq <= top);
                if already_seen {
                    // Retransmitted duplicate or stale frame: never process
                    // the payload again, but re-ack so the sender can stop.
                    ledger.duplicates_discarded += 1;
                } else {
                    *filter = Some(env.seq);
                    if env.pair_id == pair_id && env.seq == seq {
                        delivered = Some(env.payload);
                    }
                }
                let ack = Envelope::ack(env.pair_id, env.seq).encode();
                ledger.record_message(ack.len());
                self.transport.send(to, from, ack);
            }

            // Sender side: look for our ack.
            while let Some((_, raw)) = self.transport.recv(from) {
                match Envelope::decode(&raw) {
                    Ok(env)
                        if env.kind == FrameKind::Ack
                            && env.pair_id == pair_id
                            && env.seq == seq =>
                    {
                        acked = true;
                    }
                    Ok(_) => ledger.duplicates_discarded += 1,
                    Err(_) => ledger.corrupt_dropped += 1,
                }
            }

            if acked {
                if let Some(payload) = delivered.take() {
                    return Ok(payload);
                }
            }
        }

        Err(TransportError::RetriesExhausted { pair_id, attempts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::transport::{FaultConfig, FaultyTransport, LocalTransport};

    fn faulty_link(rate: f64, retries: u32) -> ReliableLink<FaultyTransport<LocalTransport>> {
        let transport = FaultyTransport::new(LocalTransport::new(), FaultConfig::uniform(rate), 11);
        ReliableLink::new(transport, RetryPolicy::with_retries(retries), 12)
    }

    #[test]
    fn perfect_network_needs_no_retries() {
        let mut link = ReliableLink::new(LocalTransport::new(), RetryPolicy::default(), 1);
        let mut ledger = CostLedger::new();
        let got = link
            .deliver(PartyId::Alice, PartyId::Bob, 1, vec![1, 2, 3], &mut ledger)
            .unwrap();
        assert_eq!(got, vec![1, 2, 3]);
        assert_eq!(ledger.retries, 0);
        assert_eq!(ledger.corrupt_dropped, 0);
        // Exactly one ack crossed the wire.
        assert_eq!(ledger.messages, 1);
    }

    #[test]
    fn payloads_survive_a_hostile_network() {
        let mut link = faulty_link(0.15, 64);
        let mut ledger = CostLedger::new();
        for i in 0..200u64 {
            let payload = i.to_be_bytes().to_vec();
            let got = link
                .deliver(PartyId::Alice, PartyId::Bob, i, payload.clone(), &mut ledger)
                .unwrap();
            assert_eq!(got, payload, "exchange {i} corrupted");
        }
        assert!(ledger.retries > 0, "faults must have forced retries");
        assert!(ledger.bytes_retransmitted > 0);
    }

    #[test]
    fn zero_retries_on_a_dead_network_gives_up() {
        let mut config = FaultConfig::none();
        config.drop_rate = 1.0;
        let transport = FaultyTransport::new(LocalTransport::new(), config, 7);
        let mut link = ReliableLink::new(transport, RetryPolicy::none(), 8);
        let mut ledger = CostLedger::new();
        let err = link
            .deliver(PartyId::Alice, PartyId::Bob, 9, vec![0], &mut ledger)
            .unwrap_err();
        assert_eq!(
            err,
            TransportError::RetriesExhausted {
                pair_id: 9,
                attempts: 1
            }
        );
    }

    #[test]
    fn duplicates_are_discarded_not_reprocessed() {
        let mut config = FaultConfig::none();
        config.duplicate_rate = 1.0;
        let transport = FaultyTransport::new(LocalTransport::new(), config, 3);
        let mut link = ReliableLink::new(transport, RetryPolicy::default(), 4);
        let mut ledger = CostLedger::new();
        for i in 0..10u64 {
            link.deliver(PartyId::Alice, PartyId::Bob, i, vec![i as u8], &mut ledger)
                .unwrap();
        }
        assert!(ledger.duplicates_discarded >= 10, "every frame was doubled");
        assert_eq!(ledger.retries, 0, "duplicates alone never force retries");
    }

    #[test]
    fn corrupt_frames_are_dropped_and_retried() {
        // Flip a bit in every frame for a while: the envelope rejects each,
        // and the retry loop eventually... never succeeds at rate 1.0.
        let mut config = FaultConfig::none();
        config.bit_flip_rate = 1.0;
        let transport = FaultyTransport::new(LocalTransport::new(), config, 5);
        let mut link = ReliableLink::new(transport, RetryPolicy::with_retries(3), 6);
        let mut ledger = CostLedger::new();
        let err = link.deliver(PartyId::Alice, PartyId::Bob, 1, vec![9; 40], &mut ledger);
        assert!(err.is_err());
        assert!(ledger.corrupt_dropped >= 4, "every attempt was corrupted");
        assert_eq!(ledger.retries, 3);
    }

    #[test]
    fn backoff_grows_and_respects_the_cap() {
        let policy = RetryPolicy {
            max_retries: 10,
            base_delay_ms: 10,
            max_delay_ms: 200,
            jitter: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(policy.backoff_ms(1, &mut rng), 10);
        assert_eq!(policy.backoff_ms(2, &mut rng), 20);
        assert_eq!(policy.backoff_ms(3, &mut rng), 40);
        assert_eq!(policy.backoff_ms(10, &mut rng), 200, "capped");
    }

    #[test]
    fn backoff_is_deterministic_under_a_seed() {
        let policy = RetryPolicy::default();
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for attempt in 1..8 {
            assert_eq!(policy.backoff_ms(attempt, &mut a), policy.backoff_ms(attempt, &mut b));
        }
    }
}
