//! Transport abstraction under the wire protocol, with fault injection.
//!
//! [`party`](super::party) and [`record`](super::record) produce framed
//! byte messages but, until now, the caller simply handed the `Vec<u8>`
//! from one state machine to the next — an implicit perfect network. This
//! module makes the network explicit:
//!
//! * [`Transport`] — send/recv of raw frames between the three named
//!   parties ([`PartyId`]).
//! * [`LocalTransport`] — in-memory queues, the perfect network.
//! * [`FaultyTransport`] — a composable decorator that injects drop,
//!   truncate, bit-flip, duplicate, reorder, and delay faults from a
//!   seeded RNG at configurable per-fault rates ([`FaultConfig`]),
//!   tallying everything it does in [`FaultStats`].
//! * [`Envelope`] — the reliability header ([`retry`](super::retry) uses
//!   it): pair id + sequence number + kind + an FNV-1a checksum, so a
//!   corrupted frame is *detected and dropped* rather than decrypted into
//!   garbage, and duplicates are recognized without touching the payload.
//!
//! Everything is deterministic under a fixed seed, so chaos tests are
//! reproducible.

use crate::CryptoError;
use bytes::{Buf, BufMut, BytesMut};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// The three protocol participants (paper §V-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PartyId {
    /// Owns the Paillier key pair, opens results.
    Querier,
    /// Data holder contributing the encrypted shares.
    Alice,
    /// Data holder folding in its values.
    Bob,
}

impl PartyId {
    /// Dense index, for per-party state tables.
    pub fn index(self) -> usize {
        match self {
            PartyId::Querier => 0,
            PartyId::Alice => 1,
            PartyId::Bob => 2,
        }
    }
}

impl std::fmt::Display for PartyId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartyId::Querier => write!(f, "querier"),
            PartyId::Alice => write!(f, "alice"),
            PartyId::Bob => write!(f, "bob"),
        }
    }
}

/// What a frame carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameKind {
    /// A protocol payload.
    Data,
    /// Acknowledgement of a received data frame.
    Ack,
}

const ENVELOPE_TAG: u8 = 0xE5;
/// Fixed header + trailer size: tag, kind, pair id, seq, payload len, checksum.
pub const ENVELOPE_OVERHEAD: usize = 1 + 1 + 8 + 8 + 4 + 8;

/// Reliability header wrapped around every frame on the wire.
///
/// `pair_id` names the exchange (one record-pair comparison), `seq` is
/// globally unique per link so retransmitted duplicates and stale replies
/// are detected without decrypting anything. The checksum covers the whole
/// frame, so truncations and bit-flips are rejected at this layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// Which exchange this frame belongs to.
    pub pair_id: u64,
    /// Link-unique sequence number.
    pub seq: u64,
    /// Data or ack.
    pub kind: FrameKind,
    /// The framed protocol message (empty for acks).
    pub payload: Vec<u8>,
}

impl Envelope {
    /// A data frame.
    pub fn data(pair_id: u64, seq: u64, payload: Vec<u8>) -> Self {
        Envelope {
            pair_id,
            seq,
            kind: FrameKind::Data,
            payload,
        }
    }

    /// An ack for the frame with the given ids.
    pub fn ack(pair_id: u64, seq: u64) -> Self {
        Envelope {
            pair_id,
            seq,
            kind: FrameKind::Ack,
            payload: Vec::new(),
        }
    }

    /// Encodes to the wire format (header + payload + FNV-1a 64 checksum).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(self.payload.len() + ENVELOPE_OVERHEAD);
        buf.put_u8(ENVELOPE_TAG);
        buf.put_u8(match self.kind {
            FrameKind::Data => 0,
            FrameKind::Ack => 1,
        });
        buf.put_u64(self.pair_id);
        buf.put_u64(self.seq);
        buf.put_u32(self.payload.len() as u32);
        buf.put_slice(&self.payload);
        let digest = fnv1a64(&buf);
        buf.put_u64(digest);
        buf.to_vec()
    }

    /// Decodes and verifies a frame. Any truncation or bit-flip fails the
    /// checksum (or a length check) and returns `Err` — never garbage.
    pub fn decode(data: &[u8]) -> Result<Self, CryptoError> {
        if data.len() < ENVELOPE_OVERHEAD {
            return Err(CryptoError::Protocol("envelope truncated".into()));
        }
        let (body, mut trailer) = data.split_at(data.len() - 8);
        let digest = trailer.get_u64();
        if fnv1a64(body) != digest {
            return Err(CryptoError::Protocol("envelope checksum mismatch".into()));
        }
        let mut body = body;
        let tag = body.get_u8();
        if tag != ENVELOPE_TAG {
            return Err(CryptoError::Protocol(format!(
                "expected envelope tag {ENVELOPE_TAG}, got {tag}"
            )));
        }
        let kind = match body.get_u8() {
            0 => FrameKind::Data,
            1 => FrameKind::Ack,
            other => {
                return Err(CryptoError::Protocol(format!(
                    "unknown frame kind {other}"
                )))
            }
        };
        let pair_id = body.get_u64();
        let seq = body.get_u64();
        let len = body.get_u32() as usize;
        if body.len() != len {
            return Err(CryptoError::Protocol(format!(
                "payload length {len} disagrees with frame ({} bytes left)",
                body.len()
            )));
        }
        Ok(Envelope {
            pair_id,
            seq,
            kind,
            payload: body.to_vec(),
        })
    }
}

/// FNV-1a 64-bit over the frame body. Not cryptographic — integrity against
/// *random* corruption only; authenticity is out of scope for the paper's
/// semi-honest model.
fn fnv1a64(data: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in data {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A network between the three parties. Non-blocking: `recv` returning
/// `None` models a timeout window elapsing with nothing on the line.
pub trait Transport {
    /// Queues `frame` for delivery from `from` to `to`.
    fn send(&mut self, from: PartyId, to: PartyId, frame: Vec<u8>);
    /// Takes the next frame addressed to `to`, if any has arrived.
    fn recv(&mut self, to: PartyId) -> Option<(PartyId, Vec<u8>)>;
}

/// The perfect in-memory network: per-recipient FIFO queues.
#[derive(Debug, Default)]
pub struct LocalTransport {
    queues: [VecDeque<(PartyId, Vec<u8>)>; 3],
}

impl LocalTransport {
    /// An empty network.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Transport for LocalTransport {
    fn send(&mut self, from: PartyId, to: PartyId, frame: Vec<u8>) {
        // pprl:allow(panic-path): PartyId::index() is 0..3 by construction, matching the array
        self.queues[to.index()].push_back((from, frame));
    }

    fn recv(&mut self, to: PartyId) -> Option<(PartyId, Vec<u8>)> {
        // pprl:allow(panic-path): PartyId::index() is 0..3 by construction, matching the array
        self.queues[to.index()].pop_front()
    }
}

/// Per-fault injection rates, each an independent probability in `[0, 1]`
/// rolled per frame. Drop wins over the others; corruption (truncate /
/// bit-flip) applies before disposition (delay / reorder / duplicate).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Frame vanishes entirely.
    pub drop_rate: f64,
    /// Frame arrives cut short at a random point.
    pub truncate_rate: f64,
    /// One random bit of the frame is flipped.
    pub bit_flip_rate: f64,
    /// Frame is delivered twice.
    pub duplicate_rate: f64,
    /// Frame is held back and released after the next send.
    pub reorder_rate: f64,
    /// Frame is parked for 1..=`max_delay_ticks` receive polls.
    pub delay_rate: f64,
    /// Upper bound on delay duration (in receive polls); 0 behaves as 1.
    pub max_delay_ticks: u32,
}

impl FaultConfig {
    /// A perfect network (all rates zero).
    pub fn none() -> Self {
        Self::default()
    }

    /// Every fault at the same rate — the chaos-sweep knob.
    pub fn uniform(rate: f64) -> Self {
        FaultConfig {
            drop_rate: rate,
            truncate_rate: rate,
            bit_flip_rate: rate,
            duplicate_rate: rate,
            reorder_rate: rate,
            delay_rate: rate,
            max_delay_ticks: 3,
        }
    }

    /// True when no fault can ever fire.
    pub fn is_quiet(&self) -> bool {
        self.drop_rate <= 0.0
            && self.truncate_rate <= 0.0
            && self.bit_flip_rate <= 0.0
            && self.duplicate_rate <= 0.0
            && self.reorder_rate <= 0.0
            && self.delay_rate <= 0.0
    }
}

/// Tally of faults actually injected.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Frames dropped.
    pub dropped: u64,
    /// Frames truncated.
    pub truncated: u64,
    /// Frames with a flipped bit.
    pub bit_flipped: u64,
    /// Frames delivered twice.
    pub duplicated: u64,
    /// Frames delivered out of order.
    pub reordered: u64,
    /// Frames delayed.
    pub delayed: u64,
}

impl FaultStats {
    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.dropped
            + self.truncated
            + self.bit_flipped
            + self.duplicated
            + self.reordered
            + self.delayed
    }

    /// Folds another tally into this one.
    pub fn merge(&mut self, other: &FaultStats) {
        self.dropped += other.dropped;
        self.truncated += other.truncated;
        self.bit_flipped += other.bit_flipped;
        self.duplicated += other.duplicated;
        self.reordered += other.reordered;
        self.delayed += other.delayed;
    }
}

/// Decorator injecting seeded faults into any [`Transport`].
///
/// Delayed frames sit in a parking lot and are re-submitted after the
/// configured number of receive polls; a reordered frame is held until the
/// next send goes through first. Both therefore *eventually* arrive —
/// only drops and corruption lose data for good.
pub struct FaultyTransport<T: Transport> {
    inner: T,
    config: FaultConfig,
    rng: StdRng,
    stats: FaultStats,
    /// (remaining polls, from, to, frame)
    parked: Vec<(u32, PartyId, PartyId, Vec<u8>)>,
    /// Frame held back to invert its order with the next send.
    held: Option<(PartyId, PartyId, Vec<u8>)>,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner`, injecting per `config` from a deterministic RNG.
    pub fn new(inner: T, config: FaultConfig, seed: u64) -> Self {
        FaultyTransport {
            inner,
            config,
            rng: StdRng::seed_from_u64(seed),
            stats: FaultStats::default(),
            parked: Vec::new(),
            held: None,
        }
    }

    /// Faults injected so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Returns the tally and resets it, for periodic harvesting.
    pub fn take_stats(&mut self) -> FaultStats {
        std::mem::take(&mut self.stats)
    }

    fn roll(&mut self, rate: f64) -> bool {
        rate > 0.0 && self.rng.gen_bool(rate.clamp(0.0, 1.0))
    }

    /// Releases the reorder slot into the network.
    fn flush_held(&mut self) {
        if let Some((from, to, frame)) = self.held.take() {
            self.inner.send(from, to, frame);
        }
    }

    /// Advances parked frames by one poll, releasing the expired ones.
    fn tick(&mut self) {
        let mut due = Vec::new();
        self.parked.retain_mut(|slot| {
            if slot.0 <= 1 {
                due.push((slot.1, slot.2, std::mem::take(&mut slot.3)));
                false
            } else {
                slot.0 -= 1;
                true
            }
        });
        for (from, to, frame) in due {
            self.inner.send(from, to, frame);
        }
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn send(&mut self, from: PartyId, to: PartyId, mut frame: Vec<u8>) {
        if self.roll(self.config.drop_rate) {
            self.stats.dropped += 1;
            self.flush_held();
            return;
        }
        if self.roll(self.config.truncate_rate) && frame.len() > 1 {
            let keep = self.rng.gen_range(0..frame.len());
            frame.truncate(keep);
            self.stats.truncated += 1;
        }
        if self.roll(self.config.bit_flip_rate) && !frame.is_empty() {
            let byte = self.rng.gen_range(0..frame.len());
            let bit = self.rng.gen_range(0..8u32);
            if let Some(b) = frame.get_mut(byte) {
                *b ^= 1u8 << bit;
                self.stats.bit_flipped += 1;
            }
        }
        if self.roll(self.config.delay_rate) {
            let ticks = self.rng.gen_range(1..=self.config.max_delay_ticks.max(1));
            self.parked.push((ticks, from, to, frame));
            self.stats.delayed += 1;
            self.flush_held();
            return;
        }
        if self.roll(self.config.reorder_rate) && self.held.is_none() {
            self.held = Some((from, to, frame));
            self.stats.reordered += 1;
            return;
        }
        let duplicate = self.roll(self.config.duplicate_rate);
        if duplicate {
            self.stats.duplicated += 1;
            self.inner.send(from, to, frame.clone());
        }
        self.inner.send(from, to, frame);
        // Anything held for reordering goes out *after* this frame.
        self.flush_held();
    }

    fn recv(&mut self, to: PartyId) -> Option<(PartyId, Vec<u8>)> {
        self.tick();
        match self.inner.recv(to) {
            Some(got) => Some(got),
            None => {
                // Nothing on the line: release the reorder slot so a held
                // final frame cannot deadlock the conversation.
                self.flush_held();
                self.inner.recv(to)
            }
        }
    }
}

/// The reliable link gave up on an exchange.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// Every retransmission of the frame went unacknowledged.
    RetriesExhausted {
        /// Exchange that failed.
        pair_id: u64,
        /// Send attempts made (1 + retries).
        attempts: u32,
    },
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::RetriesExhausted { pair_id, attempts } => write!(
                f,
                "exchange {pair_id} unacknowledged after {attempts} attempts"
            ),
        }
    }
}

impl std::error::Error for TransportError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_transport_is_fifo_per_recipient() {
        let mut net = LocalTransport::new();
        net.send(PartyId::Alice, PartyId::Bob, vec![1]);
        net.send(PartyId::Querier, PartyId::Bob, vec![2]);
        net.send(PartyId::Alice, PartyId::Querier, vec![3]);
        assert_eq!(net.recv(PartyId::Bob), Some((PartyId::Alice, vec![1])));
        assert_eq!(net.recv(PartyId::Bob), Some((PartyId::Querier, vec![2])));
        assert_eq!(net.recv(PartyId::Bob), None);
        assert_eq!(net.recv(PartyId::Querier), Some((PartyId::Alice, vec![3])));
    }

    #[test]
    fn envelope_roundtrips() {
        let env = Envelope::data(7, 42, vec![1, 2, 3, 4, 5]);
        let bytes = env.encode();
        assert_eq!(Envelope::decode(&bytes).unwrap(), env);
        let ack = Envelope::ack(7, 42);
        assert_eq!(Envelope::decode(&ack.encode()).unwrap(), ack);
    }

    #[test]
    fn envelope_rejects_every_single_bit_flip() {
        let env = Envelope::data(3, 9, b"attack at dawn".to_vec());
        let bytes = env.encode();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[byte] ^= 1u8 << bit;
                assert!(
                    Envelope::decode(&bad).is_err(),
                    "flip at byte {byte} bit {bit} must be caught"
                );
            }
        }
    }

    #[test]
    fn envelope_rejects_every_truncation() {
        let env = Envelope::data(1, 2, vec![9; 32]);
        let bytes = env.encode();
        for cut in 0..bytes.len() {
            assert!(Envelope::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(Envelope::decode(&extended).is_err());
    }

    #[test]
    fn quiet_faulty_transport_is_transparent() {
        let mut net = FaultyTransport::new(LocalTransport::new(), FaultConfig::none(), 1);
        for i in 0..20u8 {
            net.send(PartyId::Alice, PartyId::Bob, vec![i]);
        }
        for i in 0..20u8 {
            assert_eq!(net.recv(PartyId::Bob), Some((PartyId::Alice, vec![i])));
        }
        assert_eq!(net.stats().total(), 0);
    }

    #[test]
    fn always_drop_loses_everything() {
        let mut config = FaultConfig::none();
        config.drop_rate = 1.0;
        let mut net = FaultyTransport::new(LocalTransport::new(), config, 2);
        for _ in 0..10 {
            net.send(PartyId::Alice, PartyId::Bob, vec![0]);
        }
        assert_eq!(net.recv(PartyId::Bob), None);
        assert_eq!(net.stats().dropped, 10);
    }

    #[test]
    fn faults_fire_at_roughly_the_configured_rate() {
        let mut net = FaultyTransport::new(LocalTransport::new(), FaultConfig::uniform(0.2), 3);
        for i in 0..500u32 {
            net.send(PartyId::Alice, PartyId::Bob, i.to_be_bytes().to_vec());
        }
        let stats = net.stats();
        assert!(stats.dropped > 50, "dropped {}", stats.dropped);
        assert!(stats.dropped < 200, "dropped {}", stats.dropped);
        assert!(stats.total() > 200, "total {}", stats.total());
    }

    #[test]
    fn delayed_frames_eventually_arrive() {
        let mut config = FaultConfig::none();
        config.delay_rate = 1.0;
        config.max_delay_ticks = 3;
        let mut net = FaultyTransport::new(LocalTransport::new(), config, 4);
        net.send(PartyId::Alice, PartyId::Bob, vec![7]);
        let mut polls = 0;
        let got = loop {
            polls += 1;
            assert!(polls < 10, "delayed frame never arrived");
            if let Some(got) = net.recv(PartyId::Bob) {
                break got;
            }
        };
        assert_eq!(got, (PartyId::Alice, vec![7]));
        assert_eq!(net.stats().delayed, 1);
    }

    #[test]
    fn reordered_frame_arrives_after_its_successor() {
        let mut config = FaultConfig::none();
        config.reorder_rate = 1.0;
        let mut net = FaultyTransport::new(LocalTransport::new(), config, 5);
        net.send(PartyId::Alice, PartyId::Bob, vec![1]);
        // Second send: reorder slot is occupied, so it passes through and
        // flushes the held frame after itself.
        net.send(PartyId::Alice, PartyId::Bob, vec![2]);
        assert_eq!(net.recv(PartyId::Bob), Some((PartyId::Alice, vec![2])));
        assert_eq!(net.recv(PartyId::Bob), Some((PartyId::Alice, vec![1])));
    }

    #[test]
    fn corruption_is_caught_by_the_envelope() {
        let mut config = FaultConfig::none();
        config.bit_flip_rate = 1.0;
        let mut net = FaultyTransport::new(LocalTransport::new(), config, 6);
        let frame = Envelope::data(1, 1, vec![5; 64]).encode();
        net.send(PartyId::Alice, PartyId::Bob, frame);
        let (_, corrupted) = net.recv(PartyId::Bob).unwrap();
        assert!(Envelope::decode(&corrupted).is_err());
    }
}
