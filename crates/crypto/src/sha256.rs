//! SHA-256 (FIPS 180-4), built from scratch like every other primitive in
//! this reproduction. Used to hash record values into the group underlying
//! the commutative cipher ([`crate::commutative`]).

/// Initial hash values (fractional parts of square roots of first primes).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
    0x5be0cd19,
];

/// Round constants (fractional parts of cube roots of first 64 primes).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
    0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
    0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
    0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
    0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
    0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
    0xc67178f2,
];

/// Computes the SHA-256 digest of `data`.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = H0;

    // Message padding: 0x80, zeros, 64-bit big-endian bit length.
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut padded = data.to_vec();
    padded.push(0x80);
    while padded.len() % 64 != 56 {
        padded.push(0);
    }
    padded.extend_from_slice(&bit_len.to_be_bytes());

    for block in padded.chunks_exact(64) {
        let mut w = [0u32; 64];
        for (slot, word) in w.iter_mut().zip(block.chunks_exact(4)) {
            *slot = u32::from_be_bytes(word.try_into().unwrap_or([0; 4]));
        }
        // Each extended word only looks 16 back, so split the array at the
        // write position and destructure the last 16 finished words; the
        // named positions are w[i-16], w[i-15], w[i-7], w[i-2].
        for i in 16..64 {
            let (done, pending) = w.split_at_mut(i);
            if let (Some(&[w16, w15, _, _, _, _, _, _, _, w7, _, _, _, _, w2, _]), Some(slot)) =
                (done.get(i - 16..), pending.first_mut())
            {
                let s0 = w15.rotate_right(7) ^ w15.rotate_right(18) ^ (w15 >> 3);
                let s1 = w2.rotate_right(17) ^ w2.rotate_right(19) ^ (w2 >> 10);
                *slot = w16.wrapping_add(s0).wrapping_add(w7).wrapping_add(s1);
            }
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
        for (&k, &wi) in K.iter().zip(w.iter()) {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let temp1 = hh
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(k)
                .wrapping_add(wi);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }
        for (acc, v) in h.iter_mut().zip([a, b, c, d, e, f, g, hh]) {
            *acc = acc.wrapping_add(v);
        }
    }

    let mut out = [0u8; 32];
    for (chunk, word) in out.chunks_exact_mut(4).zip(h.iter()) {
        chunk.copy_from_slice(&word.to_be_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(digest: &[u8]) -> String {
        digest.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// FIPS 180-4 / NIST known-answer vectors.
    #[test]
    fn known_answer_vectors() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let input = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha256(&input)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn padding_boundaries() {
        // Lengths that straddle the 55/56/64-byte padding edges must all work.
        for len in [55usize, 56, 63, 64, 65, 119, 120] {
            let input = vec![0x5Au8; len];
            let d1 = sha256(&input);
            let d2 = sha256(&input);
            assert_eq!(d1, d2);
            // Flipping one bit changes the digest.
            let mut flipped = input.clone();
            flipped[0] ^= 1;
            assert_ne!(sha256(&flipped), d1, "len={len}");
        }
    }
}
