//! Property-based tests of the Paillier homomorphism laws and the secure
//! distance protocol's exactness.

use pprl_crypto::paillier::Keypair;
use pprl_crypto::protocol::{secure_squared_distance, secure_threshold_match};
use pprl_crypto::CostLedger;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

// One shared keypair: keygen is the expensive part, and the properties are
// about operations under a fixed key.
fn shared_keys() -> &'static Keypair {
    use std::sync::OnceLock;
    static KEYS: OnceLock<Keypair> = OnceLock::new();
    KEYS.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        Keypair::generate(&mut rng, 256)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn enc_dec_roundtrip(m in any::<u64>(), seed in any::<u64>()) {
        let keys = shared_keys();
        let mut rng = StdRng::seed_from_u64(seed);
        let c = keys.public().encrypt_u64(m, &mut rng).unwrap();
        prop_assert_eq!(keys.private().decrypt_u64(&c).unwrap(), m);
    }

    #[test]
    fn additive_homomorphism(a in 0u64..(1 << 62), b in 0u64..(1 << 62), seed in any::<u64>()) {
        let keys = shared_keys();
        let mut rng = StdRng::seed_from_u64(seed);
        let ca = keys.public().encrypt_u64(a, &mut rng).unwrap();
        let cb = keys.public().encrypt_u64(b, &mut rng).unwrap();
        let sum = keys.public().add(&ca, &cb);
        prop_assert_eq!(keys.private().decrypt_u64(&sum).unwrap(), a + b);
    }

    #[test]
    fn scalar_homomorphism(a in 0u64..(1 << 32), k in 0u64..(1 << 31), seed in any::<u64>()) {
        let keys = shared_keys();
        let mut rng = StdRng::seed_from_u64(seed);
        let ca = keys.public().encrypt_u64(a, &mut rng).unwrap();
        let prod = keys.public().mul_plain_u64(&ca, k);
        prop_assert_eq!(
            keys.private().decrypt(&prod).unwrap().to_u128(),
            Some(a as u128 * k as u128)
        );
    }

    #[test]
    fn signed_roundtrip(v in any::<i32>(), seed in any::<u64>()) {
        let keys = shared_keys();
        let mut rng = StdRng::seed_from_u64(seed);
        let c = keys.public().encrypt_i64(v as i64, &mut rng).unwrap();
        prop_assert_eq!(keys.private().decrypt_i64(&c).unwrap(), v as i64);
    }

    #[test]
    fn signed_decode_matches_branchy_reference(v in any::<i64>(), seed in any::<u64>()) {
        // decrypt_i64's branch-free signed decoding must agree with the
        // classic compare-and-branch decoding of the reduced plaintext.
        // i64::MIN encrypts (unsigned_abs fits Z_n) but must NOT decode
        // back: its magnitude exceeds i64::MAX.
        let keys = shared_keys();
        let mut rng = StdRng::seed_from_u64(seed);
        let c = keys.public().encrypt_i64(v, &mut rng).unwrap();
        let m = keys.private().decrypt(&c).unwrap();
        let n = keys.public().n();
        let reference = if &m > &n.shr(1) {
            n.checked_sub(&m).unwrap().to_u64()
                .filter(|mag| *mag <= i64::MAX as u64)
                .map(|mag| -(mag as i64))
        } else {
            m.to_u64().filter(|mag| *mag <= i64::MAX as u64).map(|mag| mag as i64)
        };
        prop_assert_eq!(keys.private().decrypt_i64(&c).ok(), reference);
    }

    #[test]
    fn rerandomization_is_plaintext_invariant(m in any::<u32>(), seed in any::<u64>()) {
        let keys = shared_keys();
        let mut rng = StdRng::seed_from_u64(seed);
        let c = keys.public().encrypt_u64(m as u64, &mut rng).unwrap();
        let c2 = keys.public().rerandomize(&c, &mut rng);
        prop_assert_ne!(&c, &c2);
        prop_assert_eq!(keys.private().decrypt_u64(&c2).unwrap(), m as u64);
    }

    #[test]
    fn secure_distance_is_exact(a in 0u64..100_000, b in 0u64..100_000, seed in any::<u64>()) {
        let keys = shared_keys();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ledger = CostLedger::new();
        let d = secure_squared_distance(
            keys.public(), keys.private(), a, b, &mut rng, &mut ledger,
        ).unwrap();
        prop_assert_eq!(d, a.abs_diff(b).pow(2));
    }

    #[test]
    fn secure_threshold_matches_plaintext(
        a in 0u64..1000, b in 0u64..1000, t in 0u64..1_000_000, seed in any::<u64>()
    ) {
        let keys = shared_keys();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ledger = CostLedger::new();
        let got = secure_threshold_match(
            keys.public(), keys.private(), a, b, t, &mut rng, &mut ledger,
        ).unwrap();
        prop_assert_eq!(got, a.abs_diff(b).pow(2) <= t);
    }
}
