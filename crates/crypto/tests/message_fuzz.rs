//! Property tests for the wire formats: decoding is *total* — arbitrary
//! bytes, truncations, bit-flips, and appended junk must produce `Err`,
//! never a panic and never silent garbage. This is the contract the
//! fault-tolerant transport builds on: a corrupted frame is always caught
//! at a decode boundary and turned into a retransmission.

use pprl_bignum::BigUint;
use pprl_crypto::protocol::message::ProtocolMessage;
use pprl_crypto::protocol::transport::{Envelope, ENVELOPE_OVERHEAD};
use proptest::prelude::*;

/// A valid encoded `ProtocolMessage`, generated from arbitrary field bytes.
fn encoded_message() -> impl Strategy<Value = Vec<u8>> {
    let big = prop::collection::vec(any::<u8>(), 1..64)
        .prop_map(|bytes| BigUint::from_bytes_be(&bytes));
    prop_oneof![
        big.clone().prop_map(|n| ProtocolMessage::PublicKey { n }),
        (big.clone(), big.clone()).prop_map(|(a, b)| ProtocolMessage::AliceShare {
            enc_a_squared: pprl_crypto::paillier::Ciphertext::from_biguint(a),
            enc_minus_2a: pprl_crypto::paillier::Ciphertext::from_biguint(b),
        }),
        big.clone().prop_map(|d| ProtocolMessage::DistanceResult {
            enc_distance: pprl_crypto::paillier::Ciphertext::from_biguint(d),
        }),
        big.prop_map(|m| ProtocolMessage::ComparisonResult {
            enc_masked: pprl_crypto::paillier::Ciphertext::from_biguint(m),
        }),
    ]
    .prop_map(|msg| msg.encode().to_vec())
}

proptest! {
    /// Decoding arbitrary bytes never panics.
    #[test]
    fn decode_is_total_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = ProtocolMessage::decode(&bytes);
    }

    /// Every strict truncation of a valid message is rejected.
    #[test]
    fn truncations_always_rejected(encoded in encoded_message()) {
        for cut in 0..encoded.len() {
            prop_assert!(
                ProtocolMessage::decode(&encoded[..cut]).is_err(),
                "truncation to {cut} of {} decoded",
                encoded.len()
            );
        }
    }

    /// Appending any junk to a valid message is rejected (no silent
    /// over-read).
    #[test]
    fn appended_junk_rejected(
        encoded in encoded_message(),
        junk in prop::collection::vec(any::<u8>(), 1..16),
    ) {
        let mut longer = encoded;
        longer.extend_from_slice(&junk);
        prop_assert!(ProtocolMessage::decode(&longer).is_err());
    }

    /// Single-bit flips never panic; when the flip happens to keep the
    /// message well-formed, re-encoding round-trips (no internal
    /// inconsistency escapes the decoder).
    #[test]
    fn bit_flips_never_panic(encoded in encoded_message(), pos in any::<prop::sample::Index>(), bit in 0u8..8) {
        let mut bad = encoded;
        let byte = pos.index(bad.len());
        bad[byte] ^= 1u8 << bit;
        if let Ok(msg) = ProtocolMessage::decode(&bad) {
            let re = msg.encode();
            prop_assert_eq!(ProtocolMessage::decode(&re).unwrap(), msg);
        }
    }

    /// Envelope decoding is total on arbitrary bytes.
    #[test]
    fn envelope_decode_is_total(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = Envelope::decode(&bytes);
    }

    /// The envelope checksum catches *every* single-bit flip and *every*
    /// strict truncation — the guarantee the reliable link's
    /// corrupt-frame-drop path depends on.
    #[test]
    fn envelope_rejects_all_corruptions(
        pair_id in any::<u64>(),
        seq in any::<u64>(),
        payload in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let frame = Envelope::data(pair_id, seq, payload).encode();
        prop_assert!(frame.len() >= ENVELOPE_OVERHEAD);
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut bad = frame.clone();
                bad[byte] ^= 1u8 << bit;
                prop_assert!(Envelope::decode(&bad).is_err(), "flip {byte}.{bit} decoded");
            }
        }
        for cut in 0..frame.len() {
            prop_assert!(Envelope::decode(&frame[..cut]).is_err(), "truncation to {cut} decoded");
        }
    }
}
