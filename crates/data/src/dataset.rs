//! Records and data sets.

use crate::schema::Schema;
use crate::DataError;
use std::sync::Arc;

/// One attribute value of an original (un-anonymized) record.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Value {
    /// Categorical value as its VGH leaf position.
    Cat(u32),
    /// Continuous value.
    Num(f64),
}

impl Value {
    /// The categorical leaf position, panicking for continuous values.
    pub fn as_cat(&self) -> u32 {
        match self {
            Value::Cat(p) => *p,
            Value::Num(v) => panic!("expected categorical value, got {v}"),
        }
    }

    /// The numeric value, panicking for categorical values.
    pub fn as_num(&self) -> f64 {
        match self {
            Value::Num(v) => *v,
            Value::Cat(p) => panic!("expected continuous value, got leaf {p}"),
        }
    }
}

/// A record: one value per schema attribute, a class label index, and a
/// globally unique id (stable across the `d1/d2/d3` partitioning, so the
/// guaranteed `d3` duplicates can be identified in analyses).
#[derive(Clone, Debug)]
pub struct Record {
    id: u64,
    values: Vec<Value>,
    class: u8,
}

impl Record {
    /// Builds a record.
    pub fn new(id: u64, values: Vec<Value>, class: u8) -> Self {
        Record { id, values, class }
    }

    /// Globally unique id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Attribute values in schema order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value of attribute `idx`.
    pub fn value(&self, idx: usize) -> Value {
        self.values[idx]
    }

    /// Class label index.
    pub fn class(&self) -> u8 {
        self.class
    }
}

/// A named collection of records under a shared schema.
#[derive(Clone, Debug)]
pub struct DataSet {
    name: String,
    schema: Arc<Schema>,
    records: Vec<Record>,
}

impl DataSet {
    /// Builds a data set, validating record arity against the schema.
    pub fn new(
        name: impl Into<String>,
        schema: Arc<Schema>,
        records: Vec<Record>,
    ) -> Result<Self, DataError> {
        let arity = schema.arity();
        for (i, r) in records.iter().enumerate() {
            if r.values().len() != arity {
                return Err(DataError::BadArity {
                    line: i,
                    got: r.values().len(),
                });
            }
        }
        Ok(DataSet {
            name: name.into(),
            schema,
            records,
        })
    }

    /// Data set name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The records.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Record count.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` iff empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// A copy restricted to the first `n` records (scaled-down experiments).
    pub fn truncated(&self, n: usize) -> DataSet {
        DataSet {
            name: self.name.clone(),
            schema: Arc::clone(&self.schema),
            records: self.records.iter().take(n).cloned().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn adult_record(id: u64) -> Record {
        Record::new(
            id,
            vec![
                Value::Num(35.0),
                Value::Cat(0),
                Value::Cat(1),
                Value::Cat(2),
                Value::Cat(3),
                Value::Cat(0),
                Value::Cat(1),
                Value::Cat(0),
            ],
            0,
        )
    }

    #[test]
    fn dataset_validates_arity() {
        let schema = Schema::adult();
        let ok = DataSet::new("t", Arc::clone(&schema), vec![adult_record(1)]);
        assert!(ok.is_ok());
        let bad = Record::new(2, vec![Value::Num(1.0)], 0);
        let err = DataSet::new("t", schema, vec![bad]);
        assert!(matches!(err, Err(DataError::BadArity { .. })));
    }

    #[test]
    fn value_accessors() {
        let v = Value::Cat(3);
        assert_eq!(v.as_cat(), 3);
        let n = Value::Num(2.5);
        assert_eq!(n.as_num(), 2.5);
    }

    #[test]
    #[should_panic(expected = "expected categorical")]
    fn wrong_accessor_panics() {
        Value::Num(1.0).as_cat();
    }

    #[test]
    fn truncated_keeps_prefix() {
        let schema = Schema::adult();
        let ds = DataSet::new(
            "t",
            schema,
            (0..10).map(adult_record).collect(),
        )
        .unwrap();
        let t = ds.truncated(3);
        assert_eq!(t.len(), 3);
        assert_eq!(t.records()[2].id(), 2);
    }
}
