//! # pprl-data — the Adult data-set substrate
//!
//! The paper evaluates on the UCI Adult data set (\[17\]): 30,162 complete
//! records, randomly partitioned into three equal parts `d1, d2, d3`, with
//! the two linkage inputs built as `D1 = d1 ∪ d3` and `D2 = d2 ∪ d3` — so
//! the `d3` records are guaranteed cross-set matches.
//!
//! Because the original file cannot be shipped, this crate provides:
//!
//! * [`Schema`] / [`Record`] / [`DataSet`] — the relational model shared by
//!   every other crate (records store categorical values as VGH leaf
//!   positions and continuous values as `f64`);
//! * [`synth`] — a synthetic generator over the *exact Adult schema* with
//!   marginal distributions close to the published Adult marginals (the
//!   substitution is documented in `DESIGN.md`);
//! * [`loader`] — a parser for the real `adult.data` file, so the identical
//!   pipeline runs on the original records when the user supplies them;
//! * [`partition`] — the paper's `d1/d2/d3 → D1/D2` construction;
//! * [`names`] — a surname corpus with typo injection for the edit-distance
//!   extension (§VIII);
//! * [`writer`] — `adult.data`-format CSV output (interoperates with
//!   [`loader`]).
//!
//! ```
//! use pprl_data::synth::{generate, SynthConfig};
//! use pprl_data::partition::paper_partition;
//! use rand::SeedableRng;
//!
//! let source = generate(&SynthConfig { records: 300, seed: 9 });
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let (d1, d2) = paper_partition(&source, &mut rng);
//! assert_eq!(d1.len(), 200); // 2/3 of the source each, sharing one third
//! assert_eq!(d2.len(), 200);
//! ```

mod dataset;
pub mod loader;
pub mod names;
pub mod partition;
mod schema;
pub mod synth;
pub mod writer;

pub use dataset::{DataSet, Record, Value};
pub use schema::{Attribute, Schema};

/// Errors from data loading and construction.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// A value did not parse or is outside its attribute domain.
    BadValue { line: usize, detail: String },
    /// The record has the wrong number of fields.
    BadArity { line: usize, got: usize },
    /// I/O failure while reading a file.
    Io(String),
    /// Schema mismatch between operations.
    SchemaMismatch,
}

impl std::fmt::Display for DataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataError::BadValue { line, detail } => write!(f, "line {line}: {detail}"),
            DataError::BadArity { line, got } => write!(f, "line {line}: {got} fields"),
            DataError::Io(e) => write!(f, "io error: {e}"),
            DataError::SchemaMismatch => write!(f, "schema mismatch"),
        }
    }
}

impl std::error::Error for DataError {}
