//! Loader for the real UCI `adult.data` file.
//!
//! Drop the original file at `data/adult.data` (or pass any path) and the
//! pipeline runs on the paper's actual inputs. Following §VI, records with
//! missing values (`?`) are removed; on the genuine file this leaves the
//! paper's 30,162 records.

use crate::dataset::{DataSet, Record, Value};
use crate::schema::Schema;
use crate::DataError;
use std::io::BufRead;
use std::path::Path;

/// Column positions of the Adult CSV we consume (0-based).
const COL_AGE: usize = 0;
const COL_WORKCLASS: usize = 1;
const COL_EDUCATION: usize = 3;
const COL_MARITAL: usize = 5;
const COL_OCCUPATION: usize = 6;
const COL_RACE: usize = 8;
const COL_SEX: usize = 9;
const COL_COUNTRY: usize = 13;
const COL_CLASS: usize = 14;
const MIN_COLS: usize = 15;

/// Loads `adult.data` (or `adult.test` minus its header), dropping records
/// with missing values, exactly as in §VI.
pub fn load_adult(path: impl AsRef<Path>) -> Result<DataSet, DataError> {
    let file = std::fs::File::open(path.as_ref()).map_err(|e| DataError::Io(e.to_string()))?;
    let reader = std::io::BufReader::new(file);
    parse_adult(reader.lines().map(|l| l.map_err(|e| DataError::Io(e.to_string()))))
}

/// Parses Adult CSV lines from any source (exposed for tests).
pub fn parse_adult<I>(lines: I) -> Result<DataSet, DataError>
where
    I: IntoIterator<Item = Result<String, DataError>>,
{
    let schema = Schema::adult();
    let tax = |name: &str| {
        schema
            .attribute(schema.index_of(name).expect("adult attribute"))
            .vgh()
            .as_taxonomy()
            .expect("categorical")
            .clone()
    };
    let workclass = tax("workclass");
    let education = tax("education");
    let marital = tax("marital-status");
    let occupation = tax("occupation");
    let race = tax("race");
    let sex = tax("sex");
    let country = tax("native-country");

    let mut records = Vec::new();
    let mut next_id = 0u64;
    for (line_no, line) in lines.into_iter().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('|') {
            continue; // blank line or adult.test header
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() < MIN_COLS {
            return Err(DataError::BadArity {
                line: line_no + 1,
                got: fields.len(),
            });
        }
        // §VI: remove all tuples with missing values.
        if fields.contains(&"?") {
            continue;
        }

        let age: f64 = fields[COL_AGE].parse().map_err(|_| DataError::BadValue {
            line: line_no + 1,
            detail: format!("bad age {:?}", fields[COL_AGE]),
        })?;
        let lookup = |t: &pprl_hierarchy::Taxonomy, col: usize| -> Result<u32, DataError> {
            t.leaf_position(fields[col]).map_err(|_| DataError::BadValue {
                line: line_no + 1,
                detail: format!("unknown {} value {:?}", t.name(), fields[col]),
            })
        };
        let class_field = fields[COL_CLASS].trim_end_matches('.');
        let class = match class_field {
            "<=50K" => 0u8,
            ">50K" => 1u8,
            other => {
                return Err(DataError::BadValue {
                    line: line_no + 1,
                    detail: format!("unknown class {other:?}"),
                })
            }
        };

        records.push(Record::new(
            next_id,
            vec![
                Value::Num(age),
                Value::Cat(lookup(&workclass, COL_WORKCLASS)?),
                Value::Cat(lookup(&education, COL_EDUCATION)?),
                Value::Cat(lookup(&marital, COL_MARITAL)?),
                Value::Cat(lookup(&occupation, COL_OCCUPATION)?),
                Value::Cat(lookup(&race, COL_RACE)?),
                Value::Cat(lookup(&sex, COL_SEX)?),
                Value::Cat(lookup(&country, COL_COUNTRY)?),
            ],
            class,
        ));
        next_id += 1;
    }
    DataSet::new("uci-adult", schema, records)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "39, State-gov, 77516, Bachelors, 13, Never-married, Adm-clerical, Not-in-family, White, Male, 2174, 0, 40, United-States, <=50K\n\
50, Self-emp-not-inc, 83311, Bachelors, 13, Married-civ-spouse, Exec-managerial, Husband, White, Male, 0, 0, 13, United-States, <=50K\n\
38, Private, 215646, HS-grad, 9, Divorced, Handlers-cleaners, Not-in-family, White, Male, 0, 0, 40, United-States, >50K.\n\
53, ?, 234721, 11th, 7, Married-civ-spouse, Handlers-cleaners, Husband, Black, Male, 0, 0, 40, United-States, <=50K";

    fn lines(s: &str) -> impl Iterator<Item = Result<String, DataError>> + '_ {
        s.lines().map(|l| Ok(l.to_string()))
    }

    #[test]
    fn parses_and_drops_missing() {
        let ds = parse_adult(lines(SAMPLE)).unwrap();
        assert_eq!(ds.len(), 3, "record with '?' dropped");
        let r0 = &ds.records()[0];
        assert_eq!(r0.value(0).as_num(), 39.0);
        assert_eq!(r0.class(), 0);
        // adult.test-style trailing dot on the class parses too.
        assert_eq!(ds.records()[2].class(), 1);
    }

    #[test]
    fn categorical_values_resolve_to_leaves() {
        let ds = parse_adult(lines(SAMPLE)).unwrap();
        let schema = ds.schema();
        let edu_tax = schema.attribute(2).vgh().as_taxonomy().unwrap().clone();
        let bachelors = edu_tax.leaf_position("Bachelors").unwrap();
        assert_eq!(ds.records()[0].value(2).as_cat(), bachelors);
    }

    #[test]
    fn rejects_unknown_values() {
        let bad = "39, Wizard-gov, 1, Bachelors, 13, Never-married, Adm-clerical, X, White, Male, 0, 0, 40, United-States, <=50K";
        assert!(matches!(
            parse_adult(lines(bad)),
            Err(DataError::BadValue { .. })
        ));
    }

    #[test]
    fn rejects_short_rows() {
        assert!(matches!(
            parse_adult(lines("1, 2, 3")),
            Err(DataError::BadArity { .. })
        ));
    }

    #[test]
    fn skips_blank_and_header_lines() {
        let with_junk = format!("|header\n\n{SAMPLE}");
        let ds = parse_adult(lines(&with_junk)).unwrap();
        assert_eq!(ds.len(), 3);
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            load_adult("/nonexistent/adult.data"),
            Err(DataError::Io(_))
        ));
    }
}
