//! Name-corpus substrate for the alphanumeric-attribute extension
//! (paper §VIII): surname domains with realistic typo variants, plus a
//! two-holder scenario generator where the overlapping records carry
//! spelling errors — the workload edit-distance linkage exists for.

use crate::dataset::{DataSet, Record, Value};
use crate::schema::Schema;
use pprl_hierarchy::{prefix_hierarchy, IntervalHierarchy, Vgh};
use rand::seq::SliceRandom;
use rand::Rng;
use std::sync::Arc;

/// A hundred common surnames (US census order-ish) as the base domain.
pub const SURNAMES: [&str; 100] = [
    "smith", "johnson", "williams", "brown", "jones", "garcia", "miller", "davis", "rodriguez",
    "martinez", "hernandez", "lopez", "gonzalez", "wilson", "anderson", "thomas", "taylor",
    "moore", "jackson", "martin", "lee", "perez", "thompson", "white", "harris", "sanchez",
    "clark", "ramirez", "lewis", "robinson", "walker", "young", "allen", "king", "wright",
    "scott", "torres", "nguyen", "hill", "flores", "green", "adams", "nelson", "baker", "hall",
    "rivera", "campbell", "mitchell", "carter", "roberts", "gomez", "phillips", "evans",
    "turner", "diaz", "parker", "cruz", "edwards", "collins", "reyes", "stewart", "morris",
    "morales", "murphy", "cook", "rogers", "gutierrez", "ortiz", "morgan", "cooper", "peterson",
    "bailey", "reed", "kelly", "howard", "ramos", "kim", "cox", "ward", "richardson", "watson",
    "brooks", "chavez", "wood", "james", "bennett", "gray", "mendoza", "ruiz", "hughes", "price",
    "alvarez", "castillo", "sanders", "patel", "myers", "long", "ross", "foster", "jimenez",
];

/// Applies one random edit (substitution, insertion, deletion, or
/// transposition) to a name — edit distance exactly 1 from the original
/// (2 for transposition under unit-cost Levenshtein).
pub fn corrupt<R: Rng>(name: &str, rng: &mut R) -> String {
    let chars: Vec<char> = name.chars().collect();
    let alphabet = "abcdefghijklmnopqrstuvwxyz";
    let pick = |rng: &mut R| {
        alphabet
            .chars()
            .nth(rng.gen_range(0..alphabet.len()))
            .expect("index in range")
    };
    // Rejection loop: a substitution can pick the original character and a
    // transposition can swap equal neighbors; retry until the spelling
    // actually changes.
    loop {
        let attempt = corrupt_once(&chars, rng, &pick);
        if attempt != chars {
            return attempt.into_iter().collect();
        }
    }
}

fn corrupt_once<R: Rng>(
    chars: &[char],
    rng: &mut R,
    pick: &impl Fn(&mut R) -> char,
) -> Vec<char> {
    let mut out = chars.to_vec();
    match rng.gen_range(0..4) {
        0 => {
            // substitution
            let i = rng.gen_range(0..out.len());
            out[i] = pick(rng);
        }
        1 => {
            // insertion
            let i = rng.gen_range(0..=out.len());
            out.insert(i, pick(rng));
        }
        2 if out.len() > 2 => {
            // deletion (keep names non-trivial)
            let i = rng.gen_range(0..out.len());
            out.remove(i);
        }
        _ if out.len() >= 2 => {
            // transposition
            let i = rng.gen_range(0..out.len() - 1);
            out.swap(i, i + 1);
        }
        _ => {
            let i = rng.gen_range(0..out.len());
            out[i] = pick(rng);
        }
    }
    out
}

/// Configuration for the fuzzy two-holder scenario.
#[derive(Clone, Debug)]
pub struct FuzzyScenarioConfig {
    /// Records per holder.
    pub records_per_set: usize,
    /// Fraction of each holder that is the shared population.
    pub overlap: f64,
    /// Probability that a shared record's surname is misspelled in the
    /// second holder's copy.
    pub typo_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FuzzyScenarioConfig {
    fn default() -> Self {
        FuzzyScenarioConfig {
            records_per_set: 400,
            overlap: 0.4,
            typo_rate: 0.5,
            seed: 0xD1CE,
        }
    }
}

/// Builds two data sets over a `(surname, age)` schema where the shared
/// population appears in both — second copies carrying typos at
/// `typo_rate`. The surname domain is the base corpus plus every generated
/// variant, generalized by prefix truncation.
pub fn fuzzy_pair_scenario(config: &FuzzyScenarioConfig) -> (DataSet, DataSet) {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);

    let shared = (config.records_per_set as f64 * config.overlap).round() as usize;
    let unique = config.records_per_set - shared;

    // Draw the person list: (surname index into base corpus, age).
    let person = |rng: &mut rand::rngs::StdRng| {
        let name = *SURNAMES.choose(rng).expect("non-empty corpus");
        let age = rng.gen_range(18..80) as f64;
        (name.to_string(), age)
    };
    let shared_people: Vec<(String, f64)> = (0..shared).map(|_| person(&mut rng)).collect();
    let a_only: Vec<(String, f64)> = (0..unique).map(|_| person(&mut rng)).collect();
    let b_only: Vec<(String, f64)> = (0..unique).map(|_| person(&mut rng)).collect();

    // B's copies of shared people: possible typo.
    let shared_in_b: Vec<(String, f64)> = shared_people
        .iter()
        .map(|(name, age)| {
            if rng.gen::<f64>() < config.typo_rate {
                (corrupt(name, &mut rng), *age)
            } else {
                (name.clone(), *age)
            }
        })
        .collect();

    // The domain must cover every spelling that occurs anywhere.
    let mut domain: Vec<&str> = shared_people
        .iter()
        .chain(&a_only)
        .chain(&b_only)
        .chain(&shared_in_b)
        .map(|(n, _)| n.as_str())
        .collect();
    domain.sort_unstable();
    domain.dedup();

    let surname_vgh = Vgh::Categorical(
        prefix_hierarchy("surname", &domain, &[1, 3]).expect("non-empty domain"),
    );
    let age_vgh = Vgh::Continuous(
        IntervalHierarchy::equi_width("age", 17.0, 113.0, &[2, 2, 3]).expect("static definition"),
    );
    let schema = Schema::new(vec![surname_vgh, age_vgh], vec!["-".into()]);
    let tax = schema
        .attribute(0)
        .vgh()
        .as_taxonomy()
        .expect("surname is categorical")
        .clone();

    let mk = |people: &[(String, f64)], base: u64| -> Vec<Record> {
        people
            .iter()
            .enumerate()
            .map(|(i, (name, age))| {
                let pos = tax.leaf_position(name).expect("name in domain");
                Record::new(base + i as u64, vec![Value::Cat(pos), Value::Num(*age)], 0)
            })
            .collect()
    };
    let mut a_records = mk(&shared_people, 0);
    a_records.extend(mk(&a_only, 10_000));
    let mut b_records = mk(&shared_in_b, 0); // same ids as A's shared block
    b_records.extend(mk(&b_only, 20_000));

    let d1 = DataSet::new("fuzzy-A", Arc::clone(&schema), a_records).expect("schema matches");
    let d2 = DataSet::new("fuzzy-B", schema, b_records).expect("schema matches");
    (d1, d2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn corrupt_produces_small_edits() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let name = *SURNAMES.choose(&mut rng).unwrap();
            let bad = corrupt(name, &mut rng);
            let d = pprl_edit_distance(name, &bad);
            assert!((1..=2).contains(&d), "{name} -> {bad}: distance {d}");
        }
    }

    // Local Levenshtein to avoid a dev-dependency cycle with pprl-blocking.
    fn pprl_edit_distance(a: &str, b: &str) -> usize {
        let a: Vec<char> = a.chars().collect();
        let b: Vec<char> = b.chars().collect();
        let mut prev: Vec<usize> = (0..=b.len()).collect();
        let mut cur = vec![0usize; b.len() + 1];
        for (i, &ca) in a.iter().enumerate() {
            cur[0] = i + 1;
            for (j, &cb) in b.iter().enumerate() {
                let sub = prev[j] + usize::from(ca != cb);
                cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
            }
            std::mem::swap(&mut prev, &mut cur);
        }
        prev[b.len()]
    }

    #[test]
    fn scenario_has_requested_shape() {
        let cfg = FuzzyScenarioConfig {
            records_per_set: 100,
            overlap: 0.3,
            typo_rate: 1.0,
            seed: 2,
        };
        let (a, b) = fuzzy_pair_scenario(&cfg);
        assert_eq!(a.len(), 100);
        assert_eq!(b.len(), 100);
        // Shared block shares record ids.
        let shared_ids = a
            .records()
            .iter()
            .filter(|r| b.records().iter().any(|s| s.id() == r.id()))
            .count();
        assert_eq!(shared_ids, 30);
        // With typo_rate = 1, shared ages agree but shared names may differ.
        for (ra, rb) in a.records()[..30].iter().zip(&b.records()[..30]) {
            assert_eq!(ra.id(), rb.id());
            assert_eq!(ra.value(1).as_num(), rb.value(1).as_num());
        }
    }

    #[test]
    fn scenario_is_deterministic() {
        let cfg = FuzzyScenarioConfig::default();
        let (a1, _) = fuzzy_pair_scenario(&cfg);
        let (a2, _) = fuzzy_pair_scenario(&cfg);
        for (x, y) in a1.records().iter().zip(a2.records()) {
            assert_eq!(x.values(), y.values());
        }
    }
}
