//! The paper's input construction (§VI): shuffle the cleaned data set,
//! split into three equal parts `d1, d2, d3`, and link `D1 = d1 ∪ d3`
//! against `D2 = d2 ∪ d3`. Whatever the matching thresholds, the shared
//! `d3` records guarantee a non-empty set of true matches.

use crate::dataset::DataSet;
use rand::seq::SliceRandom;
use rand::Rng;
use std::sync::Arc;

/// Splits `source` into the two linkage inputs `(D1, D2)`.
///
/// Each part receives `⌊len/3⌋` records (the paper: 30,162 → 3 × 10,054);
/// any remainder records are dropped, matching the paper's exact-thirds
/// construction.
pub fn paper_partition<R: Rng>(source: &DataSet, rng: &mut R) -> (DataSet, DataSet) {
    let third = source.len() / 3;
    let mut indices: Vec<usize> = (0..source.len()).collect();
    indices.shuffle(rng);

    let take = |range: std::ops::Range<usize>| -> Vec<crate::Record> {
        indices[range]
            .iter()
            .map(|&i| source.records()[i].clone())
            .collect()
    };

    let d1 = take(0..third);
    let d2 = take(third..2 * third);
    let d3 = take(2 * third..3 * third);

    let mut r1 = d1;
    r1.extend(d3.iter().cloned());
    let mut r2 = d2;
    r2.extend(d3.iter().cloned());

    let schema = Arc::clone(source.schema());
    let ds1 = DataSet::new(format!("{}-D1", source.name()), Arc::clone(&schema), r1)
        .expect("records share source schema");
    let ds2 = DataSet::new(format!("{}-D2", source.name()), schema, r2)
        .expect("records share source schema");
    (ds1, ds2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, SynthConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn partition_sizes_match_paper_construction() {
        let source = generate(&SynthConfig {
            records: 301, // 3×100 + 1 remainder dropped
            seed: 1,
        });
        let mut rng = StdRng::seed_from_u64(2);
        let (d1, d2) = paper_partition(&source, &mut rng);
        assert_eq!(d1.len(), 200);
        assert_eq!(d2.len(), 200);
    }

    #[test]
    fn intersection_is_exactly_d3() {
        let source = generate(&SynthConfig {
            records: 300,
            seed: 3,
        });
        let mut rng = StdRng::seed_from_u64(4);
        let (d1, d2) = paper_partition(&source, &mut rng);
        let ids1: HashSet<u64> = d1.records().iter().map(|r| r.id()).collect();
        let ids2: HashSet<u64> = d2.records().iter().map(|r| r.id()).collect();
        let shared = ids1.intersection(&ids2).count();
        assert_eq!(shared, 100, "d3 appears in both inputs");
        assert_eq!(ids1.len(), 200, "no duplicates within D1");
    }

    #[test]
    fn partition_is_seed_deterministic() {
        let source = generate(&SynthConfig {
            records: 90,
            seed: 5,
        });
        let ids = |seed: u64| -> Vec<u64> {
            let mut rng = StdRng::seed_from_u64(seed);
            let (d1, _) = paper_partition(&source, &mut rng);
            d1.records().iter().map(|r| r.id()).collect()
        };
        assert_eq!(ids(7), ids(7));
        assert_ne!(ids(7), ids(8));
    }
}
