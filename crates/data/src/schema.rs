//! Relational schema shared by both data holders.
//!
//! The paper assumes matching schemas (`R(A₁…Aₙ)` and `S(A₁…Aₙ)`, §II) —
//! private schema matching is cited as prior work \[5\] and out of scope.

use pprl_hierarchy::{adult_vghs, AttributeKind, Vgh};
use std::sync::Arc;

/// One attribute: its name, kind, and value generalization hierarchy.
#[derive(Clone, Debug)]
pub struct Attribute {
    name: String,
    vgh: Arc<Vgh>,
}

impl Attribute {
    /// Wraps a VGH as an attribute (name comes from the hierarchy).
    pub fn new(vgh: Vgh) -> Self {
        Attribute {
            name: vgh.name().to_string(),
            vgh: Arc::new(vgh),
        }
    }

    /// Attribute name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Categorical or continuous.
    pub fn kind(&self) -> AttributeKind {
        self.vgh.kind()
    }

    /// The attribute's VGH.
    pub fn vgh(&self) -> &Vgh {
        &self.vgh
    }

    /// Domain size for categorical attributes; `None` for continuous.
    pub fn domain_size(&self) -> Option<usize> {
        self.vgh.as_taxonomy().map(|t| t.leaf_count())
    }
}

/// An ordered attribute list plus the class-label domain (the Adult income
/// column, needed by the information-gain anonymizer TDS \[7\]).
#[derive(Clone, Debug)]
pub struct Schema {
    attributes: Vec<Attribute>,
    class_labels: Vec<String>,
}

impl Schema {
    /// Builds a schema from VGHs and class labels.
    pub fn new(vghs: Vec<Vgh>, class_labels: Vec<String>) -> Arc<Self> {
        Arc::new(Schema {
            attributes: vghs.into_iter().map(Attribute::new).collect(),
            class_labels,
        })
    }

    /// The full Adult schema in the paper's QID order, with the income
    /// class (`<=50K` / `>50K`).
    pub fn adult() -> Arc<Self> {
        Schema::new(
            adult_vghs(),
            vec!["<=50K".to_string(), ">50K".to_string()],
        )
    }

    /// The attributes, in order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Attribute by index.
    pub fn attribute(&self, idx: usize) -> &Attribute {
        &self.attributes[idx]
    }

    /// Index of an attribute by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name() == name)
    }

    /// The class-label domain.
    pub fn class_labels(&self) -> &[String] {
        &self.class_labels
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.class_labels.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adult_schema_shape() {
        let s = Schema::adult();
        assert_eq!(s.arity(), 8);
        assert_eq!(s.class_count(), 2);
        assert_eq!(s.attribute(0).name(), "age");
        assert_eq!(s.attribute(0).kind(), AttributeKind::Continuous);
        assert_eq!(s.attribute(2).name(), "education");
        assert_eq!(s.attribute(2).domain_size(), Some(16));
        assert_eq!(s.attribute(0).domain_size(), None);
    }

    #[test]
    fn index_lookup() {
        let s = Schema::adult();
        assert_eq!(s.index_of("occupation"), Some(4));
        assert_eq!(s.index_of("nope"), None);
    }
}
