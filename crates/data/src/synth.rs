//! Synthetic Adult-like data generation.
//!
//! Substitution for the UCI file (see `DESIGN.md`): records are sampled
//! i.i.d. over the exact Adult schema, with per-attribute marginals chosen
//! to approximate the published Adult marginal distributions. The
//! properties the experiments depend on — domain sizes, VGH shapes, and
//! skewed attribute entropies (e.g. `native-country` dominated by
//! `United-States`, `race` by `White`) — are reproduced; joint correlations
//! beyond the class model are not, which affects none of the figures'
//! mechanics.

use crate::dataset::{DataSet, Record, Value};
use crate::schema::Schema;
use rand::Rng;

/// Configuration for the synthetic generator.
#[derive(Clone, Debug)]
pub struct SynthConfig {
    /// Total records to generate (the paper's cleaned Adult has 30,162).
    pub records: usize,
    /// RNG seed (generation is fully deterministic given the seed).
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            records: 30_162,
            seed: 0xADA17,
        }
    }
}

/// Generates a synthetic Adult-like data set.
pub fn generate(config: &SynthConfig) -> DataSet {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
    let schema = Schema::adult();
    let samplers = marginal_samplers(&schema);

    let records = (0..config.records)
        .map(|id| {
            let mut values = Vec::with_capacity(schema.arity());
            for sampler in &samplers {
                values.push(sampler.sample(&mut rng));
            }
            let class = sample_class(&values, &mut rng);
            Record::new(id as u64, values, class)
        })
        .collect();

    DataSet::new("synthetic-adult", schema, records).expect("generated records match schema")
}

/// One attribute's marginal distribution.
enum Marginal {
    /// Cumulative weights over categorical leaf positions.
    Categorical(Vec<f64>),
    /// Truncated normal for age.
    Age { mean: f64, std: f64, min: f64, max: f64 },
}

impl Marginal {
    fn sample<R: Rng>(&self, rng: &mut R) -> Value {
        match self {
            Marginal::Categorical(cum) => {
                let x: f64 = rng.gen();
                let idx = cum.partition_point(|&c| c < x);
                Value::Cat(idx.min(cum.len() - 1) as u32)
            }
            Marginal::Age { mean, std, min, max } => {
                // Box–Muller, truncated by resampling.
                loop {
                    let u1: f64 = rng.gen::<f64>().max(1e-12);
                    let u2: f64 = rng.gen();
                    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                    let v = (mean + std * z).round();
                    if v >= *min && v <= *max {
                        return Value::Num(v);
                    }
                }
            }
        }
    }
}

/// Builds cumulative weights from `(label, weight)` pairs in the order the
/// taxonomy numbers its leaves.
fn categorical(schema: &Schema, attr: &str, weights: &[(&str, f64)]) -> Marginal {
    let idx = schema.index_of(attr).expect("attribute exists");
    let tax = schema
        .attribute(idx)
        .vgh()
        .as_taxonomy()
        .expect("categorical attribute");
    let mut w = vec![0.0; tax.leaf_count()];
    for (label, weight) in weights {
        let pos = tax
            .leaf_position(label)
            .unwrap_or_else(|_| panic!("unknown {attr} label {label}"));
        w[pos as usize] = *weight;
    }
    // Any label not mentioned shares the leftover mass uniformly.
    let assigned: f64 = w.iter().sum();
    let unmentioned = w.iter().filter(|&&x| x == 0.0).count();
    if unmentioned > 0 {
        let fill = (1.0 - assigned).max(0.0) / unmentioned as f64;
        for x in w.iter_mut().filter(|x| **x == 0.0) {
            *x = fill;
        }
    }
    let total: f64 = w.iter().sum();
    let mut cum = Vec::with_capacity(w.len());
    let mut acc = 0.0;
    for x in &w {
        acc += x / total;
        cum.push(acc);
    }
    Marginal::Categorical(cum)
}

/// The Adult marginals (rounded from the UCI documentation / literature).
fn marginal_samplers(schema: &Schema) -> Vec<Marginal> {
    vec![
        Marginal::Age {
            mean: 38.6,
            std: 13.6,
            min: 17.0,
            max: 90.0,
        },
        categorical(
            schema,
            "workclass",
            &[
                ("Private", 0.697),
                ("Self-emp-not-inc", 0.079),
                ("Self-emp-inc", 0.035),
                ("Federal-gov", 0.030),
                ("Local-gov", 0.066),
                ("State-gov", 0.041),
                ("Without-pay", 0.0005),
                ("Never-worked", 0.0002),
            ],
        ),
        categorical(
            schema,
            "education",
            &[
                ("HS-grad", 0.322),
                ("Some-college", 0.222),
                ("Bachelors", 0.164),
                ("Masters", 0.054),
                ("Assoc-voc", 0.042),
                ("11th", 0.037),
                ("Assoc-acdm", 0.033),
                ("10th", 0.028),
                ("7th-8th", 0.020),
                ("Prof-school", 0.018),
                ("9th", 0.016),
                ("12th", 0.013),
                ("Doctorate", 0.012),
                ("5th-6th", 0.010),
                ("1st-4th", 0.005),
                ("Preschool", 0.002),
            ],
        ),
        categorical(
            schema,
            "marital-status",
            &[
                ("Married-civ-spouse", 0.460),
                ("Never-married", 0.328),
                ("Divorced", 0.136),
                ("Separated", 0.031),
                ("Widowed", 0.031),
                ("Married-spouse-absent", 0.013),
                ("Married-AF-spouse", 0.001),
            ],
        ),
        categorical(
            schema,
            "occupation",
            &[
                ("Prof-specialty", 0.126),
                ("Craft-repair", 0.125),
                ("Exec-managerial", 0.124),
                ("Adm-clerical", 0.115),
                ("Sales", 0.112),
                ("Other-service", 0.100),
                ("Machine-op-inspct", 0.061),
                ("Transport-moving", 0.048),
                ("Handlers-cleaners", 0.042),
                ("Farming-fishing", 0.030),
                ("Tech-support", 0.028),
                ("Protective-serv", 0.020),
                ("Priv-house-serv", 0.005),
                ("Armed-Forces", 0.0003),
            ],
        ),
        categorical(
            schema,
            "race",
            &[
                ("White", 0.854),
                ("Black", 0.096),
                ("Asian-Pac-Islander", 0.031),
                ("Amer-Indian-Eskimo", 0.010),
                ("Other", 0.008),
            ],
        ),
        categorical(schema, "sex", &[("Male", 0.67), ("Female", 0.33)]),
        categorical(
            schema,
            "native-country",
            &[
                ("United-States", 0.895),
                ("Mexico", 0.020),
                ("Philippines", 0.006),
                ("Germany", 0.004),
                ("Canada", 0.004),
                ("Puerto-Rico", 0.004),
                ("El-Salvador", 0.003),
                ("India", 0.003),
                ("Cuba", 0.003),
                ("England", 0.003),
                ("China", 0.002),
                ("Jamaica", 0.002),
                ("South", 0.002),
                ("Italy", 0.002),
            ],
        ),
    ]
}

/// Class model: income correlates with education, marital status, sex, and
/// prime working age, so the information-gain anonymizer (TDS) has signal
/// to exploit — mirroring the real Adult data's structure.
fn sample_class<R: Rng>(values: &[Value], rng: &mut R) -> u8 {
    // Indices follow the Adult QID order.
    let age = values[0].as_num();
    let education = values[2].as_cat();
    let marital = values[3].as_cat();
    let sex = values[6].as_cat();

    let mut score = 0.0f64;
    // Education leaves are DFS-ordered: higher positions = more education.
    score += education as f64 / 15.0 * 1.6;
    // Married (leaf positions 0..=2 are the Married subtree).
    if marital <= 2 {
        score += 1.2;
    }
    if (30.0..=60.0).contains(&age) {
        score += 0.7;
    }
    if sex == 0 {
        score += 0.3; // Male (Adult's >50K skew)
    }
    let p_high = (0.02 + 0.18 * score).min(0.85);
    u8::from(rng.gen::<f64>() < p_high)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let cfg = SynthConfig {
            records: 100,
            seed: 7,
        };
        let a = generate(&cfg);
        let b = generate(&cfg);
        for (ra, rb) in a.records().iter().zip(b.records()) {
            assert_eq!(ra.values(), rb.values());
            assert_eq!(ra.class(), rb.class());
        }
    }

    #[test]
    fn ages_in_domain() {
        let ds = generate(&SynthConfig {
            records: 2000,
            seed: 1,
        });
        for r in ds.records() {
            let age = r.value(0).as_num();
            assert!((17.0..=90.0).contains(&age), "age {age}");
            assert_eq!(age, age.round(), "integer ages");
        }
    }

    #[test]
    fn marginals_are_roughly_right() {
        let ds = generate(&SynthConfig {
            records: 20_000,
            seed: 2,
        });
        let schema = ds.schema();
        // native-country should be ~89.5% United-States.
        let nc = schema.index_of("native-country").unwrap();
        let us = schema
            .attribute(nc)
            .vgh()
            .as_taxonomy()
            .unwrap()
            .leaf_position("United-States")
            .unwrap();
        let share = ds
            .records()
            .iter()
            .filter(|r| r.value(nc).as_cat() == us)
            .count() as f64
            / ds.len() as f64;
        assert!((0.87..0.92).contains(&share), "US share {share}");
        // Both classes occur, with >50K the minority.
        let high = ds.records().iter().filter(|r| r.class() == 1).count() as f64 / ds.len() as f64;
        assert!((0.10..0.45).contains(&high), ">50K share {high}");
    }

    #[test]
    fn every_leaf_position_is_valid() {
        let ds = generate(&SynthConfig {
            records: 5000,
            seed: 3,
        });
        let schema = ds.schema();
        for r in ds.records() {
            for (i, v) in r.values().iter().enumerate() {
                if let Value::Cat(pos) = v {
                    let max = schema.attribute(i).domain_size().unwrap() as u32;
                    assert!(*pos < max, "attr {i} leaf {pos}");
                }
            }
        }
    }
}
