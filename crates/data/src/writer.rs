//! Writes data sets back out in the `adult.data` CSV format, so files
//! produced by the synthetic generator interoperate with the loader (and
//! with any external Adult tooling).

use crate::dataset::{DataSet, Value};

/// Columns we do not model are emitted as fixed placeholders.
const FNLWGT: &str = "100000";
const EDUCATION_NUM: &str = "10";
const RELATIONSHIP: &str = "Not-in-family";
const CAPITAL_GAIN: &str = "0";
const CAPITAL_LOSS: &str = "0";
const HOURS_PER_WEEK: &str = "40";

/// Serializes a data set over the Adult schema to `adult.data` CSV lines.
pub fn write_adult_csv(ds: &DataSet) -> String {
    let schema = ds.schema();
    let label = |attr: usize, v: Value| -> String {
        let tax = schema
            .attribute(attr)
            .vgh()
            .as_taxonomy()
            .expect("categorical attribute");
        tax.label(tax.leaf_node(v.as_cat())).to_string()
    };
    let mut out = String::with_capacity(ds.len() * 96);
    for rec in ds.records() {
        let age = rec.value(0).as_num() as i64;
        let class = &schema.class_labels()[rec.class() as usize];
        out.push_str(&format!(
            "{age}, {workclass}, {FNLWGT}, {education}, {EDUCATION_NUM}, {marital}, \
             {occupation}, {RELATIONSHIP}, {race}, {sex}, {CAPITAL_GAIN}, {CAPITAL_LOSS}, \
             {HOURS_PER_WEEK}, {country}, {class}\n",
            workclass = label(1, rec.value(1)),
            education = label(2, rec.value(2)),
            marital = label(3, rec.value(3)),
            occupation = label(4, rec.value(4)),
            race = label(5, rec.value(5)),
            sex = label(6, rec.value(6)),
            country = label(7, rec.value(7)),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::parse_adult;
    use crate::synth::{generate, SynthConfig};

    #[test]
    fn writer_loader_roundtrip() {
        let original = generate(&SynthConfig {
            records: 200,
            seed: 77,
        });
        let csv = write_adult_csv(&original);
        let reloaded = parse_adult(csv.lines().map(|l| Ok(l.to_string()))).unwrap();
        assert_eq!(reloaded.len(), original.len());
        for (a, b) in original.records().iter().zip(reloaded.records()) {
            assert_eq!(a.values(), b.values());
            assert_eq!(a.class(), b.class());
        }
    }
}
